"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one series (or one representative point) of the
paper's Figure 9, using the same workload builder as the CLI harness
(``python -m repro.bench``).  Workload sizes are scaled down from the paper's
DB2 runs so the whole suite finishes in a few minutes on a laptop; set
``REPRO_BENCH_SCALE`` to raise them (10 ≈ the paper's sizes for most figures).
The shape comparisons (who wins, monotonicity) are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import build_workload

#: Baseline relation size for single-point benchmarks (paper: up to 100K).
BENCH_SZ = int(20_000 * float(os.environ.get("REPRO_BENCH_SCALE", "1") or 1))
#: Baseline tableau size (paper: 1K).
BENCH_TABSZ = 1_000
#: Noise level shared by all experiments except the NOISE sweep (paper: 5%).
BENCH_NOISE = 0.05
#: Seed shared by every workload so results are reproducible.
BENCH_SEED = 42


@pytest.fixture(scope="session")
def constants_workload():
    """SZ=BENCH_SZ, NUMATTRs=3, TABSZ=1K, NUMCONSTs=100% (Figures 9(a), 9(c))."""
    return build_workload(
        size=BENCH_SZ, noise=BENCH_NOISE, seed=BENCH_SEED,
        num_attrs=3, tabsz=BENCH_TABSZ, num_consts=1.0,
    )


@pytest.fixture(scope="session")
def mixed_workload():
    """As above but NUMCONSTs=50% (Figure 9(b))."""
    return build_workload(
        size=BENCH_SZ, noise=BENCH_NOISE, seed=BENCH_SEED,
        num_attrs=3, tabsz=BENCH_TABSZ, num_consts=0.5,
    )
