"""Ablation: redundant rules vs their minimal cover (50K tax, indexed detection).

The acceptance criterion of the ``optimize`` mode of :mod:`repro.analysis`
(``analyze(optimize=True)`` / ``repro lint --optimize``), asserted outright
on a 50K-tuple tax workload:

* the rule set is the TABSZ constants tableau plus the wildcard FD behind
  it duplicated under twin names — redundancy the linter's deep pass flags
  as CFD002, and the shape that hurts the indexed detector most (each twin
  re-scans every LHS partition);
* rewriting it to the minimal cover (Figure 4 of the paper) makes indexed
  detection at least **1.2x faster** — measured around 2-2.5x locally, the
  floor leaves room for a loaded CI runner;
* the optimized rules find exactly the same violating tuples.

The measured point is written to ``BENCH_analysis.json`` (into
``REPRO_BENCH_JSON_DIR``, default ``bench-artifacts/``), the same artifact
the ``analysis`` bench series produces, so the payoff is tracked run over
run alongside lint latency.
"""

import os

import pytest

from benchmarks.conftest import BENCH_NOISE, BENCH_SEED
from repro.analysis import analyze
from repro.bench.harness import _median_timed, build_workload
from repro.bench.reporting import write_json
from repro.core.cfd import CFD
from repro.detection.indexed import IndexedDetector
from repro.reasoning.implication import equivalent
from repro.reasoning.mincover import minimal_cover

#: The acceptance workload: 50K tax tuples, the bench's TABSZ relation size.
TAX_SZ = 50_000
#: Constants-tableau size; kept at 100 so the cover computation (quadratic
#: chase) stays sub-second — this file measures the *detection* payoff.
TABSZ = 100
#: How many times the wildcard FD is duplicated in the redundant set.
TWINS = 4
#: The headline bar for the minimal-cover detection speedup.
MIN_OPTIMIZE_SPEEDUP = 1.2


@pytest.fixture(scope="module")
def redundant_workload():
    workload = build_workload(
        size=TAX_SZ, noise=BENCH_NOISE, seed=BENCH_SEED, num_attrs=3, tabsz=TABSZ
    )
    redundant = list(workload.cfds) + [
        CFD.build(["ZIP", "CT"], ["ST"], [["_", "_", "_"]], name=f"zip_city_fd_{i}")
        for i in range(TWINS)
    ]
    return workload.relation, redundant


def test_linter_flags_the_planted_redundancy(redundant_workload):
    """The deep pass sees what the bench exploits: the twins are CFD002s."""
    _, redundant = redundant_workload
    report = analyze(redundant)
    flagged = {diag.cfd for diag in report.by_code("CFD002")}
    assert any(name.startswith("zip_city_fd_") for name in flagged)


def test_minimal_cover_detection_at_least_1_2x_on_50k_tax(redundant_workload):
    """The core acceptance criterion, with the measurement persisted."""
    relation, redundant = redundant_workload
    cover = minimal_cover(redundant)
    assert equivalent(cover, redundant)
    assert sum(len(cfd.tableau) for cfd in cover) < sum(
        len(cfd.tableau) for cfd in redundant
    )

    redundant_seconds, redundant_report = _median_timed(
        lambda: IndexedDetector(relation).detect(redundant), repeats=3
    )
    optimized_seconds, optimized_report = _median_timed(
        lambda: IndexedDetector(relation).detect(cover), repeats=3
    )
    assert sorted(redundant_report.violating_indices()) == sorted(
        optimized_report.violating_indices()
    )

    speedup = (
        redundant_seconds / optimized_seconds if optimized_seconds else float("inf")
    )
    write_json(
        os.environ.get("REPRO_BENCH_JSON_DIR", "bench-artifacts"),
        "analysis",
        [
            {
                "series": "optimize",
                "SZ": TAX_SZ,
                "patterns_before": sum(len(cfd.tableau) for cfd in redundant),
                "patterns_after": sum(len(cfd.tableau) for cfd in cover),
                "redundant_detect_seconds": redundant_seconds,
                "optimized_detect_seconds": optimized_seconds,
                "optimize_speedup": speedup,
            }
        ],
        metadata={"source": "test_ablation_analysis", "twins": TWINS},
    )
    assert speedup >= MIN_OPTIMIZE_SPEEDUP, (
        f"indexed detection under the minimal cover ({optimized_seconds:.4f}s) "
        f"should be at least {MIN_OPTIMIZE_SPEEDUP}x faster than under the "
        f"redundant rule set ({redundant_seconds:.4f}s), got {speedup:.2f}x"
    )


def test_shallow_lint_is_cheap_enough_for_the_gate(redundant_workload):
    """The pipeline gate's pass (deep=False) must stay far below detection cost."""
    relation, redundant = redundant_workload
    shallow_seconds, _ = _median_timed(
        lambda: analyze(redundant, relation.schema, deep=False), repeats=3
    )
    assert shallow_seconds < 0.5
