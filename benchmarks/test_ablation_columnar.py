"""Ablation: dictionary-encoded columnar storage vs rows (50K tax).

The acceptance criteria of the columnar storage core, asserted outright on a
50K-tuple tax workload (Section 5 knobs, the ``[ZIP] → [ST]`` constraint
with a 300-pattern sample):

* indexed detection over a pre-encoded :class:`ColumnStore` is at least
  **2× faster** than over the row relation — the grouping pass runs over
  dictionary codes (bucket indexing, no per-cell value hashing) and the
  ``Q^C``/``Q^V`` checks compare codes instead of strings;
* detection reports and repairs are **byte-identical** across the two
  storage layers, for every engine (the small-relation agreement properties
  live in ``tests/integration/test_storage_agreement.py``; this file pins
  the full-size workload).

The measured pair is written to ``BENCH_columnar.json`` (into
``REPRO_BENCH_JSON_DIR``, default ``bench-artifacts/``), the same artifact
the ``columnar`` bench series produces in CI, so the storage-layer speedup
is tracked run over run.
"""

import os

import pytest

from benchmarks.conftest import BENCH_NOISE, BENCH_SEED
from repro.bench.harness import build_workload, time_storage_detection, time_storage_repair
from repro.bench.reporting import write_json
from repro.core.satisfaction import find_all_violations

#: The acceptance workload: 50K tax tuples at the paper's default 5% noise.
TAX_SZ = 50_000
#: Pattern sample of the [ZIP] -> [ST] tableau (as in the repair ablation).
TAX_TABSZ = 300
#: The headline bar: columnar indexed detection must at least halve the
#: row-storage time.  Local measurements sit around 4-5x; 2x leaves room
#: for a loaded CI runner without ever letting a real regression through.
MIN_DETECT_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def tax_workload():
    assert BENCH_NOISE >= 0.05
    return build_workload(
        size=TAX_SZ, noise=BENCH_NOISE, seed=BENCH_SEED,
        num_attrs=2, tabsz=TAX_TABSZ, num_consts=1.0,
    )


def _changes_key(result):
    return [
        (change.tuple_index, change.attribute, change.old_value, change.new_value)
        for change in result.changes
    ]


# ---------------------------------------------------------------------------
# timed series (what pytest-benchmark records)
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-columnar-detect")
def test_columnar_detection_tax(benchmark, tax_workload):
    benchmark.pedantic(
        lambda: time_storage_detection(tax_workload, "columnar"),
        rounds=3, iterations=1,
    )


@pytest.mark.benchmark(group="ablation-columnar-detect")
def test_rows_detection_tax_baseline(benchmark, tax_workload):
    benchmark.pedantic(
        lambda: time_storage_detection(tax_workload, "rows"),
        rounds=3, iterations=1,
    )


# ---------------------------------------------------------------------------
# headline assertions (acceptance criteria)
# ---------------------------------------------------------------------------
def test_columnar_detection_at_least_2x_on_50k_tax(tax_workload):
    """The core acceptance criterion, with the measurement persisted."""
    rows_seconds, rows_report = time_storage_detection(tax_workload, "rows", repeats=3)
    columnar_seconds, columnar_report = time_storage_detection(
        tax_workload, "columnar", repeats=3
    )
    assert list(rows_report.violations) == list(columnar_report.violations)
    speedup = rows_seconds / columnar_seconds if columnar_seconds else float("inf")
    write_json(
        os.environ.get("REPRO_BENCH_JSON_DIR", "bench-artifacts"),
        "columnar",
        [
            {
                "SZ": TAX_SZ,
                "rows_detect_seconds": rows_seconds,
                "columnar_detect_seconds": columnar_seconds,
                "detect_speedup": speedup,
            }
        ],
        metadata={"workload": tax_workload.label, "source": "test_ablation_columnar"},
    )
    assert speedup >= MIN_DETECT_SPEEDUP, (
        f"columnar indexed detection ({columnar_seconds:.4f}s) should be at "
        f"least {MIN_DETECT_SPEEDUP}x faster than row storage "
        f"({rows_seconds:.4f}s) on the 50K tax workload, got {speedup:.2f}x"
    )


def test_storage_layers_agree_byte_for_byte_on_50k_tax(tax_workload):
    """Full-size byte-identity: same repair, same cost, same clean relation."""
    rows_seconds, rows_repair = time_storage_repair(tax_workload, "rows")
    columnar_seconds, columnar_repair = time_storage_repair(tax_workload, "columnar")
    assert rows_repair.clean and columnar_repair.clean
    assert rows_repair.relation.rows == columnar_repair.relation.rows
    assert _changes_key(rows_repair) == _changes_key(columnar_repair)
    assert rows_repair.total_cost == columnar_repair.total_cost
    assert find_all_violations(columnar_repair.relation, tax_workload.cfds).is_clean()
    assert rows_seconds > 0 and columnar_seconds > 0
