"""Ablation: partition-indexed detection vs the per-pattern scan vs SQL.

The in-memory oracle re-scans the relation once per pattern tuple, so its
cost is ``O(|I| x TABSZ)``.  The indexed backend builds one partition map per
distinct LHS attribute set and answers every pattern from it, so its cost is
``O(|I| + TABSZ x #partitions)`` — see ``docs/detection.md``.  This ablation
times all three backends on the paper's tax-records generator (Section 5
knobs) and on the running-example ``cust`` instance, and asserts the headline
claim outright: indexed beats the per-pattern scan on the 10K-tuple tax
workload.

Each indexed round starts from a cold cache, so partition construction is
included in the measured time — the comparison is end-to-end, not
amortised.  SQL rounds time only the query pair (load/indexing is setup),
mirroring ``time_detection``.
"""

import pytest

from benchmarks.conftest import BENCH_NOISE, BENCH_SEED
from repro.bench.harness import build_workload, time_backend
from repro.core.satisfaction import find_all_violations
from repro.datagen.cust import cust_cfds, cust_relation
from repro.detection.engine import cross_check
from repro.detection.indexed import IndexedDetector

#: The acceptance workload: 10K tax tuples (the paper's smallest SZ point).
TAX_SZ = 10_000
#: Modest tableau so the per-pattern oracle series stays tolerable.
TAX_TABSZ = 100


@pytest.fixture(scope="module")
def tax_workload():
    return build_workload(
        size=TAX_SZ, noise=BENCH_NOISE, seed=BENCH_SEED,
        num_attrs=3, tabsz=TAX_TABSZ, num_consts=0.5,
    )


@pytest.fixture(scope="module")
def cust_workload():
    from repro.bench.harness import DetectionWorkload

    return DetectionWorkload(relation=cust_relation(), cfds=cust_cfds(), label="cust (Figure 1)")


# ---------------------------------------------------------------------------
# tax-records generator (Section 5 workload)
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-indexed-vs-scan-tax")
def test_indexed_tax(benchmark, tax_workload):
    benchmark.pedantic(
        lambda: IndexedDetector(tax_workload.relation).detect(tax_workload.cfds),
        rounds=3, iterations=1,
    )


@pytest.mark.benchmark(group="ablation-indexed-vs-scan-tax")
def test_inmemory_tax(benchmark, tax_workload):
    benchmark.pedantic(
        lambda: find_all_violations(tax_workload.relation, tax_workload.cfds),
        rounds=3, iterations=1,
    )


@pytest.mark.benchmark(group="ablation-indexed-vs-scan-tax")
def test_sql_tax(benchmark, tax_workload):
    detector = tax_workload.detector()

    def run():
        detector.detect(tax_workload.cfds, form="dnf", expand_variable_violations=False)

    try:
        benchmark.pedantic(run, rounds=3, iterations=1)
    finally:
        detector.close()


# ---------------------------------------------------------------------------
# cust running example (Figures 1-2 workload)
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-indexed-vs-scan-cust")
def test_indexed_cust(benchmark, cust_workload):
    benchmark.pedantic(
        lambda: IndexedDetector(cust_workload.relation).detect(cust_workload.cfds),
        rounds=5, iterations=10,
    )


@pytest.mark.benchmark(group="ablation-indexed-vs-scan-cust")
def test_inmemory_cust(benchmark, cust_workload):
    benchmark.pedantic(
        lambda: find_all_violations(cust_workload.relation, cust_workload.cfds),
        rounds=5, iterations=10,
    )


@pytest.mark.benchmark(group="ablation-indexed-vs-scan-cust")
def test_sql_cust(benchmark, cust_workload):
    detector = cust_workload.detector()

    def run():
        detector.detect(cust_workload.cfds, form="dnf", expand_variable_violations=False)

    try:
        benchmark.pedantic(run, rounds=5, iterations=10)
    finally:
        detector.close()


# ---------------------------------------------------------------------------
# headline assertions (acceptance criteria, not timings-for-the-report)
# ---------------------------------------------------------------------------
def test_indexed_beats_inmemory_on_10k_tax(tax_workload):
    """The repo's first hot-path speedup claim, asserted directly."""
    indexed_seconds, indexed_report = time_backend(tax_workload, "indexed")
    inmemory_seconds, inmemory_report = time_backend(tax_workload, "inmemory")
    assert indexed_report.violating_indices() == inmemory_report.violating_indices()
    assert indexed_seconds < inmemory_seconds, (
        f"indexed ({indexed_seconds:.3f}s) should beat the per-pattern scan "
        f"({inmemory_seconds:.3f}s) on the 10K tax workload"
    )


def test_all_backends_agree_on_10k_tax(tax_workload):
    result = cross_check(tax_workload.relation, tax_workload.cfds)
    assert result.agree, f"backends disagree: {result.disagreements()}"
