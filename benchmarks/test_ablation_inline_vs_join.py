"""Ablation (DESIGN.md §5): tableau-as-table join vs inlined pattern constants.

The paper's detection queries join the pattern tableau as a data table so the
query text stays bounded by the embedded FD regardless of TABSZ.  The obvious
alternative inlines every pattern row into the SQL.  This ablation times both
on the same workload at two tableau sizes: the join form should be roughly
flat in TABSZ (Figure 9(d)'s observation), while the inlined form pays
per-pattern parsing/planning that grows with the tableau.
"""

import pytest

from benchmarks.conftest import BENCH_NOISE, BENCH_SEED, BENCH_SZ
from repro.bench.harness import build_workload
from repro.sql.inline import InlineCFDQueryBuilder
from repro.sql.loader import create_indexes, load_single_tableau
from repro.sql.single import SingleCFDQueryBuilder

# SQLite refuses compound SELECTs with more than ~500 arms, so the inlined
# form cannot even express tableaux beyond that — itself a point for the
# paper's bounded-size join design.  Stay below the limit for the timing
# comparison.
TABSZ_POINTS = (100, 450)


def _setup(tabsz):
    workload = build_workload(
        size=BENCH_SZ, noise=BENCH_NOISE, seed=BENCH_SEED,
        num_attrs=2, tabsz=tabsz, num_consts=1.0,
    )
    detector = workload.detector()
    cfd = workload.cfds[0]
    create_indexes(detector.connection, detector.data_table, [cfd])
    return workload, detector, cfd


@pytest.mark.parametrize("tabsz", TABSZ_POINTS)
@pytest.mark.benchmark(group="ablation-inline-vs-join")
def test_join_form(benchmark, tabsz):
    workload, detector, cfd = _setup(tabsz)
    tableau_table = load_single_tableau(detector.connection, cfd)
    builder = SingleCFDQueryBuilder(cfd, detector.data_table, tableau_table)
    qc, qv = builder.qc_sql("dnf"), builder.qv_sql("dnf")

    def run():
        detector.connection.execute(qc).fetchall()
        detector.connection.execute(qv).fetchall()

    try:
        benchmark.pedantic(run, rounds=3, iterations=1)
    finally:
        detector.close()


@pytest.mark.parametrize("tabsz", TABSZ_POINTS)
@pytest.mark.benchmark(group="ablation-inline-vs-join")
def test_inline_form(benchmark, tabsz):
    workload, detector, cfd = _setup(tabsz)
    builder = InlineCFDQueryBuilder(cfd, detector.data_table)

    def run():
        # The inlined form must regenerate + re-plan its (large) SQL text each
        # time, which is part of the cost being ablated.
        detector.connection.execute(builder.qc_sql()).fetchall()
        detector.connection.execute(builder.qv_sql()).fetchall()

    try:
        benchmark.pedantic(run, rounds=3, iterations=1)
    finally:
        detector.close()
