"""Ablation: numpy vs pure-python kernels (50K tax, pure-``Q^V`` regime).

The acceptance criteria of the kernel layer (:mod:`repro.kernels`),
asserted outright on a 50K-tuple tax workload constrained by the plain
exemption FD keyed by zip code (``[ZIP, MR, CH] → [STX, MTX, CTX]``, which
holds on clean data because zips determine states) at 1% noise:

* columnar indexed detection under ``kernel="numpy"`` is at least **5×
  faster** than under ``kernel="python"`` — the fused ``Q^V`` scan replaces
  the per-tuple grouping dict and the per-partition disagreement scans with
  one radix sort plus ``reduceat`` reductions over whole code columns;
* detection reports and repairs are **byte-identical** across the two
  kernels (the small-relation agreement grid lives in
  ``tests/integration/test_kernel_agreement.py``; this file pins the
  full-size workload).

The workload is deliberately the mostly-clean regime: with few violations
the python reference cannot short-circuit its disagreement scans early, so
this is its worst case *and* the common production case (detection runs on
data that is mostly fine).  The measured pair is written to
``BENCH_kernels.json`` (into ``REPRO_BENCH_JSON_DIR``, default
``bench-artifacts/``), the same artifact the ``kernels`` bench series
produces in CI, so the kernel-layer speedup is tracked run over run.
"""

import os

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.bench.harness import build_fd_workload, time_kernel_detection
from repro.bench.reporting import write_json
from repro.config import RepairConfig
from repro.core.satisfaction import find_all_violations
from repro.kernels import numpy_available
from repro.repair.heuristic import repair

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the numpy kernel needs the [fast] extra"
)

#: The acceptance workload: 50K tax tuples.
TAX_SZ = 50_000
#: Low noise pins the python kernel's worst case (no early exit from the
#: per-partition disagreement scans) — see the module docstring.
TAX_NOISE = 0.01
#: The headline bar: the numpy kernel must beat the python reference by at
#: least 5x on indexed detection.  Local measurements sit around 10-16x; 5x
#: leaves room for a loaded CI runner without letting a regression through.
MIN_DETECT_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def fd_workload():
    return build_fd_workload(size=TAX_SZ, noise=TAX_NOISE, seed=BENCH_SEED)


def _changes_key(result):
    return [
        (change.tuple_index, change.attribute, change.old_value, change.new_value)
        for change in result.changes
    ]


# ---------------------------------------------------------------------------
# timed series (what pytest-benchmark records)
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-kernels-detect")
def test_numpy_kernel_detection_tax(benchmark, fd_workload):
    benchmark.pedantic(
        lambda: time_kernel_detection(fd_workload, "numpy"),
        rounds=3, iterations=1,
    )


@pytest.mark.benchmark(group="ablation-kernels-detect")
def test_python_kernel_detection_tax_baseline(benchmark, fd_workload):
    benchmark.pedantic(
        lambda: time_kernel_detection(fd_workload, "python"),
        rounds=3, iterations=1,
    )


# ---------------------------------------------------------------------------
# headline assertions (acceptance criteria)
# ---------------------------------------------------------------------------
def test_numpy_kernel_detection_at_least_5x_on_50k_tax(fd_workload):
    """The core acceptance criterion, with the measurement persisted."""
    python_seconds, python_report = time_kernel_detection(
        fd_workload, "python", repeats=3
    )
    numpy_seconds, numpy_report = time_kernel_detection(fd_workload, "numpy", repeats=3)
    assert list(python_report.violations) == list(numpy_report.violations)
    speedup = python_seconds / numpy_seconds if numpy_seconds else float("inf")
    write_json(
        os.environ.get("REPRO_BENCH_JSON_DIR", "bench-artifacts"),
        "kernels",
        [
            {
                "SZ": TAX_SZ,
                "python_detect_seconds": python_seconds,
                "numpy_detect_seconds": numpy_seconds,
                "numpy_speedup": speedup,
            }
        ],
        metadata={"workload": fd_workload.label, "source": "test_ablation_kernels"},
    )
    assert speedup >= MIN_DETECT_SPEEDUP, (
        f"numpy-kernel indexed detection ({numpy_seconds:.4f}s) should be at "
        f"least {MIN_DETECT_SPEEDUP}x faster than the python kernel "
        f"({python_seconds:.4f}s) on the 50K tax workload, got {speedup:.2f}x"
    )


def test_kernels_agree_byte_for_byte_on_50k_tax(fd_workload):
    """Full-size byte-identity: same repair, same cost, same clean relation."""
    outcomes = {}
    for kernel in ("python", "numpy"):
        outcomes[kernel] = repair(
            fd_workload.relation,
            fd_workload.cfds,
            config=RepairConfig(
                method="incremental",
                storage="columnar",
                kernel=kernel,
                check_consistency=False,
            ),
        )
    python_repair, numpy_repair = outcomes["python"], outcomes["numpy"]
    assert python_repair.clean and numpy_repair.clean
    assert python_repair.relation.rows == numpy_repair.relation.rows
    assert _changes_key(python_repair) == _changes_key(numpy_repair)
    assert python_repair.total_cost == numpy_repair.total_cost
    assert find_all_violations(numpy_repair.relation, fd_workload.cfds).is_clean()
