"""Ablation: sharded parallel execution vs the serial engines (10K tax).

The acceptance criteria of the parallel engine, asserted outright on the
paper's 10K-tuple tax workload (Section 5 knobs, the ``[ZIP] → [ST]``
constraint):

* ``method="parallel"`` produces the **byte-identical repaired relation** the
  incremental engine produces — sharding by LHS equivalence classes plus
  deterministic per-cell repair decisions make the split invisible in the
  output;
* the parallel engine delivers a **measured speedup** over the seed serial
  baselines (the scan-driven repair loop and the per-pattern scan oracle).
  Those margins are order-of-magnitude, so they hold even on a single-core
  CI runner where the process pool itself buys nothing.  Against the
  *optimised* serial engines the pool only pays past
  :data:`repro.registry.PARALLEL_AUTO_ROW_THRESHOLD` rows — which is exactly
  why ``method="auto"`` keeps 10K-row workloads serial; the measured ratio is
  recorded in the ``parallel`` bench series (``BENCH_parallel.json``) rather
  than asserted here.

See ``docs/parallel.md`` for the sharding invariant behind the identity.
"""

import pytest

from benchmarks.conftest import BENCH_NOISE, BENCH_SEED
from repro.bench.harness import (
    build_workload,
    time_backend,
    time_parallel_detection,
    time_parallel_repair,
    time_repair,
)
from repro.core.satisfaction import find_all_violations

#: The acceptance workload: 10K tax tuples at the paper's default 5% noise.
TAX_SZ = 10_000
#: Pattern sample of the [ZIP] -> [ST] tableau (as in the repair ablation).
TAX_TABSZ = 300
#: Pool geometry: modest, CI-runner friendly.
WORKERS = 2
SHARDS = 4


@pytest.fixture(scope="module")
def tax_workload():
    assert BENCH_NOISE >= 0.05
    return build_workload(
        size=TAX_SZ, noise=BENCH_NOISE, seed=BENCH_SEED,
        num_attrs=2, tabsz=TAX_TABSZ, num_consts=1.0,
    )


def _changes_key(result):
    return {
        (change.tuple_index, change.attribute, change.old_value, change.new_value)
        for change in result.changes
    }


# ---------------------------------------------------------------------------
# timed series (what BENCH_parallel.json records over the worker sweep)
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-parallel-repair")
def test_parallel_repair_tax(benchmark, tax_workload):
    benchmark.pedantic(
        lambda: time_parallel_repair(tax_workload, shard_count=SHARDS, workers=WORKERS),
        rounds=3, iterations=1,
    )


@pytest.mark.benchmark(group="ablation-parallel-repair")
def test_incremental_repair_tax_baseline(benchmark, tax_workload):
    benchmark.pedantic(
        lambda: time_repair(tax_workload, "incremental"),
        rounds=3, iterations=1,
    )


@pytest.mark.benchmark(group="ablation-parallel-detect")
def test_parallel_detection_tax(benchmark, tax_workload):
    benchmark.pedantic(
        lambda: time_parallel_detection(tax_workload, shard_count=SHARDS, workers=WORKERS),
        rounds=3, iterations=1,
    )


# ---------------------------------------------------------------------------
# headline assertions (acceptance criteria)
# ---------------------------------------------------------------------------
def test_parallel_repair_byte_identical_to_incremental_on_10k_tax(tax_workload):
    """The core acceptance criterion: the split is invisible in the repair."""
    parallel_seconds, parallel = time_parallel_repair(
        tax_workload, shard_count=SHARDS, workers=WORKERS
    )
    incremental_seconds, incremental = time_repair(tax_workload, "incremental")
    assert parallel.clean and incremental.clean
    assert parallel.relation == incremental.relation
    assert parallel.relation.rows == incremental.relation.rows  # byte-identical
    assert _changes_key(parallel) == _changes_key(incremental)
    assert parallel.total_cost == pytest.approx(incremental.total_cost)
    assert find_all_violations(parallel.relation, tax_workload.cfds).is_clean()
    # Context for the report; the serial-vs-parallel crossover is asserted
    # against the seed baseline below, not against the incremental engine.
    assert parallel_seconds > 0 and incremental_seconds > 0


def test_parallel_repair_beats_scan_on_10k_tax(tax_workload):
    """The measured speedup: sharded parallel repair vs the seed scan loop."""
    parallel_seconds, parallel = time_parallel_repair(
        tax_workload, shard_count=SHARDS, workers=WORKERS
    )
    scan_seconds, scan = time_repair(tax_workload, "scan")
    assert parallel.relation == scan.relation
    assert parallel_seconds < scan_seconds, (
        f"parallel repair ({parallel_seconds:.3f}s) should beat the seed "
        f"scan-driven loop ({scan_seconds:.3f}s) on the 10K tax workload"
    )


def test_parallel_detection_beats_oracle_on_10k_tax(tax_workload):
    """The measured speedup: sharded parallel detection vs the scan oracle."""
    parallel_seconds, report = time_parallel_detection(
        tax_workload, shard_count=SHARDS, workers=WORKERS
    )
    oracle_seconds, oracle = time_backend(tax_workload, "inmemory")
    assert set(report.violations) == set(oracle.violations)
    assert parallel_seconds < oracle_seconds, (
        f"parallel detection ({parallel_seconds:.3f}s) should beat the "
        f"per-pattern scan oracle ({oracle_seconds:.3f}s) on the 10K tax workload"
    )
