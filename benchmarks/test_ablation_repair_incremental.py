"""Ablation: delta-maintained incremental repair vs full re-detection per pass.

The repair loop is a fixpoint that re-checks satisfaction after every pass.
The seed implementation re-ran the pure-Python scan oracle from scratch each
time — ``O(passes x |Σ| x |I| x TABSZ)`` — while a repair pass only changes a
handful of cells.  The incremental engine (``repro.repair.incremental``)
ingests the relation once into the PR 1 partition indexes and maintains the
violation state under each cell change, touching only the changed tuple's old
and new equivalence classes of the patterns that mention the changed
attribute; the ``indexed`` engine sits in between (full re-detection per
check, but over freshly built partition maps).  See ``docs/repair.md``.

This ablation times all three engines on the paper's tax-records workload
(Section 5 knobs: 10K tuples, 5% noise, the ``[ZIP] → [ST]`` constraint) and
asserts the headline claims outright: the incremental engine beats the
scan-driven loop, and every engine reaches the *identical* repaired relation
through the identical change sequence — the canonical violation order makes
the greedy policy engine-independent.
"""

import pytest

from benchmarks.conftest import BENCH_NOISE, BENCH_SEED
from repro.bench.harness import build_workload, time_repair
from repro.datagen.cust import cust_cfds, cust_relation
from repro.repair.heuristic import REPAIR_METHODS, repair

#: The acceptance workload: 10K tax tuples at >= 5% noise (the paper's
#: smallest SZ point, its default NOISE).
TAX_SZ = 10_000
#: Pattern sample of the [ZIP] -> [ST] tableau; keeps the scan series
#: tolerable (its per-pass cost is linear in TABSZ) without changing who wins.
TAX_TABSZ = 300


@pytest.fixture(scope="module")
def tax_workload():
    assert BENCH_NOISE >= 0.05
    return build_workload(
        size=TAX_SZ, noise=BENCH_NOISE, seed=BENCH_SEED,
        num_attrs=2, tabsz=TAX_TABSZ, num_consts=1.0,
    )


def _changes_key(result):
    return [
        (change.tuple_index, change.attribute, change.old_value, change.new_value)
        for change in result.changes
    ]


# ---------------------------------------------------------------------------
# timed series (tax-records generator, Section 5 workload)
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-repair-tax")
def test_incremental_repair_tax(benchmark, tax_workload):
    benchmark.pedantic(
        lambda: repair(
            tax_workload.relation, tax_workload.cfds,
            check_consistency=False, method="incremental",
        ),
        rounds=3, iterations=1,
    )


@pytest.mark.benchmark(group="ablation-repair-tax")
def test_indexed_repair_tax(benchmark, tax_workload):
    benchmark.pedantic(
        lambda: repair(
            tax_workload.relation, tax_workload.cfds,
            check_consistency=False, method="indexed",
        ),
        rounds=3, iterations=1,
    )


@pytest.mark.benchmark(group="ablation-repair-tax")
def test_scan_repair_tax(benchmark, tax_workload):
    benchmark.pedantic(
        lambda: repair(
            tax_workload.relation, tax_workload.cfds,
            check_consistency=False, method="scan",
        ),
        rounds=1, iterations=1,
    )


# ---------------------------------------------------------------------------
# headline assertions (acceptance criteria, not timings-for-the-report)
# ---------------------------------------------------------------------------
def test_incremental_beats_scan_on_10k_tax(tax_workload):
    """The repair-side speedup claim, asserted directly with identical outcomes."""
    incremental_seconds, incremental = time_repair(tax_workload, "incremental")
    scan_seconds, scan = time_repair(tax_workload, "scan")
    assert incremental.clean and scan.clean
    assert incremental.relation == scan.relation
    assert _changes_key(incremental) == _changes_key(scan)
    assert incremental_seconds < scan_seconds, (
        f"incremental repair ({incremental_seconds:.3f}s) should beat the "
        f"scan-driven loop ({scan_seconds:.3f}s) on the 10K tax workload"
    )


def test_all_repair_methods_agree_on_corpus(tax_workload):
    """Every engine reaches the same repair on the repair test corpus."""
    corpus = [
        ("cust", cust_relation(), cust_cfds()),
        ("tax", tax_workload.relation, tax_workload.cfds),
    ]
    for label, relation, cfds in corpus:
        results = {
            method: repair(relation, cfds, check_consistency=False, method=method)
            for method in REPAIR_METHODS
        }
        baseline = results["scan"]
        for method, result in results.items():
            assert result.clean == baseline.clean, (label, method)
            assert result.relation == baseline.relation, (label, method)
            assert _changes_key(result) == _changes_key(baseline), (label, method)
            assert result.passes == baseline.passes, (label, method)
