"""Ablation: numpy vs pure-python kernels on the repair fixpoint (50K tax).

The acceptance criteria of the *repair-side* kernel layer — the batched
class re-evaluation (``partition_classes`` / ``evaluate_classes``), the
array-backed partition deltas (:class:`~repro.detection.partition_index.CodePartitionIndex`)
and the code-keyed candidate pricing
(:class:`~repro.repair.cost.CodeDistanceCache`) — asserted outright on a
50K-tuple tax workload constrained by the plain exemption FD keyed by zip
code (``[ZIP, MR, CH] → [STX, MTX, CTX]``) at 1% noise:

* the full columnar incremental repair fixpoint under ``kernel="numpy"`` is
  at least **3× faster** than under ``kernel="python"`` — initial violation
  discovery collapses to one ``evaluate_classes`` call per pattern, every
  pass's re-checks go through the same batched primitive over the dirty
  class set, and partition maintenance becomes one scatter per touched
  index instead of per-tuple dict surgery;
* the :class:`~repro.repair.heuristic.RepairResult` change logs are
  **byte-identical** across the two kernels (the small-relation agreement
  grid lives in ``tests/integration/test_kernel_agreement.py``; this file
  pins the full-size workload).

The timing contract is :func:`~repro.bench.harness.time_kernel_repair`: the
store is pre-built and force-encoded outside the timer (identical one-off
work for every kernel), so the ratio measures the fixpoint itself.  The
measured series — including a ``method="parallel"`` point, whose per-shard
incremental fixpoints adopt the same batched path — is written to
``BENCH_repair_kernels.json`` (into ``REPRO_BENCH_JSON_DIR``, default
``bench-artifacts/``), the same artifact the ``repair_kernels`` bench
series produces in CI, so the repair-side speedup is tracked run over run.
"""

import os

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.bench.harness import build_fd_workload, time_kernel_repair
from repro.bench.reporting import write_json
from repro.core.satisfaction import find_all_violations
from repro.kernels import numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the numpy kernel needs the [fast] extra"
)

#: The acceptance workload: 50K tax tuples.
TAX_SZ = 50_000
#: 1% noise: enough violations that the fixpoint runs real repair passes,
#: few enough that re-evaluation dominates over cell writes — the regime the
#: batched primitives target.
TAX_NOISE = 0.01
#: The headline bar: the numpy kernel must beat the python reference by at
#: least 3x on the whole incremental repair fixpoint.  Local measurements
#: sit around 3.5-4x; the fixpoint shares more kernel-independent work
#: (plurality voting, cost accounting, the greedy loop itself) than pure
#: detection does, so the bar is lower than detection's 5x but the margin
#: against a loaded CI runner is comparable — helped further by the
#: interleaved min-of-pairs measurement below, which keeps the ratio stable
#: under uniform machine slowdowns.
MIN_REPAIR_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def fd_workload():
    return build_fd_workload(size=TAX_SZ, noise=TAX_NOISE, seed=BENCH_SEED)


def _changes_key(result):
    return [
        (change.tuple_index, change.attribute, change.old_value, change.new_value)
        for change in result.changes
    ]


# ---------------------------------------------------------------------------
# timed series (what pytest-benchmark records)
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-repair-kernels")
def test_numpy_kernel_repair_tax(benchmark, fd_workload):
    benchmark.pedantic(
        lambda: time_kernel_repair(fd_workload, "numpy"),
        rounds=3, iterations=1,
    )


@pytest.mark.benchmark(group="ablation-repair-kernels")
def test_python_kernel_repair_tax_baseline(benchmark, fd_workload):
    benchmark.pedantic(
        lambda: time_kernel_repair(fd_workload, "python"),
        rounds=3, iterations=1,
    )


# ---------------------------------------------------------------------------
# headline assertions (acceptance criteria)
# ---------------------------------------------------------------------------
def test_numpy_kernel_repair_at_least_3x_on_50k_tax(fd_workload):
    """The core acceptance criterion, with the measurement persisted.

    The two kernels are timed in *interleaved* python/numpy pairs and each
    side takes its minimum: external load hits adjacent runs alike, so a
    throttled machine slows both series together and the ratio survives,
    where back-to-back blocks would let drift land on one kernel only.  One
    untimed warm-up pair absorbs cold caches first.
    """
    time_kernel_repair(fd_workload, "python")
    time_kernel_repair(fd_workload, "numpy")
    python_runs, numpy_runs = [], []
    python_result = numpy_result = None
    for _ in range(5):
        seconds, python_result = time_kernel_repair(fd_workload, "python")
        python_runs.append(seconds)
        seconds, numpy_result = time_kernel_repair(fd_workload, "numpy")
        numpy_runs.append(seconds)
    python_seconds = min(python_runs)
    numpy_seconds = min(numpy_runs)
    assert python_result.clean and numpy_result.clean
    assert _changes_key(python_result) == _changes_key(numpy_result)
    assert python_result.total_cost == numpy_result.total_cost
    assert find_all_violations(numpy_result.relation, fd_workload.cfds).is_clean()
    parallel_seconds, parallel_result = time_kernel_repair(
        fd_workload, "numpy", method="parallel"
    )
    assert _changes_key(parallel_result) == _changes_key(numpy_result)
    speedup = python_seconds / numpy_seconds if numpy_seconds else float("inf")
    write_json(
        os.environ.get("REPRO_BENCH_JSON_DIR", "bench-artifacts"),
        "repair_kernels",
        [
            {
                "SZ": TAX_SZ,
                "python_repair_seconds": python_seconds,
                "numpy_repair_seconds": numpy_seconds,
                "parallel_repair_seconds": parallel_seconds,
                "numpy_speedup": speedup,
            }
        ],
        metadata={
            "workload": fd_workload.label,
            "source": "test_ablation_repair_kernels",
        },
    )
    assert speedup >= MIN_REPAIR_SPEEDUP, (
        f"numpy-kernel incremental repair ({numpy_seconds:.4f}s) should be at "
        f"least {MIN_REPAIR_SPEEDUP}x faster than the python kernel "
        f"({python_seconds:.4f}s) on the 50K tax workload, got {speedup:.2f}x"
    )
