"""Figure 9(a): CNF vs DNF detection time, NUMCONSTs = 100%.

Paper setting: SZ 10K–100K, NOISE 5%, one CFD with NUMATTRs 3, TABSZ 1K, all
pattern tuples constant.  Paper result: the DNF formulation clearly
out-performs the CNF one at every size.  The two benchmarks below time the
full (Q^C, Q^V) pair in each formulation at one representative SZ; compare
their means to read off the same conclusion.
"""

import pytest


def _detect(workload, detector, form):
    return detector.detect(
        workload.cfds, strategy="per_cfd", form=form, expand_variable_violations=False
    )


@pytest.fixture(scope="module")
def detector(constants_workload):
    det = constants_workload.detector()
    yield det
    det.close()


@pytest.mark.benchmark(group="fig9a-cnf-vs-dnf-const")
def test_fig9a_cnf(benchmark, constants_workload, detector):
    run = benchmark.pedantic(
        _detect, args=(constants_workload, detector, "cnf"), rounds=2, iterations=1
    )
    assert run.timings


@pytest.mark.benchmark(group="fig9a-cnf-vs-dnf-const")
def test_fig9a_dnf(benchmark, constants_workload, detector):
    run = benchmark.pedantic(
        _detect, args=(constants_workload, detector, "dnf"), rounds=3, iterations=1
    )
    assert run.timings
