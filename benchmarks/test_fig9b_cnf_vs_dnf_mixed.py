"""Figure 9(b): CNF vs DNF detection time, NUMCONSTs = 50%.

Same setting as Figure 9(a) but half of the pattern tuples contain variables.
Paper result: DNF still wins irrespective of the presence of variables.
"""

import pytest


def _detect(workload, detector, form):
    return detector.detect(
        workload.cfds, strategy="per_cfd", form=form, expand_variable_violations=False
    )


@pytest.fixture(scope="module")
def detector(mixed_workload):
    det = mixed_workload.detector()
    yield det
    det.close()


@pytest.mark.benchmark(group="fig9b-cnf-vs-dnf-mixed")
def test_fig9b_cnf(benchmark, mixed_workload, detector):
    run = benchmark.pedantic(
        _detect, args=(mixed_workload, detector, "cnf"), rounds=2, iterations=1
    )
    assert run.timings


@pytest.mark.benchmark(group="fig9b-cnf-vs-dnf-mixed")
def test_fig9b_dnf(benchmark, mixed_workload, detector):
    run = benchmark.pedantic(
        _detect, args=(mixed_workload, detector, "dnf"), rounds=3, iterations=1
    )
    assert run.timings
