"""Figure 9(c): how detection time splits between Q^C and Q^V.

Paper setting: SZ 10K–100K, NOISE 5%, one CFD with NUMATTRs 3, TABSZ 1K,
NUMCONSTs 100%.  Paper result: the two queries carry similar loads and follow
the same trend in SZ.  The two benchmarks time each query of the pair in
isolation (DNF form, as in the paper's preferred configuration).
"""

import pytest

from repro.sql.loader import create_indexes, load_single_tableau
from repro.sql.single import SingleCFDQueryBuilder


@pytest.fixture(scope="module")
def setup(constants_workload):
    detector = constants_workload.detector()
    cfd = constants_workload.cfds[0]
    create_indexes(detector.connection, detector.data_table, [cfd])
    tableau_table = load_single_tableau(detector.connection, cfd)
    builder = SingleCFDQueryBuilder(cfd, detector.data_table, tableau_table)
    yield detector.connection, builder
    detector.close()


@pytest.mark.benchmark(group="fig9c-qc-vs-qv")
def test_fig9c_qc(benchmark, setup):
    connection, builder = setup
    sql = builder.qc_sql("dnf")
    rows = benchmark.pedantic(lambda: connection.execute(sql).fetchall(), rounds=3, iterations=1)
    assert isinstance(rows, list)


@pytest.mark.benchmark(group="fig9c-qc-vs-qv")
def test_fig9c_qv(benchmark, setup):
    connection, builder = setup
    sql = builder.qv_sql("dnf")
    rows = benchmark.pedantic(lambda: connection.execute(sql).fetchall(), rounds=3, iterations=1)
    assert isinstance(rows, list)
