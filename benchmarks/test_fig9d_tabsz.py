"""Figure 9(d): scalability in TABSZ (tableau size), NUMATTRs 3 vs 4.

Paper setting: SZ 500K, NOISE 5%, NUMCONSTs 50%, TABSZ 1K–10K.  Paper result:
TABSZ has little impact on detection time; the dominant factors are the
relation size and the number of attributes in the CFD (more attributes means
wider join conditions).  The benchmark sweeps a scaled-down TABSZ range for
both attribute counts; compare times *within* a group to see the flat trend
and *across* groups to see the NUMATTRs effect.
"""

import pytest

from benchmarks.conftest import BENCH_NOISE, BENCH_SEED, BENCH_SZ
from repro.bench.harness import build_workload

TABSZ_POINTS = (250, 500, 1_000, 2_000)


def _detect(workload, detector):
    return detector.detect(
        workload.cfds, strategy="per_cfd", form="dnf", expand_variable_violations=False
    )


@pytest.mark.parametrize("tabsz", TABSZ_POINTS)
@pytest.mark.parametrize("num_attrs", (3, 4))
@pytest.mark.benchmark(group="fig9d-tabsz")
def test_fig9d_tabsz(benchmark, num_attrs, tabsz):
    workload = build_workload(
        size=BENCH_SZ,
        noise=BENCH_NOISE,
        seed=BENCH_SEED,
        num_attrs=num_attrs,
        tabsz=tabsz,
        num_consts=0.5,
    )
    detector = workload.detector()
    try:
        run = benchmark.pedantic(_detect, args=(workload, detector), rounds=2, iterations=1)
        assert run.timings
    finally:
        detector.close()
