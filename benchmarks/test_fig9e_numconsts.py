"""Figure 9(e): scalability in NUMCONSTs (fraction of constant pattern tuples).

Paper setting: SZ 100K, NOISE 5%, one CFD with TABSZ 1K and NUMATTRs 3,
NUMCONSTs varied from 100% down to 10%.  Paper result: variables do increase
detection time (they restrict index use when joining the relation with the
tableau).  The benchmark sweeps a few NUMCONSTs points at one SZ.
"""

import pytest

from benchmarks.conftest import BENCH_NOISE, BENCH_SEED, BENCH_SZ, BENCH_TABSZ
from repro.bench.harness import build_workload

NUMCONSTS_POINTS = (1.0, 0.7, 0.4, 0.1)


def _detect(workload, detector):
    return detector.detect(
        workload.cfds, strategy="per_cfd", form="dnf", expand_variable_violations=False
    )


@pytest.mark.parametrize("num_consts", NUMCONSTS_POINTS)
@pytest.mark.benchmark(group="fig9e-numconsts")
def test_fig9e_numconsts(benchmark, num_consts):
    workload = build_workload(
        size=BENCH_SZ,
        noise=BENCH_NOISE,
        seed=BENCH_SEED,
        num_attrs=3,
        tabsz=BENCH_TABSZ,
        num_consts=num_consts,
    )
    detector = workload.detector()
    try:
        run = benchmark.pedantic(_detect, args=(workload, detector), rounds=2, iterations=1)
        assert run.timings
    finally:
        detector.close()
