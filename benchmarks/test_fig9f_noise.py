"""Figure 9(f): scalability in NOISE (fraction of dirty tuples).

Paper setting: SZ 100K, one two-attribute CFD ([ZIP] → [ST]) whose tableau
contains every zip/state pair so no violation is missed, NOISE 0%–9%.
Paper result: the noise level has a negligible effect on detection time.
The benchmark sweeps the noise levels at one SZ with the full zip/state
tableau from the bundled catalog.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, BENCH_SZ
from repro.bench.harness import build_workload

NOISE_POINTS = (0.0, 0.03, 0.06, 0.09)


def _detect(workload, detector):
    return detector.detect(
        workload.cfds, strategy="per_cfd", form="dnf", expand_variable_violations=False
    )


@pytest.mark.parametrize("noise", NOISE_POINTS)
@pytest.mark.benchmark(group="fig9f-noise")
def test_fig9f_noise(benchmark, noise):
    workload = build_workload(
        size=BENCH_SZ,
        noise=noise,
        seed=BENCH_SEED,
        num_attrs=2,
        tabsz=None,  # every zip -> state pair, as in the paper
        num_consts=1.0,
    )
    detector = workload.detector()
    try:
        run = benchmark.pedantic(_detect, args=(workload, detector), rounds=2, iterations=1)
        assert run.timings
    finally:
        detector.close()
