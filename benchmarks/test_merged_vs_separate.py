"""Section 5, "Merging CFDs": the merged single-query-pair scheme vs per-CFD queries.

The paper reports that merging is mainly beneficial for highly related CFDs
and is otherwise hampered by how optimizers treat the CNF WHERE clause (its
DNF expansion being 3^k is not an option).  The benchmark times both schemes
over the same CFD set so the trade-off can be read off directly; a third
benchmark isolates the per-CFD DNF formulation as the fast baseline.
"""

import pytest

from benchmarks.conftest import BENCH_NOISE, BENCH_SEED, BENCH_SZ
from repro.bench.harness import build_workload

NUM_CFDS = 3


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        size=BENCH_SZ,
        noise=BENCH_NOISE,
        seed=BENCH_SEED,
        num_cfds=NUM_CFDS,
        tabsz=200,
        num_consts=1.0,
    )


@pytest.fixture(scope="module")
def detector(workload):
    det = workload.detector()
    yield det
    det.close()


def _detect(workload, detector, strategy, form):
    return detector.detect(
        workload.cfds, strategy=strategy, form=form, expand_variable_violations=False
    )


@pytest.mark.benchmark(group="merged-vs-separate")
def test_merged_scheme(benchmark, workload, detector):
    run = benchmark.pedantic(
        _detect, args=(workload, detector, "merged", "cnf"), rounds=2, iterations=1
    )
    assert run.timings


@pytest.mark.benchmark(group="merged-vs-separate")
def test_separate_cnf_scheme(benchmark, workload, detector):
    run = benchmark.pedantic(
        _detect, args=(workload, detector, "per_cfd", "cnf"), rounds=2, iterations=1
    )
    assert run.timings


@pytest.mark.benchmark(group="merged-vs-separate")
def test_separate_dnf_scheme(benchmark, workload, detector):
    run = benchmark.pedantic(
        _detect, args=(workload, detector, "per_cfd", "dnf"), rounds=2, iterations=1
    )
    assert run.timings
