"""End-to-end pipeline benchmark: ``Cleaner.clean`` on the 10K tax workload.

The per-stage ablations time detection and repair in isolation; this suite
times (and asserts) what the unified pipeline API delivers end to end on the
acceptance workload — 10K noisy tax tuples against the ``[ZIP] → [ST]``
constraint:

* the cleaned relation is violation-free under the *oracle* backend (the
  reference semantics vouch for the result, whatever backends did the work);
* the cleaned relation is byte-identical whether the repair loop is driven
  by ``indexed``, ``incremental`` or ``auto`` (which must resolve to
  ``incremental`` at this size);
* the full pipeline is timed so end-to-end cleaning throughput lands in the
  perf trajectory next to the per-stage series.
"""

import pytest

from benchmarks.conftest import BENCH_NOISE, BENCH_SEED
from repro.bench.harness import build_workload, time_clean
from repro.config import DetectionConfig, RepairConfig
from repro.detection.engine import detect_violations
from repro.pipeline import Cleaner
from repro.registry import select_repair_method

#: The acceptance workload: 10K tax tuples at the paper's default 5% noise.
TAX_SZ = 10_000
#: Pattern sample of the [ZIP] -> [ST] tableau (as in the repair ablation).
TAX_TABSZ = 300


@pytest.fixture(scope="module")
def tax_workload():
    return build_workload(
        size=TAX_SZ, noise=BENCH_NOISE, seed=BENCH_SEED,
        num_attrs=2, tabsz=TAX_TABSZ, num_consts=1.0,
    )


def _clean_with(workload, repair_method):
    cleaner = Cleaner(
        detection=DetectionConfig(method="indexed"),
        repair=RepairConfig(method=repair_method, check_consistency=False),
    )
    return cleaner.clean(workload.relation, workload.cfds)


# ---------------------------------------------------------------------------
# timed series
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="pipeline-tax")
def test_pipeline_clean_tax(benchmark, tax_workload):
    result = benchmark.pedantic(
        lambda: _clean_with(tax_workload, "incremental"), rounds=3, iterations=1
    )
    assert result.clean


# ---------------------------------------------------------------------------
# headline assertions (the ISSUE 3 acceptance criterion, asserted outright)
# ---------------------------------------------------------------------------
def test_cleaner_output_is_oracle_clean_and_method_independent(tax_workload):
    assert select_repair_method(tax_workload.relation, tax_workload.cfds) == "incremental"
    results = {
        method: _clean_with(tax_workload, method)
        for method in ("indexed", "incremental", "auto")
    }
    baseline = results["incremental"]
    # The oracle backend vouches the cleaned relation is violation-free.
    assert detect_violations(baseline.relation, tax_workload.cfds, method="inmemory").is_clean()
    for method, result in results.items():
        assert result.clean, method
        assert result.relation == baseline.relation, method
        assert result.passes == baseline.passes, method
        assert [
            (c.tuple_index, c.attribute, c.old_value, c.new_value)
            for c in result.changes
        ] == [
            (c.tuple_index, c.attribute, c.old_value, c.new_value)
            for c in baseline.changes
        ], method
    assert results["auto"].backends["repair"] == "incremental"


def test_pipeline_stage_timings_cover_the_run(tax_workload):
    seconds, result = time_clean(tax_workload)
    assert result.clean
    assert set(result.stage_seconds) == {
        "analyze", "ingest", "detect", "repair", "verify",
    }
    # The staged timings account for (almost all of) the measured wall clock.
    assert 0 < result.total_seconds <= seconds * 1.05
