"""Demo: the dictionary-encoded columnar storage core (docs/columnar.md).

Builds a tax workload, runs indexed detection over both storage layers,
shows the byte-identical reports and the code protocol underneath, and
cross-checks a repair across storages.

Run with: PYTHONPATH=src python examples/columnar_storage.py
"""

import time

from repro import DetectionConfig, RepairConfig, detect_violations, repair
from repro.datagen.cfd_catalog import zip_state_cfd
from repro.datagen.generator import TaxRecordGenerator
from repro.relation.columnar import ColumnStore


def main() -> None:
    relation = TaxRecordGenerator(size=20_000, noise=0.05, seed=7).generate_relation()
    cfd = zip_state_cfd(tabsz=200, seed=7)

    reports = {}
    for storage in ("rows", "columnar"):
        config = DetectionConfig(method="indexed", storage=storage)
        start = time.perf_counter()
        reports[storage] = detect_violations(relation, [cfd], config=config)
        print(f"indexed detection, storage={storage:8s}: "
              f"{len(reports[storage])} violations in {time.perf_counter() - start:.4f}s")
    assert list(reports["rows"].violations) == list(reports["columnar"].violations)
    print("reports are violation-for-violation identical\n")

    # The code protocol the hot layers consume directly.
    store = ColumnStore.from_relation(relation)
    print(f"store: {store!r}")
    zip_codes = store.codes("ZIP")  # encodes the ZIP column on first demand
    print(f"ZIP dictionary: {store.dictionary_size('ZIP')} entries "
          f"for {len(store)} rows; first codes {list(zip_codes[:6])}")
    print(f"after touching ZIP only: {store!r}\n")

    repairs = {
        storage: repair(
            relation,
            [cfd],
            config=RepairConfig(method="incremental", storage=storage, check_consistency=False),
        )
        for storage in ("rows", "columnar")
    }
    assert repairs["rows"].relation.rows == repairs["columnar"].relation.rows
    print(f"repair: {len(repairs['columnar'].changes)} cell changes, "
          f"byte-identical across storages, clean={repairs['columnar'].clean}")


if __name__ == "__main__":
    main()
