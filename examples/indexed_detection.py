"""The partition-indexed detection backend, end to end.

Builds a tax-records workload (Section 5 generator), then shows:

1. the three backends agreeing via ``cross_check``;
2. the indexed backend beating the per-pattern oracle, with cache stats;
3. streaming ingestion over a row source that is read exactly once.

Run with:  PYTHONPATH=src python examples/indexed_detection.py
"""

from __future__ import annotations

import time

from repro.bench.harness import build_workload
from repro.core.satisfaction import find_all_violations
from repro.detection.engine import cross_check
from repro.detection.indexed import IndexedDetector, detect_stream


def main() -> None:
    workload = build_workload(
        size=10_000, noise=0.05, seed=42, num_attrs=3, tabsz=100, num_consts=0.5
    )
    relation, cfds = workload.relation, workload.cfds
    print(f"Workload: {workload.label}")
    print(f"{len(relation)} tuples, {sum(len(cfd.tableau) for cfd in cfds)} pattern tuples")
    print()

    # ------------------------------------------------------------ agreement
    result = cross_check(relation, cfds)
    print(f"cross_check over inmemory/sql/indexed: agree = {result.agree}")
    print(f"violating tuples: {len(result.inmemory_indices)}")
    print()

    # ------------------------------------------------------------ speedup
    start = time.perf_counter()
    oracle_report = find_all_violations(relation, cfds)
    oracle_seconds = time.perf_counter() - start

    detector = IndexedDetector(relation)
    start = time.perf_counter()
    indexed_report = detector.detect(cfds)
    indexed_seconds = time.perf_counter() - start

    assert indexed_report.violating_indices() == oracle_report.violating_indices()
    print(f"per-pattern scan: {oracle_seconds:.3f}s")
    print(f"partition index:  {indexed_seconds:.3f}s "
          f"({oracle_seconds / indexed_seconds:.1f}x faster, cold cache)")
    print(f"cache stats after one batch: {detector.cache_stats()}")

    # A second batch over the same LHS attributes is all cache hits.
    start = time.perf_counter()
    detector.detect(cfds)
    warm_seconds = time.perf_counter() - start
    print(f"warm re-check:    {warm_seconds:.3f}s  {detector.cache_stats()}")
    print()

    # ------------------------------------------------------------ streaming
    def row_source():
        """Stand-in for a CSV reader or DB cursor: yields each row once."""
        yield from relation.rows

    start = time.perf_counter()
    stream_report = detect_stream(relation.schema, row_source(), cfds, chunk_size=2_048)
    stream_seconds = time.perf_counter() - start
    assert stream_report.violating_indices() == oracle_report.violating_indices()
    print(f"streaming (2K-row chunks, projected columns only): {stream_seconds:.3f}s, "
          f"{len(stream_report.violating_indices())} violating tuples")


if __name__ == "__main__":
    main()
