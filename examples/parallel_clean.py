"""Sharded parallel cleaning: the same results, fanned out over processes.

Generates a noisy tax-records workload (the paper's Section 5 generator),
shows the shard plan the parallel engine would use, then cleans the data
three ways and checks they agree byte for byte:

1. serial incremental repair (the default engine);
2. explicit ``method="parallel"`` with a process pool;
3. ``method="auto"`` with the escalation threshold lowered so the registry
   itself picks the parallel backends.

Run with:  python examples/parallel_clean.py
"""

from __future__ import annotations

from repro import Cleaner, DetectionConfig, RepairConfig
from repro import registry
from repro.datagen.cfd_catalog import zip_state_cfd
from repro.datagen.generator import TaxRecordGenerator
from repro.parallel import shard_relation
from repro.repair.heuristic import repair

SIZE = 5_000


def main() -> None:
    relation = TaxRecordGenerator(size=SIZE, noise=0.05, seed=42).generate_relation()
    cfds = [zip_state_cfd()]

    # --- the shard plan: equivalence classes never split ------------------
    plan = shard_relation(relation, cfds, shard_count=4)
    print(f"{SIZE} rows -> {plan.component_count} class-closed components "
          f"packed into {len(plan)} shards of sizes {plan.sizes()}")

    # --- 1. serial baseline ----------------------------------------------
    serial = repair(relation, cfds, method="incremental")
    print(f"serial incremental: {len(serial.changes)} changes, "
          f"clean={serial.clean}")

    # --- 2. explicit parallel --------------------------------------------
    parallel = repair(
        relation,
        cfds,
        config=RepairConfig(method="parallel", workers=4, shard_count=4),
    )
    stats = parallel.parallel_stats
    print(f"parallel ({stats.mode}, {stats.workers} workers): "
          f"{len(parallel.changes)} changes, clean={parallel.clean}")
    assert parallel.relation == serial.relation  # byte-identical
    print("parallel repair is byte-identical to the serial repair")

    # --- 3. auto escalation ----------------------------------------------
    # Production workloads cross the threshold naturally (150K rows); for
    # the demo we lower it so `auto` escalates on 5K rows.
    registry.PARALLEL_AUTO_ROW_THRESHOLD = 1_000
    result = Cleaner(
        detection=DetectionConfig(workers=4),
        repair=RepairConfig(workers=4),
    ).clean(relation, cfds)
    print(f"auto escalated to: detect={result.backends['detect']} "
          f"repair={result.backends['repair']}; clean={result.clean}")
    assert result.relation == serial.relation


if __name__ == "__main__":
    main()
