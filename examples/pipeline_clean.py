"""The unified cleaning pipeline: one call from dirty source to clean relation.

Generates a noisy tax-records workload (the paper's Section 5 generator),
then runs ``Cleaner.clean`` — detect, repair, verify — three ways:

1. from the in-memory relation with every backend on ``auto``;
2. from a CSV file on disk (any ``RowSource`` works the same);
3. with a custom detection backend registered under a new name, showing the
   registry is genuinely pluggable.

Run with:  python examples/pipeline_clean.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    CSVSource,
    Cleaner,
    DetectionConfig,
    RepairConfig,
    detect_violations,
    register_detector,
)
from repro.core.satisfaction import find_all_violations
from repro.datagen.cfd_catalog import zip_state_cfd
from repro.datagen.generator import TaxRecordGenerator


def main() -> None:
    relation = TaxRecordGenerator(size=2_000, noise=0.05, seed=7).generate_relation()
    cfds = [zip_state_cfd()]
    print(f"Workload: {len(relation)} tax tuples, "
          f"{sum(len(cfd.tableau) for cfd in cfds)} patterns of [ZIP] -> [ST].")

    # ------------------------------------------------------------ 1. one call
    result = Cleaner().clean(relation, cfds)
    print(f"\nCleaner().clean(...): clean = {result.clean}")
    print(f"  backends picked by 'auto': {result.backends}")
    print(f"  violations per pass:       {result.pass_violation_counts}")
    print(f"  cell changes / cost:       {len(result.changes)} / {result.total_cost:.2f}")
    print("  stage timings:             "
          + ", ".join(f"{stage} {seconds * 1000:.1f}ms"
                      for stage, seconds in result.stage_seconds.items()))
    assert detect_violations(result.relation, cfds).is_clean()

    # ------------------------------------------------------ 2. from a CSV file
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tax.csv"
        relation.to_csv(path)
        cleaner = Cleaner(
            detection=DetectionConfig(method="indexed"),
            repair=RepairConfig(method="incremental"),
        )
        csv_result = cleaner.clean(CSVSource(path), cfds)
    print(f"\nSame pipeline over {csv_result.source}: clean = {csv_result.clean}")
    # CSV ingestion is string-typed, so compare the repair trail, not raw rows.
    assert csv_result.clean
    assert len(csv_result.changes) == len(result.changes)

    # ---------------------------------------------- 3. a custom backend by name
    @register_detector("oracle_with_logging")
    def logging_oracle(relation, cfds, config):
        report = find_all_violations(relation, cfds)
        print(f"  [oracle_with_logging] scanned {len(relation)} tuples, "
              f"found {len(report)} violations")
        return report

    print("\nA registered custom backend drives the same pipeline:")
    custom = Cleaner(detection=DetectionConfig(method="oracle_with_logging"))
    assert custom.clean(relation, cfds).clean
    print("Clean again - the registry makes backends pluggable end to end.")


if __name__ == "__main__":
    main()
