"""Data profiling: discover FDs and constant CFDs from (dirty) data.

The paper lists automatic CFD discovery as future work; this example shows the
workflow the discovery subpackage supports:

1. generate a tax-records relation with a little noise,
2. mine the standard FDs and the high-support constant CFDs that (nearly) hold,
3. use the discovered constraints to flag the suspicious tuples,
4. compare against the constraints the data was actually generated from.

Run with:  python examples/profile_and_discover.py
"""

from __future__ import annotations

from repro.datagen.cfd_catalog import zip_state_cfd
from repro.datagen.generator import TaxRecordGenerator
from repro.detection.engine import detect_violations
from repro.discovery.cfd_discovery import discover_constant_cfds
from repro.discovery.fd_discovery import discover_fds


def main() -> None:
    generated = TaxRecordGenerator(size=2_000, noise=0.03, seed=13).generate()
    relation = generated.relation
    clean = TaxRecordGenerator(size=2_000, noise=0.0, seed=13).generate_relation()
    profile_attributes = ["AC", "CT", "ZIP", "ST", "MR", "CH", "TX", "STX", "MTX", "CTX"]

    print("Mining standard FDs (LHS size <= 1) over a clean sample of the data ...")
    fds = discover_fds(clean, max_lhs_size=1, attributes=profile_attributes)
    for fd in fds[:12]:
        print(f"  {fd}")
    if len(fds) > 12:
        print(f"  ... and {len(fds) - 12} more")
    print()

    print("Mining constant CFDs from the dirty data (support >= 10, confidence >= 0.9) ...")
    cfds = discover_constant_cfds(
        relation,
        min_support=10,
        min_confidence=0.9,
        max_lhs_size=1,
        attributes=["CT", "ZIP", "ST", "MR", "CH", "TX"],
    )
    for cfd in cfds:
        print(f"  {cfd.name}: {cfd.embedded_fd} with {len(cfd.tableau)} constant patterns")
    print()

    # Use one discovered CFD family to flag suspicious tuples.
    city_state = [cfd for cfd in cfds if cfd.lhs == ("CT",) and cfd.rhs == ("ST",)]
    if city_state:
        report = detect_violations(relation, city_state)
        flagged = report.violating_indices()
        true_dirty = generated.dirty_indices
        print(f"Discovered CT -> ST patterns flag {len(flagged)} tuples; "
              f"{len(flagged & true_dirty)} of them are genuinely dirty "
              f"(out of {len(true_dirty)} injected errors).")

    # Compare with the ground-truth constraint the generator used.
    truth_report = detect_violations(relation, [zip_state_cfd()])
    print(f"The ground-truth ZIP -> ST constraint flags "
          f"{len(truth_report.violating_indices())} tuples.")


if __name__ == "__main__":
    main()
