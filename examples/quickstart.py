"""Quickstart: the paper's running example end to end.

Builds the ``cust`` relation of Figure 1 and the CFDs of Figure 2, detects the
violations (Example 2.2 / 4.1), prints them, and repairs the instance.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import cust_cfds, cust_relation, detect_violations, repair


def main() -> None:
    relation = cust_relation()
    cfds = cust_cfds()

    print("The cust relation (Figure 1):")
    for index, row in enumerate(relation.iter_dicts()):
        print(f"  t{index + 1}: {row}")
    print()

    print("The CFDs (Figure 2):")
    for cfd in cfds:
        print(cfd.render())
        print()

    # ------------------------------------------------------------------ detect
    report = detect_violations(relation, cfds)
    print(f"Detected {len(report)} violations over tuples "
          f"{sorted(i + 1 for i in report.violating_indices())} (t1..t6 numbering).")
    for violation in report.constant_violations():
        print(
            f"  constant violation of {violation.cfd_name}: tuple t{violation.tuple_index + 1} "
            f"has {violation.attribute} = {violation.actual!r}, pattern requires {violation.expected!r}"
        )
    for violation in report.variable_violations():
        tuples = ", ".join(f"t{i + 1}" for i in violation.tuple_indices)
        print(
            f"  multi-tuple violation of {violation.cfd_name}: tuples {tuples} agree on "
            f"{violation.attributes} = {violation.group_key} but disagree on the RHS"
        )
    print()

    # The same detection through the SQL engine (the paper's Section 4 queries).
    sql_report = detect_violations(relation, cfds, method="sql", form="dnf")
    assert sql_report.violating_indices() == report.violating_indices()
    print("The SQL detector (Section 4 queries on SQLite) flags exactly the same tuples.")
    print()

    # ------------------------------------------------------------------ repair
    result = repair(relation, cfds)
    print(f"Repair finished in {result.passes} pass(es), cost {result.total_cost:.2f}, "
          f"{len(result.changes)} cell change(s):")
    for change in result.changes:
        print(
            f"  t{change.tuple_index + 1}.{change.attribute}: "
            f"{change.old_value!r} -> {change.new_value!r}  ({change.reason})"
        )
    assert detect_violations(result.relation, cfds).is_clean()
    print("The repaired instance satisfies every CFD.")


if __name__ == "__main__":
    main()
