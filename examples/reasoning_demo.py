"""Reasoning about CFDs: consistency, the inference system, and minimal covers.

Walks through the paper's Section 3 examples:

* Example 3.1 — CFD sets can be inconsistent, and finite domains make it worse;
* Example 3.2 — a derivation in the inference system I (rules FD3, FD5, FD6),
  checked against the chase-based implication test;
* Example 3.3 — computing a minimal cover with algorithm MinCover.

Run with:  python examples/reasoning_demo.py
"""

from __future__ import annotations

from repro import CFD, implies, is_consistent, minimal_cover
from repro.reasoning.inference import Derivation, InferenceRules
from repro.relation.attribute import bool_attribute
from repro.relation.schema import Schema


def example_3_1() -> None:
    print("=== Example 3.1: consistency ===")
    psi1 = CFD.build(["A"], ["B"], [["_", "b"], ["_", "c"]], name="psi1")
    print(f"psi1 forces B to be both 'b' and 'c'; consistent? {is_consistent([psi1])}")

    bool_schema = Schema("r", [bool_attribute("A"), "B"])
    psi2 = CFD.build(["A"], ["B"], [[True, "b1"], [False, "b2"]], name="psi2")
    psi3 = CFD.build(["B"], ["A"], [["b1", False], ["b2", True]], name="psi3")
    print(f"psi2 alone consistent?            {is_consistent([psi2], schema=bool_schema)}")
    print(f"psi3 alone consistent?            {is_consistent([psi3], schema=bool_schema)}")
    print(f"psi2 and psi3 together (bool A)?  {is_consistent([psi2, psi3], schema=bool_schema)}")
    print(f"... and with an unbounded A?      {is_consistent([psi2, psi3])}")
    print()


def example_3_2() -> None:
    print("=== Example 3.2: a derivation in the inference system I ===")
    derivation = Derivation()
    psi1 = derivation.assume(CFD.build(["A"], ["B"], [["_", "b"]]), note="psi1")
    psi2 = derivation.assume(CFD.build(["B"], ["C"], [["_", "c"]]), note="psi2")
    step3 = derivation.apply("FD3", InferenceRules.fd3([psi1], psi2), [psi1, psi2])
    step4 = derivation.apply("FD5", InferenceRules.fd5(step3, "A", "a"), [step3])
    derivation.apply("FD6", InferenceRules.fd6(step4), [step4])
    print(derivation.render())
    phi = CFD.build(["A"], ["C"], [["a", "_"]])
    print(f"\nConclusion equals phi = (A -> C, (a, _)): {derivation.conclusion == phi}")
    print(f"Chase-based check - {{psi1, psi2}} |= phi:  {implies([psi1, psi2], phi)}")
    print()


def example_3_3() -> None:
    print("=== Example 3.3: minimal cover ===")
    psi1 = CFD.build(["A"], ["B"], [["_", "b"]], name="psi1")
    psi2 = CFD.build(["B"], ["C"], [["_", "c"]], name="psi2")
    phi = CFD.build(["A"], ["C"], [["a", "_"]], name="phi")
    cover = minimal_cover([psi1, psi2, phi])
    print(f"Input: psi1, psi2, phi  ->  cover of {len(cover)} CFDs:")
    for cfd in cover:
        print("  " + cfd.render().replace("\n", "\n  "))
    print()


if __name__ == "__main__":
    example_3_1()
    example_3_2()
    example_3_3()
