"""Tax-record auditing: the paper's Section 5 scenario as an application.

Generates a synthetic tax-records relation (the workload of the experimental
study), expresses the real-world constraints of Section 5 as CFDs (zip codes
determine states, exemptions are a function of state and status, no-income-tax
states have rate zero), then:

1. detects violations with the SQL engine, comparing the per-CFD and merged
   strategies and the CNF vs DNF query formulations,
2. cross-checks the SQL results against the pure-Python oracle,
3. repairs the relation and verifies the repair.

Run with:  python examples/tax_audit.py [size] [noise]
"""

from __future__ import annotations

import sys

from repro.datagen.cfd_catalog import (
    exemption_cfd,
    no_tax_state_cfd,
    zip_city_state_cfd,
    zip_state_cfd,
)
from repro.datagen.generator import TaxRecordGenerator
from repro.detection.engine import cross_check
from repro.repair.heuristic import repair
from repro.sql.engine import SQLDetector


def main(size: int = 5_000, noise: float = 0.05) -> None:
    print(f"Generating {size} tax records with {noise:.0%} noise ...")
    generated = TaxRecordGenerator(size=size, noise=noise, seed=7).generate()
    relation = generated.relation
    cfds = [zip_state_cfd(), zip_city_state_cfd(), exemption_cfd(), no_tax_state_cfd()]
    print(f"Checking {len(cfds)} CFDs "
          f"({sum(len(cfd.tableau) for cfd in cfds)} pattern tuples in total).\n")

    # ------------------------------------------------------------------ detect
    with SQLDetector(relation) as detector:
        for strategy, form in (("per_cfd", "cnf"), ("per_cfd", "dnf"), ("merged", "cnf")):
            run = detector.detect(cfds, strategy=strategy, form=form,
                                  expand_variable_violations=False)
            label = f"{strategy:8s} / {form}"
            print(f"  {label}: {run.total_seconds:6.3f}s, "
                  f"{len(run.report)} violations "
                  f"(Q^C {run.seconds_for('qc'):.3f}s, Q^V {run.seconds_for('qv'):.3f}s)")
    print()

    # ------------------------------------------------------------------ verify
    check = cross_check(relation, cfds, form="dnf")
    print(f"SQL and in-memory detectors agree: {check.agree} "
          f"({len(check.sql_indices)} violating tuples).")
    injected = generated.dirty_indices
    found = check.sql_indices & injected
    print(f"Injected dirty tuples: {len(injected)}; flagged by these CFDs: {len(found)} "
          f"({len(found) / max(1, len(injected)):.0%}).\n")

    # ------------------------------------------------------------------ repair
    print("Repairing with the cost-based heuristic ...")
    result = repair(relation, [zip_state_cfd(), no_tax_state_cfd()])
    print(f"  {len(result.changes)} cell changes, total cost {result.total_cost:.1f}, "
          f"clean = {result.clean}")
    by_attribute: dict = {}
    for change in result.changes:
        by_attribute[change.attribute] = by_attribute.get(change.attribute, 0) + 1
    for attribute, count in sorted(by_attribute.items()):
        print(f"    {attribute}: {count} change(s)")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    noise = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05
    main(size, noise)
