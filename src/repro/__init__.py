"""repro — a reproduction of *Conditional Functional Dependencies for Data Cleaning*.

The package implements the CFD formalism of Bohannon, Fan, Geerts, Jia and
Kementsietsidis (ICDE 2007) together with every substrate the paper's
evaluation depends on:

* ``repro.relation`` — an in-memory relational substrate (schemas, typed
  attributes with optional finite domains, relations, CSV I/O).
* ``repro.core`` — pattern tableaux, CFDs, the match/order relations and
  in-memory satisfaction checking.
* ``repro.reasoning`` — consistency, implication (inference rules FD1–FD8),
  and minimal covers.
* ``repro.sql`` — SQL generation for violation detection (single CFD and
  merged multi-CFD schemes) plus a SQLite execution engine.
* ``repro.detection`` — a single façade over the in-memory, SQL and
  partition-indexed detectors, plus three-way cross-checking.
* ``repro.repair`` — cost-based heuristic repair (the paper's Section 6).
* ``repro.discovery`` — FD / constant-CFD discovery (the paper's future work).
* ``repro.datagen`` — the ``cust`` running example and the tax-records
  generator used in the experimental study.
* ``repro.bench`` — the experiment harness that regenerates Figure 9.

Quickstart
----------
>>> from repro import cust_relation, cust_cfds, detect_violations
>>> report = detect_violations(cust_relation(), cust_cfds())
>>> sorted(report.violating_indices())
[0, 1, 2, 3]
"""

from repro.core.cfd import CFD, FD
from repro.core.pattern import DONTCARE, WILDCARD, PatternValue
from repro.core.tableau import PatternTableau, PatternTuple
from repro.core.violations import (
    ConstantViolation,
    VariableViolation,
    Violation,
    ViolationReport,
)
from repro.datagen.cust import cust_cfds, cust_relation
from repro.detection.engine import cross_check, detect_violations
from repro.detection.indexed import IndexedDetector
from repro.reasoning.consistency import is_consistent
from repro.reasoning.implication import implies
from repro.reasoning.mincover import minimal_cover
from repro.relation.attribute import Attribute
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.repair.heuristic import repair
from repro.sql.engine import SQLDetector

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "CFD",
    "ConstantViolation",
    "DONTCARE",
    "FD",
    "IndexedDetector",
    "PatternTableau",
    "PatternTuple",
    "PatternValue",
    "Relation",
    "Schema",
    "SQLDetector",
    "VariableViolation",
    "Violation",
    "ViolationReport",
    "WILDCARD",
    "cross_check",
    "cust_cfds",
    "cust_relation",
    "detect_violations",
    "implies",
    "is_consistent",
    "minimal_cover",
    "repair",
    "__version__",
]
