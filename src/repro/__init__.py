"""repro — a reproduction of *Conditional Functional Dependencies for Data Cleaning*.

The package implements the CFD formalism of Bohannon, Fan, Geerts, Jia and
Kementsietsidis (ICDE 2007) together with every substrate the paper's
evaluation depends on:

* ``repro.relation`` — an in-memory relational substrate (schemas, typed
  attributes with optional finite domains, relations, CSV I/O), with a
  dictionary-encoded columnar storage core (``ColumnStore``) and a
  memory-mapped out-of-core variant (``MmapColumnStore``) behind the
  same API.
* ``repro.core`` — pattern tableaux, CFDs, the match/order relations and
  in-memory satisfaction checking.
* ``repro.reasoning`` — consistency, implication (inference rules FD1–FD8),
  and minimal covers.
* ``repro.sql`` — SQL generation for violation detection (single CFD and
  merged multi-CFD schemes) plus a SQLite execution engine.
* ``repro.detection`` — a single façade over the in-memory, SQL and
  partition-indexed detectors, plus three-way cross-checking.
* ``repro.repair`` — cost-based heuristic repair (the paper's Section 6).
* ``repro.parallel`` — sharded parallel detection/repair over a process
  pool (``method="parallel"``), splitting the relation by LHS
  equivalence classes so no violation spans two shards.
* ``repro.pipeline`` — the ``Cleaner`` facade running the full
  detect → repair → verify loop over any row source.
* ``repro.registry`` — named, pluggable detection/repair backends
  (``@register_detector`` / ``@register_repairer``, ``method="auto"``).
* ``repro.discovery`` — FD / constant-CFD discovery (the paper's future work).
* ``repro.datagen`` — the ``cust`` running example and the tax-records
  generator used in the experimental study.
* ``repro.bench`` — the experiment harness that regenerates Figure 9.

Quickstart
----------
>>> from repro import Cleaner, cust_relation, cust_cfds, detect_violations
>>> report = detect_violations(cust_relation(), cust_cfds())
>>> sorted(report.violating_indices())
[0, 1, 2, 3]
>>> Cleaner().clean(cust_relation(), cust_cfds()).clean
True
"""

from repro.analysis import AnalysisReport, AnalysisWarning, Diagnostic, analyze
from repro.config import DetectionConfig, RepairConfig
from repro.core.cfd import CFD, FD
from repro.core.pattern import DONTCARE, WILDCARD, PatternValue
from repro.core.tableau import PatternTableau, PatternTuple
from repro.core.violations import (
    ConstantViolation,
    VariableViolation,
    Violation,
    ViolationReport,
)
from repro.datagen.cust import cust_cfds, cust_relation
from repro.detection.engine import cross_check, detect_violations
from repro.detection.indexed import IndexedDetector
from repro.io.sources import (
    CSVSource,
    IterableSource,
    RelationSource,
    RowSource,
    SQLiteSource,
    as_source,
)
from repro.kernels import kernel_names, numpy_available, use_kernel
from repro.parallel.engine import find_violations_parallel
from repro.pipeline import Cleaner, CleaningResult, clean
from repro.reasoning.consistency import is_consistent
from repro.reasoning.implication import implies
from repro.reasoning.mincover import minimal_cover
from repro.registry import (
    register_analysis_check,
    register_detector,
    register_repairer,
    select_detection_method,
    select_repair_method,
)
from repro.relation.attribute import Attribute
from repro.relation.columnar import ColumnStore
from repro.relation.mmap_store import MmapColumnStore, spill_run
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.repair.heuristic import repair
from repro.sql.engine import SQLDetector

__version__ = "1.5.0"

__all__ = [
    "AnalysisReport",
    "AnalysisWarning",
    "Attribute",
    "CFD",
    "Cleaner",
    "CleaningResult",
    "ColumnStore",
    "ConstantViolation",
    "CSVSource",
    "DetectionConfig",
    "Diagnostic",
    "DONTCARE",
    "FD",
    "IndexedDetector",
    "IterableSource",
    "MmapColumnStore",
    "PatternTableau",
    "PatternTuple",
    "PatternValue",
    "Relation",
    "RelationSource",
    "RepairConfig",
    "RowSource",
    "Schema",
    "SQLDetector",
    "SQLiteSource",
    "VariableViolation",
    "Violation",
    "ViolationReport",
    "WILDCARD",
    "analyze",
    "as_source",
    "clean",
    "cross_check",
    "cust_cfds",
    "cust_relation",
    "detect_violations",
    "find_violations_parallel",
    "implies",
    "is_consistent",
    "kernel_names",
    "minimal_cover",
    "numpy_available",
    "register_analysis_check",
    "register_detector",
    "register_repairer",
    "repair",
    "select_detection_method",
    "select_repair_method",
    "spill_run",
    "use_kernel",
    "__version__",
]
