"""Pre-flight static analysis of CFD rule sets.

The paper's reasoning results — consistency (Section 3.1), implication
(Section 3.2) and minimal covers (Section 3.3) — answer questions about a
rule set *before* any data is touched.  This package turns them, plus a
family of structural and engine-specific hazard checks, into a linter:

>>> from repro.analysis import analyze
>>> from repro.core.cfd import CFD
>>> report = analyze([CFD.build(["A"], ["B"], [["_", "b"]], name="p1"),
...                   CFD.build(["A"], ["B"], [["_", "c"]], name="p2")])
>>> report.has_errors
True
>>> report.by_code("CFD001")[0].witness["conflicting_cfds"]
['p1', 'p2']

Three front doors share it: the ``repro lint`` CLI subcommand, the
``repro check`` consistency shortcut, and the
:class:`repro.pipeline.Cleaner` pre-flight gate
(``DetectionConfig(analysis="strict"|"warn"|"off")``).  Checks live in a
registry (:func:`repro.registry.register_analysis_check`) so backends can
ship their own hazard analyses; the built-ins and the diagnostic code
table are documented in ``docs/analysis.md``.
"""

from repro.analysis.checks import AnalysisContext
from repro.analysis.diagnostics import (
    SEVERITIES,
    AnalysisReport,
    AnalysisWarning,
    Diagnostic,
    sort_diagnostics,
)
from repro.analysis.engine import analyze, require_clean

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "AnalysisWarning",
    "Diagnostic",
    "SEVERITIES",
    "analyze",
    "require_clean",
    "sort_diagnostics",
]
