"""The built-in analysis checks (diagnostic codes CFD001–CFD102).

Each check is a callable ``check(ctx) -> Iterable[Diagnostic]`` registered
under a name via :func:`repro.registry.register_analysis_check` — the same
side-effect-on-import pattern the detection and repair backends use, so
future backends can ship their own hazard checks alongside their engines.

Codes group by family:

* ``CFD00x`` — properties of the rule set itself: consistency (the paper's
  Section 3.1), implication-based redundancy (Sections 3.2–3.3), and
  structural lint (names, normal form, schema conformance, duplicate
  patterns);
* ``CFD10x`` — engine-specific hazards: shapes that are *correct* but
  degrade a particular backend, today the sharded parallel engine.

The implication-based checks (CFD002/CFD003) are *deep*: they run the chase
once per normalised CFD (and once per LHS attribute), which is fine for
lint-time but not for a pre-flight gate in front of every cleaning run —
the pipeline gate passes ``deep=False``.  Deep checks are also *gated on
consistency*: implication from an inconsistent premise is vacuously true
(anything follows from a contradiction), so redundancy findings would be
meaningless noise once CFD001 fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.config import PARALLEL, DetectionConfig, RepairConfig
from repro.core.cfd import CFD
from repro.core.tableau import PatternTuple
from repro.detection.indexed import lhs_free_attributes
from repro.reasoning.consistency import is_consistent
from repro.reasoning.implication import implies
from repro.reasoning.mincover import _drop_lhs_attribute
from repro.registry import register_analysis_check
from repro.relation.schema import Schema

#: Normalised-CFD count above which the deep implication checks are skipped
#: (CFD009).  The chase behind :func:`~repro.reasoning.implication.implies`
#: is quadratic in the rule set, and the deep pass calls it once per part
#: plus once per (part, LHS attribute) — past this size lint latency would
#: dominate; ``repro lint`` still runs every structural check.
DEEP_CHECK_LIMIT = 200

#: Normalised-CFD count above which the CFD001 witness reports the whole
#: rule set instead of greedily shrinking it to a minimal conflicting core
#: (each shrink step is a full consistency test).
CORE_SHRINK_LIMIT = 60


@dataclass
class AnalysisContext:
    """Everything a check may inspect, computed once per :func:`analyze` run.

    ``normalized`` carries provenance: each entry is ``(part, origin)`` where
    ``origin`` is the *user-facing* name of the CFD the normal-form part came
    from, so diagnostics locate findings in the rule set the user wrote, not
    in the derived ``<name>_r<row>_<attr>`` parts.
    """

    cfds: List[CFD]
    normalized: List[Tuple[CFD, str]]
    schema: Optional[Schema] = None
    detection: Optional[DetectionConfig] = None
    repair: Optional[RepairConfig] = None
    deep: bool = False
    _consistent: Optional[bool] = field(default=None, repr=False)

    @classmethod
    def build(
        cls,
        cfds: Sequence[CFD],
        schema: Optional[Schema] = None,
        detection: Optional[DetectionConfig] = None,
        repair: Optional[RepairConfig] = None,
        deep: bool = False,
    ) -> AnalysisContext:
        normalized = [
            (part, cfd.name) for cfd in cfds for part in cfd.normalize()
        ]
        return cls(
            cfds=list(cfds),
            normalized=normalized,
            schema=schema,
            detection=detection,
            repair=repair,
            deep=deep,
        )

    @property
    def parts(self) -> List[CFD]:
        """The normal-form parts without provenance."""
        return [part for part, _ in self.normalized]

    @property
    def consistent(self) -> bool:
        """Whether the rule set is consistent — computed once, shared by checks."""
        if self._consistent is None:
            self._consistent = is_consistent(self.parts, self.schema)
        return self._consistent

    @property
    def parallel_requested(self) -> bool:
        """Whether either config explicitly asks for the sharded engine."""
        return bool(
            (self.detection is not None and self.detection.method == PARALLEL)
            or (self.repair is not None and self.repair.method == PARALLEL)
        )

    def hazard_severity(self) -> str:
        """CFD10x findings block nothing, but they are louder when the user
        explicitly asked for ``method="parallel"`` than when ``"auto"`` might
        merely pick it."""
        return "warning" if self.parallel_requested else "info"


# ---------------------------------------------------------------------------
# CFD001 — consistency
# ---------------------------------------------------------------------------
def _inconsistency_core(ctx: AnalysisContext) -> List[Tuple[CFD, str]]:
    """A (greedily minimised) inconsistent subset of the normalised parts.

    Follows the classic delta-debugging shrink: drop a part, and if the rest
    is still inconsistent the part was not needed for the conflict.  The
    result is a *minimal* core (every member necessary), which is the most
    useful witness a user can get — typically two or three patterns whose
    constants clash, out of a rule set of hundreds.
    """
    core = list(ctx.normalized)
    if len(core) > CORE_SHRINK_LIMIT:
        return core
    index = 0
    while index < len(core):
        candidate = core[:index] + core[index + 1 :]
        if candidate and not is_consistent([p for p, _ in candidate], ctx.schema):
            core = candidate
        else:
            index += 1
    return core


@register_analysis_check("consistency")
def check_consistency(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """CFD001: the rule set admits no nonempty satisfying instance."""
    if ctx.consistent:
        return
    core = _inconsistency_core(ctx)
    origins = sorted({origin for _, origin in core})
    yield Diagnostic(
        code="CFD001",
        severity="error",
        message=(
            "rule set is inconsistent: no nonempty instance can satisfy it "
            f"(conflicting core: {', '.join(origins)})"
        ),
        check="consistency",
        cfd=origins[0] if len(origins) == 1 else None,
        hint="remove or relax one of the conflicting CFDs; "
        "every tuple matching their patterns would violate one of them",
        witness={
            "conflicting_cfds": origins,
            "core": [str(part.embedded_fd) + " | " + part.tableau.render().splitlines()[-1]
                     for part, _ in core],
            "core_size": len(core),
        },
    )


# ---------------------------------------------------------------------------
# CFD002 / CFD003 / CFD009 — implication-based redundancy (deep)
# ---------------------------------------------------------------------------
@register_analysis_check("redundancy")
def check_redundancy(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """CFD002 (redundant CFD), CFD003 (redundant LHS attribute), CFD009 (skipped).

    Mirrors the two reduction phases of MinCover (Figure 4 of the paper)
    but *reports* instead of rewriting; ``analyze(optimize=True)`` does the
    rewrite via :func:`~repro.reasoning.mincover.minimal_cover`.
    """
    if not ctx.deep or not ctx.normalized:
        return
    if not ctx.consistent:
        # Implication from an inconsistent Σ is vacuously true; CFD001
        # already tells the real story.
        return
    if len(ctx.normalized) > DEEP_CHECK_LIMIT:
        yield Diagnostic(
            code="CFD009",
            severity="info",
            message=(
                f"deep implication checks skipped: {len(ctx.normalized)} "
                f"normalised CFDs exceed the limit of {DEEP_CHECK_LIMIT}"
            ),
            check="redundancy",
            hint="run `repro lint --optimize` offline to compute the minimal cover",
        )
        return

    parts = ctx.parts
    reported_redundant: Set[str] = set()
    for index, (part, origin) in enumerate(ctx.normalized):
        rest = parts[:index] + parts[index + 1 :]
        if rest and implies(rest, part, ctx.schema):
            if origin not in reported_redundant:
                reported_redundant.add(origin)
                yield Diagnostic(
                    code="CFD002",
                    severity="warning",
                    message=(
                        f"pattern {part.name} is implied by the rest of the "
                        "rule set (redundant)"
                    ),
                    check="redundancy",
                    cfd=origin,
                    hint="drop it, or rewrite the rule set to its minimal "
                    "cover with `repro lint --optimize`",
                )
            continue
        for attribute in part.lhs:
            reduced = _drop_lhs_attribute(part, attribute)
            if implies(parts, reduced, ctx.schema):
                yield Diagnostic(
                    code="CFD003",
                    severity="warning",
                    message=(
                        f"LHS attribute {attribute!r} of pattern {part.name} "
                        "is redundant: the dependency holds without it"
                    ),
                    check="redundancy",
                    cfd=origin,
                    attribute=attribute,
                    hint="narrower LHSs mean fewer partition keys; "
                    "`repro lint --optimize` drops redundant attributes",
                )


# ---------------------------------------------------------------------------
# CFD004 — duplicate names
# ---------------------------------------------------------------------------
@register_analysis_check("names")
def check_names(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """CFD004: two CFDs share a name.

    Violation reports, repair audit trails and the SQL detector's generated
    table names all address CFDs *by name* — duplicates silently attribute
    one rule's violations to another.
    """
    by_name: Dict[str, int] = {}
    for cfd in ctx.cfds:
        by_name[cfd.name] = by_name.get(cfd.name, 0) + 1
    for name, count in by_name.items():
        if count > 1:
            yield Diagnostic(
                code="CFD004",
                severity="error",
                message=f"{count} CFDs share the name {name!r}",
                check="names",
                cfd=name,
                hint="give each CFD a distinct name=...; reports and repairs "
                "address CFDs by name",
                witness={"name": name, "count": count},
            )


# ---------------------------------------------------------------------------
# CFD005 — non-normal-form CFDs
# ---------------------------------------------------------------------------
@register_analysis_check("normal-form")
def check_normal_form(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """CFD005: a CFD with several RHS attributes or pattern rows."""
    for cfd in ctx.cfds:
        if cfd.is_normal_form():
            continue
        yield Diagnostic(
            code="CFD005",
            severity="info",
            message=(
                f"CFD {cfd.name} is not in normal form "
                f"({len(cfd.rhs)} RHS attribute(s), {len(cfd.tableau)} "
                "pattern row(s)); reasoning normalises it internally"
            ),
            check="normal-form",
            cfd=cfd.name,
            hint="CFD.normalize() splits it into equivalent "
            "single-RHS, single-pattern parts",
        )


# ---------------------------------------------------------------------------
# CFD006 / CFD007 — schema conformance
# ---------------------------------------------------------------------------
def _pattern_cells(cfd: CFD, row: PatternTuple):
    for attribute in cfd.lhs:
        yield attribute, row.lhs_cell(attribute)
    for attribute in cfd.rhs:
        yield attribute, row.rhs_cell(attribute)


@register_analysis_check("schema")
def check_schema(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """CFD006 (constant outside a finite domain), CFD007 (unknown attribute).

    Both need a schema; without one the checks are silent.  A constant no
    tuple can ever carry makes its pattern dead weight at best — and, under
    repair, a value the engine may try to *write*, which the relation's own
    domain validation would then reject mid-run.
    """
    schema = ctx.schema
    if schema is None:
        return
    for cfd in ctx.cfds:
        missing = [attr for attr in cfd.attributes if attr not in schema]
        for attribute in missing:
            yield Diagnostic(
                code="CFD007",
                severity="error",
                message=(
                    f"CFD {cfd.name} mentions attribute {attribute!r} which "
                    f"is not in schema {schema.name!r}"
                ),
                check="schema",
                cfd=cfd.name,
                attribute=attribute,
                witness={"attribute": attribute, "schema": list(schema.names)},
            )
        if missing:
            continue
        for row in cfd.tableau:
            for attribute, cell in _pattern_cells(cfd, row):
                if not cell.is_constant:
                    continue
                declared = schema[attribute]
                if not declared.has_finite_domain:
                    continue
                domain = declared.domain
                assert domain is not None
                if cell.value not in domain:
                    yield Diagnostic(
                        code="CFD006",
                        severity="error",
                        message=(
                            f"constant {cell.value!r} for {attribute!r} in "
                            f"CFD {cfd.name} is outside the attribute's "
                            "finite domain"
                        ),
                        check="schema",
                        cfd=cfd.name,
                        attribute=attribute,
                        hint="no tuple can match (LHS) or satisfy (RHS) this "
                        "pattern; fix the constant or widen the domain",
                        witness={
                            "value": cell.value,
                            "domain": sorted(domain, key=repr),
                        },
                    )


# ---------------------------------------------------------------------------
# CFD008 — duplicate pattern rows
# ---------------------------------------------------------------------------
@register_analysis_check("patterns")
def check_patterns(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """CFD008: identical pattern rows within one tableau.

    Detection and repair cost scales with pattern count, and every duplicate
    row re-checks exactly the same partitions — a structural (non-chase)
    redundancy the linter catches even with deep checks off.
    """
    for cfd in ctx.cfds:
        counts: Dict[object, int] = {}
        first: Dict[object, PatternTuple] = {}
        for row in cfd.tableau:
            key = row.key()
            counts[key] = counts.get(key, 0) + 1
            first.setdefault(key, row)
        for key, count in counts.items():
            if count > 1:
                yield Diagnostic(
                    code="CFD008",
                    severity="warning",
                    message=(
                        f"pattern row {first[key]!r} appears {count} times in "
                        f"CFD {cfd.name}"
                    ),
                    check="patterns",
                    cfd=cfd.name,
                    hint="duplicate rows multiply detection work for no "
                    "effect; keep one copy",
                    witness={"pattern": repr(first[key]), "count": count},
                )


# ---------------------------------------------------------------------------
# CFD101 / CFD102 — parallel-engine hazards
# ---------------------------------------------------------------------------
@register_analysis_check("parallel-hazards")
def check_parallel_hazards(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """CFD101 (cross-shard reconcile forced), CFD102 (single-shard degenerate).

    Mirrors the sharded engine's own predicates — the overlap test of
    ``repro.parallel.repairer._repairs_may_cross_shards`` and the
    empty-grouping degenerate case of ``repro.parallel.sharding.components``
    — so the linter can never drift from what the engine actually does.
    """
    severity = ctx.hazard_severity()

    grouping: Set[str] = set()
    written: Set[str] = set()
    degenerate: List[Tuple[str, int]] = []
    for cfd in ctx.cfds:
        for row_index, pattern in enumerate(cfd.tableau):
            free = lhs_free_attributes(cfd, pattern)
            grouping.update(free)
            written.update(
                attr for attr in cfd.rhs if not pattern.rhs_cell(attr).is_dontcare
            )
            if not free:
                degenerate.append((cfd.name, row_index))

    overlap = sorted(grouping & written)
    if overlap:
        yield Diagnostic(
            code="CFD101",
            severity=severity,
            message=(
                "RHS attribute(s) "
                + ", ".join(map(repr, overlap))
                + " are also grouping (LHS) attributes: repairs can move "
                "tuples between shards, forcing the parallel engine's "
                "serial cross-shard reconcile pass"
            ),
            check="parallel-hazards",
            hint="expect a serial reconcile after the parallel passes; "
            "see docs/parallel.md",
            witness={"overlap": overlap},
        )
    for name, row_index in degenerate:
        yield Diagnostic(
            code="CFD102",
            severity=severity,
            message=(
                f"pattern row {row_index} of CFD {name} has no @-free LHS "
                "attribute: it groups every tuple together, so "
                'method="parallel" degenerates to a single shard'
            ),
            check="parallel-hazards",
            cfd=name,
            hint="such a rule serialises the sharded engine; prefer "
            'method="indexed"/"incremental" for this rule set',
            witness={"pattern_row": row_index},
        )
