"""Diagnostics: the structured findings of the pre-flight CFD analysis.

The paper's static analyses (consistency, Section 3.1; implication and
minimal covers, Sections 3.2–3.3) answer yes/no questions about a CFD set.
A *linter* needs more than a boolean: every finding is a :class:`Diagnostic`
with a stable code (``CFD001``, ...), a severity, a location (the CFD and,
where it applies, the attribute), a fix hint, and — where one exists — a
concrete witness such as the conflicting core of an inconsistent rule set.
:class:`AnalysisReport` collects them with JSON and plain-text renderings,
and is what :func:`repro.analysis.analyze`, the ``repro lint`` subcommand
and the :class:`repro.pipeline.Cleaner` pre-flight gate all share.

Diagnostic codes are a contract: tools may match on them (the CI smoke step
greps for ``CFD001``), so codes are never renumbered — new checks take new
codes.  The full table lives in ``docs/analysis.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Diagnostic severities, from blocking to informational.  ``"error"``
#: findings make ``analysis="strict"`` refuse to clean and ``repro lint``
#: exit non-zero; ``"warning"`` findings are surfaced but never block;
#: ``"info"`` findings are printed by the linter only.
SEVERITIES = ("error", "warning", "info")

_SEVERITY_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}


class AnalysisWarning(UserWarning):
    """Python warning category used by the ``analysis="warn"`` pipeline gate."""


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analysis.

    Parameters
    ----------
    code:
        Stable identifier (``CFD001`` ... ``CFD102``).  Codes are part of the
        public contract — match on them, not on messages.
    severity:
        ``"error"``, ``"warning"`` or ``"info"`` (see :data:`SEVERITIES`).
    message:
        One-line human description of the finding.
    check:
        Name of the registered check that produced it (see
        :func:`repro.registry.register_analysis_check`).
    cfd:
        Name of the CFD the finding is located in, when it is about one CFD.
    attribute:
        Attribute the finding is located at, when it is about one attribute.
    hint:
        A suggested fix, rendered after the message.
    witness:
        A JSON-friendly counterexample payload — e.g. the conflicting core
        of an inconsistent rule set, in the spirit of the counterexample
        witnesses of IC3-style property checking.
    """

    code: str
    severity: str
    message: str
    check: str = ""
    cfd: Optional[str] = None
    attribute: Optional[str] = None
    hint: Optional[str] = None
    witness: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown diagnostic severity {self.severity!r}; expected one of "
                f"{', '.join(map(repr, SEVERITIES))}"
            )

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def sort_key(self) -> Tuple[int, str, str, str, str]:
        """Canonical report order: severity first, then code, then location."""
        return (
            _SEVERITY_RANK[self.severity],
            self.code,
            self.cfd or "",
            self.attribute or "",
            self.message,
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly rendering (``repro lint --json`` emits a list of these)."""
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "check": self.check,
        }
        if self.cfd is not None:
            payload["cfd"] = self.cfd
        if self.attribute is not None:
            payload["attribute"] = self.attribute
        if self.hint is not None:
            payload["hint"] = self.hint
        if self.witness is not None:
            payload["witness"] = self.witness
        return payload

    def render(self) -> str:
        """One text line: ``CFD004 error [phi1]: message (hint: ...)``."""
        location = ""
        if self.cfd is not None and self.attribute is not None:
            location = f" [{self.cfd}.{self.attribute}]"
        elif self.cfd is not None:
            location = f" [{self.cfd}]"
        elif self.attribute is not None:
            location = f" [{self.attribute}]"
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.code} {self.severity}{location}: {self.message}{hint}"


@dataclass
class AnalysisReport:
    """Every diagnostic one :func:`repro.analysis.analyze` run produced."""

    #: The findings, in canonical order (errors first, then by code/location).
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Names of the checks that ran (sorted; the registry order).
    checks_run: Tuple[str, ...] = ()
    #: Whether the implication-based deep checks (CFD002/CFD003) were enabled.
    deep: bool = False
    #: The minimal cover, when ``optimize=True`` was requested and the rule
    #: set is consistent; ``None`` otherwise.  Typed loosely to keep this
    #: module free of core imports.
    optimized: Optional[List[Any]] = None
    #: Wall-clock seconds the analysis took.
    seconds: float = 0.0

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        """Truthiness follows :class:`~repro.core.violations.ViolationReport`:
        a report is truthy when it found *something*."""
        return bool(self.diagnostics)

    # ------------------------------------------------------------------ views
    def errors(self) -> List[Diagnostic]:
        return [diag for diag in self.diagnostics if diag.severity == "error"]

    def warnings(self) -> List[Diagnostic]:
        return [diag for diag in self.diagnostics if diag.severity == "warning"]

    def infos(self) -> List[Diagnostic]:
        return [diag for diag in self.diagnostics if diag.severity == "info"]

    @property
    def has_errors(self) -> bool:
        """Whether any finding is blocking (what ``analysis="strict"`` gates on)."""
        return any(diag.is_error for diag in self.diagnostics)

    @property
    def ok(self) -> bool:
        """No blocking findings (warnings and infos are allowed)."""
        return not self.has_errors

    def codes(self) -> Tuple[str, ...]:
        """The distinct diagnostic codes present, sorted."""
        return tuple(sorted({diag.code for diag in self.diagnostics}))

    def by_code(self, code: str) -> List[Diagnostic]:
        return [diag for diag in self.diagnostics if diag.code == code]

    # ------------------------------------------------------------------ output
    def summary(self) -> Dict[str, Any]:
        return {
            "diagnostics": len(self.diagnostics),
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "infos": len(self.infos()),
            "codes": list(self.codes()),
            "deep": self.deep,
            "checks_run": list(self.checks_run),
            "seconds": round(self.seconds, 6),
        }

    def to_dict(self) -> Dict[str, Any]:
        """The full JSON payload of ``repro lint --json``."""
        payload: Dict[str, Any] = {
            "summary": self.summary(),
            "diagnostics": [diag.to_dict() for diag in self.diagnostics],
        }
        if self.optimized is not None:
            payload["optimized_patterns"] = sum(
                len(cfd.tableau) for cfd in self.optimized
            )
            payload["optimized_cfds"] = len(self.optimized)
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render(self) -> str:
        """The plain-text report ``repro lint`` prints."""
        lines = [diag.render() for diag in self.diagnostics]
        counts = self.summary()
        lines.append(
            f"{counts['errors']} error(s), {counts['warnings']} warning(s), "
            f"{counts['infos']} info(s) from {len(self.checks_run)} check(s)"
            + ("" if self.deep else " (deep implication checks skipped)")
        )
        return "\n".join(lines)


def sort_diagnostics(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """Diagnostics in canonical report order (stable across runs)."""
    return sorted(diagnostics, key=Diagnostic.sort_key)
