"""The analysis driver: run every registered check over a rule set.

:func:`analyze` is the one entry point behind the three front doors —
``repro lint``, ``repro check`` and the :class:`repro.pipeline.Cleaner`
pre-flight gate — so a rule set can never lint clean on the command line
and then trip the pipeline (or vice versa).
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

from repro.analysis.checks import AnalysisContext
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, sort_diagnostics
from repro.config import DetectionConfig, RepairConfig
from repro.core.cfd import CFD
from repro.errors import AnalysisError
from repro.reasoning.mincover import minimal_cover
from repro.registry import analysis_check_names, get_analysis_check
from repro.relation.schema import Schema


def analyze(
    cfds: Sequence[CFD],
    schema: Optional[Schema] = None,
    *,
    detection: Optional[DetectionConfig] = None,
    repair: Optional[RepairConfig] = None,
    deep: bool = True,
    optimize: bool = False,
    checks: Optional[Iterable[str]] = None,
) -> AnalysisReport:
    """Statically analyse a rule set and return the :class:`AnalysisReport`.

    Parameters
    ----------
    cfds:
        The rule set to analyse (any form; normalisation happens internally).
    schema:
        Optional schema enabling the conformance checks (CFD006/CFD007) and
        finite-domain-aware consistency.
    detection, repair:
        Optional engine configs; hazard checks read them to judge severity
        (an engine-specific hazard is a warning when that engine was
        explicitly requested, an info otherwise).
    deep:
        Run the implication-based redundancy checks (CFD002/CFD003).  They
        chase once per normalised CFD — lint-time cost, so the pipeline gate
        passes ``deep=False``.
    optimize:
        Also compute the minimal cover (Figure 4 of the paper) and attach it
        as :attr:`AnalysisReport.optimized`.  Skipped (left ``None``) when
        the rule set is inconsistent — an inconsistent set has no cover.
    checks:
        Names of the checks to run (default: every registered one, sorted).
        Unknown names raise :class:`~repro.errors.RegistryError`.

    >>> from repro.core.cfd import CFD
    >>> clash = [CFD.build(["A"], ["B"], [["_", "b"]], name="p1"),
    ...          CFD.build(["A"], ["B"], [["_", "c"]], name="p2")]
    >>> analyze(clash).by_code("CFD001")[0].severity
    'error'
    """
    start = time.perf_counter()
    names = tuple(checks) if checks is not None else analysis_check_names()
    ctx = AnalysisContext.build(
        cfds, schema=schema, detection=detection, repair=repair, deep=deep
    )
    diagnostics: List[Diagnostic] = []
    for name in names:
        diagnostics.extend(get_analysis_check(name)(ctx))
    report = AnalysisReport(
        diagnostics=sort_diagnostics(diagnostics),
        checks_run=names,
        deep=deep,
    )
    if optimize and ctx.consistent:
        report.optimized = minimal_cover(list(cfds), schema)
    report.seconds = time.perf_counter() - start
    return report


def require_clean(report: AnalysisReport) -> None:
    """Raise :class:`~repro.errors.AnalysisError` when the report has errors.

    The ``analysis="strict"`` half of the pipeline gate, shared with any
    caller that wants refuse-on-error semantics.
    """
    if report.has_errors:
        first = report.errors()[0]
        raise AnalysisError(
            f"static analysis found {len(report.errors())} error(s) in the "
            f"rule set; first: {first.render()}",
            report=report,
        )
