"""The experiment harness that regenerates the paper's Figure 9 series."""

from repro.bench.config import BenchConfig, default_config
from repro.bench.experiments import (
    fig9a_cnf_vs_dnf_constants,
    fig9b_cnf_vs_dnf_mixed,
    fig9c_qc_vs_qv,
    fig9d_tabsz_scaling,
    fig9e_numconsts_scaling,
    fig9f_noise_scaling,
    merged_vs_separate,
)
from repro.bench.harness import DetectionWorkload, time_detection
from repro.bench.reporting import format_table

__all__ = [
    "BenchConfig",
    "DetectionWorkload",
    "default_config",
    "fig9a_cnf_vs_dnf_constants",
    "fig9b_cnf_vs_dnf_mixed",
    "fig9c_qc_vs_qv",
    "fig9d_tabsz_scaling",
    "fig9e_numconsts_scaling",
    "fig9f_noise_scaling",
    "format_table",
    "merged_vs_separate",
    "time_detection",
]
