"""Command-line entry point: ``python -m repro.bench [experiment ...]``.

Runs the requested experiment drivers (default: all of them) and prints the
series each figure plots.  ``REPRO_BENCH_SCALE`` scales the workload sizes,
e.g. ``REPRO_BENCH_SCALE=10`` approaches the paper's original sizes.
``--json-dir`` additionally writes each series as a ``BENCH_<name>.json``
artifact — what the CI ``benchmark-report`` job uploads as the repo's
performance trajectory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.config import default_config
from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.reporting import write_json


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the experiment series of the paper's Figure 9.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiments to run (default: all; choices: {', '.join(sorted(ALL_EXPERIMENTS))})",
    )
    parser.add_argument("--scale", type=float, default=None, help="workload scale factor")
    parser.add_argument(
        "--json-dir",
        default=None,
        help="also write each series as BENCH_<experiment>.json in this directory",
    )
    args = parser.parse_args(argv)

    unknown = [name for name in args.experiments if name not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments {unknown}; choices: {sorted(ALL_EXPERIMENTS)}")

    config = default_config()
    if args.scale is not None:
        config = type(config)(scale=args.scale)

    names = args.experiments or sorted(ALL_EXPERIMENTS)
    for name in names:
        driver = ALL_EXPERIMENTS[name]
        rows = driver(config=config, verbose=True)
        if args.json_dir:
            path = write_json(
                args.json_dir, name, rows, metadata={"scale": config.scale}
            )
            print(f"wrote {path}")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
