"""Benchmark configuration and scaling.

The paper's experiments ran on DB2 with relations of up to 500K tuples and
tableaux of up to 30K patterns; running every point at full size under
pytest-benchmark would make the suite needlessly slow on a laptop without
changing any conclusion.  :class:`BenchConfig` therefore records, for every
figure, both the paper's parameters and the (scaled) defaults used here, and
a single ``scale`` knob (or the ``REPRO_BENCH_SCALE`` environment variable)
lets you dial the sizes back up toward the paper's.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Tuple


def _env_scale(default: float = 1.0) -> float:
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


@dataclass(frozen=True)
class BenchConfig:
    """Sizes used by the experiment drivers.

    ``scale`` multiplies every relation size and tableau size; ``scale=1.0``
    is the laptop-friendly default, ``scale=10.0`` reproduces the paper's
    largest relation sizes for Figures 9(a)–(c) and (e)–(f).
    """

    scale: float = 1.0
    #: relation sizes for the SZ sweeps (paper: 10K..100K step 10K)
    sz_sweep_base: Tuple[int, ...] = (10_000, 20_000, 30_000, 40_000, 50_000)
    #: relation size for the TABSZ sweep (paper: 500K)
    tabsz_relation_base: int = 50_000
    #: tableau sizes for the TABSZ sweep (paper: 1K..10K step 1K)
    tabsz_sweep_base: Tuple[int, ...] = (200, 400, 600, 800, 1_000, 1_200, 1_400, 1_600, 1_800, 2_000)
    #: relation size for the NUMCONSTs and NOISE sweeps (paper: 100K)
    fixed_relation_base: int = 30_000
    #: tableau size for the NUMCONSTs sweep (paper: 1K)
    fixed_tabsz: int = 1_000
    #: NUMCONSTs sweep (paper: 100% .. 10%)
    numconsts_sweep: Tuple[float, ...] = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1)
    #: NOISE sweep (paper: 0% .. 9%)
    noise_sweep: Tuple[float, ...] = (0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09)
    #: default NOISE for all other experiments (paper: 5%)
    default_noise: float = 0.05
    #: seed shared by every generator invocation
    seed: int = 42
    #: relation sizes for the out-of-core (mmap spill) sweep; the 10M-row
    #: target point is reached with ``scale=10`` or ``REPRO_OUTOFCORE_SIZES``
    outofcore_sweep_base: Tuple[int, ...] = (100_000, 1_000_000)

    # ------------------------------------------------------------------ scaled views
    def sz_sweep(self) -> List[int]:
        return [max(1_000, int(size * self.scale)) for size in self.sz_sweep_base]

    def tabsz_relation_size(self) -> int:
        return max(1_000, int(self.tabsz_relation_base * self.scale))

    def tabsz_sweep(self) -> List[int]:
        return [max(50, int(size * self.scale)) for size in self.tabsz_sweep_base]

    def fixed_relation_size(self) -> int:
        return max(1_000, int(self.fixed_relation_base * self.scale))

    def outofcore_sweep(self) -> List[int]:
        """Sizes for the out-of-core series.

        ``REPRO_OUTOFCORE_SIZES`` (comma- or space-separated row counts)
        overrides the scaled defaults — how the CI leg pins its 1M-row
        point and a 10M-row run is requested without touching ``scale``.
        """
        raw = os.environ.get("REPRO_OUTOFCORE_SIZES")
        if raw:
            try:
                sizes = [int(token) for token in raw.replace(",", " ").split()]
                if sizes and all(size > 0 for size in sizes):
                    return sizes
            except ValueError:
                pass
        return [
            max(10_000, int(size * self.scale))
            for size in self.outofcore_sweep_base
        ]


def default_config() -> BenchConfig:
    """The configuration used when none is supplied (honours ``REPRO_BENCH_SCALE``)."""
    return BenchConfig(scale=_env_scale())


def quick_config() -> BenchConfig:
    """A deliberately small configuration for smoke tests of the harness itself."""
    return BenchConfig(
        scale=1.0,
        sz_sweep_base=(1_000, 2_000),
        tabsz_relation_base=2_000,
        tabsz_sweep_base=(50, 100),
        fixed_relation_base=2_000,
        fixed_tabsz=100,
        numconsts_sweep=(1.0, 0.5),
        noise_sweep=(0.0, 0.05),
    )
