"""Experiment drivers: one function per figure of the paper's Section 5.

Each driver returns a list of result rows (dictionaries) — the same series
the corresponding figure plots — and can print them as an aligned table.
Absolute times will differ from the paper's DB2/PowerPC numbers; the
EXPERIMENTS.md file records the *shape* comparison (who wins, monotonicity,
crossovers) point by point.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.config import BenchConfig, default_config
from repro.bench.harness import (
    build_fd_workload,
    build_workload,
    peak_rss_mb,
    time_backend,
    time_clean,
    time_detection,
    time_kernel_detection,
    time_kernel_repair,
    time_parallel_detection,
    time_parallel_repair,
    time_query_split,
    time_repair,
    time_storage_detection,
    time_storage_repair,
)
from repro.bench.reporting import format_table
from repro.kernels import numpy_available


def _emit(rows: List[Dict[str, Any]], title: str, verbose: bool) -> List[Dict[str, Any]]:
    # Every experiment row carries the process peak RSS at emission time —
    # wall-clock alone hides the memory story the storage experiments exist
    # to tell (the counter is process-monotone; within one invocation later
    # series can only show equal-or-higher peaks).
    peak = peak_rss_mb()
    for row in rows:
        row.setdefault("peak_rss_mb", round(peak, 1))
    if verbose:
        print(format_table(rows, title=title))
    return rows


# ---------------------------------------------------------------------------
# Figures 9(a) and 9(b): CNF vs DNF over SZ
# ---------------------------------------------------------------------------
def _cnf_vs_dnf(config: BenchConfig, num_consts: float, title: str, verbose: bool) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for size in config.sz_sweep():
        workload = build_workload(
            size=size,
            noise=config.default_noise,
            seed=config.seed,
            num_attrs=3,
            tabsz=config.fixed_tabsz,
            num_consts=num_consts,
        )
        cnf_seconds, _ = time_detection(workload, form="cnf")
        dnf_seconds, _ = time_detection(workload, form="dnf")
        rows.append(
            {
                "SZ": size,
                "cnf_seconds": cnf_seconds,
                "dnf_seconds": dnf_seconds,
                "dnf_speedup": cnf_seconds / dnf_seconds if dnf_seconds else float("inf"),
            }
        )
    return _emit(rows, title, verbose)


def fig9a_cnf_vs_dnf_constants(
    config: Optional[BenchConfig] = None, verbose: bool = False
) -> List[Dict[str, Any]]:
    """Figure 9(a): CNF vs DNF detection time, NUMCONSTs = 100%."""
    config = config or default_config()
    return _cnf_vs_dnf(config, num_consts=1.0, title="Figure 9(a): CNF vs DNF (NUMCONSTs=100%)", verbose=verbose)


def fig9b_cnf_vs_dnf_mixed(
    config: Optional[BenchConfig] = None, verbose: bool = False
) -> List[Dict[str, Any]]:
    """Figure 9(b): CNF vs DNF detection time, NUMCONSTs = 50%."""
    config = config or default_config()
    return _cnf_vs_dnf(config, num_consts=0.5, title="Figure 9(b): CNF vs DNF (NUMCONSTs=50%)", verbose=verbose)


# ---------------------------------------------------------------------------
# Figure 9(c): Q^C vs Q^V
# ---------------------------------------------------------------------------
def fig9c_qc_vs_qv(
    config: Optional[BenchConfig] = None, verbose: bool = False
) -> List[Dict[str, Any]]:
    """Figure 9(c): how detection time splits between ``Q^C`` and ``Q^V``."""
    config = config or default_config()
    rows: List[Dict[str, Any]] = []
    for size in config.sz_sweep():
        workload = build_workload(
            size=size,
            noise=config.default_noise,
            seed=config.seed,
            num_attrs=3,
            tabsz=config.fixed_tabsz,
            num_consts=1.0,
        )
        split = time_query_split(workload, form="dnf")
        rows.append({"SZ": size, "qc_seconds": split["qc"], "qv_seconds": split["qv"]})
    return _emit(rows, "Figure 9(c): Q^C vs Q^V", verbose)


# ---------------------------------------------------------------------------
# Figure 9(d): scalability in TABSZ
# ---------------------------------------------------------------------------
def fig9d_tabsz_scaling(
    config: Optional[BenchConfig] = None, verbose: bool = False
) -> List[Dict[str, Any]]:
    """Figure 9(d): detection time as the tableau grows, NUMATTRs 3 vs 4."""
    config = config or default_config()
    rows: List[Dict[str, Any]] = []
    size = config.tabsz_relation_size()
    for tabsz in config.tabsz_sweep():
        row: Dict[str, Any] = {"TABSZ": tabsz}
        for num_attrs in (3, 4):
            workload = build_workload(
                size=size,
                noise=config.default_noise,
                seed=config.seed,
                num_attrs=num_attrs,
                tabsz=tabsz,
                num_consts=0.5,
            )
            seconds, _ = time_detection(workload, form="dnf")
            row[f"numattrs{num_attrs}_seconds"] = seconds
        rows.append(row)
    return _emit(rows, "Figure 9(d): scalability in TABSZ", verbose)


# ---------------------------------------------------------------------------
# Figure 9(e): scalability in NUMCONSTs
# ---------------------------------------------------------------------------
def fig9e_numconsts_scaling(
    config: Optional[BenchConfig] = None, verbose: bool = False
) -> List[Dict[str, Any]]:
    """Figure 9(e): detection time as the fraction of constant pattern tuples drops."""
    config = config or default_config()
    rows: List[Dict[str, Any]] = []
    size = config.fixed_relation_size()
    for num_consts in config.numconsts_sweep:
        workload = build_workload(
            size=size,
            noise=config.default_noise,
            seed=config.seed,
            num_attrs=3,
            tabsz=config.fixed_tabsz,
            num_consts=num_consts,
        )
        seconds, _ = time_detection(workload, form="dnf")
        rows.append({"NUMCONSTs": num_consts, "seconds": seconds})
    return _emit(rows, "Figure 9(e): scalability in NUMCONSTs", verbose)


# ---------------------------------------------------------------------------
# Figure 9(f): scalability in NOISE
# ---------------------------------------------------------------------------
def fig9f_noise_scaling(
    config: Optional[BenchConfig] = None, verbose: bool = False
) -> List[Dict[str, Any]]:
    """Figure 9(f): detection time as the fraction of dirty tuples grows.

    Following the paper, the CFD is the two-attribute ``[ZIP] → [ST]`` with a
    pattern tuple for every zip/state pair of the catalog, so no violation is
    missed.
    """
    config = config or default_config()
    rows: List[Dict[str, Any]] = []
    size = config.fixed_relation_size()
    for noise in config.noise_sweep:
        workload = build_workload(
            size=size,
            noise=noise,
            seed=config.seed,
            num_attrs=2,
            tabsz=None,  # every zip -> state pair
            num_consts=1.0,
        )
        seconds, run = time_detection(workload, form="dnf")
        rows.append(
            {
                "NOISE": noise,
                "seconds": seconds,
                "violations": len(run.report),
            }
        )
    return _emit(rows, "Figure 9(f): scalability in NOISE", verbose)


# ---------------------------------------------------------------------------
# Section 5, "Merging CFDs" (no figure)
# ---------------------------------------------------------------------------
def merged_vs_separate(
    config: Optional[BenchConfig] = None,
    num_cfds: int = 3,
    verbose: bool = False,
) -> List[Dict[str, Any]]:
    """The merged single-query-pair scheme vs one query pair per CFD."""
    config = config or default_config()
    rows: List[Dict[str, Any]] = []
    for size in config.sz_sweep():
        workload = build_workload(
            size=size,
            noise=config.default_noise,
            seed=config.seed,
            num_attrs=3,
            tabsz=200,
            num_consts=1.0,
            num_cfds=num_cfds,
        )
        separate_seconds, _ = time_detection(workload, strategy="per_cfd", form="cnf")
        merged_seconds, _ = time_detection(workload, strategy="merged")
        rows.append(
            {
                "SZ": size,
                "num_cfds": num_cfds,
                "separate_seconds": separate_seconds,
                "merged_seconds": merged_seconds,
            }
        )
    return _emit(rows, "Merging CFDs: merged vs per-CFD detection", verbose)



# ---------------------------------------------------------------------------
# Ablation (beyond the paper): detection backends
# ---------------------------------------------------------------------------
def backend_ablation(
    config: Optional[BenchConfig] = None,
    tabsz: int = 100,
    verbose: bool = False,
) -> List[Dict[str, Any]]:
    """Indexed vs in-memory vs SQL detection over the SZ sweep.

    The paper only measures the SQL queries; this ablation adds the two
    in-process backends to quantify what the partition index buys.  The
    per-pattern oracle is quadratic in practice (one relation scan per
    pattern tuple), so ``tabsz`` defaults to a deliberately modest 100 to
    keep the slowest series tolerable; the indexed backend's advantage only
    grows with the tableau.
    """
    config = config or default_config()
    rows: List[Dict[str, Any]] = []
    for size in config.sz_sweep():
        workload = build_workload(
            size=size,
            noise=config.default_noise,
            seed=config.seed,
            num_attrs=3,
            tabsz=tabsz,
            num_consts=0.5,
        )
        indexed_seconds, indexed_report = time_backend(workload, "indexed")
        inmemory_seconds, inmemory_report = time_backend(workload, "inmemory")
        sql_seconds, _ = time_backend(workload, "sql")
        if indexed_report.violating_indices() != inmemory_report.violating_indices():
            raise AssertionError(
                f"indexed and in-memory backends disagree on SZ={size}: "
                f"{indexed_report.summary()} vs {inmemory_report.summary()}"
            )
        rows.append(
            {
                "SZ": size,
                "indexed_seconds": indexed_seconds,
                "inmemory_seconds": inmemory_seconds,
                "sql_seconds": sql_seconds,
                "indexed_speedup": (
                    inmemory_seconds / indexed_seconds if indexed_seconds else float("inf")
                ),
            }
        )
    return _emit(rows, "Ablation: indexed vs in-memory vs SQL detection", verbose)


# ---------------------------------------------------------------------------
# Ablation (beyond the paper): repair engines
# ---------------------------------------------------------------------------
def repair_ablation(
    config: Optional[BenchConfig] = None,
    tabsz: int = 200,
    verbose: bool = False,
) -> List[Dict[str, Any]]:
    """Incremental vs indexed vs scan-driven repair over the SZ sweep.

    Section 6 makes repair the expensive half of the pipeline; this ablation
    quantifies what delta-maintained violation state buys the repair loop
    against full re-detection per pass (both the scan oracle — the seed
    behaviour — and a from-scratch partition-index rebuild).  The workload is
    the ``[ZIP] → [ST]`` constraint of the NOISE experiment (Figure 9(f))
    with a ``tabsz``-pattern sample so the scan series stays tolerable.
    Every method must reach the identical repaired relation — checked
    outright, the same way ``backend_ablation`` cross-checks detection.
    """
    config = config or default_config()
    rows: List[Dict[str, Any]] = []
    for size in config.sz_sweep():
        workload = build_workload(
            size=size,
            noise=config.default_noise,
            seed=config.seed,
            num_attrs=2,
            tabsz=tabsz,
            num_consts=1.0,
        )
        incremental_seconds, incremental_result = time_repair(workload, "incremental")
        indexed_seconds, indexed_result = time_repair(workload, "indexed")
        scan_seconds, scan_result = time_repair(workload, "scan")
        if not (
            incremental_result.relation == scan_result.relation
            and indexed_result.relation == scan_result.relation
        ):
            raise AssertionError(
                f"repair engines disagree on SZ={size}: "
                f"{incremental_result.summary()} vs {indexed_result.summary()} "
                f"vs {scan_result.summary()}"
            )
        rows.append(
            {
                "SZ": size,
                "incremental_seconds": incremental_seconds,
                "indexed_seconds": indexed_seconds,
                "scan_seconds": scan_seconds,
                "changes": len(incremental_result.changes),
                "passes": incremental_result.passes,
                "incremental_speedup": (
                    scan_seconds / incremental_seconds
                    if incremental_seconds
                    else float("inf")
                ),
            }
        )
    return _emit(rows, "Ablation: incremental vs indexed vs scan repair", verbose)


# ---------------------------------------------------------------------------
# Ablation (beyond the paper): end-to-end cleaning pipeline
# ---------------------------------------------------------------------------
def pipeline_throughput(
    config: Optional[BenchConfig] = None,
    tabsz: int = 200,
    verbose: bool = False,
) -> List[Dict[str, Any]]:
    """End-to-end ``Cleaner.clean`` throughput over the SZ sweep.

    The per-stage experiments time detection and repair in isolation; this
    one times what a user of the pipeline API actually pays — ingest, initial
    detection, the repair fixpoint and the oracle verification together —
    for the auto-selected backends against the indexed-detect/incremental-repair
    pairing.  The workload is the ``[ZIP] → [ST]`` constraint of the repair
    ablation.  Every run must end verified clean — checked outright.
    """
    config = config or default_config()
    rows: List[Dict[str, Any]] = []
    for size in config.sz_sweep():
        workload = build_workload(
            size=size,
            noise=config.default_noise,
            seed=config.seed,
            num_attrs=2,
            tabsz=tabsz,
            num_consts=1.0,
        )
        auto_seconds, auto_result = time_clean(
            workload, detect_method="auto", repair_method="auto"
        )
        pinned_seconds, pinned_result = time_clean(
            workload, detect_method="indexed", repair_method="incremental"
        )
        if not (auto_result.clean and pinned_result.clean):
            raise AssertionError(
                f"pipeline did not reach a clean relation on SZ={size}: "
                f"auto={auto_result.summary()} pinned={pinned_result.summary()}"
            )
        if auto_result.relation != pinned_result.relation:
            raise AssertionError(
                f"auto and pinned pipelines disagree on SZ={size}: "
                f"{auto_result.summary()} vs {pinned_result.summary()}"
            )
        rows.append(
            {
                "SZ": size,
                "auto_seconds": auto_seconds,
                "pinned_seconds": pinned_seconds,
                "auto_tuples_per_second": size / auto_seconds if auto_seconds else float("inf"),
                "auto_backends": "+".join(
                    auto_result.backends[stage] for stage in ("detect", "repair")
                ),
                "changes": len(auto_result.changes),
                "passes": auto_result.passes,
            }
        )
    return _emit(rows, "Ablation: end-to-end cleaning pipeline throughput", verbose)


# ---------------------------------------------------------------------------
# Ablation (beyond the paper): sharded parallel execution
# ---------------------------------------------------------------------------
def parallel_scaling(
    config: Optional[BenchConfig] = None,
    tabsz: int = 300,
    worker_sweep: Tuple[int, ...] = (1, 2, 4),
    verbose: bool = False,
) -> List[Dict[str, Any]]:
    """Sharded parallel detection/repair vs the serial engines over workers.

    One fixed-size workload (the ``[ZIP] → [ST]`` constraint of the repair
    ablation), swept over process-pool widths.  Every parallel run is checked
    against the serial result outright — identical violation set, identical
    repaired relation — so the series can only ever show *where* parallelism
    pays, never a wrong answer.  ``workers=1`` rides the serial in-process
    fallback and prices the sharding overhead alone.
    """
    config = config or default_config()
    size = config.fixed_relation_size()
    workload = build_workload(
        size=size,
        noise=config.default_noise,
        seed=config.seed,
        num_attrs=2,
        tabsz=tabsz,
        num_consts=1.0,
    )
    detect_serial_seconds, serial_report = time_backend(workload, "indexed")
    repair_serial_seconds, serial_repair = time_repair(workload, "incremental")
    rows: List[Dict[str, Any]] = []
    for workers in worker_sweep:
        shard_count = max(2, workers)
        detect_seconds, report = time_parallel_detection(
            workload, shard_count=shard_count, workers=workers
        )
        repair_seconds, repaired = time_parallel_repair(
            workload, shard_count=shard_count, workers=workers
        )
        if set(report.violations) != set(serial_report.violations):
            raise AssertionError(
                f"parallel detection (workers={workers}) disagrees with the "
                f"indexed backend on SZ={size}: {report.summary()} vs "
                f"{serial_report.summary()}"
            )
        if repaired.relation != serial_repair.relation:
            raise AssertionError(
                f"parallel repair (workers={workers}) diverged from the "
                f"incremental engine on SZ={size}"
            )
        stats = repaired.parallel_stats
        rows.append(
            {
                "SZ": size,
                "workers": workers,
                "shards": shard_count,
                "mode": stats.mode if stats else "?",
                "detect_serial_seconds": detect_serial_seconds,
                "detect_parallel_seconds": detect_seconds,
                "detect_speedup": (
                    detect_serial_seconds / detect_seconds
                    if detect_seconds
                    else float("inf")
                ),
                "repair_serial_seconds": repair_serial_seconds,
                "repair_parallel_seconds": repair_seconds,
                "repair_speedup": (
                    repair_serial_seconds / repair_seconds
                    if repair_seconds
                    else float("inf")
                ),
            }
        )
    return _emit(rows, "Ablation: sharded parallel vs serial engines", verbose)


# ---------------------------------------------------------------------------
# Ablation (beyond the paper): storage layers
# ---------------------------------------------------------------------------
def columnar_ablation(
    config: Optional[BenchConfig] = None,
    tabsz: int = 300,
    verbose: bool = False,
) -> List[Dict[str, Any]]:
    """Columnar vs row storage for indexed detection and incremental repair.

    The same workload (the ``[ZIP] → [ST]`` constraint of the repair
    ablation), the same engines, the only variable being the storage layer
    the relation lives in — dictionary-encoded code columns against the
    legacy tuple list.  Detection is timed over a pre-encoded store
    (encoding happens once at ingestion; see
    :func:`repro.bench.harness.time_storage_detection`), repair pays its
    encode inline.  Both storages must produce the identical report and the
    byte-identical repair — checked outright, like every other ablation.
    """
    config = config or default_config()
    rows: List[Dict[str, Any]] = []
    for size in config.sz_sweep():
        workload = build_workload(
            size=size,
            noise=config.default_noise,
            seed=config.seed,
            num_attrs=2,
            tabsz=tabsz,
            num_consts=1.0,
        )
        rows_detect_seconds, rows_report = time_storage_detection(workload, "rows")
        columnar_detect_seconds, columnar_report = time_storage_detection(
            workload, "columnar"
        )
        if list(rows_report.violations) != list(columnar_report.violations):
            raise AssertionError(
                f"storage layers disagree on detection at SZ={size}: "
                f"{rows_report.summary()} vs {columnar_report.summary()}"
            )
        rows_repair_seconds, rows_repair = time_storage_repair(workload, "rows")
        columnar_repair_seconds, columnar_repair = time_storage_repair(
            workload, "columnar"
        )
        if rows_repair.relation.rows != columnar_repair.relation.rows:
            raise AssertionError(
                f"storage layers disagree on repair at SZ={size}: "
                f"{rows_repair.summary()} vs {columnar_repair.summary()}"
            )
        rows.append(
            {
                "SZ": size,
                "rows_detect_seconds": rows_detect_seconds,
                "columnar_detect_seconds": columnar_detect_seconds,
                "detect_speedup": (
                    rows_detect_seconds / columnar_detect_seconds
                    if columnar_detect_seconds
                    else float("inf")
                ),
                "rows_repair_seconds": rows_repair_seconds,
                "columnar_repair_seconds": columnar_repair_seconds,
                "repair_speedup": (
                    rows_repair_seconds / columnar_repair_seconds
                    if columnar_repair_seconds
                    else float("inf")
                ),
            }
        )
    return _emit(rows, "Ablation: columnar vs row storage", verbose)


# ---------------------------------------------------------------------------
# Ablation: numpy vs pure-python kernels
# ---------------------------------------------------------------------------
def kernels_ablation(
    config: Optional[BenchConfig] = None,
    noise: float = 0.01,
    verbose: bool = False,
) -> List[Dict[str, Any]]:
    """Numpy vs pure-python kernels for columnar indexed detection.

    The same pre-encoded store, the same detector, the only variable being
    the hot-loop implementation (:mod:`repro.kernels`).  The workload is the
    plain exemption FD at low noise — the pure-``Q^V``, mostly-clean regime
    where the python reference must scan nearly every partition to the end
    while the numpy kernel's fused scan stays in whole-column array passes.
    Reports must agree byte for byte, checked outright.

    Returns an empty series (with a note when verbose) if numpy is not
    installed — the python path is then the only kernel, so there is
    nothing to compare.
    """
    config = config or default_config()
    if not numpy_available():
        if verbose:
            print("kernels ablation skipped: numpy is not installed ([fast] extra)")
        return []
    rows: List[Dict[str, Any]] = []
    for size in config.sz_sweep():
        workload = build_fd_workload(size=size, noise=noise, seed=config.seed)
        python_seconds, python_report = time_kernel_detection(workload, "python")
        numpy_seconds, numpy_report = time_kernel_detection(workload, "numpy")
        if list(python_report.violations) != list(numpy_report.violations):
            raise AssertionError(
                f"kernels disagree on detection at SZ={size}: "
                f"{python_report.summary()} vs {numpy_report.summary()}"
            )
        rows.append(
            {
                "SZ": size,
                "python_detect_seconds": python_seconds,
                "numpy_detect_seconds": numpy_seconds,
                "numpy_speedup": (
                    python_seconds / numpy_seconds if numpy_seconds else float("inf")
                ),
            }
        )
    return _emit(rows, "Ablation: numpy vs python kernels", verbose)


# ---------------------------------------------------------------------------
# Ablation: numpy vs pure-python kernels on the repair fixpoint
# ---------------------------------------------------------------------------
def repair_kernels_ablation(
    config: Optional[BenchConfig] = None,
    noise: float = 0.01,
    verbose: bool = False,
) -> List[Dict[str, Any]]:
    """Numpy vs pure-python kernels for the columnar incremental repair fixpoint.

    The repair-side twin of :func:`kernels_ablation`: the same pre-encoded
    store contract (:func:`time_kernel_repair`), the same incremental engine,
    the only variable being the kernel behind the batched class re-evaluation,
    partition-delta and candidate-pricing primitives.  Change logs must agree
    byte for byte, checked outright.  Each row also carries a
    ``method="parallel"`` point — the sharded repairer whose per-shard
    incremental fixpoints ride the same batched kernels — timed under the
    numpy kernel for reference (no speedup is derived from it; on one core it
    mostly measures sharding overhead).

    Returns an empty series (with a note when verbose) if numpy is not
    installed — the python path is then the only kernel, so there is
    nothing to compare.
    """
    config = config or default_config()
    if not numpy_available():
        if verbose:
            print(
                "repair_kernels ablation skipped: numpy is not installed "
                "([fast] extra)"
            )
        return []
    rows: List[Dict[str, Any]] = []
    for size in config.sz_sweep():
        workload = build_fd_workload(size=size, noise=noise, seed=config.seed)
        python_seconds, python_result = time_kernel_repair(workload, "python")
        numpy_seconds, numpy_result = time_kernel_repair(workload, "numpy")
        if list(python_result.changes) != list(numpy_result.changes):
            raise AssertionError(
                f"kernels disagree on repair at SZ={size}: "
                f"{len(python_result.changes)} vs {len(numpy_result.changes)} changes"
            )
        parallel_seconds, _ = time_kernel_repair(workload, "numpy", method="parallel")
        rows.append(
            {
                "SZ": size,
                "python_repair_seconds": python_seconds,
                "numpy_repair_seconds": numpy_seconds,
                "parallel_repair_seconds": parallel_seconds,
                "numpy_speedup": (
                    python_seconds / numpy_seconds if numpy_seconds else float("inf")
                ),
            }
        )
    return _emit(rows, "Ablation: numpy vs python repair kernels", verbose)


# ---------------------------------------------------------------------------
# Ablation (beyond the paper): out-of-core cleaning in bounded memory
# ---------------------------------------------------------------------------
def outofcore_scaling(
    config: Optional[BenchConfig] = None,
    noise: float = 0.01,
    verbose: bool = False,
) -> List[Dict[str, Any]]:
    """End-to-end mmap cleaning at 100K–10M rows with peak RSS tracked.

    The bounded-memory claim of the spill-to-disk mode, measured: rows are
    *streamed* from the tax generator straight into memory-mapped code
    columns (no materialised Python rows), detection and repair run sharded
    over spilled shards that workers mmap from disk, and every series row
    records the process's peak RSS next to its wall time.  The workload is
    the pure-wildcard exemption FD ``[ZIP, MR, CH] → [STX, MTX, CTX]`` —
    the fused-scan regime where the kernels do the work and storage is the
    variable.  The smallest point is cross-checked outright against the
    in-memory columnar pipeline (byte-identical rows and change log), so
    the series can only ever show *cost*, never a different answer.

    ``REPRO_OUTOFCORE_SIZES`` pins the sweep (the CI leg runs ``1000000``
    in a fresh process); ``REPRO_OUTOFCORE_RSS_BUDGET_MB``, when set, turns
    the recorded peak into a hard assertion — the CI bounded-memory gate.
    """
    from repro.config import DetectionConfig, RepairConfig
    from repro.core.cfd import CFD
    from repro.datagen.generator import TaxRecordGenerator, tax_schema
    from repro.io.sources import IterableSource, RelationSource
    from repro.pipeline import Cleaner

    config = config or default_config()
    budget_raw = os.environ.get("REPRO_OUTOFCORE_RSS_BUDGET_MB")
    budget_mb = float(budget_raw) if budget_raw else None
    cfd = CFD.build(
        ["ZIP", "MR", "CH"],
        ["STX", "MTX", "CTX"],
        [["_"] * 6],
        name="exemption_fd",
    )

    def cleaner(storage: str) -> Cleaner:
        return Cleaner(
            detection=DetectionConfig(method="parallel", storage=storage),
            repair=RepairConfig(
                method="parallel", storage=storage, check_consistency=False
            ),
            verify_method="indexed",  # the in-memory oracle would decode every row
        )

    rows: List[Dict[str, Any]] = []
    for index, size in enumerate(config.outofcore_sweep()):
        generator = TaxRecordGenerator(size=size, noise=noise, seed=config.seed)
        source = IterableSource(tax_schema(), generator.iter_rows())
        start = time.perf_counter()
        result = cleaner("mmap").clean(source, [cfd])
        seconds = time.perf_counter() - start
        peak = peak_rss_mb()
        if not result.clean:
            raise AssertionError(
                f"out-of-core cleaning left SZ={size} dirty: {result.summary()}"
            )
        if index == 0 and size <= 200_000:
            baseline = cleaner("columnar").clean(
                RelationSource(generator.generate_relation()), [cfd]
            )
            mismatch = next(
                (
                    position
                    for position in range(size)
                    if tuple(result.relation[position])
                    != tuple(baseline.relation[position])
                ),
                None,
            )
            if mismatch is not None or len(result.changes) != len(baseline.changes):
                raise AssertionError(
                    f"mmap and columnar pipelines diverge at SZ={size} "
                    f"(first row mismatch: {mismatch}): "
                    f"{result.summary()} vs {baseline.summary()}"
                )
        rows.append(
            {
                "SZ": size,
                "seconds": seconds,
                "tuples_per_second": size / seconds if seconds else float("inf"),
                "changes": len(result.changes),
                "clean": result.clean,
                "storage": result.backends["storage"],
                "peak_rss_mb": round(peak, 1),
                "peak_child_rss_mb": round(peak_rss_mb(children=True), 1),
            }
        )
        result.relation.release()
        if budget_mb is not None and peak > budget_mb:
            raise AssertionError(
                f"out-of-core peak RSS {peak:.1f} MiB exceeded the "
                f"REPRO_OUTOFCORE_RSS_BUDGET_MB budget of {budget_mb:.1f} MiB "
                f"at SZ={size}"
            )
    return _emit(rows, "Out-of-core: mmap spill pipeline, bounded memory", verbose)


# ---------------------------------------------------------------------------
# Ablation (beyond the paper): pre-flight static analysis
# ---------------------------------------------------------------------------
def analysis_ablation(
    config: Optional[BenchConfig] = None,
    verbose: bool = False,
) -> List[Dict[str, Any]]:
    """Static analysis: lint latency, and the detection payoff of ``optimize``.

    Two series in one artifact:

    * ``series="lint"`` — :func:`repro.analysis.analyze` wall time vs
      tableau size, shallow (the exact pass the pipeline pre-flight gate
      runs) next to deep (the chase-backed redundancy checks of
      ``repro lint``).  The shallow pass must stay negligible — it is on
      the path of every cleaning run at the default ``analysis="warn"``.
    * ``series="optimize"`` — indexed detection over the TABSZ tax relation
      under a redundant rule set (the constants tableau plus duplicated
      wildcard FDs, each twin re-scanning every partition) vs the same rule
      set rewritten to its minimal cover, reports checked identical.  The
      speedup is what ``analyze(optimize=True)`` / ``repro lint --optimize``
      buys at detection time — fewer patterns, same violations.
    """
    from repro.analysis import analyze
    from repro.core.cfd import CFD
    from repro.detection.indexed import IndexedDetector
    from repro.reasoning.mincover import minimal_cover

    config = config or default_config()
    lint_rows: List[Dict[str, Any]] = []

    # --- series 1: lint latency vs rule-set size ---------------------------
    relation_probe = build_workload(
        size=1_000, noise=config.default_noise, seed=config.seed, tabsz=50
    )
    schema = relation_probe.relation.schema
    for tabsz in (10, 25, 50, 100, 200):
        cfd = build_workload(
            size=1_000, noise=config.default_noise, seed=config.seed,
            num_attrs=3, tabsz=tabsz,
        ).cfds[0]
        shallow = analyze([cfd], schema, deep=False)
        deep = analyze([cfd], schema)
        lint_rows.append(
            {
                "series": "lint",
                "patterns": tabsz,
                "shallow_lint_seconds": shallow.seconds,
                "deep_lint_seconds": deep.seconds,
                "diagnostics": len(deep),
            }
        )
    _emit(lint_rows, "Static analysis: lint latency vs rule-set size", verbose)

    # --- series 2: redundant rules vs their minimal cover ------------------
    # TABSZ is held at 100: the cover computation chases once per normalised
    # part (quadratic in the rule set), and this series measures the
    # *detection* payoff of the rewrite, not the rewrite itself (whose cost
    # is recorded as ``mincover_seconds``).
    size = config.tabsz_relation_size()
    workload = build_workload(
        size=size, noise=config.default_noise, seed=config.seed,
        num_attrs=3, tabsz=100,
    )
    # The redundancy the linter's CFD002 flags: the wildcard FD behind the
    # constants tableau, duplicated under twin names.  Each twin forces the
    # indexed detector through another full pass over every LHS partition.
    redundant = list(workload.cfds) + [
        CFD.build(["ZIP", "CT"], ["ST"], [["_", "_", "_"]], name=f"zip_city_fd_{i}")
        for i in range(4)
    ]
    detector = IndexedDetector(workload.relation)
    start = time.perf_counter()
    redundant_report = detector.detect(redundant)
    redundant_seconds = time.perf_counter() - start

    start = time.perf_counter()
    cover = minimal_cover(redundant)
    mincover_seconds = time.perf_counter() - start

    start = time.perf_counter()
    optimized_report = IndexedDetector(workload.relation).detect(cover)
    optimized_seconds = time.perf_counter() - start

    if sorted(redundant_report.violating_indices()) != sorted(
        optimized_report.violating_indices()
    ):
        raise AssertionError(
            f"minimal cover changed the violating tuples at SZ={size}: "
            f"{len(redundant_report.violating_indices())} vs "
            f"{len(optimized_report.violating_indices())}"
        )
    optimize_rows: List[Dict[str, Any]] = [
        {
            "series": "optimize",
            "SZ": size,
            "patterns_before": sum(len(cfd.tableau) for cfd in redundant),
            "patterns_after": sum(len(cfd.tableau) for cfd in cover),
            "redundant_detect_seconds": redundant_seconds,
            "optimized_detect_seconds": optimized_seconds,
            "mincover_seconds": mincover_seconds,
            "optimize_speedup": (
                redundant_seconds / optimized_seconds
                if optimized_seconds
                else float("inf")
            ),
        }
    ]
    _emit(optimize_rows, "Static analysis: minimal-cover detection payoff", verbose)
    return lint_rows + optimize_rows


#: Map of experiment name -> driver, used by ``python -m repro.bench``.
ALL_EXPERIMENTS = {
    "fig9a": fig9a_cnf_vs_dnf_constants,
    "fig9b": fig9b_cnf_vs_dnf_mixed,
    "fig9c": fig9c_qc_vs_qv,
    "fig9d": fig9d_tabsz_scaling,
    "fig9e": fig9e_numconsts_scaling,
    "fig9f": fig9f_noise_scaling,
    "merged": merged_vs_separate,
    "backends": backend_ablation,
    "repair": repair_ablation,
    "pipeline": pipeline_throughput,
    "parallel": parallel_scaling,
    "columnar": columnar_ablation,
    "kernels": kernels_ablation,
    "repair_kernels": repair_kernels_ablation,
    "outofcore": outofcore_scaling,
    "analysis": analysis_ablation,
}
