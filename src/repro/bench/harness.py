"""Workload construction and timing helpers shared by the experiment drivers."""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cfd import CFD
from repro.datagen.cfd_catalog import experiment_cfd, experiment_cfd_set
from repro.datagen.generator import TaxRecordGenerator
from repro.relation.relation import Relation
from repro.sql.engine import DetectionRun, SQLDetector


@dataclass
class DetectionWorkload:
    """A (relation, CFDs) pair ready to be timed."""

    relation: Relation
    cfds: List[CFD]
    label: str = ""

    def detector(self, build_indexes: bool = True) -> SQLDetector:
        """A fresh SQLite detector loaded with the workload's relation."""
        return SQLDetector(self.relation, build_indexes=build_indexes)


@lru_cache(maxsize=16)
def _cached_relation(size: int, noise: float, seed: int) -> Relation:
    """Generate (and cache) a tax-records relation; generation dominates setup cost."""
    return TaxRecordGenerator(size=size, noise=noise, seed=seed).generate_relation()


def build_workload(
    size: int,
    noise: float,
    seed: int,
    num_attrs: int = 3,
    tabsz: Optional[int] = 1_000,
    num_consts: float = 1.0,
    num_cfds: int = 1,
) -> DetectionWorkload:
    """Build a tax-records workload with the requested Section 5 knobs."""
    relation = _cached_relation(size, noise, seed)
    if num_cfds == 1:
        cfds = [experiment_cfd(num_attrs=num_attrs, tabsz=tabsz, num_consts=num_consts, seed=seed)]
    else:
        cfds = experiment_cfd_set(num_cfds=num_cfds, tabsz=tabsz, num_consts=num_consts, seed=seed)
    label = f"SZ={size} NOISE={noise:.0%} NUMATTRs={num_attrs} TABSZ={tabsz} NUMCONSTs={num_consts:.0%}"
    return DetectionWorkload(relation=relation, cfds=cfds, label=label)


def time_detection(
    workload: DetectionWorkload,
    strategy: str = "per_cfd",
    form: str = "cnf",
    repeats: int = 1,
    build_indexes: bool = True,
) -> Tuple[float, DetectionRun]:
    """Median wall-clock detection time over ``repeats`` runs, plus the last run.

    Only the paper's query pair is timed (group-expansion queries are
    disabled); loading the relation and creating indexes is setup, exactly as
    in the paper where the data already sits in DB2.
    """
    detector = SQLDetector(workload.relation, build_indexes=build_indexes)
    try:
        durations: List[float] = []
        last_run: Optional[DetectionRun] = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            last_run = detector.detect(
                workload.cfds,
                strategy=strategy,
                form=form,
                expand_variable_violations=False,
            )
            durations.append(time.perf_counter() - start)
        durations.sort()
        median = durations[len(durations) // 2]
        assert last_run is not None
        return median, last_run
    finally:
        detector.close()


def time_query_split(
    workload: DetectionWorkload,
    form: str = "dnf",
    repeats: int = 1,
) -> Dict[str, float]:
    """Split detection time between the ``Q^C`` and ``Q^V`` queries (Figure 9(c))."""
    _total, run = time_detection(workload, strategy="per_cfd", form=form, repeats=repeats)
    return {"qc": run.seconds_for("qc"), "qv": run.seconds_for("qv")}
