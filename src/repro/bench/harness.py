"""Workload construction and timing helpers shared by the experiment drivers."""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

from repro.config import DetectionConfig, RepairConfig
from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations
from repro.core.violations import ViolationReport
from repro.datagen.cfd_catalog import experiment_cfd, experiment_cfd_set
from repro.datagen.generator import TaxRecordGenerator
from repro.detection.engine import DETECTION_METHODS
from repro.detection.indexed import IndexedDetector
from repro.errors import DetectionError
from repro.kernels import use_kernel
from repro.parallel.engine import find_violations_parallel
from repro.pipeline import Cleaner, CleaningResult
from repro.relation.columnar import ColumnStore
from repro.relation.relation import Relation
from repro.repair.heuristic import RepairResult, repair
from repro.sql.engine import DetectionRun, SQLDetector

_T = TypeVar("_T")


def peak_rss_mb(children: bool = False) -> float:
    """Peak resident set size in MiB: this process, or its reaped children.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; 0.0 on platforms
    without :mod:`resource` (Windows), so callers can stamp it
    unconditionally.  The counter is process-lifetime-monotone — comparing
    points *within* one process only shows growth, which is why the CI
    bounded-memory assertion runs the out-of-core series in a fresh process.
    With ``children=True`` the peak is over terminated child processes (the
    parallel engine's pool workers, reaped at pool shutdown).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    who = resource.RUSAGE_CHILDREN if children else resource.RUSAGE_SELF
    rss = resource.getrusage(who).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes, not KB
        return rss / (1024.0 * 1024.0)
    return rss / 1024.0


@dataclass
class DetectionWorkload:
    """A (relation, CFDs) pair ready to be timed."""

    relation: Relation
    cfds: List[CFD]
    label: str = ""

    def detector(self, build_indexes: bool = True) -> SQLDetector:
        """A fresh SQLite detector loaded with the workload's relation."""
        return SQLDetector(self.relation, build_indexes=build_indexes)


@lru_cache(maxsize=16)
def _cached_relation(size: int, noise: float, seed: int) -> Relation:
    """Generate (and cache) a tax-records relation; generation dominates setup cost."""
    return TaxRecordGenerator(size=size, noise=noise, seed=seed).generate_relation()


def build_workload(
    size: int,
    noise: float,
    seed: int,
    num_attrs: int = 3,
    tabsz: Optional[int] = 1_000,
    num_consts: float = 1.0,
    num_cfds: int = 1,
) -> DetectionWorkload:
    """Build a tax-records workload with the requested Section 5 knobs."""
    relation = _cached_relation(size, noise, seed)
    if num_cfds == 1:
        cfds = [experiment_cfd(num_attrs=num_attrs, tabsz=tabsz, num_consts=num_consts, seed=seed)]
    else:
        cfds = experiment_cfd_set(num_cfds=num_cfds, tabsz=tabsz, num_consts=num_consts, seed=seed)
    label = f"SZ={size} NOISE={noise:.0%} NUMATTRs={num_attrs} TABSZ={tabsz} NUMCONSTs={num_consts:.0%}"
    return DetectionWorkload(relation=relation, cfds=cfds, label=label)


def build_fd_workload(
    size: int,
    noise: float,
    seed: int,
    lhs: Tuple[str, ...] = ("ZIP", "MR", "CH"),
    rhs: Tuple[str, ...] = ("STX", "MTX", "CTX"),
) -> DetectionWorkload:
    """A tax-records workload constrained by a plain FD (one wildcard pattern).

    The pure-``Q^V`` regime: detection is one grouping pass over the LHS plus
    a disagreement check per partition, with no constant patterns anywhere —
    exactly the shape the kernel layer's fused scan targets.  The default FD
    is the exemption dependency keyed by zip code — zips determine states,
    so ``[ZIP, MR, CH] → [STX, MTX, CTX]`` holds on clean generated data and
    is violated only by injected noise.  Grouping by zip yields thousands of
    small partitions, the regime where per-partition interpreter overhead
    dominates the pure-python path.
    """
    relation = _cached_relation(size, noise, seed)
    cfd = CFD.build(
        list(lhs), list(rhs), [["_"] * (len(lhs) + len(rhs))], name="exemption_fd"
    )
    label = f"SZ={size} NOISE={noise:.0%} FD [{','.join(lhs)}] -> [{','.join(rhs)}]"
    return DetectionWorkload(relation=relation, cfds=[cfd], label=label)


def _median_timed(fn: Callable[[], _T], repeats: int) -> Tuple[float, _T]:
    """Median wall-clock of ``repeats`` calls to ``fn``, plus the last result."""
    durations: List[float] = []
    last: Optional[_T] = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        last = fn()
        durations.append(time.perf_counter() - start)
    durations.sort()
    assert last is not None
    return durations[len(durations) // 2], last


def time_detection(
    workload: DetectionWorkload,
    strategy: str = "per_cfd",
    form: str = "cnf",
    repeats: int = 1,
    build_indexes: bool = True,
) -> Tuple[float, DetectionRun]:
    """Median wall-clock detection time over ``repeats`` runs, plus the last run.

    Only the paper's query pair is timed (group-expansion queries are
    disabled); loading the relation and creating indexes is setup, exactly as
    in the paper where the data already sits in DB2.
    """
    detector = SQLDetector(workload.relation, build_indexes=build_indexes)
    try:
        return _median_timed(
            lambda: detector.detect(
                workload.cfds,
                strategy=strategy,
                form=form,
                expand_variable_violations=False,
            ),
            repeats,
        )
    finally:
        detector.close()


def time_backend(
    workload: DetectionWorkload,
    method: str,
    form: str = "dnf",
    repeats: int = 1,
) -> Tuple[float, ViolationReport]:
    """Median wall-clock detection time of one backend, plus the last report.

    ``"sql"`` times only the paper's query pair (loading and indexing are
    setup, as in :func:`time_detection`).  ``"inmemory"`` and ``"indexed"``
    have no setup phase: for the indexed backend, building the partition maps
    *is* the detection work, so each repeat starts from a cold cache.

    .. warning::
       The ``"sql"`` report is suitable for timing only: group expansion is
       disabled to time exactly the paper's query pair, so its variable
       violations carry empty ``tuple_indices`` and its ``violating_indices()``
       undercounts.  Compare reports between ``"inmemory"`` and ``"indexed"``
       only (as :func:`repro.bench.experiments.backend_ablation` does), or use
       :func:`repro.detection.engine.cross_check` for full agreement checks.
    """
    if method == "sql":
        seconds, run = time_detection(workload, form=form, repeats=repeats)
        return seconds, run.report
    if method not in DETECTION_METHODS:
        raise DetectionError(
            f"unknown benchmark backend {method!r}; expected one of "
            f"{', '.join(map(repr, DETECTION_METHODS))}"
        )
    if method == "inmemory":

        def run_once() -> ViolationReport:
            return find_all_violations(workload.relation, workload.cfds)

    else:

        def run_once() -> ViolationReport:
            return IndexedDetector(workload.relation).detect(workload.cfds)

    return _median_timed(run_once, repeats)


def time_repair(
    workload: DetectionWorkload,
    method: str,
    max_passes: int = 25,
    repeats: int = 1,
) -> Tuple[float, RepairResult]:
    """Median wall-clock of a full repair run with the given detection engine.

    Times the whole fixpoint loop — initial detection, every pass's fixes and
    re-checks — since the point of the incremental engine is precisely to
    collapse the re-check cost across passes.  ``repair`` copies the relation
    internally, so repeats are independent (and it validates ``method``
    itself); consistency checking is skipped because it is identical setup
    work for every method.
    """
    return _median_timed(
        lambda: repair(
            workload.relation,
            workload.cfds,
            max_passes=max_passes,
            check_consistency=False,
            method=method,
        ),
        repeats,
    )


def time_clean(
    workload: DetectionWorkload,
    detect_method: str = "indexed",
    repair_method: str = "incremental",
    max_passes: int = 25,
    repeats: int = 1,
) -> Tuple[float, CleaningResult]:
    """Median wall-clock of the full detect → repair → verify pipeline.

    Times everything :meth:`repro.pipeline.Cleaner.clean` does — ingest,
    initial detection, the whole repair fixpoint and the oracle-backed
    verification — since end-to-end cleaning throughput is what the pipeline
    experiment tracks.  The repair skips the consistency pre-check (identical
    setup work for every engine, as in :func:`time_repair`).
    """
    cleaner = Cleaner(
        detection=DetectionConfig(method=detect_method),
        repair=RepairConfig(
            method=repair_method, max_passes=max_passes, check_consistency=False
        ),
    )
    return _median_timed(
        lambda: cleaner.clean(workload.relation, workload.cfds), repeats
    )


def time_storage_detection(
    workload: DetectionWorkload,
    storage: str,
    repeats: int = 1,
) -> Tuple[float, ViolationReport]:
    """Median wall-clock of indexed detection over one storage layer.

    The relation is materialised in the requested storage *before* the timer
    starts — encoding happens once at ingestion in the pipeline, exactly as
    loading is setup for the SQL backend (the paper's data already sits in
    DB2).  Because :class:`ColumnStore` encodes lazily, the columns the CFDs
    mention are force-encoded here, so the timer sees what every later pass
    pays: building the partition maps and running the ``Q^C``/``Q^V``
    checks, from a cold cache per repeat — never the one-off encode.
    """
    if storage == "columnar":
        store = ColumnStore.from_relation(workload.relation)
        for cfd in workload.cfds:
            for attribute in cfd.attributes:
                store.codes(attribute)
        relation: Relation = store
    else:
        relation = workload.relation

    def run_once() -> ViolationReport:
        return IndexedDetector(relation).detect(workload.cfds)

    return _median_timed(run_once, repeats)


def time_kernel_detection(
    workload: DetectionWorkload,
    kernel: str,
    repeats: int = 1,
) -> Tuple[float, ViolationReport]:
    """Median wall-clock of columnar indexed detection under one kernel.

    The setup contract of :func:`time_storage_detection` — the store is
    built and the constrained columns force-encoded before the timer, and
    each repeat runs a cold detector — with the storage fixed to columnar
    and the *kernel* as the only variable between calls.  Every kernel
    produces the byte-identical report, so the returned reports can be
    compared directly.
    """
    store = ColumnStore.from_relation(workload.relation)
    for cfd in workload.cfds:
        for attribute in cfd.attributes:
            store.codes(attribute)

    def run_once() -> ViolationReport:
        with use_kernel(kernel):
            return IndexedDetector(store).detect(workload.cfds)

    return _median_timed(run_once, repeats)


def time_kernel_repair(
    workload: DetectionWorkload,
    kernel: str,
    method: str = "incremental",
    max_passes: int = 25,
    repeats: int = 1,
) -> Tuple[float, RepairResult]:
    """Median wall-clock of a columnar repair fixpoint under one kernel.

    The setup contract of :func:`time_kernel_detection`: the store is built
    and the constrained columns force-encoded before the timer, so the timer
    sees the fixpoint itself — initial violation discovery, every pass's
    fixes and incremental re-checks — never the one-off rows→columns encode
    (which is identical work for every kernel and would only dilute the
    ratio).  Each repeat repairs a fresh :meth:`ColumnStore.copy`, since the
    fixpoint mutates cells in place.  Every kernel produces the
    byte-identical :class:`RepairResult` change log, so results can be
    compared directly.
    """
    store = ColumnStore.from_relation(workload.relation)
    for cfd in workload.cfds:
        for attribute in cfd.attributes:
            store.codes(attribute)
    config = RepairConfig(
        method=method,
        max_passes=max_passes,
        check_consistency=False,
        storage="columnar",
        kernel=kernel,
    )

    def run_once() -> RepairResult:
        return repair(store.copy(), workload.cfds, config=config)

    return _median_timed(run_once, repeats)


def time_storage_repair(
    workload: DetectionWorkload,
    storage: str,
    method: str = "incremental",
    max_passes: int = 25,
    repeats: int = 1,
) -> Tuple[float, RepairResult]:
    """Median wall-clock of a full repair run over one storage layer.

    Mirrors :func:`time_repair` (whole fixpoint, consistency pre-check
    skipped) with the storage pinned through :class:`RepairConfig` — the
    encode pass is included, since ``repair()`` pays it inline.
    """
    config = RepairConfig(
        method=method,
        max_passes=max_passes,
        check_consistency=False,
        storage=storage,
    )
    return _median_timed(
        lambda: repair(workload.relation, workload.cfds, config=config),
        repeats,
    )


def time_parallel_detection(
    workload: DetectionWorkload,
    shard_count: Optional[int] = None,
    workers: Optional[int] = None,
    repeats: int = 1,
) -> Tuple[float, ViolationReport]:
    """Median wall-clock of sharded parallel detection, plus the last report.

    Everything is timed — planning the shards, pickling them into the pool,
    per-shard detection and the merge — because that end-to-end cost is what
    competes against the serial backends.
    """
    return _median_timed(
        lambda: find_violations_parallel(
            workload.relation, workload.cfds, shard_count=shard_count, workers=workers
        ),
        repeats,
    )


def time_parallel_repair(
    workload: DetectionWorkload,
    shard_count: Optional[int] = None,
    workers: Optional[int] = None,
    max_passes: int = 25,
    repeats: int = 1,
) -> Tuple[float, RepairResult]:
    """Median wall-clock of a full sharded parallel repair run.

    Mirrors :func:`time_repair` (whole fixpoint, consistency pre-check
    skipped) with the pool geometry made explicit.
    """
    config = RepairConfig(
        method="parallel",
        max_passes=max_passes,
        check_consistency=False,
        shard_count=shard_count,
        workers=workers,
    )
    return _median_timed(
        lambda: repair(workload.relation, workload.cfds, config=config),
        repeats,
    )


def time_query_split(
    workload: DetectionWorkload,
    form: str = "dnf",
    repeats: int = 1,
) -> Dict[str, float]:
    """Split detection time between the ``Q^C`` and ``Q^V`` queries (Figure 9(c))."""
    _total, run = time_detection(workload, strategy="per_cfd", form=form, repeats=repeats)
    return {"qc": run.seconds_for("qc"), "qv": run.seconds_for("qv")}
