"""Reporting of experiment series: aligned text tables and JSON artifacts.

:func:`format_table` renders the rows behind each figure for the terminal;
:func:`write_json` persists one experiment's series as a ``BENCH_<name>.json``
file — the machine-readable performance trajectory CI uploads as a workflow
artifact, so regressions show up as diffs between artifact files rather than
as folklore.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union


def format_table(rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """Format a list of homogeneous dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    rendered = [[_render(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def _render(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def write_json(
    directory: Union[str, Path],
    name: str,
    rows: Sequence[Dict[str, Any]],
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write one experiment's series as ``<directory>/BENCH_<name>.json``.

    The payload carries the rows verbatim plus enough environment context
    (timestamp, Python, platform) to compare artifacts across CI runs.
    Returns the written path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    payload = {
        "experiment": name,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "metadata": dict(metadata or {}),
        "rows": list(rows),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
