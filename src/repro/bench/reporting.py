"""Plain-text reporting of experiment series (the rows behind each figure)."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def format_table(rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """Format a list of homogeneous dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    rendered = [[_render(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def _render(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
