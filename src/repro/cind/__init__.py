"""Conditional inclusion dependencies (CINDs).

Section 7 of the paper names "data cleaning based on both CFDs and conditional
inclusion dependencies" as ongoing work; this subpackage supplies the CIND
side: the formalism, in-memory satisfaction checking, and SQL-based violation
detection across two relations, mirroring the structure of the CFD packages.
"""

from repro.cind.cind import CIND
from repro.cind.satisfaction import find_cind_violations, satisfies_cind
from repro.cind.sql import CINDQueryBuilder, detect_cind_violations_sql

__all__ = [
    "CIND",
    "CINDQueryBuilder",
    "detect_cind_violations_sql",
    "find_cind_violations",
    "satisfies_cind",
]
