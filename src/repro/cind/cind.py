"""The CIND formalism.

A conditional inclusion dependency (CIND) on relations ``R1`` and ``R2`` is a
pair ``ψ = (R1[X; Xp] ⊆ R2[Y; Yp], Tp)`` where

* ``X`` and ``Y`` are equal-length attribute lists of ``R1`` and ``R2`` — the
  *inclusion* attributes (``R1[X] ⊆ R2[Y]`` is the embedded standard IND);
* ``Xp`` (attributes of ``R1``) and ``Yp`` (attributes of ``R2``) carry the
  *condition*: a pattern tableau ``Tp`` over ``Xp ∪ Yp`` whose cells are
  constants or the unnamed variable ``_``.

Semantics: ``(I1, I2) |= ψ`` iff for every tuple ``t1 ∈ I1`` and pattern tuple
``tp ∈ Tp`` with ``t1[Xp] ≍ tp[Xp]`` there exists ``t2 ∈ I2`` such that
``t2[Y] = t1[X]`` and ``t2[Yp] ≍ tp[Yp]``.  For example,

    order[book_id; type = 'book'] ⊆ book[id; format = _]

says every order tuple whose ``type`` is ``'book'`` must reference an existing
book, whatever its format.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.core.pattern import PatternValue
from repro.errors import CFDError
from repro.relation.schema import Schema

CellSpec = Union[PatternValue, Any]


class CINDPattern:
    """One pattern tuple of a CIND: condition cells for ``Xp`` and ``Yp``."""

    __slots__ = ("_lhs", "_rhs")

    def __init__(self, lhs: Mapping[str, CellSpec], rhs: Mapping[str, CellSpec]) -> None:
        self._lhs: Dict[str, PatternValue] = {
            attr: PatternValue.coerce(cell) for attr, cell in lhs.items()
        }
        self._rhs: Dict[str, PatternValue] = {
            attr: PatternValue.coerce(cell) for attr, cell in rhs.items()
        }

    @property
    def lhs(self) -> Dict[str, PatternValue]:
        return dict(self._lhs)

    @property
    def rhs(self) -> Dict[str, PatternValue]:
        return dict(self._rhs)

    def lhs_cell(self, attribute: str) -> PatternValue:
        return self._lhs[attribute]

    def rhs_cell(self, attribute: str) -> PatternValue:
        return self._rhs[attribute]

    def matches_source(self, values: Mapping[str, Any]) -> bool:
        """Whether a source tuple's condition attributes match ``tp[Xp]``."""
        return all(cell.matches(values[attr]) for attr, cell in self._lhs.items())

    def matches_target(self, values: Mapping[str, Any]) -> bool:
        """Whether a target tuple's condition attributes match ``tp[Yp]``."""
        return all(cell.matches(values[attr]) for attr, cell in self._rhs.items())

    def key(self) -> Tuple[Tuple[Tuple[str, PatternValue], ...], Tuple[Tuple[str, PatternValue], ...]]:
        return (
            tuple(sorted(self._lhs.items())),
            tuple(sorted(self._rhs.items())),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CINDPattern):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        lhs = ", ".join(f"{attr}={cell.render()}" for attr, cell in self._lhs.items())
        rhs = ", ".join(f"{attr}={cell.render()}" for attr, cell in self._rhs.items())
        return f"CINDPattern([{lhs}] ; [{rhs}])"


class CIND:
    """A conditional inclusion dependency ``(R1[X; Xp] ⊆ R2[Y; Yp], Tp)``."""

    __slots__ = ("_source_attrs", "_target_attrs", "_source_cond", "_target_cond",
                 "_patterns", "_name", "_source_schema", "_target_schema")

    def __init__(
        self,
        source_attributes: Sequence[str],
        target_attributes: Sequence[str],
        source_condition: Sequence[str] = (),
        target_condition: Sequence[str] = (),
        patterns: Optional[Iterable[CINDPattern]] = None,
        name: Optional[str] = None,
        source_schema: Optional[Schema] = None,
        target_schema: Optional[Schema] = None,
    ) -> None:
        self._source_attrs = tuple(source_attributes)
        self._target_attrs = tuple(target_attributes)
        if not self._source_attrs:
            raise CFDError("a CIND needs at least one inclusion attribute on each side")
        if len(self._source_attrs) != len(self._target_attrs):
            raise CFDError(
                f"inclusion attribute lists must have equal length: "
                f"{self._source_attrs} vs {self._target_attrs}"
            )
        self._source_cond = tuple(source_condition)
        self._target_cond = tuple(target_condition)
        pattern_list = list(patterns) if patterns is not None else []
        if not pattern_list:
            # The standard IND is the CIND with a single all-wildcard pattern.
            pattern_list = [CINDPattern(
                {attr: "_" for attr in self._source_cond},
                {attr: "_" for attr in self._target_cond},
            )]
        for pattern in pattern_list:
            if set(pattern.lhs) != set(self._source_cond) or set(pattern.rhs) != set(self._target_cond):
                raise CFDError("CIND pattern attributes do not match the declared condition attributes")
        self._patterns = tuple(pattern_list)
        self._name = name
        self._source_schema = source_schema
        self._target_schema = target_schema
        for schema, attrs, cond in (
            (source_schema, self._source_attrs, self._source_cond),
            (target_schema, self._target_attrs, self._target_cond),
        ):
            if schema is not None:
                schema.validate_attributes(attrs)
                schema.validate_attributes(cond)

    # ------------------------------------------------------------------ construction
    @classmethod
    def build(
        cls,
        source_attributes: Sequence[str],
        target_attributes: Sequence[str],
        source_condition: Sequence[str] = (),
        target_condition: Sequence[str] = (),
        pattern_rows: Iterable[Sequence[CellSpec]] = (),
        name: Optional[str] = None,
    ) -> CIND:
        """Build a CIND from raw pattern rows (source condition cells, then target's).

        >>> cind = CIND.build(["book_id"], ["id"], ["type"], ["format"],
        ...                   [["book", "_"]], name="orders_reference_books")
        >>> len(cind.patterns)
        1
        """
        source_condition = tuple(source_condition)
        target_condition = tuple(target_condition)
        width = len(source_condition) + len(target_condition)
        patterns = []
        for row in pattern_rows:
            cells = list(row)
            if len(cells) != width:
                raise CFDError(f"CIND pattern row {row!r} has {len(cells)} cells, expected {width}")
            patterns.append(
                CINDPattern(
                    dict(zip(source_condition, cells[: len(source_condition)])),
                    dict(zip(target_condition, cells[len(source_condition):])),
                )
            )
        return cls(
            source_attributes,
            target_attributes,
            source_condition,
            target_condition,
            patterns,
            name=name,
        )

    # ------------------------------------------------------------------ accessors
    @property
    def source_attributes(self) -> Tuple[str, ...]:
        """The inclusion attributes ``X`` of the source relation."""
        return self._source_attrs

    @property
    def target_attributes(self) -> Tuple[str, ...]:
        """The inclusion attributes ``Y`` of the target relation."""
        return self._target_attrs

    @property
    def source_condition(self) -> Tuple[str, ...]:
        """The condition attributes ``Xp`` of the source relation."""
        return self._source_cond

    @property
    def target_condition(self) -> Tuple[str, ...]:
        """The condition attributes ``Yp`` of the target relation."""
        return self._target_cond

    @property
    def patterns(self) -> Tuple[CINDPattern, ...]:
        return self._patterns

    @property
    def name(self) -> str:
        if self._name:
            return self._name
        return f"cind_{'_'.join(self._source_attrs)}__{'_'.join(self._target_attrs)}"

    def is_standard_ind(self) -> bool:
        """True when the CIND has no condition attributes (or only wildcards)."""
        return all(
            all(cell.is_wildcard for cell in pattern.lhs.values())
            and all(cell.is_wildcard for cell in pattern.rhs.values())
            for pattern in self._patterns
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CIND):
            return NotImplemented
        return (
            self._source_attrs == other._source_attrs
            and self._target_attrs == other._target_attrs
            and self._source_cond == other._source_cond
            and self._target_cond == other._target_cond
            and set(self._patterns) == set(other._patterns)
        )

    def __hash__(self) -> int:
        return hash((self._source_attrs, self._target_attrs, frozenset(self._patterns)))

    def __repr__(self) -> str:
        return (
            f"CIND({self.name}: [{', '.join(self._source_attrs)}; {', '.join(self._source_cond)}] "
            f"⊆ [{', '.join(self._target_attrs)}; {', '.join(self._target_cond)}], "
            f"{len(self._patterns)} patterns)"
        )
