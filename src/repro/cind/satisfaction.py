"""In-memory CIND satisfaction and violation detection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Set, Tuple

from repro.cind.cind import CIND
from repro.relation.relation import Relation


@dataclass(frozen=True)
class CINDViolation:
    """A source tuple that matches a pattern's condition but has no target match."""

    cind_name: str
    pattern_index: int
    tuple_index: int
    key: Tuple[Any, ...]

    @property
    def kind(self) -> str:
        return "inclusion"


def find_cind_violations(source: Relation, target: Relation, cind: CIND) -> List[CINDViolation]:
    """Every violation of ``cind`` in ``(source, target)``.

    A violation is a source tuple ``t1`` and a pattern tuple ``tp`` such that
    ``t1[Xp] ≍ tp[Xp]`` but no target tuple ``t2`` has ``t2[Y] = t1[X]`` and
    ``t2[Yp] ≍ tp[Yp]``.

    >>> from repro.relation.schema import Schema
    >>> orders = Relation(Schema("orders", ["book_id", "type"]), [("b1", "book")])
    >>> books = Relation(Schema("books", ["id", "format"]), [])
    >>> cind = CIND.build(["book_id"], ["id"], ["type"], ["format"], [["book", "_"]])
    >>> len(find_cind_violations(orders, books, cind))
    1
    """
    violations: List[CINDViolation] = []
    # Pre-index the target per pattern: the set of Y-projections whose tuple
    # matches the pattern's target condition.
    target_keys_per_pattern: List[Set[Tuple[Any, ...]]] = []
    for pattern in cind.patterns:
        keys: Set[Tuple[Any, ...]] = set()
        for index in range(len(target)):
            row = target.row_dict(index)
            if pattern.matches_target(row):
                keys.add(target.project_row(index, cind.target_attributes))
        target_keys_per_pattern.append(keys)

    for index in range(len(source)):
        row = source.row_dict(index)
        key = source.project_row(index, cind.source_attributes)
        for pattern_index, pattern in enumerate(cind.patterns):
            if not pattern.matches_source(row):
                continue
            if key not in target_keys_per_pattern[pattern_index]:
                violations.append(
                    CINDViolation(
                        cind_name=cind.name,
                        pattern_index=pattern_index,
                        tuple_index=index,
                        key=key,
                    )
                )
    return violations


def satisfies_cind(source: Relation, target: Relation, cind: CIND) -> bool:
    """Whether ``(source, target) |= cind``."""
    return not find_cind_violations(source, target, cind)
