"""SQL-based CIND violation detection.

The detection query follows the same philosophy as the paper's CFD queries:
the pattern tableau is joined as an ordinary table so the query text is
bounded by the dependency's attribute lists, and violations are the source
tuples for which an anti-join (``NOT EXISTS``) against the target relation
finds no partner satisfying both the value equalities and the target-side
condition.
"""

from __future__ import annotations

import sqlite3
from typing import List, Optional, Tuple

from repro.cind.cind import CIND
from repro.cind.satisfaction import CINDViolation
from repro.relation.relation import Relation
from repro.sql.dialect import DEFAULT_DIALECT, SQLDialect
from repro.sql.loader import load_relation, sanitize_name


class CINDQueryBuilder:
    """Builds the violation-detection SQL for one CIND."""

    def __init__(
        self,
        cind: CIND,
        source_table: str,
        target_table: str,
        tableau_table: str,
        dialect: SQLDialect = DEFAULT_DIALECT,
    ) -> None:
        self.cind = cind
        self.source_table = source_table
        self.target_table = target_table
        self.tableau_table = tableau_table
        self.dialect = dialect

    # ------------------------------------------------------------------ DDL / loading
    def tableau_ddl(self) -> str:
        columns = [f"{self.dialect.quote_identifier(self.dialect.pattern_id_column)} INTEGER PRIMARY KEY"]
        columns.extend(
            self.dialect.quote_identifier(self.dialect.lhs_column(attr))
            for attr in self.cind.source_condition
        )
        columns.extend(
            self.dialect.quote_identifier(self.dialect.rhs_column(attr))
            for attr in self.cind.target_condition
        )
        return (
            f"CREATE TABLE {self.dialect.quote_identifier(self.tableau_table)} "
            f"({', '.join(columns)})"
        )

    def tableau_rows(self) -> List[Tuple]:
        rows = []
        for pattern_index, pattern in enumerate(self.cind.patterns):
            cells: List = [pattern_index]
            cells.extend(
                self.dialect.encode_cell(pattern.lhs_cell(attr))
                for attr in self.cind.source_condition
            )
            cells.extend(
                self.dialect.encode_cell(pattern.rhs_cell(attr))
                for attr in self.cind.target_condition
            )
            rows.append(tuple(cells))
        return rows

    # ------------------------------------------------------------------ query
    def violation_sql(self) -> str:
        """Source tuples matching a pattern's condition with no target partner."""
        source = self.dialect.quote_identifier(self.source_table)
        target = self.dialect.quote_identifier(self.target_table)
        tableau = self.dialect.quote_identifier(self.tableau_table)
        index_col = self.dialect.column("t1", self.dialect.index_column)
        pattern_id = self.dialect.column("tp", self.dialect.pattern_id_column)

        source_match = [
            self.dialect.match_predicate(
                self.dialect.column("t1", attr),
                self.dialect.column("tp", self.dialect.lhs_column(attr)),
            )
            for attr in self.cind.source_condition
        ]
        value_join = [
            f"{self.dialect.column('t2', target_attr)} = {self.dialect.column('t1', source_attr)}"
            for source_attr, target_attr in zip(
                self.cind.source_attributes, self.cind.target_attributes
            )
        ]
        target_match = [
            self.dialect.match_predicate(
                self.dialect.column("t2", attr),
                self.dialect.column("tp", self.dialect.rhs_column(attr)),
            )
            for attr in self.cind.target_condition
        ]
        outer_where = source_match or ["1 = 1"]
        inner_where = value_join + target_match
        return (
            f"SELECT {index_col} AS tuple_index, {pattern_id} AS pattern_index\n"
            f"FROM {source} t1, {tableau} tp\n"
            f"WHERE {' AND '.join(outer_where)}\n"
            f"  AND NOT EXISTS (\n"
            f"    SELECT 1 FROM {target} t2\n"
            f"    WHERE {' AND '.join(inner_where)}\n"
            f"  )"
        )


def detect_cind_violations_sql(
    source: Relation,
    target: Relation,
    cind: CIND,
    connection: Optional[sqlite3.Connection] = None,
    dialect: SQLDialect = DEFAULT_DIALECT,
) -> List[CINDViolation]:
    """Load both relations into SQLite and run the CIND detection query."""
    own_connection = connection is None
    connection = connection or sqlite3.connect(":memory:")
    try:
        source_table = load_relation(connection, source, dialect, table_name="cind_source")
        target_table = load_relation(connection, target, dialect, table_name="cind_target")
        tableau_table = f"cind_tab_{sanitize_name(cind.name)}"
        builder = CINDQueryBuilder(cind, source_table, target_table, tableau_table, dialect)
        connection.execute(f"DROP TABLE IF EXISTS {dialect.quote_identifier(tableau_table)}")
        connection.execute(builder.tableau_ddl())
        width = 1 + len(cind.source_condition) + len(cind.target_condition)
        placeholders = ", ".join(["?"] * width)
        connection.executemany(
            f"INSERT INTO {dialect.quote_identifier(tableau_table)} VALUES ({placeholders})",
            builder.tableau_rows(),
        )
        rows = connection.execute(builder.violation_sql()).fetchall()
        violations = []
        seen = set()
        for tuple_index, pattern_index in rows:
            if (tuple_index, pattern_index) in seen:
                continue
            seen.add((tuple_index, pattern_index))
            violations.append(
                CINDViolation(
                    cind_name=cind.name,
                    pattern_index=pattern_index,
                    tuple_index=tuple_index,
                    key=source.project_row(tuple_index, cind.source_attributes),
                )
            )
        return violations
    finally:
        if own_connection:
            connection.close()
