"""Command-line interface: detect, repair, discover and check CFDs on CSV data.

The CLI turns the library into a small standalone data-cleaning tool::

    python -m repro detect   --data customers.csv --cfds rules.cfd
    python -m repro repair   --data customers.csv --cfds rules.cfd --output fixed.csv
    python -m repro discover --data customers.csv --min-support 5 --output mined.cfd
    python -m repro check    --cfds rules.cfd
    python -m repro show     --cfds rules.cfd --json

CSV files must have a header row; every column is treated as a string
attribute.  CFD rule files use the text format of
:mod:`repro.io.text_format` (``.cfd``) or the JSON format (``.json``).
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.cfd import CFD
from repro.core.violations import ViolationReport
from repro.detection.engine import DETECTION_METHODS, detect_violations
from repro.discovery.cfd_discovery import discover_constant_cfds
from repro.errors import ReproError
from repro.io.json_format import cfds_from_json, cfds_to_json
from repro.io.text_format import format_cfds, read_cfd_file, write_cfd_file
from repro.reasoning.consistency import is_consistent
from repro.reasoning.mincover import minimal_cover
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.repair.heuristic import REPAIR_METHODS, repair


# ---------------------------------------------------------------------------
# loading helpers
# ---------------------------------------------------------------------------
def load_relation_csv(path: str, relation_name: Optional[str] = None) -> Relation:
    """Load a CSV file (header row required) as a string-typed relation."""
    csv_path = Path(path)
    with open(csv_path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if not header:
            raise ReproError(f"{path}: CSV file is empty or has no header row")
        schema = Schema(relation_name or csv_path.stem, header)
        relation = Relation(schema)
        for row in reader:
            if len(row) != len(header):
                raise ReproError(
                    f"{path}: row {len(relation) + 2} has {len(row)} fields, expected {len(header)}"
                )
            relation.insert(tuple(row))
    return relation


def load_cfds(path: str) -> List[CFD]:
    """Load CFDs from a ``.cfd`` text file or a ``.json`` file."""
    if path.endswith(".json"):
        return cfds_from_json(Path(path).read_text(encoding="utf-8"))
    return read_cfd_file(path)


def _report_payload(report: ViolationReport, relation: Relation) -> dict:
    return {
        "summary": report.summary(),
        "violating_tuples": sorted(report.violating_indices()),
        "violations": [
            {
                "kind": violation.kind,
                "cfd": violation.cfd_name,
                "pattern_index": violation.pattern_index,
                "tuples": list(violation.tuple_indices),
                **(
                    {
                        "attribute": violation.attribute,
                        "expected": violation.expected,
                        "actual": violation.actual,
                    }
                    if violation.kind == "constant"
                    else {"group_attributes": list(violation.attributes),
                          "group_key": list(violation.group_key)}
                ),
            }
            for violation in report
        ],
    }


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------
def cmd_detect(args: argparse.Namespace) -> int:
    relation = load_relation_csv(args.data)
    cfds = load_cfds(args.cfds)
    report = detect_violations(
        relation, cfds, method=args.method, strategy=args.strategy, form=args.form
    )
    payload = _report_payload(report, relation)
    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2), encoding="utf-8")
    summary = payload["summary"]
    print(
        f"{len(relation)} tuples checked against {len(cfds)} CFDs: "
        f"{summary['violations']} violations over {summary['violating_tuples']} tuples."
    )
    if not args.quiet:
        for violation in payload["violations"][: args.limit]:
            if violation["kind"] == "constant":
                print(
                    f"  [constant] {violation['cfd']}: tuple {violation['tuples'][0]} has "
                    f"{violation['attribute']} = {violation['actual']!r}, expected {violation['expected']!r}"
                )
            else:
                print(
                    f"  [variable] {violation['cfd']}: tuples {violation['tuples']} disagree "
                    f"on the RHS for {dict(zip(violation['group_attributes'], violation['group_key']))}"
                )
        hidden = len(payload["violations"]) - args.limit
        if hidden > 0:
            print(f"  ... and {hidden} more (use --limit to show them)")
    return 1 if report else 0


def cmd_repair(args: argparse.Namespace) -> int:
    relation = load_relation_csv(args.data)
    cfds = load_cfds(args.cfds)
    result = repair(relation, cfds, max_passes=args.max_passes, method=args.method)
    result.relation.to_csv(args.output)
    print(
        f"Repaired {args.data}: {len(result.changes)} cell changes "
        f"(cost {result.total_cost:.2f}) in {result.passes} pass(es); "
        f"clean = {result.clean}. Wrote {args.output}."
    )
    if args.changes:
        for change in result.changes:
            print(
                f"  tuple {change.tuple_index}, {change.attribute}: "
                f"{change.old_value!r} -> {change.new_value!r} ({change.reason})"
            )
    return 0 if result.clean else 1


def cmd_discover(args: argparse.Namespace) -> int:
    relation = load_relation_csv(args.data)
    attributes = args.attributes.split(",") if args.attributes else None
    cfds = discover_constant_cfds(
        relation,
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        max_lhs_size=args.max_lhs,
        attributes=attributes,
    )
    print(f"Discovered {len(cfds)} constant CFDs "
          f"({sum(len(cfd.tableau) for cfd in cfds)} patterns) from {len(relation)} tuples.")
    rendered = cfds_to_json(cfds) if args.json else format_cfds(cfds)
    if args.output:
        Path(args.output).write_text(rendered, encoding="utf-8")
        print(f"Wrote {args.output}.")
    else:
        print(rendered)
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    cfds = load_cfds(args.cfds)
    consistent = is_consistent(cfds)
    print(f"{len(cfds)} CFDs loaded from {args.cfds}; consistent: {consistent}")
    if not consistent:
        return 1
    if args.mincover:
        cover = minimal_cover(cfds)
        print(f"Minimal cover: {len(cover)} normal-form CFDs.")
        print(format_cfds(cover))
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    cfds = load_cfds(args.cfds)
    if args.json:
        print(cfds_to_json(cfds))
    else:
        for cfd in cfds:
            print(cfd.render())
            print()
    return 0


# ---------------------------------------------------------------------------
# argument parsing
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Conditional functional dependencies for data cleaning (ICDE 2007 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    detect = subparsers.add_parser("detect", help="detect CFD violations in a CSV file")
    detect.add_argument("--data", required=True, help="CSV file with a header row")
    detect.add_argument("--cfds", required=True, help=".cfd or .json rule file")
    detect.add_argument(
        "--method",
        choices=list(DETECTION_METHODS),
        default="sql",
        help="detection backend: the SQL queries of Section 4 (default), the "
        "pure-Python oracle, or the partition-index engine",
    )
    detect.add_argument("--strategy", choices=["per_cfd", "merged"], default="per_cfd")
    detect.add_argument("--form", choices=["cnf", "dnf"], default="dnf")
    detect.add_argument("--output", help="write the full report as JSON to this path")
    detect.add_argument("--limit", type=int, default=20, help="violations to print (default 20)")
    detect.add_argument("--quiet", action="store_true", help="print only the summary line")
    detect.set_defaults(handler=cmd_detect)

    repair_cmd = subparsers.add_parser("repair", help="repair a CSV file so it satisfies the CFDs")
    repair_cmd.add_argument("--data", required=True)
    repair_cmd.add_argument("--cfds", required=True)
    repair_cmd.add_argument("--output", required=True, help="path of the repaired CSV")
    repair_cmd.add_argument("--max-passes", type=int, default=25)
    repair_cmd.add_argument(
        "--method",
        choices=list(REPAIR_METHODS),
        default="incremental",
        help="detection engine driving the repair passes: the delta-maintained "
        "incremental state (default), full re-detection over partition "
        "indexes, or the pure-Python scan oracle; all produce the same repair",
    )
    repair_cmd.add_argument("--changes", action="store_true", help="print every cell change")
    repair_cmd.set_defaults(handler=cmd_repair)

    discover = subparsers.add_parser("discover", help="mine constant CFDs from a CSV file")
    discover.add_argument("--data", required=True)
    discover.add_argument("--min-support", type=int, default=5)
    discover.add_argument("--min-confidence", type=float, default=1.0)
    discover.add_argument("--max-lhs", type=int, default=2)
    discover.add_argument("--attributes", help="comma-separated attribute subset to profile")
    discover.add_argument("--output", help="write the mined rules to this path")
    discover.add_argument("--json", action="store_true", help="emit JSON instead of the text format")
    discover.set_defaults(handler=cmd_discover)

    check = subparsers.add_parser("check", help="check a rule file for consistency")
    check.add_argument("--cfds", required=True)
    check.add_argument("--mincover", action="store_true", help="also print a minimal cover")
    check.set_defaults(handler=cmd_check)

    show = subparsers.add_parser("show", help="pretty-print a rule file")
    show.add_argument("--cfds", required=True)
    show.add_argument("--json", action="store_true")
    show.set_defaults(handler=cmd_show)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
