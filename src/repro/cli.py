"""Command-line interface: a subcommand per stage of the cleaning pipeline.

The CLI turns the library into a small standalone data-cleaning tool::

    python -m repro detect   --data customers.csv --cfds rules.cfd
    python -m repro repair   --data customers.csv --cfds rules.cfd --output fixed.csv
    python -m repro clean    --data customers.csv --cfds rules.cfd --output clean.csv
    python -m repro clean    --data tax.csv --cfds tax.cfd --repair-method parallel --workers 4
    python -m repro generate --dataset tax --size 10000 --output tax.csv --rules tax.cfd
    python -m repro bench    backends --scale 0.1
    python -m repro discover --data customers.csv --min-support 5 --output mined.cfd
    python -m repro lint     --cfds rules.cfd --json
    python -m repro lint     --cfds rules.cfd --optimize minimal.cfd
    python -m repro check    --cfds rules.cfd
    python -m repro show     --cfds rules.cfd --json

``detect``/``repair``/``clean`` sit on top of the pipeline API
(:mod:`repro.pipeline`): backends are resolved through the registry — any
name from :func:`repro.registry.detector_names` /
:func:`repro.registry.repairer_names`, or ``auto`` to pick per workload.

CSV files must have a header row; every column is treated as a string
attribute.  CFD rule files use the text format of
:mod:`repro.io.text_format` (``.cfd``) or the JSON format (``.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.config import AUTO, DetectionConfig, RepairConfig
from repro.core.cfd import CFD
from repro.core.violations import ViolationReport
from repro.datagen.cfd_catalog import zip_state_cfd
from repro.datagen.cust import cust_cfds, cust_relation
from repro.datagen.generator import TaxRecordGenerator
from repro.detection.engine import detect_violations
from repro.discovery.cfd_discovery import discover_constant_cfds
from repro.errors import ReproError
from repro.io.json_format import cfds_from_json, cfds_to_json
from repro.io.sources import CSVSource, RowSource, SQLiteSource
from repro.io.text_format import format_cfds, read_cfd_file, write_cfd_file
from repro.analysis import analyze
from repro.pipeline import Cleaner
from repro.relation.mmap_store import MmapColumnStore
from repro.registry import detector_names, repairer_names
from repro.relation.relation import Relation
from repro.repair.heuristic import repair


# ---------------------------------------------------------------------------
# loading helpers
# ---------------------------------------------------------------------------
def load_relation_csv(path: str, relation_name: Optional[str] = None) -> Relation:
    """Load a CSV file (header row required) as a string-typed relation."""
    return CSVSource(path, relation_name=relation_name).to_relation()


def load_cfds(path: str) -> List[CFD]:
    """Load CFDs from a ``.cfd`` text file or a ``.json`` file."""
    if path.endswith(".json"):
        return cfds_from_json(Path(path).read_text(encoding="utf-8"))
    return read_cfd_file(path)


def _data_source(args: argparse.Namespace) -> RowSource:
    """The row source named by ``--data`` (CSV) or ``--sqlite``/``--table``."""
    if args.data and args.sqlite:
        raise ReproError("--data and --sqlite are mutually exclusive; pass one input")
    if args.sqlite:
        return SQLiteSource(args.sqlite, args.table)
    if not args.data:
        raise ReproError("either --data (CSV) or --sqlite/--table is required")
    return CSVSource(args.data)


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--data", help="CSV file with a header row")
    parser.add_argument("--sqlite", help="SQLite database file (alternative to --data)")
    parser.add_argument("--table", default="data", help="table to read with --sqlite (default: data)")


def _add_storage_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--storage",
        choices=["rows", "columnar", "mmap"],
        help="storage layer for the columnar-capable engines: dictionary-encoded "
        "columns (default, also via REPRO_STORAGE), the legacy row tuples, or "
        "memory-mapped spill files for out-of-core workloads; outputs are "
        "identical either way",
    )
    parser.add_argument(
        "--spill-dir",
        help="base directory for --storage mmap spill files (default: "
        "REPRO_SPILL_DIR, then the system temp dir); each run spills into "
        "its own subdirectory, removed on success and preserved on crash",
    )
    parser.add_argument(
        "--memory-budget-mb",
        type=int,
        help="approximate ingestion memory budget for --storage mmap; sizes "
        "the streaming chunks so raw rows in flight stay within it",
    )


def _add_kernel_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        choices=["python", "numpy", "auto"],
        help="hot-loop implementation for the columnar engines: the pure-Python "
        "reference, the numpy-vectorised kernels (requires the [fast] extra), "
        "or auto to use numpy when installed (default, also via REPRO_KERNEL); "
        "outputs are identical either way",
    )


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        help="worker processes for the parallel backend (default: one per CPU); "
        "requires a parallel or auto method",
    )
    parser.add_argument(
        "--shard-count",
        type=int,
        help="shards for the parallel backend (default: the worker count)",
    )


def _release_spill(*relations) -> None:
    """Remove the spill run directories of mmap-backed relations.

    Called when a command completes (successfully or with a dirty result):
    the lifecycle contract is *cleanup on completion, preserved on crash* —
    an exception propagates past this call, leaving the spill files in place
    for debugging.
    """
    released = set()
    for relation in relations:
        if isinstance(relation, MmapColumnStore) and id(relation) not in released:
            released.add(id(relation))
            relation.release()


def _report_payload(report: ViolationReport, relation: Relation) -> dict:
    return {
        "summary": report.summary(),
        "violating_tuples": sorted(report.violating_indices()),
        "violations": [
            {
                "kind": violation.kind,
                "cfd": violation.cfd_name,
                "pattern_index": violation.pattern_index,
                "tuples": list(violation.tuple_indices),
                **(
                    {
                        "attribute": violation.attribute,
                        "expected": violation.expected,
                        "actual": violation.actual,
                    }
                    if violation.kind == "constant"
                    else {"group_attributes": list(violation.attributes),
                          "group_key": list(violation.group_key)}
                ),
            }
            for violation in report
        ],
    }


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------
def cmd_detect(args: argparse.Namespace) -> int:
    source = _data_source(args)
    if args.storage == "mmap":
        # Out-of-core ingestion: stream the rows straight into spilled code
        # columns instead of materialising them as tuples first.
        relation = source.to_relation(storage="mmap", spill_dir=args.spill_dir)
    else:
        relation = source.to_relation()
    cfds = load_cfds(args.cfds)
    # strategy/form are SQL-only; forwarding them for other backends would
    # (rightly) be rejected by DetectionConfig.
    config = DetectionConfig(
        method=args.method,
        strategy=args.strategy if args.method == "sql" else None,
        form=args.form if args.method == "sql" else None,
        workers=args.workers,
        shard_count=args.shard_count,
        storage=args.storage,
        kernel=args.kernel,
        spill_dir=args.spill_dir,
        memory_budget_mb=args.memory_budget_mb,
    )
    report = detect_violations(relation, cfds, config=config)
    payload = _report_payload(report, relation)
    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2), encoding="utf-8")
    summary = payload["summary"]
    print(
        f"{len(relation)} tuples checked against {len(cfds)} CFDs: "
        f"{summary['violations']} violations over {summary['violating_tuples']} tuples."
    )
    if not args.quiet:
        for violation in payload["violations"][: args.limit]:
            if violation["kind"] == "constant":
                print(
                    f"  [constant] {violation['cfd']}: tuple {violation['tuples'][0]} has "
                    f"{violation['attribute']} = {violation['actual']!r}, expected {violation['expected']!r}"
                )
            else:
                print(
                    f"  [variable] {violation['cfd']}: tuples {violation['tuples']} disagree "
                    f"on the RHS for {dict(zip(violation['group_attributes'], violation['group_key']))}"
                )
        hidden = len(payload["violations"]) - args.limit
        if hidden > 0:
            print(f"  ... and {hidden} more (use --limit to show them)")
    _release_spill(relation)
    return 1 if report else 0


def cmd_repair(args: argparse.Namespace) -> int:
    source = _data_source(args)
    if args.storage == "mmap":
        relation = source.to_relation(storage="mmap", spill_dir=args.spill_dir)
    else:
        relation = source.to_relation()
    cfds = load_cfds(args.cfds)
    config = RepairConfig(
        method=args.method,
        max_passes=args.max_passes,
        workers=args.workers,
        shard_count=args.shard_count,
        storage=args.storage,
        kernel=args.kernel,
        spill_dir=args.spill_dir,
        memory_budget_mb=args.memory_budget_mb,
    )
    result = repair(relation, cfds, config=config)
    result.relation.to_csv(args.output)
    _release_spill(relation, result.relation)
    print(
        f"Repaired {args.data or args.sqlite}: {len(result.changes)} cell changes "
        f"(cost {result.total_cost:.2f}) in {result.passes} pass(es); "
        f"clean = {result.clean}. Wrote {args.output}."
    )
    if args.changes:
        for change in result.changes:
            print(
                f"  tuple {change.tuple_index}, {change.attribute}: "
                f"{change.old_value!r} -> {change.new_value!r} ({change.reason})"
            )
    return 0 if result.clean else 1


def cmd_clean(args: argparse.Namespace) -> int:
    source = _data_source(args)
    cfds = load_cfds(args.cfds)
    cleaner = Cleaner(
        detection=DetectionConfig(
            method=args.detect_method,
            workers=args.workers,
            shard_count=args.shard_count,
            storage=args.storage,
            kernel=args.kernel,
            spill_dir=args.spill_dir,
            memory_budget_mb=args.memory_budget_mb,
        ),
        repair=RepairConfig(
            method=args.repair_method,
            max_passes=args.max_passes,
            workers=args.workers,
            shard_count=args.shard_count,
            storage=args.storage,
            kernel=args.kernel,
            spill_dir=args.spill_dir,
            memory_budget_mb=args.memory_budget_mb,
        ),
        verify_method=args.verify_method,
    )
    result = cleaner.clean(source, cfds)
    if args.output:
        result.relation.to_csv(args.output)
    _release_spill(result.relation)
    summary = result.summary()
    if args.audit:
        audit = dict(summary)
        audit["cell_changes"] = [
            {
                "tuple": change.tuple_index,
                "attribute": change.attribute,
                "old": change.old_value,
                "new": change.new_value,
                "cost": change.cost,
                "reason": change.reason,
            }
            for change in result.changes
        ]
        Path(args.audit).write_text(json.dumps(audit, indent=2), encoding="utf-8")
    print(
        f"Cleaned {summary['source']}: {summary['initial_violations']} violations "
        f"-> {summary['final_violations']} in {result.rounds} round(s) / "
        f"{result.passes} pass(es); {summary['changes']} cell changes "
        f"(cost {summary['total_cost']:.2f}); backends "
        f"detect={result.backends['detect']} repair={result.backends['repair']} "
        f"verify={result.backends['verify']}."
        + (f" Wrote {args.output}." if args.output else "")
    )
    if not result.clean:
        print("warning: the relation is still dirty (pass budget exhausted?)", file=sys.stderr)
    return 0 if result.clean else 1


def cmd_generate(args: argparse.Namespace) -> int:
    if args.stream:
        # Stream rows straight to the CSV — O(1) memory regardless of
        # --size, identical output to the materialised path (same seed,
        # same RNG call order inside the generator).
        import csv

        from repro.datagen.cust import cust_schema, iter_cust_rows
        from repro.datagen.generator import tax_schema

        if args.dataset == "cust":
            schema, rows, rules = cust_schema(), iter_cust_rows(), cust_cfds()
        else:
            generator = TaxRecordGenerator(
                size=args.size, noise=args.noise, seed=args.seed
            )
            schema, rows, rules = tax_schema(), generator.iter_rows(), [zip_state_cfd()]
        count = 0
        with open(args.output, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(schema.names)
            for row in rows:
                writer.writerow(row)
                count += 1
        print(f"Wrote {count} {args.dataset} tuples to {args.output} (streamed).")
        if args.rules:
            write_cfd_file(args.rules, rules)
            print(f"Wrote {len(rules)} matching CFDs to {args.rules}.")
        return 0
    if args.dataset == "cust":
        relation = cust_relation()
        rules = cust_cfds()
    else:
        relation = TaxRecordGenerator(
            size=args.size, noise=args.noise, seed=args.seed
        ).generate_relation()
        rules = [zip_state_cfd()]
    relation.to_csv(args.output)
    print(f"Wrote {len(relation)} {args.dataset} tuples to {args.output}.")
    if args.rules:
        write_cfd_file(args.rules, rules)
        print(f"Wrote {len(rules)} matching CFDs to {args.rules}.")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.__main__ import main as bench_main

    argv = list(args.experiments)
    if args.scale is not None:
        argv += ["--scale", str(args.scale)]
    if args.json_dir:
        argv += ["--json-dir", args.json_dir]
    return bench_main(argv)


def cmd_discover(args: argparse.Namespace) -> int:
    relation = load_relation_csv(args.data)
    attributes = args.attributes.split(",") if args.attributes else None
    cfds = discover_constant_cfds(
        relation,
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        max_lhs_size=args.max_lhs,
        attributes=attributes,
    )
    print(f"Discovered {len(cfds)} constant CFDs "
          f"({sum(len(cfd.tableau) for cfd in cfds)} patterns) from {len(relation)} tuples.")
    rendered = cfds_to_json(cfds) if args.json else format_cfds(cfds)
    if args.output:
        Path(args.output).write_text(rendered, encoding="utf-8")
        print(f"Wrote {args.output}.")
    else:
        print(rendered)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    cfds = load_cfds(args.cfds)
    schema = None
    if args.data or args.sqlite:
        # An optional data source contributes only its *schema* — the
        # conformance checks (CFD006/CFD007) need attribute names and
        # domains, never the rows.
        schema = _data_source(args).schema
    report = analyze(
        cfds,
        schema,
        detection=DetectionConfig(method=args.detect_method),
        repair=RepairConfig(method=args.repair_method),
        deep=not args.fast,
        optimize=bool(args.optimize),
    )
    if args.json:
        print(report.to_json())
    else:
        print(f"{len(cfds)} CFDs loaded from {args.cfds}")
        print(report.render())
    if args.optimize:
        # Status lines go to stderr so --json output stays parseable.
        status = sys.stderr if args.json else sys.stdout
        if report.optimized is None:
            print("cannot optimize an inconsistent rule set", file=sys.stderr)
        else:
            write_cfd_file(args.optimize, report.optimized)
            before = sum(len(cfd.tableau) for cfd in cfds)
            after = sum(len(cfd.tableau) for cfd in report.optimized)
            print(
                f"Wrote minimal cover ({after} patterns, down from {before}) "
                f"to {args.optimize}.",
                file=status,
            )
    return 1 if report.has_errors else 0


def cmd_check(args: argparse.Namespace) -> int:
    cfds = load_cfds(args.cfds)
    # The same analysis the pipeline gate and `repro lint` run — the CLI can
    # never disagree with them about what "consistent" means.
    report = analyze(cfds, deep=False, optimize=args.mincover)
    consistent = not report.by_code("CFD001")
    print(f"{len(cfds)} CFDs loaded from {args.cfds}; consistent: {consistent}")
    if not consistent:
        return 1
    if args.mincover:
        cover = report.optimized or []
        print(f"Minimal cover: {len(cover)} normal-form CFDs.")
        print(format_cfds(cover))
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    cfds = load_cfds(args.cfds)
    if args.json:
        print(cfds_to_json(cfds))
    else:
        for cfd in cfds:
            print(cfd.render())
            print()
    return 0


# ---------------------------------------------------------------------------
# argument parsing
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Conditional functional dependencies for data cleaning (ICDE 2007 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    detect_choices = list(detector_names()) + [AUTO]
    repair_choices = list(repairer_names()) + [AUTO]

    detect = subparsers.add_parser("detect", help="detect CFD violations")
    _add_data_arguments(detect)
    detect.add_argument("--cfds", required=True, help=".cfd or .json rule file")
    detect.add_argument(
        "--method",
        choices=detect_choices,
        default="sql",
        help="detection backend: the SQL queries of Section 4 (default), the "
        "pure-Python oracle, the partition-index engine, any registered "
        "backend, or 'auto' to pick per workload",
    )
    detect.add_argument("--strategy", choices=["per_cfd", "merged"], default="per_cfd")
    detect.add_argument("--form", choices=["cnf", "dnf"], default="dnf")
    _add_storage_argument(detect)
    _add_kernel_argument(detect)
    _add_parallel_arguments(detect)
    detect.add_argument("--output", help="write the full report as JSON to this path")
    detect.add_argument("--limit", type=int, default=20, help="violations to print (default 20)")
    detect.add_argument("--quiet", action="store_true", help="print only the summary line")
    detect.set_defaults(handler=cmd_detect)

    repair_cmd = subparsers.add_parser("repair", help="repair the data so it satisfies the CFDs")
    _add_data_arguments(repair_cmd)
    repair_cmd.add_argument("--cfds", required=True)
    repair_cmd.add_argument("--output", required=True, help="path of the repaired CSV")
    repair_cmd.add_argument("--max-passes", type=int, default=25)
    repair_cmd.add_argument(
        "--method",
        choices=repair_choices,
        default="incremental",
        help="detection engine driving the repair passes: the delta-maintained "
        "incremental state (default), full re-detection over partition "
        "indexes, the pure-Python scan oracle, any registered engine, or "
        "'auto' to pick per workload; all produce the same repair",
    )
    repair_cmd.add_argument("--changes", action="store_true", help="print every cell change")
    _add_storage_argument(repair_cmd)
    _add_kernel_argument(repair_cmd)
    _add_parallel_arguments(repair_cmd)
    repair_cmd.set_defaults(handler=cmd_repair)

    clean = subparsers.add_parser(
        "clean", help="run the full detect -> repair -> verify pipeline"
    )
    _add_data_arguments(clean)
    clean.add_argument("--cfds", required=True)
    clean.add_argument("--output", help="path of the cleaned CSV")
    clean.add_argument("--audit", help="write the full audit trail as JSON to this path")
    clean.add_argument("--detect-method", choices=detect_choices, default=AUTO)
    clean.add_argument("--repair-method", choices=repair_choices, default=AUTO)
    clean.add_argument(
        "--verify-method",
        choices=detect_choices,
        default="inmemory",
        help="backend for the final verification (default: the pure-Python oracle)",
    )
    clean.add_argument("--max-passes", type=int, default=25)
    _add_storage_argument(clean)
    _add_kernel_argument(clean)
    _add_parallel_arguments(clean)
    clean.set_defaults(handler=cmd_clean)

    generate = subparsers.add_parser("generate", help="generate a synthetic workload CSV")
    generate.add_argument(
        "--dataset",
        choices=["cust", "tax"],
        default="tax",
        help="the paper's running example (cust, 6 tuples) or the Section 5 "
        "tax-records generator",
    )
    generate.add_argument("--size", type=int, default=10_000, help="tax tuples to generate")
    generate.add_argument("--noise", type=float, default=0.05, help="fraction of dirty tuples")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True, help="path of the generated CSV")
    generate.add_argument(
        "--stream",
        action="store_true",
        help="write rows to the CSV as they are generated (O(1) memory; "
        "identical output, suited to 1M-10M row inputs)",
    )
    generate.add_argument("--rules", help="also write the matching CFDs to this rule file")
    generate.set_defaults(handler=cmd_generate)

    bench = subparsers.add_parser("bench", help="run the Figure 9 experiment drivers")
    bench.add_argument("experiments", nargs="*", help="experiments to run (default: all)")
    bench.add_argument("--scale", type=float, default=None, help="workload scale factor")
    bench.add_argument(
        "--json-dir",
        help="also write each series as BENCH_<experiment>.json in this directory",
    )
    bench.set_defaults(handler=cmd_bench)

    discover = subparsers.add_parser("discover", help="mine constant CFDs from a CSV file")
    discover.add_argument("--data", required=True)
    discover.add_argument("--min-support", type=int, default=5)
    discover.add_argument("--min-confidence", type=float, default=1.0)
    discover.add_argument("--max-lhs", type=int, default=2)
    discover.add_argument("--attributes", help="comma-separated attribute subset to profile")
    discover.add_argument("--output", help="write the mined rules to this path")
    discover.add_argument("--json", action="store_true", help="emit JSON instead of the text format")
    discover.set_defaults(handler=cmd_discover)

    lint = subparsers.add_parser(
        "lint",
        help="statically analyse a rule file: consistency (with a "
        "counterexample witness), implication-based redundancy, and "
        "engine-specific hazards, as stable CFD0xx/CFD1xx diagnostics",
    )
    lint.add_argument("--cfds", required=True, help=".cfd or .json rule file")
    _add_data_arguments(lint)
    lint.add_argument(
        "--detect-method",
        choices=detect_choices,
        default=AUTO,
        help="detection backend the rules are destined for; engine-specific "
        "hazards become warnings when their engine is explicitly requested",
    )
    lint.add_argument(
        "--repair-method",
        choices=repair_choices,
        default=AUTO,
        help="repair engine the rules are destined for (same effect as "
        "--detect-method on hazard severity)",
    )
    lint.add_argument(
        "--fast",
        action="store_true",
        help="skip the deep implication checks (CFD002/CFD003) — the same "
        "reduced pass the pipeline pre-flight gate runs",
    )
    lint.add_argument(
        "--optimize",
        metavar="OUT",
        help="also rewrite the rule set to its minimal cover (Figure 4 of "
        "the paper) and write it to this rule file",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    lint.set_defaults(handler=cmd_lint)

    check = subparsers.add_parser("check", help="check a rule file for consistency")
    check.add_argument("--cfds", required=True)
    check.add_argument("--mincover", action="store_true", help="also print a minimal cover")
    check.set_defaults(handler=cmd_check)

    show = subparsers.add_parser("show", help="pretty-print a rule file")
    show.add_argument("--cfds", required=True)
    show.add_argument("--json", action="store_true")
    show.set_defaults(handler=cmd_show)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
