"""Typed configuration objects for the cleaning pipeline.

:class:`DetectionConfig` and :class:`RepairConfig` replace the loose
``method=``/``strategy=``/``form=`` keyword soup that used to be threaded
through :func:`repro.detection.engine.detect_violations` and
:func:`repro.repair.heuristic.repair`.  Both are frozen dataclasses that
validate themselves on construction, so an impossible combination —
``strategy="merged"`` with the in-memory backend, say — fails loudly at
config-build time instead of being silently ignored deep in a backend.

Backend *names* are not validated here (the registry owns the set of names,
including ones registered by user code); they are resolved by
:mod:`repro.registry` at dispatch time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.repair.cost import CostModel

#: Sentinel method name meaning "let the registry pick a backend per workload".
AUTO = "auto"

#: Name of the sharded process-pool backend (registered for both kinds).
PARALLEL = "parallel"

#: SQL WHERE-clause formulations accepted by the SQL backend.
SQL_FORMS = ("cnf", "dnf")

#: Query strategies accepted by the SQL backend.
SQL_STRATEGIES = ("per_cfd", "merged")

#: Storage layers a relation can be held in while an engine works on it:
#: ``"rows"`` is the legacy list-of-tuples :class:`~repro.relation.relation.Relation`,
#: ``"columnar"`` the dictionary-encoded
#: :class:`~repro.relation.columnar.ColumnStore`, and ``"mmap"`` the
#: disk-backed :class:`~repro.relation.mmap_store.MmapColumnStore`, whose
#: code columns live in memory-mapped spill files so 1M–10M-row relations
#: clean within a bounded memory budget.  Every engine produces
#: byte-identical output on any of them; they differ only in speed and
#: resident memory.
STORAGES = ("rows", "columnar", "mmap")

#: The storage the columnar-capable engines use when nothing pins one.
DEFAULT_STORAGE = "columnar"

#: Compute kernels the code-column hot loops can run on: ``"python"`` is the
#: always-available pure-Python reference, ``"numpy"`` the vectorised layer
#: (requires the optional ``[fast]`` extra).  Every kernel produces
#: byte-identical violations and repairs; they differ only in speed.
KERNELS = ("python", "numpy")

#: The kernel used when nothing pins one: ``"auto"`` resolves to ``"numpy"``
#: when numpy is importable and degrades to ``"python"`` otherwise.
DEFAULT_KERNEL = AUTO

#: Pre-flight static-analysis levels for the pipeline gate
#: (:meth:`repro.pipeline.Cleaner.clean`): ``"strict"`` refuses to clean when
#: the rule set has error-severity diagnostics, ``"warn"`` surfaces findings
#: as :class:`~repro.analysis.AnalysisWarning` warnings and proceeds, and
#: ``"off"`` skips the pass entirely.  The gate runs the cheap structural and
#: consistency checks only (``deep=False``) — its cost depends on the rule
#: set, never on the data.
ANALYSIS_LEVELS = ("strict", "warn", "off")

#: The analysis level used when nothing pins one.  ``"warn"`` never changes
#: cleaning results (warnings do not block), and the repair path already
#: checks consistency by default — pre-flighting it merely fails *earlier*.
DEFAULT_ANALYSIS = "warn"


def storage_from_env(default: str = DEFAULT_STORAGE) -> str:
    """The storage layer named by ``REPRO_STORAGE``, falling back on garbage.

    The environment variable is the cross-checking escape hatch: exporting
    ``REPRO_STORAGE=rows`` pins every config that did not set ``storage=``
    explicitly back to the legacy row path.  Read at every resolution (not at
    import), and forgiving like ``REPRO_PARALLEL_AUTO_ROWS`` — an unknown
    value keeps the default rather than crashing whatever imported us.
    """
    raw = os.environ.get("REPRO_STORAGE")
    if not raw:
        return default
    value = raw.strip().lower()
    return value if value in STORAGES else default


def validate_storage(storage: Optional[str]) -> None:
    if storage is not None and storage not in STORAGES:
        raise ConfigError(
            f"unknown storage {storage!r}; expected one of "
            f"{', '.join(map(repr, STORAGES))}"
        )


def kernel_from_env(default: str = DEFAULT_KERNEL) -> str:
    """The kernel named by ``REPRO_KERNEL``, falling back on garbage.

    Mirrors :func:`storage_from_env`: read at every resolution (not at
    import) and forgiving — an unknown value keeps the default rather than
    crashing whatever imported us.  The returned name may be ``"auto"``;
    :func:`repro.kernels.resolve_kernel_name` turns it into a concrete
    kernel from what is importable.
    """
    raw = os.environ.get("REPRO_KERNEL")
    if not raw:
        return default
    value = raw.strip().lower()
    return value if value in KERNELS + (AUTO,) else default


def validate_kernel(kernel: Optional[str]) -> None:
    """Reject kernel names outside ``python``/``numpy``/``auto``.

    Name validation only: whether ``"numpy"`` is actually importable is
    checked at dispatch time (:func:`repro.kernels.resolve_kernel_name`), so
    a config naming an uninstalled kernel fails when something tries to
    *compute* with it, with a message that says how to install it.
    """
    if kernel is not None and kernel not in KERNELS + (AUTO,):
        raise ConfigError(
            f"unknown kernel {kernel!r}; expected one of "
            f"{', '.join(map(repr, KERNELS + (AUTO,)))}"
        )


def analysis_from_env(default: str = DEFAULT_ANALYSIS) -> str:
    """The analysis level named by ``REPRO_ANALYSIS``, falling back on garbage.

    Mirrors :func:`storage_from_env`: read at every resolution (not at
    import) and forgiving — an unknown value keeps the default rather than
    crashing whatever imported us.  Exporting ``REPRO_ANALYSIS=strict``
    turns every cleaning run that did not set ``analysis=`` explicitly into
    a gated one; ``REPRO_ANALYSIS=off`` pins the pre-PR-8 behaviour.
    """
    raw = os.environ.get("REPRO_ANALYSIS")
    if not raw:
        return default
    value = raw.strip().lower()
    return value if value in ANALYSIS_LEVELS else default


def validate_analysis(analysis: Optional[str]) -> None:
    if analysis is not None and analysis not in ANALYSIS_LEVELS:
        raise ConfigError(
            f"unknown analysis level {analysis!r}; expected one of "
            f"{', '.join(map(repr, ANALYSIS_LEVELS))}"
        )


def strictest_analysis(*levels: str) -> str:
    """The strictest of several effective analysis levels.

    The pipeline gate honours whichever of the detection and repair configs
    asks for more scrutiny: ``strict`` beats ``warn`` beats ``off``.
    """
    order = {level: rank for rank, level in enumerate(ANALYSIS_LEVELS)}
    return min(levels, key=lambda level: order[level])


def _validate_parallel_knobs(
    method: str, workers: Optional[int], shard_count: Optional[int]
) -> None:
    """Shared validation of the ``workers``/``shard_count`` pair.

    The knobs only make sense for the sharded parallel backend; ``"auto"``
    is allowed because it may escalate to it.  Unlike the SQL knobs, values
    are range-checked here — the registry never sees them.
    """
    for name, value in (("workers", workers), ("shard_count", shard_count)):
        if value is None:
            continue
        if value < 1:
            raise ConfigError(f"{name} must be at least 1, got {value}")
        if method not in ("parallel", AUTO):
            raise ConfigError(
                f"{name}={value!r} only applies to the parallel backend, "
                f"not method={method!r}"
            )


def _validate_memory_budget(memory_budget_mb: Optional[int]) -> None:
    if memory_budget_mb is not None and memory_budget_mb < 1:
        raise ConfigError(
            f"memory_budget_mb must be at least 1, got {memory_budget_mb}"
        )


@dataclass(frozen=True)
class DetectionConfig:
    """How violation detection should run.

    Parameters
    ----------
    method:
        Name of a registered detection backend (``"inmemory"``, ``"sql"``,
        ``"indexed"``, or anything registered via
        :func:`repro.registry.register_detector`), or ``"auto"`` (default) to
        let the registry pick from the relation size and CFD count.
    strategy, form:
        SQL-only knobs (Section 4 of the paper): the per-CFD vs merged query
        scheme and the CNF vs DNF WHERE-clause formulation.  Setting either
        requires ``method="sql"`` (``"auto"`` never resolves to the SQL
        backend) — anything else raises :class:`~repro.errors.ConfigError`,
        replacing the old silent-ignore behaviour of the keyword API.
    expand_variable_violations:
        SQL-only: run the extra expansion query mapping violating groups back
        to tuple indices (disabled by the benchmarks to time exactly the
        paper's query pair).
    chunk_size:
        Batch size when :meth:`repro.pipeline.Cleaner.detect` streams a
        non-relation :class:`~repro.io.sources.RowSource` through the
        indexed backend (see :func:`repro.detection.indexed.detect_stream`).
    workers, shard_count:
        Parallel-only knobs (``method="parallel"``, or ``"auto"``, which may
        escalate to it): worker processes in the pool (default: one per CPU)
        and shards to split the relation into (default: the worker count).
        Setting either with any other concrete backend raises
        :class:`~repro.errors.ConfigError` — a serial backend would silently
        ignore them.
    storage:
        Storage layer the columnar-capable backends (indexed, parallel) hold
        the relation in: ``"columnar"`` (dictionary-encoded
        :class:`~repro.relation.columnar.ColumnStore`), ``"mmap"`` (the
        disk-backed :class:`~repro.relation.mmap_store.MmapColumnStore` for
        out-of-core workloads) or ``"rows"`` (the legacy tuple list).
        ``None`` (default) defers to the ``REPRO_STORAGE`` environment
        variable, then to ``"columnar"``.  Outputs are byte-identical every
        way; ``"rows"`` exists for cross-checking the storage layer itself.
    spill_dir:
        Base directory for the ``"mmap"`` storage's spill files (per-run
        subdirectories are created inside it).  ``None`` (default) defers to
        the ``REPRO_SPILL_DIR`` environment variable, then to the system
        temp directory.  Runs under an explicit base are preserved on crash
        for debugging; see ``docs/out_of_core.md``.
    memory_budget_mb:
        Soft resident-memory budget for out-of-core runs: sizes the chunked
        ingestion buffers of the ``"mmap"`` storage
        (:func:`repro.relation.mmap_store.chunk_rows_for_budget`).  ``None``
        (default) uses the fixed default chunk size.
    kernel:
        Compute kernel for the code-column hot loops (grouping, ``Q^C``/
        ``Q^V`` checks): ``"python"`` (the pure-Python reference),
        ``"numpy"`` (the vectorised layer, requires the ``[fast]`` extra) or
        ``"auto"`` (numpy when importable, python otherwise).  ``None``
        (default) defers to the ``REPRO_KERNEL`` environment variable, then
        to ``"auto"``.  Kernels only matter on columnar storage; outputs are
        byte-identical across kernels.
    analysis:
        Pre-flight static-analysis level for the pipeline gate:
        ``"strict"`` (refuse to clean a rule set with error-severity
        diagnostics, raising :class:`~repro.errors.AnalysisError` with the
        report before any detection work), ``"warn"`` (surface findings as
        warnings and proceed) or ``"off"``.  ``None`` (default) defers to
        the ``REPRO_ANALYSIS`` environment variable, then to ``"warn"``.
        The gate never changes cleaning *results* — only whether a doomed
        run starts at all.

    >>> DetectionConfig(method="sql", strategy="merged").effective_strategy
    'merged'
    >>> DetectionConfig(method="indexed", form="cnf")
    Traceback (most recent call last):
        ...
    repro.errors.ConfigError: form='cnf' only applies to the SQL backend, not method='indexed'
    """

    method: str = AUTO
    strategy: Optional[str] = None
    form: Optional[str] = None
    expand_variable_violations: bool = True
    chunk_size: int = 8_192
    workers: Optional[int] = None
    shard_count: Optional[int] = None
    storage: Optional[str] = None
    kernel: Optional[str] = None
    spill_dir: Optional[str] = None
    memory_budget_mb: Optional[int] = None
    analysis: Optional[str] = None

    def __post_init__(self) -> None:
        validate_storage(self.storage)
        validate_kernel(self.kernel)
        validate_analysis(self.analysis)
        _validate_memory_budget(self.memory_budget_mb)
        if self.strategy is not None and self.strategy not in SQL_STRATEGIES:
            raise ConfigError(
                f"unknown SQL strategy {self.strategy!r}; expected one of "
                f"{', '.join(map(repr, SQL_STRATEGIES))}"
            )
        if self.form is not None and self.form not in SQL_FORMS:
            raise ConfigError(
                f"unknown SQL form {self.form!r}; expected one of "
                f"{', '.join(map(repr, SQL_FORMS))}"
            )
        for name, value in (("strategy", self.strategy), ("form", self.form)):
            if value is not None and self.method != "sql":
                raise ConfigError(
                    f"{name}={value!r} only applies to the SQL backend, "
                    f"not method={self.method!r}"
                )
        if self.chunk_size <= 0:
            raise ConfigError(f"chunk_size must be positive, got {self.chunk_size}")
        _validate_parallel_knobs(self.method, self.workers, self.shard_count)

    @property
    def effective_strategy(self) -> str:
        """The SQL strategy with the default applied."""
        return self.strategy if self.strategy is not None else "per_cfd"

    @property
    def effective_form(self) -> str:
        """The SQL form with the default applied."""
        return self.form if self.form is not None else "dnf"

    @property
    def effective_storage(self) -> str:
        """The storage layer with ``REPRO_STORAGE`` and the default applied."""
        return self.storage if self.storage is not None else storage_from_env()

    @property
    def effective_kernel(self) -> str:
        """The kernel with ``REPRO_KERNEL`` and the default applied.

        May still be ``"auto"``; the concrete kernel is picked at dispatch
        time from what is importable (:func:`repro.kernels.resolve_kernel_name`).
        """
        return self.kernel if self.kernel is not None else kernel_from_env()

    @property
    def effective_analysis(self) -> str:
        """The analysis level with ``REPRO_ANALYSIS`` and the default applied."""
        return self.analysis if self.analysis is not None else analysis_from_env()

    def with_method(self, method: str) -> DetectionConfig:
        """A copy with ``method`` pinned (used after ``"auto"`` resolution).

        Pinning ``"auto"`` to a serial backend drops the parallel-only knobs:
        they were legal against ``"auto"`` (which *might* have escalated) but
        would fail validation against the concrete serial method.
        """
        if method == self.method:
            return self
        if method != "parallel":
            return replace(self, method=method, workers=None, shard_count=None)
        return replace(self, method=method)

    def summary(self) -> Dict[str, Any]:
        return {
            "method": self.method,
            "strategy": self.strategy,
            "form": self.form,
            "chunk_size": self.chunk_size,
            "workers": self.workers,
            "shard_count": self.shard_count,
            "storage": self.storage,
            "kernel": self.kernel,
            "spill_dir": self.spill_dir,
            "memory_budget_mb": self.memory_budget_mb,
            "analysis": self.analysis,
        }


@dataclass(frozen=True)
class RepairConfig:
    """How the repair loop should run.

    Parameters
    ----------
    method:
        Name of a registered repair engine (``"scan"``, ``"indexed"``,
        ``"incremental"``, or anything registered via
        :func:`repro.registry.register_repairer`), or ``"auto"`` (default) to
        let the registry pick from the relation size and CFD count.  Every
        engine produces the identical repair; they differ only in speed.
    max_passes:
        Budget of detect-fix passes before the loop gives up.
    check_consistency:
        Verify the CFD set is consistent before repairing (an inconsistent
        set has no repair at all).
    cost_model:
        The value-modification cost model; defaults to unit weights.
    cache_size:
        Lower bound on the partition-index cache width of the incremental
        engine; ``None`` (default) sizes the cache to the workload.  The
        engine only ever *widens* the auto size — a cache smaller than the
        number of distinct LHS sets would evict live indexes and corrupt
        the maintained state, so smaller values are ignored.
    workers, shard_count:
        Parallel-only knobs (``method="parallel"``, or ``"auto"``, which may
        escalate to it): worker processes repairing shards concurrently and
        shards to split the relation into.  Same validation as on
        :class:`DetectionConfig`.
    storage:
        Storage layer the columnar-capable engines (indexed, incremental,
        parallel) repair over — same semantics and default chain
        (``REPRO_STORAGE``, then ``"columnar"``) as on
        :class:`DetectionConfig`, including the out-of-core ``"mmap"``
        layer.  The repaired relation comes back in this storage; its rows
        are byte-identical either way.
    spill_dir, memory_budget_mb:
        Out-of-core knobs for the ``"mmap"`` storage — same semantics as on
        :class:`DetectionConfig`.
    kernel:
        Compute kernel for the code-column hot loops — same semantics and
        default chain (``REPRO_KERNEL``, then ``"auto"``) as on
        :class:`DetectionConfig`.  Repairs are byte-identical across kernels.
    analysis:
        Pre-flight static-analysis level for the pipeline gate — same
        semantics and default chain (``REPRO_ANALYSIS``, then ``"warn"``)
        as on :class:`DetectionConfig`.  The gate honours the *strictest*
        of the two configs' levels.

    >>> RepairConfig(max_passes=0)
    Traceback (most recent call last):
        ...
    repro.errors.ConfigError: max_passes must be at least 1, got 0
    """

    method: str = AUTO
    max_passes: int = 25
    check_consistency: bool = True
    cost_model: Optional[CostModel] = None
    cache_size: Optional[int] = None
    workers: Optional[int] = None
    shard_count: Optional[int] = None
    storage: Optional[str] = None
    kernel: Optional[str] = None
    spill_dir: Optional[str] = None
    memory_budget_mb: Optional[int] = None
    analysis: Optional[str] = None

    def __post_init__(self) -> None:
        validate_storage(self.storage)
        validate_kernel(self.kernel)
        validate_analysis(self.analysis)
        _validate_memory_budget(self.memory_budget_mb)
        if self.max_passes < 1:
            raise ConfigError(f"max_passes must be at least 1, got {self.max_passes}")
        if self.cache_size is not None and self.cache_size < 1:
            raise ConfigError(f"cache_size must be at least 1, got {self.cache_size}")
        _validate_parallel_knobs(self.method, self.workers, self.shard_count)

    def with_method(self, method: str) -> RepairConfig:
        """A copy with ``method`` pinned (used after ``"auto"`` resolution).

        As on :meth:`DetectionConfig.with_method`, pinning to a serial engine
        drops the parallel-only knobs instead of failing validation.
        """
        if method == self.method:
            return self
        if method != "parallel":
            return replace(self, method=method, workers=None, shard_count=None)
        return replace(self, method=method)

    @property
    def effective_storage(self) -> str:
        """The storage layer with ``REPRO_STORAGE`` and the default applied."""
        return self.storage if self.storage is not None else storage_from_env()

    @property
    def effective_kernel(self) -> str:
        """The kernel with ``REPRO_KERNEL`` and the default applied."""
        return self.kernel if self.kernel is not None else kernel_from_env()

    @property
    def effective_analysis(self) -> str:
        """The analysis level with ``REPRO_ANALYSIS`` and the default applied."""
        return self.analysis if self.analysis is not None else analysis_from_env()

    def summary(self) -> Dict[str, Any]:
        return {
            "method": self.method,
            "max_passes": self.max_passes,
            "check_consistency": self.check_consistency,
            "workers": self.workers,
            "shard_count": self.shard_count,
            "storage": self.storage,
            "kernel": self.kernel,
            "spill_dir": self.spill_dir,
            "memory_budget_mb": self.memory_budget_mb,
            "analysis": self.analysis,
        }
