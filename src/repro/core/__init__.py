"""The CFD formalism: pattern values, pattern tableaux, CFDs, satisfaction."""

from repro.core.cfd import CFD, FD
from repro.core.pattern import CONSTANT_KIND, DONTCARE, WILDCARD, PatternValue
from repro.core.satisfaction import find_violations, satisfies
from repro.core.tableau import PatternTableau, PatternTuple
from repro.core.violations import (
    ConstantViolation,
    VariableViolation,
    Violation,
    ViolationReport,
)

__all__ = [
    "CFD",
    "CONSTANT_KIND",
    "ConstantViolation",
    "DONTCARE",
    "FD",
    "PatternTableau",
    "PatternTuple",
    "PatternValue",
    "VariableViolation",
    "Violation",
    "ViolationReport",
    "WILDCARD",
    "find_violations",
    "satisfies",
]
