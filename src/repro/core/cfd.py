"""CFDs and standard FDs.

A conditional functional dependency (CFD) on a relation schema ``R`` is a
pair ``φ = (R: X → Y, Tp)`` where ``X → Y`` is a standard FD (the *embedded
FD*) and ``Tp`` is a pattern tableau over ``X ∪ Y`` (Section 2 of the paper).

Two special cases are provided as conveniences:

* a standard FD ``X → Y`` is the CFD whose tableau holds a single all-wildcard
  pattern tuple (:meth:`FD.to_cfd`);
* an instance-level FD is a CFD whose single pattern tuple holds only
  constants (:meth:`CFD.is_instance_level`).

Reasoning (Section 3) works on CFDs in *normal form*: a single RHS attribute
and a single pattern tuple.  :meth:`CFD.normalize` produces that form; the
original CFD is equivalent to the conjunction of its normalised parts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.tableau import CellSpec, PatternTableau, PatternTuple
from repro.errors import CFDError
from repro.relation.schema import Schema


@dataclass(frozen=True)
class FD:
    """A standard functional dependency ``X → Y``.

    >>> f2 = FD(("CC", "AC"), ("CT",))
    >>> f2.to_cfd().tableau[0].is_variable_only()
    True
    """

    lhs: Tuple[str, ...]
    rhs: Tuple[str, ...]

    def __init__(self, lhs: Sequence[str], rhs: Sequence[str]) -> None:
        object.__setattr__(self, "lhs", tuple(lhs))
        object.__setattr__(self, "rhs", tuple(rhs))
        if not self.rhs:
            raise CFDError("an FD must have at least one RHS attribute")

    def to_cfd(self, name: Optional[str] = None) -> CFD:
        """Express the FD as a CFD with a single all-wildcard pattern tuple."""
        pattern = ["_"] * (len(self.lhs) + len(self.rhs))
        return CFD.build(self.lhs, self.rhs, [pattern], name=name)

    def __str__(self) -> str:
        return f"[{', '.join(self.lhs)}] -> [{', '.join(self.rhs)}]"


class CFD:
    """A conditional functional dependency ``(X → Y, Tp)``.

    Parameters
    ----------
    lhs, rhs:
        Attribute names of the embedded FD.  ``rhs`` must be non-empty;
        ``lhs`` may be empty (a "constant" CFD such as ``(∅ → B, (b))`` from
        Example 3.3).
    tableau:
        The pattern tableau.  Its LHS/RHS attribute sets must equal
        ``lhs``/``rhs``.
    name:
        Optional identifier used in reports and generated SQL table names.
    schema:
        Optional schema the CFD is defined on; when given, attribute names
        are validated against it.
    """

    __slots__ = ("_lhs", "_rhs", "_tableau", "_name", "_schema")

    def __init__(
        self,
        lhs: Sequence[str],
        rhs: Sequence[str],
        tableau: PatternTableau,
        name: Optional[str] = None,
        schema: Optional[Schema] = None,
    ) -> None:
        lhs = tuple(lhs)
        rhs = tuple(rhs)
        if not rhs:
            raise CFDError("a CFD must have at least one RHS attribute")
        if len(set(lhs)) != len(lhs):
            raise CFDError(f"duplicate attributes in CFD LHS {lhs}")
        if len(set(rhs)) != len(rhs):
            raise CFDError(f"duplicate attributes in CFD RHS {rhs}")
        if set(tableau.lhs_attributes) != set(lhs) or set(tableau.rhs_attributes) != set(rhs):
            raise CFDError(
                "pattern tableau attributes do not match the embedded FD: "
                f"tableau ({tableau.lhs_attributes} -> {tableau.rhs_attributes}) "
                f"vs FD ({lhs} -> {rhs})"
            )
        if schema is not None:
            schema.validate_attributes(lhs)
            schema.validate_attributes(rhs)
        if len(tableau) == 0:
            raise CFDError("a CFD must have at least one pattern tuple")
        self._lhs = lhs
        self._rhs = rhs
        self._tableau = tableau
        self._name = name
        self._schema = schema

    # ------------------------------------------------------------------ construction
    @classmethod
    def build(
        cls,
        lhs: Sequence[str],
        rhs: Sequence[str],
        patterns: Iterable[Union[Sequence[CellSpec], Mapping[str, CellSpec]]],
        name: Optional[str] = None,
        schema: Optional[Schema] = None,
    ) -> CFD:
        """Build a CFD from raw pattern rows (see :meth:`PatternTableau.build`).

        >>> phi1 = CFD.build(["CC", "ZIP"], ["STR"], [["44", "_", "_"]], name="phi1")
        >>> phi1.embedded_fd
        FD(lhs=('CC', 'ZIP'), rhs=('STR',))
        """
        if not tuple(rhs):
            raise CFDError("a CFD must have at least one RHS attribute")
        tableau = PatternTableau.build(lhs, rhs, patterns)
        return cls(lhs, rhs, tableau, name=name, schema=schema)

    @classmethod
    def from_fd(cls, fd: FD, name: Optional[str] = None, schema: Optional[Schema] = None) -> CFD:
        """Wrap a standard FD as a CFD (single all-wildcard pattern tuple)."""
        pattern = ["_"] * (len(fd.lhs) + len(fd.rhs))
        return cls.build(fd.lhs, fd.rhs, [pattern], name=name, schema=schema)

    # ------------------------------------------------------------------ accessors
    @property
    def lhs(self) -> Tuple[str, ...]:
        """The LHS attributes ``X`` of the embedded FD."""
        return self._lhs

    @property
    def rhs(self) -> Tuple[str, ...]:
        """The RHS attributes ``Y`` of the embedded FD."""
        return self._rhs

    @property
    def attributes(self) -> Tuple[str, ...]:
        """``X ∪ Y`` preserving first-occurrence order."""
        seen: List[str] = []
        for attr in self._lhs + self._rhs:
            if attr not in seen:
                seen.append(attr)
        return tuple(seen)

    @property
    def tableau(self) -> PatternTableau:
        """The pattern tableau ``Tp``."""
        return self._tableau

    @property
    def name(self) -> str:
        """The CFD's identifier (auto-derived from the FD if not supplied)."""
        if self._name:
            return self._name
        return f"cfd_{'_'.join(self._lhs) or 'empty'}__{'_'.join(self._rhs)}"

    @property
    def schema(self) -> Optional[Schema]:
        return self._schema

    @property
    def embedded_fd(self) -> FD:
        """The standard FD ``X → Y`` embedded in this CFD."""
        return FD(self._lhs, self._rhs)

    # ------------------------------------------------------------------ classification
    def is_standard_fd(self) -> bool:
        """True when the tableau is a single all-wildcard pattern tuple."""
        return len(self._tableau) == 1 and self._tableau[0].is_variable_only()

    def is_instance_level(self) -> bool:
        """True when the tableau is a single all-constant pattern tuple ([13] in the paper)."""
        return len(self._tableau) == 1 and self._tableau[0].is_constant_only()

    def is_normal_form(self) -> bool:
        """True when the CFD has a single RHS attribute and a single pattern tuple."""
        return len(self._rhs) == 1 and len(self._tableau) == 1

    def uses_dontcare(self) -> bool:
        """True when any cell is the merged-tableau don't-care symbol ``@``."""
        for row in self._tableau:
            for cell in list(row.lhs.values()) + list(row.rhs.values()):
                if cell.is_dontcare:
                    return True
        return False

    # ------------------------------------------------------------------ transforms
    def normalize(self) -> List[CFD]:
        """Split into normal-form CFDs ``(X → A, tp)`` — one per (RHS attribute, pattern row).

        The resulting set ``Σφ`` is equivalent to the original CFD
        (Section 3.2 of the paper).
        """
        parts: List[CFD] = []
        for row_index, row in enumerate(self._tableau):
            for attr in self._rhs:
                tableau = PatternTableau(
                    self._lhs,
                    (attr,),
                    [row.restrict(self._lhs, (attr,))],
                )
                suffix = f"{self.name}_r{row_index}_{attr}"
                parts.append(CFD(self._lhs, (attr,), tableau, name=suffix, schema=self._schema))
        return parts

    def with_schema(self, schema: Schema) -> CFD:
        """Attach (and validate against) a schema."""
        return CFD(self._lhs, self._rhs, self._tableau, name=self._name, schema=schema)

    def single_pattern(self) -> PatternTuple:
        """The unique pattern tuple of a normal-form CFD."""
        if len(self._tableau) != 1:
            raise CFDError(f"CFD {self.name} has {len(self._tableau)} pattern tuples, expected 1")
        return self._tableau[0]

    # ------------------------------------------------------------------ dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CFD):
            return NotImplemented
        return (
            self._lhs == other._lhs
            and self._rhs == other._rhs
            and set(self._tableau.rows) == set(other._tableau.rows)
        )

    def __hash__(self) -> int:
        return hash((self._lhs, self._rhs, frozenset(self._tableau.rows)))

    def __repr__(self) -> str:
        return (
            f"CFD({self.name}: [{', '.join(self._lhs)}] -> [{', '.join(self._rhs)}], "
            f"{len(self._tableau)} patterns)"
        )

    def render(self) -> str:
        """Multi-line rendering: embedded FD followed by the tableau."""
        return f"{self.name}: {self.embedded_fd}\n{self._tableau.render()}"


def normalize_all(cfds: Iterable[CFD]) -> List[CFD]:
    """Normalise every CFD in ``cfds`` and concatenate the results."""
    result: List[CFD] = []
    for cfd in cfds:
        result.extend(cfd.normalize())
    return result
