"""Pattern values: the cells of a CFD pattern tableau.

A pattern tableau cell is one of

* a **constant** ``a`` drawn from the attribute's domain,
* the **unnamed variable** ``_`` (any value, written ``‘_’`` in the paper), or
* the **don't-care symbol** ``@`` introduced in Section 4.2 when merging the
  tableaux of several CFDs into a single union-compatible tableau.

Two relations from the paper are implemented here:

* the *match* relation ``t[A] ≍ tc[A]`` (:meth:`PatternValue.matches`), and
* the *order* relation ``η1 ⪯ η2`` used by inference rule FD3
  (:meth:`PatternValue.subsumed_by`): ``η1 ⪯ η2`` iff ``η1 = η2`` is the same
  constant, or ``η2`` is ``_``.
"""

from __future__ import annotations

from typing import Any, Union

CONSTANT_KIND = "constant"
WILDCARD_KIND = "wildcard"
DONTCARE_KIND = "dontcare"

#: Textual shortcuts accepted wherever a pattern cell can be written.
WILDCARD_TOKEN = "_"
DONTCARE_TOKEN = "@"


class PatternValue:
    """A single cell of a pattern tuple.

    Instances are immutable and hashable.  Use the module-level singletons
    :data:`WILDCARD` and :data:`DONTCARE`, or :meth:`constant` /
    :meth:`coerce` for constants.
    """

    __slots__ = ("_kind", "_value")

    def __init__(self, kind: str, value: Any = None) -> None:
        if kind not in (CONSTANT_KIND, WILDCARD_KIND, DONTCARE_KIND):
            raise ValueError(f"unknown pattern value kind {kind!r}")
        if kind != CONSTANT_KIND and value is not None:
            raise ValueError(f"{kind} pattern values carry no constant, got {value!r}")
        self._kind = kind
        self._value = value

    # ------------------------------------------------------------ constructors
    @classmethod
    def constant(cls, value: Any) -> PatternValue:
        """A constant pattern cell holding ``value``."""
        return cls(CONSTANT_KIND, value)

    @classmethod
    def coerce(cls, raw: Union[PatternValue, Any]) -> PatternValue:
        """Turn a raw cell spec into a :class:`PatternValue`.

        Accepts an existing :class:`PatternValue`, the tokens ``"_"`` and
        ``"@"`` (wildcard / don't-care), or any other Python value, which
        becomes a constant.
        """
        if isinstance(raw, PatternValue):
            return raw
        if raw == WILDCARD_TOKEN:
            return WILDCARD
        if raw == DONTCARE_TOKEN:
            return DONTCARE
        return cls.constant(raw)

    # ------------------------------------------------------------ predicates
    @property
    def kind(self) -> str:
        return self._kind

    @property
    def is_constant(self) -> bool:
        return self._kind == CONSTANT_KIND

    @property
    def is_wildcard(self) -> bool:
        return self._kind == WILDCARD_KIND

    @property
    def is_dontcare(self) -> bool:
        return self._kind == DONTCARE_KIND

    @property
    def value(self) -> Any:
        """The constant value; ``None`` for wildcard / don't-care cells."""
        return self._value

    # ------------------------------------------------------------ semantics
    def matches(self, data_value: Any) -> bool:
        """The match relation ``data_value ≍ self``.

        A wildcard matches every value, a constant matches only itself, and a
        don't-care cell imposes no constraint (it is excluded from the
        ``free`` attribute sets in Section 4.2, which is equivalent to it
        matching everything).
        """
        if self._kind == CONSTANT_KIND:
            return data_value == self._value
        return True

    def subsumed_by(self, other: PatternValue) -> bool:
        """The order relation ``self ⪯ other`` from Section 3.2.

        ``η1 ⪯ η2`` holds iff ``η2`` is the wildcard, or both are the same
        constant.  Don't-care cells behave like wildcards for this purpose
        (they only appear in merged tableaux, never in reasoning).
        """
        if other._kind in (WILDCARD_KIND, DONTCARE_KIND):
            return True
        if self._kind == CONSTANT_KIND and other._kind == CONSTANT_KIND:
            return self._value == other._value
        return False

    # ------------------------------------------------------------ dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternValue):
            return NotImplemented
        return self._kind == other._kind and self._value == other._value

    def __hash__(self) -> int:
        return hash((self._kind, self._value))

    def __repr__(self) -> str:
        if self._kind == CONSTANT_KIND:
            return f"PatternValue({self._value!r})"
        return f"PatternValue({self.render()!r})"

    def render(self) -> str:
        """Human-readable rendering: the constant, ``_`` or ``@``."""
        if self._kind == WILDCARD_KIND:
            return WILDCARD_TOKEN
        if self._kind == DONTCARE_KIND:
            return DONTCARE_TOKEN
        return str(self._value)


#: The unnamed variable ``_`` — matches any value of the attribute's domain.
WILDCARD = PatternValue(WILDCARD_KIND)

#: The don't-care symbol ``@`` used in merged tableaux (Section 4.2).
DONTCARE = PatternValue(DONTCARE_KIND)
