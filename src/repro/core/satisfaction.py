"""In-memory CFD satisfaction checking and violation detection.

This module is the pure-Python *correctness oracle* for the SQL detection
techniques of Section 4: it implements the satisfaction semantics of
Section 2 (extended with the ``@`` don't-care symbol of Section 4.2)
directly over a :class:`~repro.relation.relation.Relation`.

Definition (Section 2, extended in Section 4.2.1): ``I |= (X → Y, Tp)`` iff
for each pair of tuples ``t1, t2`` in ``I`` and each pattern tuple ``tc`` in
``Tp``, if ``t1[X_free] = t2[X_free] ≍ tc[X_free]`` then
``t1[Y_free] = t2[Y_free] ≍ tc[Y_free]``, where ``X_free``/``Y_free`` are the
``@``-free attributes of ``tc``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.core.cfd import CFD
from repro.core.tableau import PatternTuple
from repro.core.violations import (
    ConstantViolation,
    VariableViolation,
    Violation,
    ViolationReport,
)
from repro.relation.relation import Relation


def satisfies(relation: Relation, cfd: CFD) -> bool:
    """Whether ``relation |= cfd`` under the semantics of Section 2."""
    return not find_violations(relation, cfd)


def satisfies_all(relation: Relation, cfds: Iterable[CFD]) -> bool:
    """Whether ``relation |= Σ`` for the whole set ``Σ`` of CFDs."""
    return all(satisfies(relation, cfd) for cfd in cfds)


def find_violations(relation: Relation, cfd: CFD) -> ViolationReport:
    """All violations of a single CFD in ``relation``.

    The detection mirrors the two SQL queries of Section 4.1:

    * constant violations (``Q^C``): a tuple matches ``tc[X]`` but clashes
      with a constant in ``tc[Y]``;
    * variable violations (``Q^V``): tuples sharing the same ``X_free``
      projection and matching ``tc[X]`` take more than one distinct
      ``Y_free`` projection.
    """
    report = ViolationReport()
    for pattern_index, pattern in enumerate(cfd.tableau):
        # Both query shapes range over the same matching tuples; scan for
        # them once per pattern rather than once per query.
        matching = _matching_indices(relation, cfd.lhs, pattern)
        report.extend(_constant_violations(relation, cfd, pattern_index, pattern, matching))
        report.extend(_variable_violations(relation, cfd, pattern_index, pattern, matching))
    return report


def find_all_violations(relation: Relation, cfds: Iterable[CFD]) -> ViolationReport:
    """All violations of every CFD in ``cfds``."""
    report = ViolationReport()
    for cfd in cfds:
        report.extend(find_violations(relation, cfd))
    return report


# ----------------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------------
def _matching_indices(
    relation: Relation, lhs_attrs: Sequence[str], pattern: PatternTuple
) -> List[int]:
    """Indices of tuples whose LHS projection matches ``pattern[X]``."""
    cells = [(attr, pattern.lhs_cell(attr)) for attr in lhs_attrs]
    positions = relation.schema.positions(lhs_attrs)
    matches: List[int] = []
    for index, row in enumerate(relation):
        ok = True
        for (attr, cell), position in zip(cells, positions):
            if not cell.matches(row[position]):
                ok = False
                break
        if ok:
            matches.append(index)
    return matches


def _constant_violations(
    relation: Relation,
    cfd: CFD,
    pattern_index: int,
    pattern: PatternTuple,
    matching: Sequence[int],
) -> List[Violation]:
    """Single-tuple violations of one pattern tuple (the ``Q^C`` semantics).

    ``matching`` holds the indices of the tuples matching the pattern's LHS,
    as computed once per pattern by :func:`find_violations`.
    """
    violations: List[Violation] = []
    constant_rhs = [
        (attr, pattern.rhs_cell(attr))
        for attr in cfd.rhs
        if pattern.rhs_cell(attr).is_constant
    ]
    if not constant_rhs:
        return violations
    for index in matching:
        row = relation.row_dict(index)
        for attr, cell in constant_rhs:
            if row[attr] != cell.value:
                violations.append(
                    ConstantViolation(
                        cfd_name=cfd.name,
                        pattern_index=pattern_index,
                        tuple_indices=(index,),
                        attribute=attr,
                        expected=cell.value,
                        actual=row[attr],
                    )
                )
    return violations


def _variable_violations(
    relation: Relation,
    cfd: CFD,
    pattern_index: int,
    pattern: PatternTuple,
    matching: Sequence[int],
) -> List[Violation]:
    """Multi-tuple violations of one pattern tuple (the ``Q^V`` semantics).

    ``matching`` is the shared per-pattern match list (see
    :func:`_constant_violations`).
    """
    violations: List[Violation] = []
    lhs_free = [attr for attr in cfd.lhs if not pattern.lhs_cell(attr).is_dontcare]
    rhs_free = [attr for attr in cfd.rhs if not pattern.rhs_cell(attr).is_dontcare]
    if not rhs_free:
        return violations
    groups: Dict[Tuple[Any, ...], List[int]] = {}
    for index in matching:
        key = relation.project_row(index, lhs_free) if lhs_free else ()
        groups.setdefault(key, []).append(index)
    for key, indices in groups.items():
        if len(indices) < 2:
            continue
        rhs_values = {relation.project_row(index, rhs_free) for index in indices}
        if len(rhs_values) > 1:
            violations.append(
                VariableViolation(
                    cfd_name=cfd.name,
                    pattern_index=pattern_index,
                    tuple_indices=tuple(indices),
                    attributes=tuple(lhs_free),
                    group_key=key,
                )
            )
    return violations
