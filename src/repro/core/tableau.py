"""Pattern tuples and pattern tableaux.

A pattern tableau ``Tp`` of a CFD ``(X → Y, Tp)`` has one column per attribute
of ``X ∪ Y`` and one row per pattern tuple.  When an attribute appears in both
``X`` and ``Y`` the paper distinguishes its two occurrences as ``t[A_L]`` and
``t[A_R]``; we therefore keep the LHS and RHS cells in separate mappings.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.pattern import PatternValue
from repro.errors import PatternError

CellSpec = Union[PatternValue, Any]


class PatternTuple:
    """One row of a pattern tableau: LHS cells over ``X``, RHS cells over ``Y``.

    >>> pt = PatternTuple({"CC": "01", "AC": "908", "PN": "_"},
    ...                   {"STR": "_", "CT": "MH", "ZIP": "_"})
    >>> pt.lhs["CC"].value
    '01'
    >>> pt.rhs["CT"].is_constant
    True
    """

    __slots__ = ("_lhs", "_rhs")

    def __init__(
        self,
        lhs: Mapping[str, CellSpec],
        rhs: Mapping[str, CellSpec],
    ) -> None:
        if not rhs:
            raise PatternError("a pattern tuple must have at least one RHS cell")
        self._lhs: Dict[str, PatternValue] = {
            attr: PatternValue.coerce(cell) for attr, cell in lhs.items()
        }
        self._rhs: Dict[str, PatternValue] = {
            attr: PatternValue.coerce(cell) for attr, cell in rhs.items()
        }

    # ------------------------------------------------------------------ access
    @property
    def lhs(self) -> Dict[str, PatternValue]:
        """LHS cells, keyed by attribute name."""
        return dict(self._lhs)

    @property
    def rhs(self) -> Dict[str, PatternValue]:
        """RHS cells, keyed by attribute name."""
        return dict(self._rhs)

    def lhs_cell(self, attribute: str) -> PatternValue:
        try:
            return self._lhs[attribute]
        except KeyError:
            raise PatternError(f"pattern tuple has no LHS cell for {attribute!r}") from None

    def rhs_cell(self, attribute: str) -> PatternValue:
        try:
            return self._rhs[attribute]
        except KeyError:
            raise PatternError(f"pattern tuple has no RHS cell for {attribute!r}") from None

    @property
    def lhs_attributes(self) -> Tuple[str, ...]:
        return tuple(self._lhs)

    @property
    def rhs_attributes(self) -> Tuple[str, ...]:
        return tuple(self._rhs)

    # ------------------------------------------------------------------ semantics
    def lhs_free_attributes(self) -> Tuple[str, ...]:
        """LHS attributes whose cell is not the don't-care symbol (``X_free``)."""
        return tuple(attr for attr, cell in self._lhs.items() if not cell.is_dontcare)

    def rhs_free_attributes(self) -> Tuple[str, ...]:
        """RHS attributes whose cell is not the don't-care symbol (``Y_free``)."""
        return tuple(attr for attr, cell in self._rhs.items() if not cell.is_dontcare)

    def lhs_constant_attributes(self) -> Tuple[str, ...]:
        return tuple(attr for attr, cell in self._lhs.items() if cell.is_constant)

    def rhs_constant_attributes(self) -> Tuple[str, ...]:
        return tuple(attr for attr, cell in self._rhs.items() if cell.is_constant)

    def is_constant_only(self) -> bool:
        """True when every cell (LHS and RHS) is a constant — an instance-level FD row."""
        return all(cell.is_constant for cell in self._lhs.values()) and all(
            cell.is_constant for cell in self._rhs.values()
        )

    def is_variable_only(self) -> bool:
        """True when every cell is the wildcard — a standard-FD row."""
        return all(cell.is_wildcard for cell in self._lhs.values()) and all(
            cell.is_wildcard for cell in self._rhs.values()
        )

    def matches_lhs(self, values: Mapping[str, Any]) -> bool:
        """Whether a data tuple (given by name) matches the LHS pattern cells."""
        return all(cell.matches(values[attr]) for attr, cell in self._lhs.items())

    def matches_rhs(self, values: Mapping[str, Any]) -> bool:
        """Whether a data tuple (given by name) matches the RHS pattern cells."""
        return all(cell.matches(values[attr]) for attr, cell in self._rhs.items())

    def subsumed_by(self, other: PatternTuple) -> bool:
        """Pointwise ``⪯`` over the shared attributes (both sides must share keys)."""
        if set(self._lhs) != set(other._lhs) or set(self._rhs) != set(other._rhs):
            return False
        lhs_ok = all(self._lhs[attr].subsumed_by(other._lhs[attr]) for attr in self._lhs)
        rhs_ok = all(self._rhs[attr].subsumed_by(other._rhs[attr]) for attr in self._rhs)
        return lhs_ok and rhs_ok

    # ------------------------------------------------------------------ transforms
    def with_lhs_cell(self, attribute: str, cell: CellSpec) -> PatternTuple:
        """A copy with one LHS cell replaced."""
        lhs = dict(self._lhs)
        lhs[attribute] = PatternValue.coerce(cell)
        return PatternTuple(lhs, self._rhs)

    def with_rhs_cell(self, attribute: str, cell: CellSpec) -> PatternTuple:
        """A copy with one RHS cell replaced."""
        rhs = dict(self._rhs)
        rhs[attribute] = PatternValue.coerce(cell)
        return PatternTuple(self._lhs, rhs)

    def without_lhs_attribute(self, attribute: str) -> PatternTuple:
        """A copy with one LHS attribute dropped (used by MinCover / FD4)."""
        lhs = {attr: cell for attr, cell in self._lhs.items() if attr != attribute}
        return PatternTuple(lhs, self._rhs)

    def restrict(self, lhs_attrs: Sequence[str], rhs_attrs: Sequence[str]) -> PatternTuple:
        """Project the pattern tuple onto the given LHS / RHS attribute lists."""
        lhs = {attr: self.lhs_cell(attr) for attr in lhs_attrs}
        rhs = {attr: self.rhs_cell(attr) for attr in rhs_attrs}
        return PatternTuple(lhs, rhs)

    # ------------------------------------------------------------------ dunder
    def key(self) -> Tuple[Tuple[Tuple[str, PatternValue], ...], Tuple[Tuple[str, PatternValue], ...]]:
        """A hashable canonical key (attribute order normalised by name)."""
        return (
            tuple(sorted(self._lhs.items(), key=lambda item: item[0])),
            tuple(sorted(self._rhs.items(), key=lambda item: item[0])),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternTuple):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        lhs = ", ".join(f"{attr}={cell.render()}" for attr, cell in self._lhs.items())
        rhs = ", ".join(f"{attr}={cell.render()}" for attr, cell in self._rhs.items())
        return f"PatternTuple([{lhs}] -> [{rhs}])"


class PatternTableau:
    """An ordered collection of :class:`PatternTuple` rows over fixed ``X`` / ``Y``.

    The tableau validates that every row covers exactly the LHS / RHS
    attributes of the owning CFD.
    """

    __slots__ = ("_lhs_attrs", "_rhs_attrs", "_rows")

    def __init__(
        self,
        lhs_attrs: Sequence[str],
        rhs_attrs: Sequence[str],
        rows: Optional[Iterable[PatternTuple]] = None,
    ) -> None:
        if not rhs_attrs:
            raise PatternError("a pattern tableau needs at least one RHS attribute")
        self._lhs_attrs = tuple(lhs_attrs)
        self._rhs_attrs = tuple(rhs_attrs)
        self._rows: List[PatternTuple] = []
        if rows is not None:
            for row in rows:
                self.append(row)

    # ------------------------------------------------------------------ basics
    @property
    def lhs_attributes(self) -> Tuple[str, ...]:
        return self._lhs_attrs

    @property
    def rhs_attributes(self) -> Tuple[str, ...]:
        return self._rhs_attrs

    @property
    def rows(self) -> Tuple[PatternTuple, ...]:
        return tuple(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[PatternTuple]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> PatternTuple:
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternTableau):
            return NotImplemented
        return (
            self._lhs_attrs == other._lhs_attrs
            and self._rhs_attrs == other._rhs_attrs
            and self._rows == other._rows
        )

    def __repr__(self) -> str:
        return (
            f"PatternTableau({list(self._lhs_attrs)} -> {list(self._rhs_attrs)}, "
            f"{len(self._rows)} patterns)"
        )

    # ------------------------------------------------------------------ mutation
    def append(self, row: PatternTuple) -> None:
        """Append a pattern tuple, validating its attribute coverage."""
        if set(row.lhs_attributes) != set(self._lhs_attrs):
            raise PatternError(
                f"pattern tuple LHS attributes {row.lhs_attributes} do not match "
                f"tableau LHS {self._lhs_attrs}"
            )
        if set(row.rhs_attributes) != set(self._rhs_attrs):
            raise PatternError(
                f"pattern tuple RHS attributes {row.rhs_attributes} do not match "
                f"tableau RHS {self._rhs_attrs}"
            )
        self._rows.append(row)

    @classmethod
    def build(
        cls,
        lhs_attrs: Sequence[str],
        rhs_attrs: Sequence[str],
        pattern_rows: Iterable[Union[Sequence[CellSpec], Mapping[str, CellSpec]]],
    ) -> PatternTableau:
        """Build a tableau from raw cell specs.

        ``pattern_rows`` may contain sequences (cells in ``X`` order followed
        by ``Y`` order, the layout used in the paper's Figure 2) or mappings
        from attribute name to cell.  The tokens ``"_"`` and ``"@"`` stand for
        the wildcard and don't-care symbols respectively.
        """
        lhs_attrs = tuple(lhs_attrs)
        rhs_attrs = tuple(rhs_attrs)
        tableau = cls(lhs_attrs, rhs_attrs)
        width = len(lhs_attrs) + len(rhs_attrs)
        for raw in pattern_rows:
            if isinstance(raw, Mapping):
                lhs = {attr: raw[attr] for attr in lhs_attrs}
                rhs = {attr: raw[attr] for attr in rhs_attrs}
            else:
                cells = list(raw)
                if len(cells) != width:
                    raise PatternError(
                        f"pattern row {raw!r} has {len(cells)} cells, expected {width}"
                    )
                lhs = dict(zip(lhs_attrs, cells[: len(lhs_attrs)]))
                rhs = dict(zip(rhs_attrs, cells[len(lhs_attrs):]))
            tableau.append(PatternTuple(lhs, rhs))
        return tableau

    # ------------------------------------------------------------------ stats
    def constant_ratio(self) -> float:
        """Fraction of non-don't-care cells that are constants (NUMCONSTs knob)."""
        constants = 0
        total = 0
        for row in self._rows:
            for cell in list(row.lhs.values()) + list(row.rhs.values()):
                if cell.is_dontcare:
                    continue
                total += 1
                if cell.is_constant:
                    constants += 1
        return constants / total if total else 0.0

    def render(self) -> str:
        """A plain-text rendering in the style of the paper's Figure 2."""
        header = list(self._lhs_attrs) + ["||"] + list(self._rhs_attrs)
        lines = ["\t".join(header)]
        for row in self._rows:
            cells = [row.lhs_cell(attr).render() for attr in self._lhs_attrs]
            cells.append("||")
            cells.extend(row.rhs_cell(attr).render() for attr in self._rhs_attrs)
            lines.append("\t".join(cells))
        return "\n".join(lines)
