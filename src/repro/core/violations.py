"""Violation objects produced by CFD detection.

The paper distinguishes two ways a relation can violate a CFD
``φ = (X → Y, Tp)``:

* **single-tuple (constant) violations**, found by query ``Q^C``: a tuple
  matches a pattern tuple on ``X`` but clashes with a *constant* in the
  pattern's ``Y`` cells (Example 2.2: ``t1`` violates ``(01, 908, _ ‖ _, MH, _)``
  because its city is NYC, not MH);
* **multi-tuple (variable) violations**, found by query ``Q^V``: two tuples
  agree on ``X``, both match the pattern on ``X``, but disagree on ``Y``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple



@dataclass(frozen=True)
class Violation:
    """Base class for detected violations.

    Attributes
    ----------
    cfd_name:
        Name of the violated CFD.
    pattern_index:
        Index of the violated pattern tuple within the CFD's tableau.
    tuple_indices:
        Indices (into the checked relation) of the offending tuples.
    """

    cfd_name: str
    pattern_index: int
    tuple_indices: Tuple[int, ...]

    @property
    def kind(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantViolation(Violation):
    """A single-tuple violation: a constant RHS cell is contradicted.

    ``attribute`` is the RHS attribute whose constant is violated,
    ``expected`` the pattern constant and ``actual`` the tuple's value.
    """

    attribute: str = ""
    expected: Any = None
    actual: Any = None

    @property
    def kind(self) -> str:
        return "constant"

    @property
    def tuple_index(self) -> int:
        """The single offending tuple index."""
        return self.tuple_indices[0]


@dataclass(frozen=True)
class VariableViolation(Violation):
    """A multi-tuple violation: tuples agree on ``X`` but disagree on ``Y``.

    ``group_key`` is the shared ``X`` value (projected on the pattern's
    ``@``-free LHS attributes); ``attributes`` are the grouping attributes.
    """

    attributes: Tuple[str, ...] = ()
    group_key: Tuple[Any, ...] = ()

    @property
    def kind(self) -> str:
        return "variable"


class ViolationReport:
    """Aggregated result of checking a set of CFDs against a relation."""

    def __init__(self, violations: Optional[Iterable[Violation]] = None) -> None:
        self._violations: List[Violation] = list(violations) if violations else []

    # ------------------------------------------------------------------ mutation
    def add(self, violation: Violation) -> None:
        self._violations.append(violation)

    def extend(self, violations: Iterable[Violation]) -> None:
        self._violations.extend(violations)

    def merge(self, other: ViolationReport) -> ViolationReport:
        """A new report containing the violations of both reports."""
        return ViolationReport(self._violations + other._violations)

    # ------------------------------------------------------------------ queries
    @property
    def violations(self) -> Tuple[Violation, ...]:
        return tuple(self._violations)

    def __len__(self) -> int:
        return len(self._violations)

    def __iter__(self):
        return iter(self._violations)

    def __bool__(self) -> bool:
        return bool(self._violations)

    def is_clean(self) -> bool:
        """True when no violations were recorded — i.e. ``I |= Σ``."""
        return not self._violations

    def constant_violations(self) -> Tuple[ConstantViolation, ...]:
        return tuple(v for v in self._violations if isinstance(v, ConstantViolation))

    def variable_violations(self) -> Tuple[VariableViolation, ...]:
        return tuple(v for v in self._violations if isinstance(v, VariableViolation))

    def violating_indices(self) -> FrozenSet[int]:
        """The set of tuple indices involved in at least one violation."""
        indices: Set[int] = set()
        for violation in self._violations:
            indices.update(violation.tuple_indices)
        return frozenset(indices)

    def by_cfd(self) -> Dict[str, List[Violation]]:
        """Group violations by the violated CFD's name."""
        grouped: Dict[str, List[Violation]] = {}
        for violation in self._violations:
            grouped.setdefault(violation.cfd_name, []).append(violation)
        return grouped

    def summary(self) -> Dict[str, int]:
        """Counts useful for logging and the benchmark harness."""
        return {
            "violations": len(self._violations),
            "constant_violations": len(self.constant_violations()),
            "variable_violations": len(self.variable_violations()),
            "violating_tuples": len(self.violating_indices()),
        }

    def __repr__(self) -> str:
        stats = self.summary()
        return (
            "ViolationReport("
            f"{stats['violations']} violations over {stats['violating_tuples']} tuples)"
        )
