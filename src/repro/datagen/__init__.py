"""Data generation: the paper's running example and the tax-records experiment data."""

from repro.datagen.cust import cust_cfds, cust_relation, cust_schema
from repro.datagen.generator import TaxRecordGenerator, tax_schema
from repro.datagen.cfd_catalog import experiment_cfd, zip_state_cfd

__all__ = [
    "TaxRecordGenerator",
    "cust_cfds",
    "cust_relation",
    "cust_schema",
    "experiment_cfd",
    "tax_schema",
    "zip_state_cfd",
]
