"""The CFDs used by the experimental study (Section 5).

The paper's experiments use CFDs representing real-world constraints such as

  (a) zip codes determine states,
  (b) zip codes and cities determine states,
  (c) states and salary brackets determine tax rates,

and vary them along four knobs: NUMCFDs (how many), NUMATTRs (attributes per
CFD), TABSZ (pattern tuples per CFD) and NUMCONSTs (fraction of pattern
tuples made of constants only).  This module builds such CFDs from the
bundled geo/tax catalogs so that they hold on clean generated data, and
exposes :func:`experiment_cfd` — the parameterised factory the benchmark
harness drives.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.core.cfd import CFD
from repro.datagen.geo import GeoCatalog, catalog as geo_catalog
from repro.datagen.tax import NO_INCOME_TAX_STATES, TaxCatalog
from repro.errors import CFDError


def _take_patterns(
    rows: Sequence[Tuple],
    tabsz: Optional[int],
    seed: int,
) -> List[Tuple]:
    """Pick ``tabsz`` pattern rows (all of them when ``tabsz`` is None or too large)."""
    rows = list(rows)
    if tabsz is None or tabsz >= len(rows):
        return rows
    rng = random.Random(seed)
    return rng.sample(rows, tabsz)


def _apply_num_consts(
    patterns: List[List],
    wildcard_positions: Sequence[int],
    num_consts: float,
    seed: int,
) -> List[List]:
    """Turn ``1 - num_consts`` of the pattern rows into rows containing variables.

    ``wildcard_positions`` lists the cell positions that may safely be turned
    into ``_`` without invalidating the constraint on clean data (e.g. the
    city cell of a ``[ZIP, CT] → [ST]`` pattern: the zip alone still
    determines the state).
    """
    if not 0.0 <= num_consts <= 1.0:
        raise CFDError(f"num_consts must be a fraction in [0, 1], got {num_consts}")
    if num_consts >= 1.0 or not wildcard_positions:
        return patterns
    rng = random.Random(seed)
    n_variable = round(len(patterns) * (1.0 - num_consts))
    for row_index in rng.sample(range(len(patterns)), n_variable):
        position = rng.choice(list(wildcard_positions))
        patterns[row_index][position] = "_"
    return patterns


# ---------------------------------------------------------------------------
# the named real-world CFDs
# ---------------------------------------------------------------------------
def zip_state_cfd(
    tabsz: Optional[int] = None,
    num_consts: float = 1.0,
    geo: Optional[GeoCatalog] = None,
    seed: int = 0,
) -> CFD:
    """Constraint (a): ``[ZIP] → [ST]`` with one pattern per (zip, state) pair."""
    geo = geo or geo_catalog()
    pairs = _take_patterns(geo.zip_state_pairs(), tabsz, seed)
    patterns = [[zip_code, state] for zip_code, state in pairs]
    patterns = _apply_num_consts(patterns, wildcard_positions=(1,), num_consts=num_consts, seed=seed)
    return CFD.build(["ZIP"], ["ST"], patterns, name="zip_state")


def zip_city_state_cfd(
    tabsz: Optional[int] = None,
    num_consts: float = 1.0,
    geo: Optional[GeoCatalog] = None,
    seed: int = 0,
) -> CFD:
    """Constraint (b): ``[ZIP, CT] → [ST]`` (a city alone does not determine the state)."""
    geo = geo or geo_catalog()
    triples = _take_patterns(geo.zip_city_state_triples(), tabsz, seed)
    patterns = [[zip_code, city, state] for zip_code, city, state in triples]
    # The city cell (an LHS join attribute) may become a wildcard without
    # breaking the constraint on clean data: the zip alone still determines
    # the state.  Wildcards on join attributes are what the paper's
    # NUMCONSTs experiment (Figure 9(e)) is about — they restrict index use.
    patterns = _apply_num_consts(patterns, wildcard_positions=(1,), num_consts=num_consts, seed=seed)
    return CFD.build(["ZIP", "CT"], ["ST"], patterns, name="zip_city_state")


def area_city_state_cfd(
    tabsz: Optional[int] = None,
    num_consts: float = 1.0,
    geo: Optional[GeoCatalog] = None,
    seed: int = 0,
) -> CFD:
    """A four-attribute constraint: ``[CC, AC] → [CT, ST]`` for single-city area codes."""
    geo = geo or geo_catalog()
    triples = _take_patterns(geo.area_city_state_triples(), tabsz, seed)
    patterns = [["01", area, city, state] for area, city, state in triples]
    patterns = _apply_num_consts(patterns, wildcard_positions=(0, 2, 3), num_consts=num_consts, seed=seed)
    return CFD.build(["CC", "AC"], ["CT", "ST"], patterns, name="area_city_state")


def no_tax_state_cfd(tax: Optional[TaxCatalog] = None, geo: Optional[GeoCatalog] = None) -> CFD:
    """Constraint (c) specialised: states without income tax have rate 0.00."""
    geo = geo or geo_catalog()
    patterns = [[state, "0.00"] for state in sorted(NO_INCOME_TAX_STATES) if state in geo.states()]
    return CFD.build(["ST"], ["TX"], patterns, name="no_tax_state")


def exemption_cfd(geo: Optional[GeoCatalog] = None, tax: Optional[TaxCatalog] = None) -> CFD:
    """``[ST, MR, CH] → [STX, MTX, CTX]``: exemptions are a function of state and status."""
    geo = geo or geo_catalog()
    tax = tax or TaxCatalog(geo.states())
    patterns = []
    for state in geo.states():
        for married in (False, True):
            for children in (False, True):
                single_ex, married_ex, child_ex = tax.exemption(state, married, children)
                patterns.append(
                    [
                        state,
                        "married" if married else "single",
                        "yes" if children else "no",
                        single_ex,
                        married_ex,
                        child_ex,
                    ]
                )
    return CFD.build(["ST", "MR", "CH"], ["STX", "MTX", "CTX"], patterns, name="exemption")


def phone_address_fd_cfd() -> CFD:
    """The plain FD ``[CC, AC, PN] → [STR, CT, ZIP]`` of the cust example as a CFD."""
    return CFD.build(
        ["CC", "AC", "PN"],
        ["STR", "CT", "ZIP"],
        [["_"] * 6],
        name="phone_address_fd",
    )


# ---------------------------------------------------------------------------
# the parameterised factory driven by the benchmarks
# ---------------------------------------------------------------------------
def experiment_cfd(
    num_attrs: int,
    tabsz: Optional[int] = None,
    num_consts: float = 1.0,
    geo: Optional[GeoCatalog] = None,
    seed: int = 0,
) -> CFD:
    """A CFD with the requested NUMATTRs / TABSZ / NUMCONSTs knobs (Section 5).

    ``num_attrs`` counts the attributes of the embedded FD (LHS + RHS), the
    way the paper's NUMATTRs knob does:

    * 2 → ``[ZIP] → [ST]``
    * 3 → ``[ZIP, CT] → [ST]``
    * 4 → ``[CC, AC] → [CT, ST]``

    >>> cfd = experiment_cfd(num_attrs=3, tabsz=100, num_consts=0.5, seed=1)
    >>> len(cfd.tableau)
    100
    """
    if num_attrs == 2:
        return zip_state_cfd(tabsz, num_consts, geo, seed)
    if num_attrs == 3:
        return zip_city_state_cfd(tabsz, num_consts, geo, seed)
    if num_attrs == 4:
        return area_city_state_cfd(tabsz, num_consts, geo, seed)
    raise CFDError(f"experiment_cfd supports 2-4 attributes, got {num_attrs}")


def experiment_cfd_set(
    num_cfds: int,
    tabsz: Optional[int] = None,
    num_consts: float = 1.0,
    geo: Optional[GeoCatalog] = None,
    seed: int = 0,
) -> List[CFD]:
    """A set of ``num_cfds`` catalog CFDs (the NUMCFDs knob).

    Cycles through the named real-world constraints, giving each its own
    pattern sample so that the CFDs in the set are related but not identical.
    """
    if num_cfds < 1:
        raise CFDError("num_cfds must be at least 1")
    geo = geo or geo_catalog()
    builders = [
        lambda index: zip_state_cfd(tabsz, num_consts, geo, seed + index),
        lambda index: zip_city_state_cfd(tabsz, num_consts, geo, seed + index),
        lambda index: area_city_state_cfd(tabsz, num_consts, geo, seed + index),
        lambda index: exemption_cfd(geo),
        lambda index: no_tax_state_cfd(geo=geo),
    ]
    cfds: List[CFD] = []
    for index in range(num_cfds):
        builder = builders[index % len(builders)]
        cfd = builder(index)
        if any(existing.name == cfd.name for existing in cfds):
            cfd = CFD(cfd.lhs, cfd.rhs, cfd.tableau, name=f"{cfd.name}_{index}")
        cfds.append(cfd)
    return cfds
