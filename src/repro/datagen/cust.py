"""The paper's running example: the ``cust`` relation and its CFDs.

Figure 1 gives the instance, Figure 2 the CFDs ``ϕ1``–``ϕ3``; ``ϕ5`` (used in
Figure 7 to illustrate tableau merging) and the plain FDs ``f1``/``f2`` of
Example 1.1 are provided as well.  Example 2.2 states the expected outcome of
detection: the instance satisfies ``ϕ1`` and ``ϕ3`` but violates ``ϕ2`` —
tuples ``t1``/``t2`` via a constant clash and ``t3``/``t4`` via a multi-tuple
violation.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.core.cfd import CFD, FD
from repro.relation.relation import Relation
from repro.relation.schema import Schema

#: Attribute order of the cust relation (Example 1.1).
CUST_ATTRIBUTES = ("CC", "AC", "PN", "NM", "STR", "CT", "ZIP")


def cust_schema() -> Schema:
    """The ``cust`` schema: country code, area code, phone, name, street, city, zip."""
    return Schema("cust", CUST_ATTRIBUTES)


def cust_relation() -> Relation:
    """The six-tuple instance of Figure 1 (tuples ``t1``–``t6``, indices 0–5).

    Note on fidelity: the table printed in the paper shows ``t3`` and ``t4``
    with identical ZIP values, yet Example 4.1 states that ``Q^V_{ϕ2}``
    returns ``t3`` and ``t4`` — which requires the two tuples to disagree on
    one of ϕ2's RHS attributes.  We follow the *examples* (the behavioural
    specification) and give ``t4`` a different ZIP; the table exactly as
    printed is available from :func:`cust_relation_printed`.
    """
    rows = [
        ("01", "908", "1111111", "Mike", "Tree Ave.", "NYC", "07974"),
        ("01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"),
        ("01", "212", "2222222", "Joe", "Elm Str.", "NYC", "01202"),
        ("01", "212", "2222222", "Jim", "Elm Str.", "NYC", "01183"),
        ("01", "215", "3333333", "Ben", "Oak Ave.", "PHI", "02394"),
        ("44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"),
    ]
    return Relation(cust_schema(), rows)


def iter_cust_rows() -> Iterator[Tuple[str, ...]]:
    """Stream the Figure 1 rows one at a time (the ``--stream`` emit path).

    The instance is tiny, but exposing the same iterator protocol as
    :meth:`TaxRecordGenerator.iter_rows` keeps the streaming CLI uniform
    across datasets.
    """
    yield from cust_relation()


def cust_relation_printed() -> Relation:
    """The instance exactly as printed in Figure 1 (``t3`` and ``t4`` share a ZIP)."""
    rows = [
        ("01", "908", "1111111", "Mike", "Tree Ave.", "NYC", "07974"),
        ("01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"),
        ("01", "212", "2222222", "Joe", "Elm Str.", "NYC", "01202"),
        ("01", "212", "2222222", "Jim", "Elm Str.", "NYC", "01202"),
        ("01", "215", "3333333", "Ben", "Oak Ave.", "PHI", "02394"),
        ("44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"),
    ]
    return Relation(cust_schema(), rows)


def fd_f1() -> FD:
    """``f1: [CC, AC, PN] → [STR, CT, ZIP]`` from Example 1.1."""
    return FD(("CC", "AC", "PN"), ("STR", "CT", "ZIP"))


def fd_f2() -> FD:
    """``f2: [CC, AC] → [CT]`` from Example 1.1."""
    return FD(("CC", "AC"), ("CT",))


def phi1() -> CFD:
    """``ϕ1 = (cust: [CC, ZIP] → [STR], T1)`` — UK zip codes determine streets."""
    return CFD.build(
        ["CC", "ZIP"],
        ["STR"],
        [["44", "_", "_"]],
        name="phi1",
        schema=cust_schema(),
    )


def phi2() -> CFD:
    """``ϕ2 = (cust: [CC, AC, PN] → [STR, CT, ZIP], T2)`` — refines ``f1`` (Figure 2b)."""
    return CFD.build(
        ["CC", "AC", "PN"],
        ["STR", "CT", "ZIP"],
        [
            ["01", "908", "_", "_", "MH", "_"],
            ["01", "212", "_", "_", "NYC", "_"],
            ["_", "_", "_", "_", "_", "_"],
        ],
        name="phi2",
        schema=cust_schema(),
    )


def phi3() -> CFD:
    """``ϕ3 = (cust: [CC, AC] → [CT], T3)`` — refines ``f2`` (Figure 2c)."""
    return CFD.build(
        ["CC", "AC"],
        ["CT"],
        [
            ["01", "215", "PHI"],
            ["44", "141", "GLA"],
            ["_", "_", "_"],
        ],
        name="phi3",
        schema=cust_schema(),
    )


def phi5() -> CFD:
    """``ϕ5 = (cust: [CT] → [AC], T5)`` with a single all-wildcard pattern (Section 4.2.1)."""
    return CFD.build(["CT"], ["AC"], [["_", "_"]], name="phi5", schema=cust_schema())


def cust_cfds() -> List[CFD]:
    """The CFDs of Figure 2 (``ϕ1``, ``ϕ2``, ``ϕ3``)."""
    return [phi1(), phi2(), phi3()]
