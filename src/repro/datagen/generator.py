"""The tax-records generator used by the experimental study (Section 5).

The paper extends the ``cust`` relation with eight attributes — state (ST),
marital status (MR), dependants (CH), salary (SA), tax rate (TX) and three
exemption columns — and generates synthetic tax records from real zip / area
code / tax data, flipping an RHS attribute to an incorrect value with
probability NOISE.

This module reproduces that generator over the bundled
:mod:`repro.datagen.geo` and :mod:`repro.datagen.tax` catalogs.  Generation
is fully deterministic given the seed, and the indices of the corrupted
tuples are recorded so tests can verify that detection finds exactly the
injected errors (plus any collateral multi-tuple violations they cause).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Set, Tuple

from repro.datagen.geo import GeoCatalog, Location, catalog as geo_catalog
from repro.datagen.tax import TaxCatalog
from repro.relation.relation import Relation
from repro.relation.schema import Schema

#: Attribute order of the tax-records relation: the 7 cust attributes plus the
#: 8 attributes described in Section 5 (ST, MR, CH, SA, TX and 3 exemptions).
TAX_ATTRIBUTES = (
    "CC", "AC", "PN", "NM", "STR", "CT", "ZIP",
    "ST", "MR", "CH", "SA", "TX", "STX", "MTX", "CTX",
)

_FIRST_NAMES = (
    "Mike", "Rick", "Joe", "Jim", "Ben", "Ian", "Anna", "Laura", "Maria", "Sven",
    "Wei", "Ravi", "Olga", "Petra", "Hugo", "Nadia", "Kofi", "Aiko", "Liam", "Noor",
)
_LAST_NAMES = (
    "Smith", "Jones", "Brown", "Taylor", "Lee", "Chen", "Patel", "Garcia", "Kim",
    "Nguyen", "Mueller", "Rossi", "Silva", "Kowalski", "Ivanov", "Haddad",
)
_STREETS = (
    "Tree Ave.", "Elm Str.", "Oak Ave.", "High St.", "Maple Dr.", "Pine Rd.",
    "Cedar Ln.", "Lake View", "Hill Top", "Main St.", "Mountain Ave.", "2nd Ave.",
)

#: Attributes eligible for noise injection (RHS attributes of the catalog CFDs).
NOISE_ATTRIBUTES = ("CT", "ST", "ZIP", "AC", "TX", "STX", "MTX", "CTX")


def tax_schema() -> Schema:
    """The tax-records schema used throughout Section 5."""
    return Schema("taxrecords", TAX_ATTRIBUTES)


@dataclass
class GenerationResult:
    """A generated relation plus bookkeeping about the injected noise."""

    relation: Relation
    dirty_indices: Set[int] = field(default_factory=set)
    corrupted_attributes: Dict[int, str] = field(default_factory=dict)

    @property
    def noise_rate(self) -> float:
        if len(self.relation) == 0:
            return 0.0
        return len(self.dirty_indices) / len(self.relation)


class TaxRecordGenerator:
    """Generates synthetic tax records with a controlled fraction of dirty tuples.

    Parameters
    ----------
    size:
        Number of tuples to generate (the paper's SZ knob).
    noise:
        Probability that a tuple gets one RHS attribute corrupted (the NOISE
        knob, expressed as a fraction, e.g. ``0.05`` for 5%).
    seed:
        Seed of the pseudo-random generator; two generators with equal
        parameters produce identical relations.
    geo, tax:
        Optional catalog overrides (the benchmark harness passes a larger geo
        catalog when it needs a bigger pattern universe).

    >>> result = TaxRecordGenerator(size=100, noise=0.1, seed=7).generate()
    >>> len(result.relation)
    100
    >>> 0 < len(result.dirty_indices) <= 100
    True
    """

    def __init__(
        self,
        size: int,
        noise: float = 0.05,
        seed: int = 0,
        geo: Optional[GeoCatalog] = None,
        tax: Optional[TaxCatalog] = None,
    ) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if not 0.0 <= noise <= 1.0:
            raise ValueError(f"noise must be a fraction in [0, 1], got {noise}")
        self.size = size
        self.noise = noise
        self.seed = seed
        self.geo = geo or geo_catalog()
        self.tax = tax or TaxCatalog(self.geo.states())

    # ------------------------------------------------------------------ clean rows
    def _clean_row(self, rng: random.Random, locations: Sequence[Location]) -> Tuple:
        location = rng.choice(locations)
        name = f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
        street = f"{rng.randint(1, 999)} {rng.choice(_STREETS)}"
        phone = f"{rng.randint(1000000, 9999999)}"
        married = rng.random() < 0.5
        children = rng.random() < 0.4
        salary = rng.randint(12, 200) * 1000
        rate = self.tax.rate(location.state, salary)
        single_ex, married_ex, child_ex = self.tax.exemption(location.state, married, children)
        return (
            "01",
            location.area_code,
            phone,
            name,
            street,
            location.city,
            location.zip_code,
            location.state,
            "married" if married else "single",
            "yes" if children else "no",
            salary,
            f"{rate:.2f}",
            single_ex,
            married_ex,
            child_ex,
        )

    # ------------------------------------------------------------------ noise
    def _corrupt(self, rng: random.Random, row: Tuple, locations: Sequence[Location]) -> Tuple[Tuple, str]:
        """Flip one RHS attribute of ``row`` to a plausible but incorrect value."""
        schema = TAX_ATTRIBUTES
        attribute = rng.choice(NOISE_ATTRIBUTES)
        position = schema.index(attribute)
        values = list(row)
        other = rng.choice(locations)
        if attribute == "CT":
            # e.g. a NYC resident with a Chicago city value
            replacement = other.city if other.city != values[position] else other.city + " East"
        elif attribute == "ST":
            replacement = other.state if other.state != values[position] else "ZZ"
        elif attribute == "ZIP":
            replacement = other.zip_code if other.zip_code != values[position] else "00000"
        elif attribute == "AC":
            replacement = other.area_code if other.area_code != values[position] else "000"
        elif attribute == "TX":
            replacement = f"{float(values[position]) + 1.11:.2f}"
        else:  # one of the exemption columns
            replacement = int(values[position]) + 501
        values[position] = replacement
        return tuple(values), attribute

    # ------------------------------------------------------------------ API
    def _emit(self) -> Iterator[Tuple[Tuple, Optional[str]]]:
        """Yield ``(row, corrupted_attribute_or_None)`` one tuple at a time.

        Single source of the generation sequence: the RNG call order here is
        exactly :meth:`generate`'s historical order (choice/randints per
        clean row, one ``random()`` noise draw, then the corruption draws),
        so streaming and materialised output are row-for-row identical for
        equal ``(size, noise, seed)``.
        """
        rng = random.Random(self.seed)
        locations = self.geo.locations
        for _ in range(self.size):
            row = self._clean_row(rng, locations)
            attribute: Optional[str] = None
            if rng.random() < self.noise:
                row, attribute = self._corrupt(rng, row, locations)
            yield row, attribute

    def iter_rows(self) -> Iterator[Tuple]:
        """Stream the generated rows without materialising the relation.

        The out-of-core emit path: O(1) memory regardless of ``size``, rows
        identical to ``generate().relation`` (same seed, same RNG order).
        Feed it to a chunked ingester (``MmapColumnStore.extend``, the CLI's
        ``generate --stream``) to build 10M-row inputs in bounded memory.
        """
        for row, _attribute in self._emit():
            yield row

    def generate(self) -> GenerationResult:
        """Generate the relation; deterministic for a fixed (size, noise, seed)."""
        relation = Relation(tax_schema())
        result = GenerationResult(relation=relation)
        for index, (row, attribute) in enumerate(self._emit()):
            if attribute is not None:
                result.dirty_indices.add(index)
                result.corrupted_attributes[index] = attribute
            relation.insert(row)
        return result

    def generate_relation(self) -> Relation:
        """Convenience wrapper returning only the relation."""
        return self.generate().relation
