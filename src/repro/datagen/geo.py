"""A synthetic-but-realistic US geography catalog.

The paper's experiments populate a tax-records relation from "real-life data:
the zip and area codes for major cities and towns for all US states".  That
exact data set is not redistributable, so this module ships an equivalent
catalog: for every US state, a handful of major cities, each with plausible
area codes and a ZIP prefix.  What matters for reproducing the experiments is
only that the catalog defines *functional relationships* —

* ``ZIP → ST``  (a zip prefix belongs to exactly one state),
* ``ZIP, CT → ST``,
* ``CC, AC → CT, ST`` (an area code belongs to exactly one city here),

so that the CFDs built from the catalog genuinely hold on clean generated
data and are violated exactly by injected noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

#: state code -> list of (city, area codes, zip prefix)
_STATE_CITIES: Dict[str, List[Tuple[str, Tuple[str, ...], str]]] = {
    "AL": [("Birmingham", ("205",), "352"), ("Montgomery", ("334",), "361"), ("Huntsville", ("256",), "358")],
    "AK": [("Anchorage", ("907",), "995"), ("Fairbanks", ("907",), "997")],
    "AZ": [("Phoenix", ("602", "480"), "850"), ("Tucson", ("520",), "857"), ("Mesa", ("480",), "852")],
    "AR": [("Little Rock", ("501",), "722"), ("Fayetteville", ("479",), "727")],
    "CA": [("Los Angeles", ("213", "310"), "900"), ("San Francisco", ("415",), "941"),
           ("San Diego", ("619",), "921"), ("Sacramento", ("916",), "958"), ("Fresno", ("559",), "937")],
    "CO": [("Denver", ("303", "720"), "802"), ("Colorado Springs", ("719",), "809"), ("Boulder", ("303",), "803")],
    "CT": [("Hartford", ("860",), "061"), ("New Haven", ("203",), "065"), ("Stamford", ("203",), "069")],
    "DE": [("Wilmington", ("302",), "198"), ("Dover", ("302",), "199")],
    "FL": [("Miami", ("305", "786"), "331"), ("Orlando", ("407",), "328"),
           ("Tampa", ("813",), "336"), ("Jacksonville", ("904",), "322")],
    "GA": [("Atlanta", ("404", "678"), "303"), ("Savannah", ("912",), "314"), ("Augusta", ("706",), "309")],
    "HI": [("Honolulu", ("808",), "968"), ("Hilo", ("808",), "967")],
    "ID": [("Boise", ("208",), "837"), ("Idaho Falls", ("208",), "834")],
    "IL": [("Chicago", ("312", "773"), "606"), ("Springfield", ("217",), "627"), ("Peoria", ("309",), "616")],
    "IN": [("Indianapolis", ("317",), "462"), ("Fort Wayne", ("260",), "468"), ("Evansville", ("812",), "477")],
    "IA": [("Des Moines", ("515",), "503"), ("Cedar Rapids", ("319",), "524")],
    "KS": [("Wichita", ("316",), "672"), ("Topeka", ("785",), "666"), ("Kansas City", ("913",), "661")],
    "KY": [("Louisville", ("502",), "402"), ("Lexington", ("859",), "405")],
    "LA": [("New Orleans", ("504",), "701"), ("Baton Rouge", ("225",), "708"), ("Shreveport", ("318",), "711")],
    "ME": [("Portland", ("207",), "041"), ("Bangor", ("207",), "044")],
    "MD": [("Baltimore", ("410", "443"), "212"), ("Annapolis", ("410",), "214"), ("Rockville", ("301",), "208")],
    "MA": [("Boston", ("617", "857"), "021"), ("Worcester", ("508",), "016"), ("Springfield", ("413",), "011")],
    "MI": [("Detroit", ("313",), "482"), ("Grand Rapids", ("616",), "495"), ("Lansing", ("517",), "489")],
    "MN": [("Minneapolis", ("612",), "554"), ("Saint Paul", ("651",), "551"), ("Duluth", ("218",), "558")],
    "MS": [("Jackson", ("601",), "392"), ("Gulfport", ("228",), "395")],
    "MO": [("Kansas City", ("816",), "641"), ("Saint Louis", ("314",), "631"), ("Springfield", ("417",), "658")],
    "MT": [("Billings", ("406",), "591"), ("Missoula", ("406",), "598")],
    "NE": [("Omaha", ("402",), "681"), ("Lincoln", ("402",), "685")],
    "NV": [("Las Vegas", ("702",), "891"), ("Reno", ("775",), "895")],
    "NH": [("Manchester", ("603",), "031"), ("Concord", ("603",), "033")],
    "NJ": [("Newark", ("973",), "071"), ("Murray Hill", ("908",), "079"),
           ("Jersey City", ("201",), "073"), ("Trenton", ("609",), "086")],
    "NM": [("Albuquerque", ("505",), "871"), ("Santa Fe", ("505",), "875")],
    "NY": [("NYC", ("212", "718", "646"), "100"), ("Buffalo", ("716",), "142"),
           ("Albany", ("518",), "122"), ("Rochester", ("585",), "146")],
    "NC": [("Charlotte", ("704",), "282"), ("Raleigh", ("919",), "276"), ("Durham", ("919",), "277")],
    "ND": [("Fargo", ("701",), "581"), ("Bismarck", ("701",), "585")],
    "OH": [("Columbus", ("614",), "432"), ("Cleveland", ("216",), "441"), ("Cincinnati", ("513",), "452")],
    "OK": [("Oklahoma City", ("405",), "731"), ("Tulsa", ("918",), "741")],
    "OR": [("Portland", ("503", "971"), "972"), ("Eugene", ("541",), "974"), ("Salem", ("503",), "973")],
    "PA": [("PHI", ("215", "267"), "191"), ("Pittsburgh", ("412",), "152"),
           ("Harrisburg", ("717",), "171"), ("Allentown", ("610",), "181")],
    "RI": [("Providence", ("401",), "029"), ("Warwick", ("401",), "028")],
    "SC": [("Columbia", ("803",), "292"), ("Charleston", ("843",), "294")],
    "SD": [("Sioux Falls", ("605",), "571"), ("Rapid City", ("605",), "577")],
    "TN": [("Nashville", ("615",), "372"), ("Memphis", ("901",), "381"), ("Knoxville", ("865",), "379")],
    "TX": [("Houston", ("713", "832"), "770"), ("Dallas", ("214", "972"), "752"),
           ("Austin", ("512",), "787"), ("San Antonio", ("210",), "782"), ("El Paso", ("915",), "799")],
    "UT": [("Salt Lake City", ("801",), "841"), ("Provo", ("801",), "846")],
    "VT": [("Burlington", ("802",), "054"), ("Montpelier", ("802",), "056")],
    "VA": [("Richmond", ("804",), "232"), ("Virginia Beach", ("757",), "234"), ("Arlington", ("703",), "222")],
    "WA": [("Seattle", ("206",), "981"), ("Spokane", ("509",), "992"), ("Tacoma", ("253",), "984")],
    "WV": [("Charleston", ("304",), "253"), ("Morgantown", ("304",), "265")],
    "WI": [("Milwaukee", ("414",), "532"), ("Madison", ("608",), "537"), ("Green Bay", ("920",), "543")],
    "WY": [("Cheyenne", ("307",), "820"), ("Casper", ("307",), "826")],
}

#: Number of distinct ZIP codes generated per city (suffix 00..NN-1 on the prefix).
ZIPS_PER_CITY = 20


@dataclass(frozen=True)
class Location:
    """One (state, city, area code, zip) combination from the catalog."""

    state: str
    city: str
    area_code: str
    zip_code: str


class GeoCatalog:
    """All locations of the catalog, with lookup helpers used by the CFD factory.

    The catalog is deterministic — no randomness — so the functional
    relationships it encodes are stable across runs.
    """

    def __init__(self, zips_per_city: int = ZIPS_PER_CITY) -> None:
        self._locations: List[Location] = []
        self._state_of_zip: Dict[str, str] = {}
        self._cities_of_area: Dict[str, set] = {}
        for state, cities in _STATE_CITIES.items():
            for city, area_codes, zip_prefix in cities:
                for suffix in range(zips_per_city):
                    zip_code = f"{zip_prefix}{suffix:03d}"
                    # A zip prefix is unique to a state by construction, so the
                    # full zip determines the state.
                    self._state_of_zip[zip_code] = state
                    for area_code in area_codes:
                        self._locations.append(Location(state, city, area_code, zip_code))
                for area_code in area_codes:
                    self._cities_of_area.setdefault(area_code, set()).add((city, state))

    # ------------------------------------------------------------------ access
    @property
    def locations(self) -> List[Location]:
        return list(self._locations)

    def __len__(self) -> int:
        return len(self._locations)

    def __iter__(self) -> Iterator[Location]:
        return iter(self._locations)

    def states(self) -> List[str]:
        return sorted(_STATE_CITIES)

    def cities_of(self, state: str) -> List[str]:
        return [city for city, _, _ in _STATE_CITIES[state]]

    def state_of_zip(self, zip_code: str) -> str:
        """The state a zip code belongs to (total on generated zips)."""
        return self._state_of_zip[zip_code]

    def zip_state_pairs(self) -> List[Tuple[str, str]]:
        """Every (zip, state) pair — the paper's Figure 9(f) uses all of them."""
        return sorted(self._state_of_zip.items())

    def zip_city_state_triples(self) -> List[Tuple[str, str, str]]:
        """Every (zip, city, state) triple occurring in the catalog."""
        seen = {}
        for location in self._locations:
            seen[(location.zip_code, location.city)] = location.state
        return sorted((zip_code, city, state) for (zip_code, city), state in seen.items())

    def area_state_pairs(self) -> List[Tuple[str, str]]:
        """Every (area code, state) pair; area codes are unique to a state in the catalog."""
        pairs = {}
        for area, cities in self._cities_of_area.items():
            states = {state for _, state in cities}
            if len(states) == 1:
                pairs[area] = next(iter(states))
        return sorted(pairs.items())

    def area_city_state_triples(self) -> List[Tuple[str, str, str]]:
        """(area code, city, state) triples for area codes serving a single city.

        Some real area codes cover several cities of a state (e.g. 907 covers
        all of Alaska); those are excluded so the triples describe a genuine
        functional relationship ``AC → CT, ST``.
        """
        triples = []
        for area, cities in self._cities_of_area.items():
            if len(cities) == 1:
                city, state = next(iter(cities))
                triples.append((area, city, state))
        return sorted(triples)


_CATALOG: GeoCatalog = GeoCatalog()


def catalog(zips_per_city: int = ZIPS_PER_CITY) -> GeoCatalog:
    """A catalog with ``zips_per_city`` zip codes per city.

    The default-size catalog is a module-level singleton (construction is
    deterministic); other sizes are built on demand, which the benchmark
    harness uses when an experiment needs a larger pattern-tableau universe.
    """
    if zips_per_city == ZIPS_PER_CITY:
        return _CATALOG
    return GeoCatalog(zips_per_city)
