"""Generic noise injection into relations.

The tax-records generator corrupts rows as it creates them; this module
offers the same facility for arbitrary existing relations, which the repair
examples and failure-injection tests use ("dirty a clean relation, detect,
repair, verify").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.relation.relation import Relation


@dataclass
class NoiseReport:
    """What :func:`inject_noise` changed."""

    dirty_indices: Set[int] = field(default_factory=set)
    changes: List[tuple] = field(default_factory=list)  # (index, attribute, old, new)


def inject_noise(
    relation: Relation,
    attributes: Sequence[str],
    rate: float,
    seed: int = 0,
    value_pool: Optional[Dict[str, Sequence]] = None,
) -> NoiseReport:
    """Corrupt ``rate`` of the rows of ``relation`` in place.

    For each selected row one attribute from ``attributes`` is replaced by a
    different value drawn from ``value_pool[attribute]`` if provided, or from
    the attribute's active domain otherwise (falling back to a synthetic
    ``"<old>_dirty"`` value when the active domain has a single value).

    Returns a :class:`NoiseReport` describing every change.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be a fraction in [0, 1], got {rate}")
    if not attributes:
        raise ValueError("at least one attribute to corrupt is required")
    rng = random.Random(seed)
    report = NoiseReport()
    pools = {
        attribute: list(
            (value_pool or {}).get(attribute, relation.active_domain(attribute))
        )
        for attribute in attributes
    }
    for index in range(len(relation)):
        if rng.random() >= rate:
            continue
        attribute = rng.choice(list(attributes))
        old = relation.value(index, attribute)
        candidates = [value for value in pools[attribute] if value != old]
        if candidates:
            new = rng.choice(candidates)
        else:
            new = f"{old}_dirty"
        relation.update(index, attribute, new)
        report.dirty_indices.add(index)
        report.changes.append((index, attribute, old, new))
    return report
