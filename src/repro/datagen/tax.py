"""A synthetic per-state income-tax catalog.

The paper's generator uses "the tax rates, tax and income brackets, and
exemptions for each state".  This module provides a deterministic equivalent:
every state gets a progressive bracket table and three exemption amounts
(single, married, per-child).  A handful of states are modelled with no state
income tax, mirroring reality, which gives the generated data a realistic mix
of zero and non-zero rates.

The only property the experiments rely on is functional: the tax rate is a
function of (state, salary bracket) and each exemption is a function of
(state, marital status / dependants), so the corresponding CFDs hold on clean
data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: States with no state income tax.
NO_INCOME_TAX_STATES = ("AK", "FL", "NV", "SD", "TX", "WA", "WY", "TN", "NH")

#: Salary bracket boundaries (lower bounds, in dollars).
BRACKET_BOUNDS = (0, 20_000, 50_000, 90_000, 150_000)


@dataclass(frozen=True)
class StateTaxPolicy:
    """Tax brackets and exemptions of one state."""

    state: str
    #: one rate (percent) per entry of :data:`BRACKET_BOUNDS`
    rates: Tuple[float, ...]
    single_exemption: int
    married_exemption: int
    child_exemption: int

    def rate_for(self, salary: int) -> float:
        """The marginal rate (percent) applicable to ``salary``."""
        rate = self.rates[0]
        for bound, bracket_rate in zip(BRACKET_BOUNDS, self.rates):
            if salary >= bound:
                rate = bracket_rate
        return rate

    def bracket_for(self, salary: int) -> int:
        """The 0-based bracket index applicable to ``salary``."""
        bracket = 0
        for index, bound in enumerate(BRACKET_BOUNDS):
            if salary >= bound:
                bracket = index
        return bracket


def _build_policies(states: List[str]) -> Dict[str, StateTaxPolicy]:
    policies: Dict[str, StateTaxPolicy] = {}
    for index, state in enumerate(sorted(states)):
        if state in NO_INCOME_TAX_STATES:
            rates = (0.0,) * len(BRACKET_BOUNDS)
            single = 0
            married = 0
            child = 0
        else:
            base = 1.5 + (index % 7) * 0.5
            rates = tuple(round(base + step * 1.25, 2) for step in range(len(BRACKET_BOUNDS)))
            single = 2000 + (index % 10) * 150
            married = single * 2
            child = 900 + (index % 8) * 75
        policies[state] = StateTaxPolicy(
            state=state,
            rates=rates,
            single_exemption=single,
            married_exemption=married,
            child_exemption=child,
        )
    return policies


class TaxCatalog:
    """Per-state tax policies, deterministic across runs."""

    def __init__(self, states: List[str]) -> None:
        self._policies = _build_policies(states)

    def policy(self, state: str) -> StateTaxPolicy:
        return self._policies[state]

    def states(self) -> List[str]:
        return sorted(self._policies)

    def rate(self, state: str, salary: int) -> float:
        """The tax rate for a salary in a state."""
        return self._policies[state].rate_for(salary)

    def exemption(self, state: str, married: bool, children: bool) -> Tuple[int, int, int]:
        """(single-, married-, child-) exemption amounts applicable in ``state``.

        The three columns are reported separately in the generated relation,
        matching the paper's "3 attributes recording tax exemptions, based on
        marital status and the existence of dependents".
        """
        policy = self._policies[state]
        single = 0 if married else policy.single_exemption
        spouse = policy.married_exemption if married else 0
        child = policy.child_exemption if children else 0
        return single, spouse, child

    def state_bracket_rate_triples(self) -> List[Tuple[str, int, float]]:
        """Every (state, bracket index, rate) triple — used by the tax-rate CFD."""
        triples = []
        for state in self.states():
            policy = self._policies[state]
            for bracket, rate in enumerate(policy.rates):
                triples.append((state, bracket, rate))
        return triples
