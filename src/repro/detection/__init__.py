"""A single façade over the in-memory, SQL and partition-indexed detectors."""

from repro.detection.engine import DETECTION_METHODS, CrossCheckResult, cross_check, detect_violations
from repro.detection.indexed import (
    IndexedDetector,
    detect_stream,
    find_cfd_violations_indexed,
    find_violations_indexed,
)
from repro.detection.partition_index import PartitionIndex, PartitionIndexCache

__all__ = [
    "DETECTION_METHODS",
    "CrossCheckResult",
    "IndexedDetector",
    "PartitionIndex",
    "PartitionIndexCache",
    "cross_check",
    "detect_stream",
    "detect_violations",
    "find_cfd_violations_indexed",
    "find_violations_indexed",
]
