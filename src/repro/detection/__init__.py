"""A single façade over the in-memory and SQL violation detectors."""

from repro.detection.engine import cross_check, detect_violations

__all__ = ["cross_check", "detect_violations"]
