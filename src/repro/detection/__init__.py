"""A single façade over the in-memory, SQL and partition-indexed detectors.

Backends are dispatched through :mod:`repro.registry`; importing this
package registers the built-ins (``inmemory``, ``sql``, ``indexed``).
"""

from repro.detection.engine import DETECTION_METHODS, CrossCheckResult, cross_check, detect_violations
from repro.detection.indexed import (
    IndexedDetector,
    detect_stream,
    find_cfd_violations_indexed,
    find_violations_indexed,
)
from repro.detection.partition_index import PartitionIndex, PartitionIndexCache

__all__ = [
    "DETECTION_METHODS",
    "CrossCheckResult",
    "IndexedDetector",
    "PartitionIndex",
    "PartitionIndexCache",
    "cross_check",
    "detect_stream",
    "detect_violations",
    "find_cfd_violations_indexed",
    "find_violations_indexed",
]
