"""Unified violation detection API.

``detect_violations`` dispatches between the pure-Python detector
(:mod:`repro.core.satisfaction`), the SQL detector
(:mod:`repro.sql.engine`) and the partition-indexed detector
(:mod:`repro.detection.indexed`).  The pure-Python detector serves as the
correctness oracle; ``cross_check`` compares all three pairwise and is used
heavily in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Tuple, Union

from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations
from repro.core.violations import ViolationReport
from repro.detection.indexed import find_violations_indexed
from repro.errors import DetectionError
from repro.relation.relation import Relation
from repro.sql.engine import SQLDetector

#: Every backend ``detect_violations`` can dispatch to.
DETECTION_METHODS = ("inmemory", "sql", "indexed")


def detect_violations(
    relation: Relation,
    cfds: Union[CFD, Sequence[CFD]],
    method: str = "inmemory",
    strategy: str = "per_cfd",
    form: str = "dnf",
) -> ViolationReport:
    """Find every violation of ``cfds`` in ``relation``.

    Parameters
    ----------
    method:
        ``"inmemory"`` (default) uses the pure-Python detector;
        ``"sql"`` loads the data into SQLite and runs the paper's detection
        queries; ``"indexed"`` uses the partition-index backend, which
        groups tuples once per distinct LHS attribute set instead of
        re-scanning the relation per pattern.
    strategy, form:
        Passed to :meth:`repro.sql.engine.SQLDetector.detect` when
        ``method="sql"``; ignored otherwise.

    >>> from repro.datagen.cust import cust_relation, cust_cfds
    >>> report = detect_violations(cust_relation(), cust_cfds())
    >>> report.is_clean()
    False
    """
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)
    if method == "inmemory":
        return find_all_violations(relation, cfds)
    if method == "sql":
        with SQLDetector(relation) as detector:
            return detector.detect(cfds, strategy=strategy, form=form).report
    if method == "indexed":
        return find_violations_indexed(relation, cfds)
    raise DetectionError(
        f"unknown detection method {method!r}; expected one of {', '.join(map(repr, DETECTION_METHODS))}"
    )


@dataclass(frozen=True)
class CrossCheckResult:
    """Outcome of comparing the detection backends on the same input.

    ``indexed_indices`` is ``None`` when the indexed backend was not run
    (two-way comparisons remain supported for backward compatibility).
    """

    inmemory_indices: FrozenSet[int]
    sql_indices: FrozenSet[int]
    indexed_indices: Optional[FrozenSet[int]] = None

    def _index_sets(self) -> Dict[str, FrozenSet[int]]:
        sets = {"inmemory": self.inmemory_indices, "sql": self.sql_indices}
        if self.indexed_indices is not None:
            sets["indexed"] = self.indexed_indices
        return sets

    @property
    def agree(self) -> bool:
        """Whether every backend that ran reported the same violating tuples."""
        sets = list(self._index_sets().values())
        return all(current == sets[0] for current in sets[1:])

    @property
    def only_inmemory(self) -> FrozenSet[int]:
        return self.inmemory_indices - self.sql_indices

    @property
    def only_sql(self) -> FrozenSet[int]:
        return self.sql_indices - self.inmemory_indices

    @property
    def only_indexed(self) -> FrozenSet[int]:
        """Indices the indexed backend reports but the oracle does not."""
        if self.indexed_indices is None:
            return frozenset()
        return self.indexed_indices - self.inmemory_indices

    def disagreements(self) -> Dict[Tuple[str, str], FrozenSet[int]]:
        """Pairwise symmetric differences between backends, empty pairs omitted."""
        sets = self._index_sets()
        names = list(sets)
        result: Dict[Tuple[str, str], FrozenSet[int]] = {}
        for position, first in enumerate(names):
            for second in names[position + 1:]:
                difference = sets[first] ^ sets[second]
                if difference:
                    result[(first, second)] = frozenset(difference)
        return result


def cross_check(
    relation: Relation,
    cfds: Union[CFD, Sequence[CFD]],
    strategy: str = "per_cfd",
    form: str = "dnf",
    include_indexed: bool = True,
) -> CrossCheckResult:
    """Run all detection backends and compare the sets of violating tuple indices.

    By default the in-memory oracle, the SQL detector and the partition-index
    backend are all run and verified pairwise; pass ``include_indexed=False``
    for the historical two-way comparison.
    """
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)
    inmemory = find_all_violations(relation, cfds)
    with SQLDetector(relation) as detector:
        sql_report = detector.detect(cfds, strategy=strategy, form=form).report
    indexed_indices: Optional[FrozenSet[int]] = None
    if include_indexed:
        indexed_indices = find_violations_indexed(relation, cfds).violating_indices()
    return CrossCheckResult(
        inmemory_indices=inmemory.violating_indices(),
        sql_indices=sql_report.violating_indices(),
        indexed_indices=indexed_indices,
    )
