"""Unified violation detection API.

``detect_violations`` dispatches between the pure-Python detector
(:mod:`repro.core.satisfaction`) and the SQL detector
(:mod:`repro.sql.engine`).  The pure-Python detector serves as the
correctness oracle; ``cross_check`` compares the two and is used heavily in
the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Union

from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations
from repro.core.violations import ViolationReport
from repro.errors import DetectionError
from repro.relation.relation import Relation
from repro.sql.engine import SQLDetector


def detect_violations(
    relation: Relation,
    cfds: Union[CFD, Sequence[CFD]],
    method: str = "inmemory",
    strategy: str = "per_cfd",
    form: str = "dnf",
) -> ViolationReport:
    """Find every violation of ``cfds`` in ``relation``.

    Parameters
    ----------
    method:
        ``"inmemory"`` (default) uses the pure-Python detector;
        ``"sql"`` loads the data into SQLite and runs the paper's detection
        queries.
    strategy, form:
        Passed to :meth:`repro.sql.engine.SQLDetector.detect` when
        ``method="sql"``; ignored otherwise.

    >>> from repro.datagen.cust import cust_relation, cust_cfds
    >>> report = detect_violations(cust_relation(), cust_cfds())
    >>> report.is_clean()
    False
    """
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)
    if method == "inmemory":
        return find_all_violations(relation, cfds)
    if method == "sql":
        with SQLDetector(relation) as detector:
            return detector.detect(cfds, strategy=strategy, form=form).report
    raise DetectionError(f"unknown detection method {method!r}; expected 'inmemory' or 'sql'")


@dataclass(frozen=True)
class CrossCheckResult:
    """Outcome of comparing the in-memory and SQL detectors on the same input."""

    inmemory_indices: FrozenSet[int]
    sql_indices: FrozenSet[int]

    @property
    def agree(self) -> bool:
        return self.inmemory_indices == self.sql_indices

    @property
    def only_inmemory(self) -> FrozenSet[int]:
        return self.inmemory_indices - self.sql_indices

    @property
    def only_sql(self) -> FrozenSet[int]:
        return self.sql_indices - self.inmemory_indices


def cross_check(
    relation: Relation,
    cfds: Union[CFD, Sequence[CFD]],
    strategy: str = "per_cfd",
    form: str = "dnf",
) -> CrossCheckResult:
    """Run both detectors and compare the sets of violating tuple indices."""
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)
    inmemory = find_all_violations(relation, cfds)
    with SQLDetector(relation) as detector:
        sql_report = detector.detect(cfds, strategy=strategy, form=form).report
    return CrossCheckResult(
        inmemory_indices=inmemory.violating_indices(),
        sql_indices=sql_report.violating_indices(),
    )
