"""Unified violation detection API.

``detect_violations`` dispatches through the backend registry
(:mod:`repro.registry`) between the pure-Python detector
(:mod:`repro.core.satisfaction`), the SQL detector
(:mod:`repro.sql.engine`) and the partition-indexed detector
(:mod:`repro.detection.indexed`) — plus any backend user code registers.
The pure-Python detector serves as the correctness oracle; ``cross_check``
compares all three pairwise and is used heavily in the integration tests.

This module also registers the built-in detection backends, so importing it
(or anything that imports it, e.g. :mod:`repro`) populates the registry.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Tuple, Union

from repro.config import DetectionConfig
from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations
from repro.core.violations import ViolationReport
from repro.detection.indexed import find_violations_indexed
from repro.errors import ConfigError, DetectionError, RegistryError
from repro.registry import (
    COLUMNAR_DETECTORS,
    apply_kernel,
    apply_storage,
    register_detector,
    resolve_detector,
)
from repro.relation.relation import Relation
from repro.sql.engine import SQLDetector

#: The built-in backends (the ``"auto"`` selector is not a backend).  Kept
#: for backward compatibility; the authoritative list is
#: ``repro.registry.detector_names()``.
DETECTION_METHODS = ("inmemory", "sql", "indexed")


# ---------------------------------------------------------------------------
# built-in backends (self-registering)
# ---------------------------------------------------------------------------
@register_detector("inmemory")
def _detect_inmemory(
    relation: Relation, cfds: Sequence[CFD], config: DetectionConfig
) -> ViolationReport:
    return find_all_violations(relation, cfds)


@register_detector("indexed")
def _detect_indexed(
    relation: Relation, cfds: Sequence[CFD], config: DetectionConfig
) -> ViolationReport:
    return find_violations_indexed(relation, cfds)


@register_detector("sql")
def _detect_sql(
    relation: Relation, cfds: Sequence[CFD], config: DetectionConfig
) -> ViolationReport:
    with SQLDetector(relation) as detector:
        return detector.detect(cfds, config=config).report


# ---------------------------------------------------------------------------
# the facade
# ---------------------------------------------------------------------------
def detect_violations(
    relation: Relation,
    cfds: Union[CFD, Sequence[CFD]],
    method: str = "inmemory",
    strategy: Optional[str] = None,
    form: Optional[str] = None,
    config: Optional[DetectionConfig] = None,
) -> ViolationReport:
    """Find every violation of ``cfds`` in ``relation``.

    Parameters
    ----------
    method:
        ``"inmemory"`` (default) uses the pure-Python detector;
        ``"sql"`` loads the data into SQLite and runs the paper's detection
        queries; ``"indexed"`` uses the partition-index backend, which
        groups tuples once per distinct LHS attribute set instead of
        re-scanning the relation per pattern; ``"auto"`` picks a backend
        from the workload shape.  Any name registered via
        :func:`repro.registry.register_detector` also works.
    strategy, form:
        SQL-only knobs.  Passing them with a non-SQL ``method`` used to be
        silently ignored; it now raises a :class:`DeprecationWarning` (the
        config API rejects the combination outright).
    config:
        A :class:`~repro.config.DetectionConfig` carrying the same options;
        mutually exclusive with explicit ``method``/``strategy``/``form``.

    >>> from repro.datagen.cust import cust_relation, cust_cfds
    >>> report = detect_violations(cust_relation(), cust_cfds())
    >>> report.is_clean()
    False
    """
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)
    if config is not None:
        if method != "inmemory" or strategy is not None or form is not None:
            raise DetectionError(
                "pass either a DetectionConfig or explicit method/strategy/form "
                "keywords, not both"
            )
    else:
        if method != "sql" and (strategy is not None or form is not None):
            warnings.warn(
                f"strategy/form only apply to the SQL backend and are ignored for "
                f"method={method!r}; this will become an error "
                f"(DetectionConfig already rejects the combination)",
                DeprecationWarning,
                stacklevel=2,
            )
            strategy = form = None
        try:
            config = DetectionConfig(method=method, strategy=strategy, form=form)
        except ConfigError as error:
            raise DetectionError(str(error)) from None
    try:
        name, backend = resolve_detector(config.method, relation, cfds)
    except RegistryError as error:
        raise DetectionError(str(error)) from None
    # Columnar-capable backends see the relation in the configured storage
    # layer (encoded once here; already-encoded input passes through), the
    # others read whatever the caller holds, and the configured kernel is
    # active for the duration of the backend call.  Reports are
    # byte-identical either way — storage and kernel are speed knobs, not
    # semantics knobs.
    relation = apply_storage(
        relation,
        config.effective_storage,
        name in COLUMNAR_DETECTORS,
        spill_dir=config.spill_dir,
        memory_budget_mb=config.memory_budget_mb,
    )
    with apply_kernel(config.effective_kernel):
        return backend(relation, cfds, config.with_method(name))


@dataclass(frozen=True)
class CrossCheckResult:
    """Outcome of comparing the three detection backends on the same input."""

    inmemory_indices: FrozenSet[int]
    sql_indices: FrozenSet[int]
    indexed_indices: FrozenSet[int]

    def _index_sets(self) -> Dict[str, FrozenSet[int]]:
        return {
            "inmemory": self.inmemory_indices,
            "sql": self.sql_indices,
            "indexed": self.indexed_indices,
        }

    @property
    def agree(self) -> bool:
        """Whether every backend reported the same violating tuples."""
        sets = list(self._index_sets().values())
        return all(current == sets[0] for current in sets[1:])

    @property
    def only_inmemory(self) -> FrozenSet[int]:
        return self.inmemory_indices - self.sql_indices

    @property
    def only_sql(self) -> FrozenSet[int]:
        return self.sql_indices - self.inmemory_indices

    @property
    def only_indexed(self) -> FrozenSet[int]:
        """Indices the indexed backend reports but the oracle does not."""
        return self.indexed_indices - self.inmemory_indices

    def disagreements(self) -> Dict[Tuple[str, str], FrozenSet[int]]:
        """Pairwise symmetric differences between backends, empty pairs omitted."""
        sets = self._index_sets()
        names = list(sets)
        result: Dict[Tuple[str, str], FrozenSet[int]] = {}
        for position, first in enumerate(names):
            for second in names[position + 1:]:
                difference = sets[first] ^ sets[second]
                if difference:
                    result[(first, second)] = frozenset(difference)
        return result


def cross_check(
    relation: Relation,
    cfds: Union[CFD, Sequence[CFD]],
    strategy: str = "per_cfd",
    form: str = "dnf",
) -> CrossCheckResult:
    """Run all three detection backends and compare the violating tuple indices.

    The in-memory oracle, the SQL detector and the partition-index backend
    are always all run and verified pairwise (the two-way
    ``include_indexed=False`` shape of PR 1 is gone).
    """
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)
    inmemory = find_all_violations(relation, cfds)
    with SQLDetector(relation) as detector:
        sql_report = detector.detect(cfds, strategy=strategy, form=form).report
    indexed = find_violations_indexed(relation, cfds)
    return CrossCheckResult(
        inmemory_indices=inmemory.violating_indices(),
        sql_indices=sql_report.violating_indices(),
        indexed_indices=indexed.violating_indices(),
    )
