"""Partition-indexed CFD violation detection (the ``method="indexed"`` backend).

Implements exactly the satisfaction semantics of the in-memory oracle
(:mod:`repro.core.satisfaction`) but replaces its per-pattern relation scans
with lookups against a shared :class:`~repro.detection.partition_index.PartitionIndex`:

* the relation is partitioned **once** per distinct ``@``-free LHS attribute
  tuple, not once per pattern — a CFD with a 1K-row tableau (or 1K constant
  CFDs over the same LHS) triggers a single grouping pass;
* a constant pattern (``Q^C`` semantics) resolves to the partitions matching
  its LHS constants — a dictionary lookup when the pattern is all-constant;
* a variable pattern (``Q^V`` semantics) inspects only the matching
  partitions with more than one tuple.

The reports produced here are violation-for-violation identical to the
oracle's, so ``cross_check`` and the Hypothesis property tests can compare
all three backends directly.  See ``docs/detection.md`` for the complexity
analysis.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.config import storage_from_env
from repro.core.cfd import CFD
from repro.core.tableau import PatternTuple
from repro.core.violations import (
    ConstantViolation,
    VariableViolation,
    Violation,
    ViolationReport,
)
from repro.detection.partition_index import (
    DEFAULT_CHUNK_SIZE,
    PartitionIndex,
    PartitionIndexCache,
)
from repro.errors import DetectionError
from repro.kernels import active_kernel, use_kernel
from repro.relation.columnar import ColumnStore
from repro.relation.relation import Relation, Row
from repro.relation.schema import Schema


# ---------------------------------------------------------------------------
# one-shot functions
# ---------------------------------------------------------------------------
def find_violations_indexed(
    relation: Relation,
    cfds: Union[CFD, Iterable[CFD]],
    cache: Optional[PartitionIndexCache] = None,
) -> ViolationReport:
    """All violations of ``cfds`` in ``relation``, via partition indexes.

    Semantically identical to
    :func:`repro.core.satisfaction.find_all_violations`; pass a
    :class:`PartitionIndexCache` built for the *same* relation to share
    partition maps across calls.

    >>> from repro.datagen.cust import cust_relation, cust_cfds
    >>> sorted(find_violations_indexed(cust_relation(), cust_cfds()).violating_indices())
    [0, 1, 2, 3]
    """
    if isinstance(cfds, CFD):
        cfds = [cfds]
    if cache is None:
        cache = PartitionIndexCache(relation)
    elif cache.relation is not relation:
        raise DetectionError(
            "cache was built for a different relation; its tuple indices would "
            "not line up with the relation being checked"
        )
    report = ViolationReport()
    for cfd in cfds:
        report.extend(_cfd_violations(relation, cfd, cache))
    return report


def find_cfd_violations_indexed(
    relation: Relation,
    cfd: CFD,
    cache: Optional[PartitionIndexCache] = None,
) -> ViolationReport:
    """All violations of a single CFD (indexed counterpart of ``find_violations``)."""
    return find_violations_indexed(relation, [cfd], cache=cache)


# ---------------------------------------------------------------------------
# detector facade
# ---------------------------------------------------------------------------
class IndexedDetector:
    """Stateful facade mirroring :class:`~repro.sql.engine.SQLDetector`.

    Holds one :class:`PartitionIndexCache` for its relation, so successive
    :meth:`detect` calls — e.g. an interactive session checking CFD batches
    one at a time — reuse the partition maps already built.

    >>> from repro.datagen.cust import cust_relation, cust_cfds
    >>> detector = IndexedDetector(cust_relation())
    >>> sorted(detector.detect(cust_cfds()).violating_indices())
    [0, 1, 2, 3]
    >>> detector.cache_stats()["misses"] >= 1
    True
    """

    def __init__(self, relation: Relation, cache_size: int = 32) -> None:
        self._relation = relation
        self._cache = PartitionIndexCache(relation, maxsize=cache_size)

    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def cache(self) -> PartitionIndexCache:
        return self._cache

    def detect(self, cfds: Union[CFD, Sequence[CFD]]) -> ViolationReport:
        """Find every violation of ``cfds``, reusing cached partition maps."""
        return find_violations_indexed(self._relation, cfds, cache=self._cache)

    def invalidate(self) -> None:
        """Drop cached indexes after the underlying relation was mutated."""
        self._cache.clear()

    def cache_stats(self) -> Dict[str, int]:
        return self._cache.stats()

    def __repr__(self) -> str:
        return f"IndexedDetector({self._relation!r}, cache={self._cache!r})"


# ---------------------------------------------------------------------------
# streaming ingestion
# ---------------------------------------------------------------------------
def detect_stream(
    schema: Schema,
    rows: Iterable[Union[Row, Sequence[Any], Mapping[str, Any]]],
    cfds: Union[CFD, Sequence[CFD]],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    storage: Optional[str] = None,
    kernel: Optional[str] = None,
    spill_dir: Optional[str] = None,
) -> ViolationReport:
    """Detect violations over a row *stream* without materialising full rows.

    Rows (positional tuples in ``schema`` order, or mappings by attribute
    name) are consumed in batches of ``chunk_size``.  Only the projection
    onto the attributes the CFDs actually mention is retained, and every
    partition index is grown incrementally as batches arrive — so peak memory
    is ``O(N x |attrs(cfds)|)`` rather than ``O(N x |schema|)``, and the
    source (a CSV reader, a DB cursor) is read exactly once.

    ``storage`` picks the layer the retained projection lives in (defaults to
    ``REPRO_STORAGE``, then ``"columnar"``).  On columnar storage each batch
    is dictionary-encoded as it arrives and the indexes ingest the *codes* of
    the new rows (:meth:`PartitionIndex.add_encoded`), so a raw row is
    touched exactly once — projected, encoded, dropped — instead of being
    re-hashed by every index.  ``storage="mmap"`` additionally spills the
    encoded projection to memory-mapped files under ``spill_dir``
    (:class:`~repro.relation.mmap_store.MmapColumnStore`), so even the
    retained code columns stay out of the Python heap.

    ``kernel`` picks the hot-loop implementation (defaults to
    ``REPRO_KERNEL``, then ``"auto"``); see :mod:`repro.kernels`.  Every
    kernel produces byte-identical reports.

    Reported tuple indices refer to positions in the input stream.
    """
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)
    if not cfds:
        return ViolationReport()
    if chunk_size <= 0:
        raise DetectionError(f"chunk_size must be positive, got {chunk_size}")
    if storage is None:
        storage = storage_from_env()

    # Projection: keep only the attributes some CFD constrains.
    needed = [name for name in schema.names if any(name in cfd.attributes for cfd in cfds)]
    for cfd in cfds:
        schema.validate_attributes(cfd.attributes)
    slim_schema = schema.project(needed)
    positions = schema.positions(needed)
    columnar = storage in ("columnar", "mmap")
    if storage == "mmap":
        from repro.relation.mmap_store import MmapColumnStore

        slim: Relation = MmapColumnStore(slim_schema, spill_dir=spill_dir)
    elif columnar:
        slim = ColumnStore(slim_schema)
    else:
        slim = Relation(slim_schema)

    # One index per distinct @-free LHS attribute tuple across all patterns,
    # grown batch-by-batch alongside the projected relation.
    indexes: Dict[Tuple[str, ...], PartitionIndex] = {}
    for cfd in cfds:
        for pattern in cfd.tableau:
            lhs_free = _lhs_free(cfd, pattern)
            if lhs_free not in indexes:
                indexes[lhs_free] = PartitionIndex(slim_schema, lhs_free)

    batch: List[Row] = []

    def flush() -> None:
        start = len(slim)
        slim.extend(batch)
        for index in indexes.values():
            if columnar:
                index.add_encoded(slim, start, len(slim))
            else:
                index.add_tuples(batch)
        batch.clear()

    with use_kernel(kernel):
        for row in rows:
            if isinstance(row, Mapping):
                projected = tuple(row[name] for name in needed)
            else:
                projected = tuple(row[position] for position in positions)
            batch.append(projected)
            if len(batch) >= chunk_size:
                flush()
        if batch:
            flush()

        cache = PartitionIndexCache(slim, maxsize=max(32, len(indexes)))
        for index in indexes.values():
            cache.seed(index)
        return find_violations_indexed(slim, cfds, cache=cache)


# ---------------------------------------------------------------------------
# per-pattern detection against an index
# ---------------------------------------------------------------------------
def lhs_free_attributes(cfd: CFD, pattern: PatternTuple) -> Tuple[str, ...]:
    """The ``@``-free LHS attributes in LHS order (the partition attributes).

    This projection *defines* a pattern's grouping semantics: the oracle,
    this backend, the incremental repair state and the parallel sharding
    planner must all agree on it (the planner's "no violation spans two
    shards" invariant is stated in terms of exactly these attribute sets),
    which is why it is public — reuse it rather than re-deriving it.
    """
    return tuple(attr for attr in cfd.lhs if not pattern.lhs_cell(attr).is_dontcare)


#: Backward-compatible internal alias (pre-PR 4 name).
_lhs_free = lhs_free_attributes


def _cfd_violations(
    relation: Relation, cfd: CFD, cache: PartitionIndexCache
) -> Iterator[Violation]:
    for pattern_index, pattern in enumerate(cfd.tableau):
        yield from _pattern_violations(relation, cfd, pattern_index, pattern, cache)


def _pattern_violations(
    relation: Relation,
    cfd: CFD,
    pattern_index: int,
    pattern: PatternTuple,
    cache: PartitionIndexCache,
) -> Iterator[Violation]:
    """Violations of one pattern tuple, in the oracle's grouping semantics.

    Don't-care (``@``) LHS cells are excluded from the partition attributes —
    matching the oracle, which groups by ``X_free`` only — so wildcard cells
    remain part of the grouping key and constants filter partitions.
    """
    lhs_free = _lhs_free(cfd, pattern)
    cells = [pattern.lhs_cell(attr) for attr in lhs_free]

    constant_rhs = [
        (attr, relation.schema.position(attr), pattern.rhs_cell(attr))
        for attr in cfd.rhs
        if pattern.rhs_cell(attr).is_constant
    ]
    rhs_free = tuple(attr for attr in cfd.rhs if not pattern.rhs_cell(attr).is_dontcare)

    if isinstance(relation, ColumnStore):
        # Columnar fast path: both checks run over dictionary codes — an
        # expected constant encodes to at most one code (None means no cell
        # ever held the value, so every matching tuple violates), and RHS
        # agreement is cardinality of code projections (codes biject onto
        # values).  Values are decoded only when a violation is emitted, and
        # the per-group scans are the active kernel's (see repro.kernels).
        const_checks = [
            (attr, relation.codes(attr), relation.encode(attr, cell.value), cell.value)
            for attr, _position, cell in constant_rhs
        ]
        rhs_columns = relation.project_codes(rhs_free)
        kernel = active_kernel()
        index: Optional[PartitionIndex] = None
        if (
            kernel.fused_variable_scan
            and lhs_free
            and rhs_free
            and not const_checks
        ):
            # Wildcard or mixed constant/wildcard pattern on an array
            # kernel: the fused Q^V scan (one sort + one reduction over the
            # whole window, with constant LHS cells applied as a row mask
            # before the group-by) beats grouping through a partition index
            # — unless an index already exists, in which case reusing it is
            # cheaper still.
            index = cache.peek(lhs_free)
            if index is None:
                mask: List[Tuple[Any, int]] = []
                for attr, cell in zip(lhs_free, cells):
                    if not cell.is_constant:
                        continue
                    code = relation.encode(attr, cell.value)
                    if code is None:
                        # No cell ever held the constant: nothing matches
                        # this pattern, so it cannot be violated.
                        return
                    mask.append((relation.codes(attr), code))
                lhs_columns = [relation.codes(attr) for attr in lhs_free]
                for key_codes, members in kernel.variable_violation_groups(
                    lhs_columns, rhs_columns, 0, len(relation), mask=mask or None
                ):
                    yield VariableViolation(
                        cfd_name=cfd.name,
                        pattern_index=pattern_index,
                        tuple_indices=tuple(members),
                        attributes=lhs_free,
                        group_key=tuple(
                            relation.decode(attr, code)
                            for attr, code in zip(lhs_free, key_codes)
                        ),
                    )
                return
        if index is None:
            index = cache.get(lhs_free)
        for key, indices in index.matching(cells):
            if const_checks:
                mismatches = [
                    kernel.constant_mismatches(column, indices, expected_code)
                    for _attr, column, expected_code, _expected in const_checks
                ]
                yield from constant_code_violations(
                    relation, cfd.name, pattern_index, const_checks, mismatches
                )
            if rhs_free and len(indices) > 1 and kernel.codes_disagree(rhs_columns, indices):
                yield VariableViolation(
                    cfd_name=cfd.name,
                    pattern_index=pattern_index,
                    tuple_indices=tuple(indices),
                    attributes=lhs_free,
                    group_key=tuple(key),
                )
        return

    rhs_positions = relation.schema.positions(rhs_free) if rhs_free else ()
    index = cache.get(lhs_free)
    for key, indices in index.matching(cells):
        # Q^C semantics: each matching tuple must honour the constant RHS cells.
        for tuple_index in indices if constant_rhs else ():
            row = relation[tuple_index]
            for attr, position, cell in constant_rhs:
                if row[position] != cell.value:
                    yield ConstantViolation(
                        cfd_name=cfd.name,
                        pattern_index=pattern_index,
                        tuple_indices=(tuple_index,),
                        attribute=attr,
                        expected=cell.value,
                        actual=row[position],
                    )
        # Q^V semantics: a matching partition must agree on the free RHS.
        if rhs_free and len(indices) > 1:
            rhs_values = {
                tuple(relation[tuple_index][position] for position in rhs_positions)
                for tuple_index in indices
            }
            if len(rhs_values) > 1:
                yield VariableViolation(
                    cfd_name=cfd.name,
                    pattern_index=pattern_index,
                    tuple_indices=tuple(indices),
                    attributes=lhs_free,
                    group_key=tuple(key),
                )


def constant_code_violations(
    store: ColumnStore,
    cfd_name: str,
    pattern_index: int,
    checks: Sequence[Tuple[str, Any, Optional[int], Any]],
    per_check_mismatches: Sequence[Sequence[int]],
) -> Iterator[ConstantViolation]:
    """Emit ``Q^C`` violations of one class from per-check mismatch subsets.

    ``checks`` holds one ``(attribute, code column, expected code, expected
    value)`` entry per constant RHS cell and ``per_check_mismatches`` the
    aligned mismatching member subsets (each ascending).  Emission is
    tuple-major — all checks of tuple ``i`` before any check of tuple
    ``i+1`` — matching the scan oracle: the single-check case walks its
    subset directly, the multi-check case re-walks the sorted union against
    every check.  This is the one shared emission path of the indexed
    detector and the incremental repair state (both sequential and batched),
    so their reports cannot drift apart.
    """
    if len(checks) == 1:
        attr, column, _expected_code, expected = checks[0]
        for tuple_index in per_check_mismatches[0]:
            yield ConstantViolation(
                cfd_name=cfd_name,
                pattern_index=pattern_index,
                tuple_indices=(tuple_index,),
                attribute=attr,
                expected=expected,
                actual=store.decode(attr, column[tuple_index]),
            )
        return
    dirty: set = set()
    for mismatches in per_check_mismatches:
        dirty.update(mismatches)
    for tuple_index in sorted(dirty):
        for attr, column, expected_code, expected in checks:
            code = column[tuple_index]
            if code != expected_code:
                yield ConstantViolation(
                    cfd_name=cfd_name,
                    pattern_index=pattern_index,
                    tuple_indices=(tuple_index,),
                    attribute=attr,
                    expected=expected,
                    actual=store.decode(attr, code),
                )


def codes_disagree(columns: Sequence[Any], indices: Sequence[int]) -> bool:
    """Whether the code projections of ``indices`` take more than one value.

    Codes biject onto values per attribute, so code disagreement *is* value
    disagreement — the ``Q^V`` check without decoding a single cell.  Shared
    by the indexed backend and the incremental repair state; dispatches to
    the active kernel (:mod:`repro.kernels`), every implementation of which
    answers identically.
    """
    return active_kernel().codes_disagree(columns, indices)
