"""Partition indexes: one grouping pass shared by every CFD over the same LHS.

The in-memory oracle (:mod:`repro.core.satisfaction`) re-scans the whole
relation once per pattern tuple, so a CFD with a 1K-row tableau costs 1K
passes.  But every pattern of a CFD — and every CFD sharing the same
``@``-free LHS attribute set — asks the same structural question: *which
tuples agree on these attributes?*  A :class:`PartitionIndex` answers it once:
it groups tuple indices by their projection onto a fixed attribute tuple in a
single pass, after which

* a **constant-pattern lookup** (all LHS cells constant) is a dictionary
  ``get`` — ``O(1)``;
* a **mixed pattern** (constants plus wildcards) filters partition *keys*
  rather than tuples — ``O(#partitions)`` instead of ``O(#tuples)``;
* a **variable-CFD check** inspects each candidate partition's distinct RHS
  projections — ``O(partition size)`` per partition, linear overall.

:class:`PartitionIndexCache` keeps the most recently used indexes (LRU) so a
batch of CFDs sharing LHS attribute sets builds each partition map exactly
once.  Ingestion is chunked (:meth:`PartitionIndex.add_tuples`), so an index
can be grown batch-by-batch while streaming a relation that is never fully
materialised (see :func:`repro.detection.indexed.detect_stream`).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import OrderedDict
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.pattern import PatternValue
from repro.errors import DetectionError
from repro.relation.columnar import ColumnStore
from repro.relation.relation import Relation, Row
from repro.relation.schema import Schema

#: Default batch size for chunked ingestion.
DEFAULT_CHUNK_SIZE = 8_192


class PartitionIndex:
    """Tuple indices grouped by their projection onto a fixed attribute tuple.

    The grouping key of a tuple is its projection onto ``attributes`` (in the
    given order).  Within each partition, indices are kept in ingestion order,
    which for a relation fed front-to-back is ascending tuple-index order —
    the same order the in-memory oracle reports.

    >>> from repro.relation.schema import Schema
    >>> from repro.relation.relation import Relation
    >>> rel = Relation(Schema("r", ["A", "B"]), [(1, "x"), (2, "y"), (1, "z")])
    >>> index = PartitionIndex.from_relation(rel, ("A",))
    >>> index.get((1,))
    (0, 2)
    >>> len(index)
    2
    """

    __slots__ = ("_attributes", "_positions", "_groups", "_next_index", "_tuple_count")

    def __init__(self, schema: Schema, attributes: Sequence[str]) -> None:
        self._attributes: Tuple[str, ...] = tuple(attributes)
        self._positions: Tuple[int, ...] = schema.positions(self._attributes)
        self._groups: Dict[Row, List[int]] = {}
        self._next_index = 0
        self._tuple_count = 0

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_relation(cls, relation: Relation, attributes: Sequence[str]) -> PartitionIndex:
        """Build an index over ``relation`` in one pass.

        A :class:`~repro.relation.columnar.ColumnStore` is ingested through
        :meth:`add_encoded` — the grouping runs over integer codes instead of
        hashing a value tuple per row.  Batch-by-batch construction (for
        sources not materialised as a :class:`Relation`) goes through
        :meth:`add_tuples` / :meth:`add_encoded` directly, as
        :func:`repro.detection.indexed.detect_stream` does.
        """
        index = cls(relation.schema, attributes)
        if isinstance(relation, ColumnStore):
            index.add_encoded(relation)
        else:
            index.add_tuples(relation)
        return index

    def add_encoded(
        self, store: ColumnStore, start: Optional[int] = None, stop: Optional[int] = None
    ) -> int:
        """Ingest rows ``[start, stop)`` of an encoded store; return the next free index.

        The columnar counterpart of :meth:`add_tuples`: the grouping pass runs
        over dictionary codes (:meth:`ColumnStore.group_indices`) and each
        partition key is decoded to values once per *partition*, not once per
        row — so the resulting map is indistinguishable from row ingestion
        (same keys, same members, same first-occurrence order), it just never
        hashes a value tuple per tuple.  Batches must be contiguous with what
        was already ingested, exactly like sequential :meth:`add_tuples` calls.
        """
        start = self._next_index if start is None else start
        if start != self._next_index:
            raise DetectionError(
                f"encoded batch starts at {start} but the next free index is "
                f"{self._next_index}; batches must be contiguous"
            )
        stop = len(store) if stop is None else stop
        groups = self._groups
        for key, indices in store.group_indices(self._attributes, start, stop):
            existing = groups.get(key)
            if existing is None:
                groups[key] = indices
            else:
                existing.extend(indices)
        self._tuple_count += max(0, stop - start)
        self._next_index = stop
        return stop

    def add_tuples(self, rows: Iterable[Row], start_index: Optional[int] = None) -> int:
        """Ingest a batch of positional rows; return the next free index.

        Tuple indices are assigned sequentially, continuing from the previous
        batch unless ``start_index`` pins them explicitly (useful when only a
        slice of a larger relation flows through this index).  ``start_index``
        must not overlap indices already ingested — rewinding would silently
        duplicate entries inside partitions.
        """
        if start_index is not None and start_index < self._next_index:
            raise DetectionError(
                f"start_index {start_index} overlaps already-ingested indices "
                f"(next free index is {self._next_index})"
            )
        index = self._next_index if start_index is None else start_index
        positions = self._positions
        groups = self._groups
        for row in rows:
            key = tuple(row[position] for position in positions)
            group = groups.get(key)
            if group is None:
                groups[key] = [index]
            else:
                group.append(index)
            index += 1
            self._tuple_count += 1
        self._next_index = index
        return index

    def reindex_tuple(self, tuple_index: int, old_row: Row, new_row: Row) -> bool:
        """Move one tuple between partitions after a cell change (in place).

        ``old_row`` is the tuple's full positional row *before* the change and
        ``new_row`` the row after it.  When the change does not touch this
        index's attributes the call is a no-op (returns ``False``); otherwise
        the tuple's index is removed from its old equivalence class (dropping
        the class when it empties) and inserted into the new one, keeping each
        class sorted in ascending tuple-index order — the order ingestion
        produces and detection reports.  This is the hook that lets the repair
        engine maintain indexes across cell modifications instead of
        rebuilding them (:mod:`repro.repair.incremental`).
        """
        positions = self._positions
        old_key = tuple(old_row[position] for position in positions)
        new_key = tuple(new_row[position] for position in positions)
        if old_key == new_key:
            return False
        group = self._groups.get(old_key)
        slot = bisect_left(group, tuple_index) if group is not None else 0
        if group is None or slot >= len(group) or group[slot] != tuple_index:
            raise DetectionError(
                f"tuple {tuple_index} is not in the partition of {old_key!r}; "
                "reindex_tuple must be given the row exactly as it was ingested"
            )
        group.pop(slot)
        if not group:
            del self._groups[old_key]
        target = self._groups.get(new_key)
        if target is None:
            self._groups[new_key] = [tuple_index]
        else:
            insort(target, tuple_index)
        return True

    # ------------------------------------------------------------------ basics
    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attribute tuple this index partitions by."""
        return self._attributes

    @property
    def tuple_count(self) -> int:
        """How many tuples have been ingested."""
        return self._tuple_count

    def __len__(self) -> int:
        """The number of distinct partitions."""
        return len(self._groups)

    def __contains__(self, key: object) -> bool:
        return key in self._groups

    def get(self, key: Sequence[Any]) -> Tuple[int, ...]:
        """The indices in the partition of ``key`` (empty tuple when absent)."""
        group = self._groups.get(tuple(key))
        return tuple(group) if group is not None else ()

    def partitions(self) -> Iterator[Tuple[Row, List[int]]]:
        """Iterate over ``(key, indices)`` pairs in first-occurrence order.

        The yielded lists are the index's internal groups (copying every
        group would cost a full pass per query, defeating the index); treat
        them as read-only — mutating one corrupts the partition map.
        """
        return iter(self._groups.items())

    def keys(self) -> Iterator[Row]:
        return iter(self._groups)

    # ------------------------------------------------------------------ queries
    def matching(self, cells: Sequence[PatternValue]) -> Iterator[Tuple[Row, List[int]]]:
        """Partitions whose key matches the pattern ``cells``.

        ``cells`` is aligned with :attr:`attributes`; constants pin their
        position, wildcard / don't-care cells leave it free.  When every cell
        is a constant this is a single dictionary lookup; otherwise the scan
        touches partition keys, never tuples.  As with :meth:`partitions`,
        the yielded index lists are internal read-only views.
        """
        if len(cells) != len(self._attributes):
            raise DetectionError(
                f"pattern has {len(cells)} cells but index partitions by "
                f"{len(self._attributes)} attributes {self._attributes}"
            )
        if all(cell.is_constant for cell in cells):
            key = tuple(cell.value for cell in cells)
            group = self._groups.get(key)
            if group is not None:
                yield key, group
            return
        constants = [
            (position, cell.value)
            for position, cell in enumerate(cells)
            if cell.is_constant
        ]
        if not constants:
            yield from self._groups.items()
            return
        for key, group in self._groups.items():
            if all(key[position] == value for position, value in constants):
                yield key, group

    def multi_tuple_partitions(self) -> Iterator[Tuple[Row, List[int]]]:
        """Partitions holding at least two tuples — the variable-CFD candidates."""
        for key, group in self._groups.items():
            if len(group) > 1:
                yield key, group

    def __repr__(self) -> str:
        return (
            f"PartitionIndex({list(self._attributes)}, "
            f"{len(self._groups)} partitions over {self._tuple_count} tuples)"
        )


class PartitionIndexCache:
    """An LRU cache of :class:`PartitionIndex` objects for one relation.

    Detection over a CFD batch requests one index per distinct ``@``-free LHS
    attribute tuple; the cache builds each on first use and serves repeats —
    including across separate :meth:`~repro.detection.indexed.IndexedDetector.detect`
    calls — from memory.  The cache assumes the relation does not change while
    it is alive; after mutating the relation either call :meth:`clear` (drop
    everything) or :meth:`apply_update` (delta-maintain the cached indexes in
    place, the repair engine's path).
    """

    def __init__(self, relation: Relation, maxsize: int = 32) -> None:
        if maxsize <= 0:
            raise DetectionError(f"cache maxsize must be positive, got {maxsize}")
        self._relation = relation
        self._maxsize = maxsize
        self._indexes: "OrderedDict[Tuple[str, ...], PartitionIndex]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._expected_version = relation.version

    def _check_synchronized(self) -> None:
        """Raise when the relation mutated outside :meth:`apply_update`.

        Inserts and deletes shift or extend the tuple-index space, and raw
        updates move tuples between equivalence classes behind the cached
        indexes' backs; serving a read afterwards would silently return wrong
        answers.  The relation's version counter makes that a loud error.
        """
        if self._relation.version != self._expected_version:
            raise DetectionError(
                "the relation was mutated while partition indexes were live "
                f"(version {self._relation.version}, indexes built at "
                f"{self._expected_version}); route cell updates through "
                "apply_update, or call clear() to rebuild from scratch"
            )

    # ------------------------------------------------------------------ access
    def get(self, attributes: Sequence[str]) -> PartitionIndex:
        """The index over ``attributes``, building (and caching) it on a miss.

        Raises :class:`~repro.errors.DetectionError` when the relation was
        mutated since the cache last synchronised with it (see
        :meth:`apply_update` / :meth:`clear`).
        """
        self._check_synchronized()
        key = tuple(attributes)
        index = self._indexes.get(key)
        if index is not None:
            self._hits += 1
            self._indexes.move_to_end(key)
            return index
        self._misses += 1
        index = PartitionIndex.from_relation(self._relation, key)
        self.seed(index)
        return index

    def peek(self, attributes: Sequence[str]) -> Optional[PartitionIndex]:
        """The cached index over ``attributes``, or ``None`` — never builds.

        For callers that have a cheaper strategy than grouping (the fused
        kernel scan of a pure wildcard pattern): an index that already
        exists beats regrouping, but its absence should not force
        construction.  Counts as a hit only when an index is served.
        """
        self._check_synchronized()
        key = tuple(attributes)
        index = self._indexes.get(key)
        if index is not None:
            self._hits += 1
            self._indexes.move_to_end(key)
        return index

    def seed(self, index: PartitionIndex) -> None:
        """Insert a pre-built index (used by the streaming ingestion path).

        The index must cover the cache's relation in full: a partial or
        foreign index would serve tuple indices that do not line up with
        the relation later passed to detection.
        """
        self._check_synchronized()
        if index.tuple_count != len(self._relation):
            raise DetectionError(
                f"cannot seed an index covering {index.tuple_count} tuples into a "
                f"cache for a {len(self._relation)}-tuple relation"
            )
        self._indexes[index.attributes] = index
        self._indexes.move_to_end(index.attributes)
        while len(self._indexes) > self._maxsize:
            self._indexes.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached index (required after mutating the relation)."""
        self._indexes.clear()
        self._expected_version = self._relation.version

    def apply_update(self, tuple_index: int, attribute: str, old_row: Row) -> int:
        """Delta-maintain the cached indexes after one cell of the relation changed.

        Call *after* ``relation.update(tuple_index, attribute, ...)``, passing
        the row as it was *before* the change.  Only the indexes whose
        attribute tuple mentions ``attribute`` are touched (the others cannot
        be affected by the change); each moves the tuple between its
        equivalence classes via :meth:`PartitionIndex.reindex_tuple` instead
        of being rebuilt — on a :class:`~repro.relation.columnar.ColumnStore`
        the cell change itself was a single code swap.  Returns the number of
        indexes updated.

        This is the *only* sanctioned mutation path while indexes are live:
        it must follow exactly one ``update`` call (anything else — a second
        update, an insert, a delete — raises instead of maintaining a lie).
        """
        if self._relation.version != self._expected_version + 1:
            raise DetectionError(
                "apply_update must follow exactly one relation.update call "
                f"(relation version {self._relation.version}, cache expected "
                f"{self._expected_version + 1}); for inserts, deletes or "
                "batched updates rebuild via clear()"
            )
        self._expected_version = self._relation.version
        new_row = self._relation[tuple_index]
        updated = 0
        for attributes, index in self._indexes.items():
            if attribute in attributes:
                index.reindex_tuple(tuple_index, old_row, new_row)
                updated += 1
        return updated

    # ------------------------------------------------------------------ introspection
    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def __len__(self) -> int:
        return len(self._indexes)

    def __contains__(self, attributes: object) -> bool:
        return attributes in self._indexes

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus the current size, for tests and reporting."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._indexes),
            "maxsize": self._maxsize,
        }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"PartitionIndexCache({stats['size']}/{stats['maxsize']} indexes, "
            f"{stats['hits']} hits, {stats['misses']} misses)"
        )


class CodePartitionIndex:
    """An array-backed partition map over a :class:`ColumnStore`'s code columns.

    The repair engine's batched counterpart of :class:`PartitionIndex`: where
    the dict index materialises one python list per equivalence class (10K+
    list allocations on a 50K relation, the dominant cost of building a
    :class:`~repro.repair.incremental.RepairState`), this one keeps the whole
    partition in three arrays — a stable sort order over a fused composite
    code key, per-class start offsets into it, and the per-class composite
    keys.  Members materialise into python lists only for classes that
    actually report a violation, and a repair pass applies its cell changes
    as **one scatter per touched LHS** (:meth:`apply_moves`) instead of a
    bisect per tuple.

    Ordering contract: classes ascending by code-key tuple (the composite is
    built first-attribute-most-significant, so composite order *is* key-tuple
    order), members ascending within each class — exactly the flat form the
    kernels' ``partition_classes``/``evaluate_classes`` primitives speak.

    Only ever constructed when the active kernel advertises
    ``fused_repair_scan`` (numpy is importable then); construction raises
    :class:`~repro.errors.DetectionError` in the astronomical case where the
    composite key cannot fit ``int64``, and the repair state falls back to
    the dict-backed reference path.
    """

    #: Dictionary-growth headroom baked into the composite strides: repairs
    #: intern fresh values, and rebuilding the whole index on every new
    #: dictionary entry would defeat the delta path.  Growth beyond the
    #: headroom triggers a full (rare) rebuild in :meth:`apply_moves`.
    HEADROOM = 64

    __slots__ = (
        "_store",
        "_attributes",
        "_np",
        "_views",
        "_capacities",
        "_strides",
        "_comp",
        "_order",
        "_starts",
        "_ends",
        "_group_comps",
    )

    def __init__(self, store: ColumnStore, attributes: Sequence[str]) -> None:
        import numpy

        self._np = numpy
        self._store = store
        self._attributes: Tuple[str, ...] = tuple(attributes)
        self._rebuild()

    # ------------------------------------------------------------------ construction
    def _rebuild(self) -> None:
        """(Re)build the composite keys, sort order and class boundaries."""
        from repro.kernels.numpy_kernels import _as_array

        np = self._np
        store = self._store
        self._views = tuple(_as_array(store.codes(attr)) for attr in self._attributes)
        capacities: List[int] = []
        strides: List[int] = []
        stride = 1
        for attribute in reversed(self._attributes):
            capacity = store.dictionary_size(attribute) + self.HEADROOM
            capacities.append(capacity)
            strides.append(stride)
            if stride > (2**62) // capacity:
                raise DetectionError(
                    "composite partition key over "
                    f"{self._attributes} would overflow int64; use the "
                    "dict-backed PartitionIndex instead"
                )
            stride *= capacity
        self._capacities = tuple(reversed(capacities))
        self._strides = tuple(reversed(strides))
        comp = np.zeros(len(store), dtype=np.int64)
        for view, attr_stride in zip(self._views, self._strides):
            comp += view.astype(np.int64) * attr_stride
        self._comp = comp
        self._order = np.argsort(comp, kind="stable").astype(np.intp, copy=False)
        self._refresh_boundaries()

    def _refresh_boundaries(self) -> None:
        np = self._np
        comp_sorted = self._comp[self._order]
        count = len(comp_sorted)
        if count == 0:
            self._starts = np.empty(0, dtype=np.intp)
            self._ends = np.empty(0, dtype=np.intp)
            self._group_comps = np.empty(0, dtype=np.int64)
            return
        change = np.empty(count, dtype=bool)
        change[0] = True
        change[1:] = comp_sorted[1:] != comp_sorted[:-1]
        starts = np.flatnonzero(change)
        ends = np.empty_like(starts)
        ends[:-1] = starts[1:]
        ends[-1] = count
        self._starts = starts
        self._ends = ends
        self._group_comps = comp_sorted[starts]

    # ------------------------------------------------------------------ queries
    @property
    def attributes(self) -> Tuple[str, ...]:
        return self._attributes

    @property
    def class_count(self) -> int:
        return len(self._starts)

    def class_table(self):
        """``(order, offsets)`` over every class — the kernels' flat form.

        Zero materialisation: the returned arrays are the index's internals,
        consumed directly by ``evaluate_classes`` for a whole-relation scan.
        Treat as read-only.
        """
        return self._order, self._starts

    def members_at(self, position: int) -> List[int]:
        """The member tuple indices of class ``position``, ascending."""
        return self._order[self._starts[position] : self._ends[position]].tolist()

    def key_codes_at(self, position: int) -> Tuple[int, ...]:
        """The code-key tuple of class ``position`` (read off its first member)."""
        first = self._order[self._starts[position]]
        return tuple(int(view[first]) for view in self._views)

    def find(self, key_codes: Sequence[Optional[int]]) -> int:
        """The class position of a code key, or ``-1`` when no row holds it.

        A ``None`` code (the value is absent from its dictionary) can match
        nothing; a code beyond the stride capacity likewise belongs to no
        live row (rows acquiring such codes force a rebuild first), so both
        short-circuit without touching the arrays.
        """
        comp = 0
        for code, attr_stride, capacity in zip(
            key_codes, self._strides, self._capacities
        ):
            if code is None or code >= capacity:
                return -1
            comp += code * attr_stride
        np = self._np
        position = int(np.searchsorted(self._group_comps, comp))
        if position < len(self._group_comps) and int(self._group_comps[position]) == comp:
            return position
        return -1

    def matching_positions(self, constants: Sequence[Tuple[int, int]]):
        """Class positions whose key honours ``(attribute offset, code)`` pins.

        The batched form of :meth:`PartitionIndex.matching` for mixed
        constant/wildcard patterns: one vectorised comparison over the
        per-class first members instead of a python filter over keys.
        """
        np = self._np
        firsts = self._order[self._starts]
        keep = np.ones(len(firsts), dtype=bool)
        for offset, code in constants:
            keep &= self._views[offset][firsts] == code
        return np.flatnonzero(keep)

    def gather(self, positions: Sequence[int]):
        """``(indices, offsets)`` concatenating the given classes' members.

        The flat form ``evaluate_classes`` consumes, for an arbitrary dirty
        class subset; each class's members stay ascending.
        """
        np = self._np
        pos = np.asarray(positions, dtype=np.intp)
        starts = self._starts[pos]
        ends = self._ends[pos]
        sizes = ends - starts
        offsets = np.zeros(len(pos), dtype=np.intp)
        if len(pos) > 1:
            np.cumsum(sizes[:-1], out=offsets[1:])
        parts = [self._order[start:end] for start, end in zip(starts, ends)]
        indices = np.concatenate(parts) if parts else np.empty(0, dtype=np.intp)
        return indices, offsets

    # ------------------------------------------------------------------ the delta
    def apply_moves(self, tuple_indices: Iterable[int]) -> None:
        """Re-place a batch of tuples after their cells changed — one scatter.

        Call after the store's cells were updated in place.  The moved
        tuples' composite keys are recomputed from the live code columns in
        one vectorised pass; tuples whose key did not change are dropped, and
        the rest are deleted from and re-inserted into the sort order with a
        single ``isin`` mask plus a single ``insert`` — per-batch cost, not
        per-tuple dict surgery.  A tuple whose new code outgrew the stride
        headroom triggers a full rebuild instead (rare: it takes
        :data:`HEADROOM` fresh-value internments on one attribute).
        """
        if not self._attributes:
            return
        np = self._np
        moved = np.asarray(sorted(set(tuple_indices)), dtype=np.intp)
        if len(moved) == 0:
            return
        new_comp = np.zeros(len(moved), dtype=np.int64)
        for view, attr_stride, capacity in zip(
            self._views, self._strides, self._capacities
        ):
            codes = view[moved]
            if int(codes.max()) >= capacity:
                self._rebuild()
                return
            new_comp += codes.astype(np.int64) * attr_stride
        changed = new_comp != self._comp[moved]
        if not bool(changed.any()):
            return
        moved = moved[changed]
        new_comp = new_comp[changed]
        keep = ~np.isin(self._order, moved)
        kept_order = self._order[keep]
        self._comp[moved] = new_comp
        kept_comp = self._comp[kept_order]
        # Insertion points against the *kept* order, processed in (comp,
        # tuple index) order so equal keys land ascending: `moved` is already
        # ascending, so a stable sort by comp yields exactly that order.
        reorder = np.argsort(new_comp, kind="stable")
        moved = moved[reorder]
        new_comp = new_comp[reorder]
        slots = np.empty(len(moved), dtype=np.intp)
        for at, (comp, tuple_index) in enumerate(zip(new_comp, moved)):
            low = int(np.searchsorted(kept_comp, comp, side="left"))
            high = int(np.searchsorted(kept_comp, comp, side="right"))
            slots[at] = low + int(np.searchsorted(kept_order[low:high], tuple_index))
        self._order = np.insert(kept_order, slots, moved)
        self._refresh_boundaries()

    def __repr__(self) -> str:
        return (
            f"CodePartitionIndex({list(self._attributes)}, "
            f"{self.class_count} classes over {len(self._store)} tuples)"
        )
