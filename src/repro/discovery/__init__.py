"""Discovery of FDs and constant CFDs from data (the paper's future work)."""

from repro.discovery.cfd_discovery import DiscoveredPattern, discover_constant_cfds
from repro.discovery.fd_discovery import discover_fds
from repro.discovery.partitions import partition, refines

__all__ = [
    "DiscoveredPattern",
    "discover_constant_cfds",
    "discover_fds",
    "partition",
    "refines",
]
