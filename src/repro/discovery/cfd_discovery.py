"""Discovery of constant CFDs from data.

The paper names CFD discovery as future work; this module implements the
standard levelwise constant-pattern miner (in the spirit of CTANE /
"CFDMiner"-style algorithms): for every candidate embedded FD ``X → A`` it
groups the relation by the ``X`` values and emits a constant pattern
``(x1, ..., xk ‖ a)`` whenever the group is pure enough (confidence) and big
enough (support).  Patterns for the same embedded FD are assembled into a
single CFD whose tableau has one row per discovered pattern.

This is a data-profiling tool: discovered CFDs hold on the given (possibly
dirty) instance up to the requested confidence; they are candidates for a
domain expert to confirm, exactly as the paper's future-work section
envisages.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cfd import CFD
from repro.discovery.partitions import partition_with_keys
from repro.errors import DiscoveryError
from repro.relation.relation import Relation


@dataclass(frozen=True)
class DiscoveredPattern:
    """One constant pattern discovered for an embedded FD ``X → A``."""

    lhs: Tuple[str, ...]
    rhs: str
    lhs_values: Tuple
    rhs_value: object
    support: int
    confidence: float


def discover_constant_cfds(
    relation: Relation,
    min_support: int = 2,
    min_confidence: float = 1.0,
    max_lhs_size: int = 2,
    attributes: Optional[Sequence[str]] = None,
) -> List[CFD]:
    """Mine constant CFDs with at least ``min_support`` and ``min_confidence``.

    Returns one CFD per embedded FD that received at least one pattern, its
    tableau holding every discovered pattern.

    >>> from repro.datagen.cust import cust_relation
    >>> cfds = discover_constant_cfds(cust_relation(), min_support=2, max_lhs_size=1)
    >>> any(cfd.lhs == ("AC",) and cfd.rhs == ("CT",) for cfd in cfds)
    True
    """
    patterns = discover_patterns(
        relation,
        min_support=min_support,
        min_confidence=min_confidence,
        max_lhs_size=max_lhs_size,
        attributes=attributes,
    )
    grouped: Dict[Tuple[Tuple[str, ...], str], List[DiscoveredPattern]] = {}
    for found in patterns:
        grouped.setdefault((found.lhs, found.rhs), []).append(found)
    cfds: List[CFD] = []
    for (lhs, rhs), group in sorted(grouped.items()):
        rows = [list(found.lhs_values) + [found.rhs_value] for found in group]
        name = f"discovered_{'_'.join(lhs)}__{rhs}"
        cfds.append(CFD.build(lhs, [rhs], rows, name=name))
    return cfds


def discover_patterns(
    relation: Relation,
    min_support: int = 2,
    min_confidence: float = 1.0,
    max_lhs_size: int = 2,
    attributes: Optional[Sequence[str]] = None,
) -> List[DiscoveredPattern]:
    """The raw discovered patterns, with their support and confidence."""
    if min_support < 1:
        raise DiscoveryError("min_support must be at least 1")
    if not 0.0 < min_confidence <= 1.0:
        raise DiscoveryError("min_confidence must be in (0, 1]")
    if max_lhs_size < 1:
        raise DiscoveryError("max_lhs_size must be at least 1")
    names = tuple(attributes) if attributes is not None else relation.schema.names
    relation.schema.validate_attributes(names)

    found: List[DiscoveredPattern] = []
    for size in range(1, max_lhs_size + 1):
        for lhs in combinations(names, size):
            groups = partition_with_keys(relation, lhs)
            for target in names:
                if target in lhs:
                    continue
                target_position = relation.schema.position(target)
                for lhs_values, indices in groups.items():
                    if len(indices) < min_support:
                        continue
                    counts: Dict[object, int] = {}
                    for index in indices:
                        value = relation[index][target_position]
                        counts[value] = counts.get(value, 0) + 1
                    best_value, best_count = max(counts.items(), key=lambda item: item[1])
                    confidence = best_count / len(indices)
                    if confidence >= min_confidence and best_count >= min_support:
                        found.append(
                            DiscoveredPattern(
                                lhs=lhs,
                                rhs=target,
                                lhs_values=lhs_values,
                                rhs_value=best_value,
                                support=best_count,
                                confidence=confidence,
                            )
                        )
    return found
