"""Levelwise discovery of standard FDs (a TANE-style baseline).

The paper lists "automated methods for discovering CFDs" as future work; a
plain FD miner is the natural baseline for the constant-CFD miner in
:mod:`repro.discovery.cfd_discovery` and is also used by the discovery
example.  The search is levelwise over LHS size with the classic pruning: if
``X → A`` has been emitted, no superset of ``X`` is considered for ``A``.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence

from repro.core.cfd import FD
from repro.discovery.partitions import refines
from repro.errors import DiscoveryError
from repro.relation.relation import Relation


def discover_fds(
    relation: Relation,
    max_lhs_size: int = 3,
    attributes: Optional[Sequence[str]] = None,
    include_trivial: bool = False,
) -> List[FD]:
    """All minimal FDs ``X → A`` holding on ``relation`` with ``|X| ≤ max_lhs_size``.

    Minimality here means no proper subset of ``X`` determines ``A`` (among the
    examined levels).  Trivial FDs (``A ∈ X``) are skipped unless requested.

    >>> from repro.datagen.cust import cust_relation
    >>> fds = discover_fds(cust_relation(), max_lhs_size=1)
    >>> any(fd.lhs == ("AC",) and "CT" in fd.rhs for fd in fds)
    True
    """
    if max_lhs_size < 1:
        raise DiscoveryError("max_lhs_size must be at least 1")
    names = tuple(attributes) if attributes is not None else relation.schema.names
    relation.schema.validate_attributes(names)

    found: List[FD] = []
    # determined[A] holds the minimal LHS sets already known to determine A.
    determined: dict = {attribute: [] for attribute in names}

    for size in range(1, max_lhs_size + 1):
        for lhs in combinations(names, size):
            lhs_set = set(lhs)
            for target in names:
                if not include_trivial and target in lhs_set:
                    continue
                if any(set(known) <= lhs_set for known in determined[target]):
                    continue  # a subset already determines the target
                if refines(relation, lhs, (target,)):
                    determined[target].append(lhs)
                    found.append(FD(lhs, (target,)))
    return found
