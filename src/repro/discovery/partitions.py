"""Partition machinery for dependency discovery.

TANE-style FD discovery decides whether ``X → A`` holds by comparing the
partition of tuples induced by ``X`` with the partition induced by
``X ∪ {A}``: the FD holds exactly when the two partitions have the same
number of equivalence classes (every ``X``-class is contained in one
``X∪{A}``-class).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.relation.relation import Relation

Partition = List[Tuple[int, ...]]


def _grouped(relation: Relation, attributes: Sequence[str]) -> Dict[Tuple, List[int]]:
    """Row indices grouped by their projection onto ``attributes`` — the one
    grouping pass every public helper in this module derives its answer from."""
    groups: Dict[Tuple, List[int]] = {}
    positions = relation.schema.positions(attributes)
    for index, row in enumerate(relation):
        key = tuple(row[position] for position in positions)
        groups.setdefault(key, []).append(index)
    return groups


def partition(relation: Relation, attributes: Sequence[str]) -> Partition:
    """The partition of row indices induced by equality on ``attributes``.

    The empty attribute list induces the single class of all rows.
    """
    if not attributes:
        return [tuple(range(len(relation)))] if len(relation) else []
    return [tuple(indices) for indices in _grouped(relation, attributes).values()]


def partition_with_keys(
    relation: Relation, attributes: Sequence[str]
) -> Dict[Tuple, Tuple[int, ...]]:
    """Like :func:`partition` but keyed by the attribute values of each class."""
    return {
        key: tuple(indices) for key, indices in _grouped(relation, attributes).items()
    }


def refines(relation: Relation, lhs: Sequence[str], rhs: Sequence[str]) -> bool:
    """Whether the FD ``lhs → rhs`` holds on ``relation`` (partition refinement test).

    A single grouping pass over ``lhs ∪ rhs`` suffices: each combined key
    starts with the (de-duplicated) ``lhs`` projection, so the number of LHS
    classes is the number of distinct key prefixes — no second pass over the
    relation for the LHS-only partition.
    """
    lhs_unique = list(dict.fromkeys(lhs))
    combined = lhs_unique + [attr for attr in rhs if attr not in lhs_unique]
    combined_groups = _grouped(relation, combined)
    if lhs_unique:
        lhs_classes = len({key[: len(lhs_unique)] for key in combined_groups})
    else:
        lhs_classes = 1 if len(relation) else 0
    return lhs_classes == len(combined_groups)


def error_rate(relation: Relation, lhs: Sequence[str], rhs: Sequence[str]) -> float:
    """The g3-style error of ``lhs → rhs``: the fraction of tuples to delete for it to hold."""
    if len(relation) == 0:
        return 0.0
    lhs_groups = partition_with_keys(relation, lhs)
    rhs_positions = relation.schema.positions(rhs)
    violating = 0
    for indices in lhs_groups.values():
        counts: Dict[Tuple, int] = {}
        for index in indices:
            row = relation[index]
            value = tuple(row[position] for position in rhs_positions)
            counts[value] = counts.get(value, 0) + 1
        violating += len(indices) - max(counts.values())
    return violating / len(relation)
