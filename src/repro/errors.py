"""Exception hierarchy shared by every subpackage of :mod:`repro`."""


class ReproError(Exception):
    """Base class for every error raised by the library."""


class SchemaError(ReproError):
    """A schema is malformed or an attribute reference does not resolve."""


class DomainError(ReproError):
    """A value is outside the (finite) domain declared for an attribute."""


class PatternError(ReproError):
    """A pattern tuple or tableau is malformed for its CFD."""


class CFDError(ReproError):
    """A CFD is syntactically invalid (empty RHS, unknown attributes, ...)."""


class InconsistentCFDsError(ReproError):
    """Raised when an operation requires a consistent CFD set but got none."""


class ReasoningError(ReproError):
    """An inference rule was applied to premises that do not satisfy its preconditions."""


class AnalysisError(ReproError):
    """The pre-flight static analysis refused a rule set (``analysis="strict"``).

    Carries the full :class:`~repro.analysis.AnalysisReport` as ``report``
    so callers can inspect every diagnostic, not just the message.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class ConfigError(ReproError):
    """A pipeline configuration object combines options that cannot go together."""


class RegistryError(ReproError):
    """A backend name does not resolve, or a registration clashes with an existing one."""


class DetectionError(ReproError):
    """Violation detection failed (bad method name, backend failure, ...)."""


class SQLGenerationError(ReproError):
    """SQL text could not be generated for the requested CFDs."""


class RepairError(ReproError):
    """The repair algorithm could not produce a valid repair."""


class ParallelExecutionError(ReproError):
    """Sharded parallel execution failed (bad shard/worker counts, a worker crashed)."""


class DiscoveryError(ReproError):
    """CFD/FD discovery was asked to do something unsupported."""


class ParseError(ReproError):
    """A CFD specification (text or JSON) could not be parsed."""
