"""Serialization of CFDs: a compact text format and a JSON format.

The text format mirrors how the paper writes CFDs —
``[CC = 01, AC = 908, PN] -> [STR, CT = MH, ZIP]`` — and supports multi-row
pattern tableaux; the JSON format is a faithful structural dump.  Both round
trip through :class:`repro.core.cfd.CFD`.

Data ingestion lives in :mod:`repro.io.sources`: the :class:`RowSource`
adapters (in-memory relation, CSV, SQLite, row iterables) the cleaning
pipeline reads from.
"""

from repro.io.json_format import cfd_to_dict, cfds_from_json, cfds_to_json, dict_to_cfd
from repro.io.sources import (
    CSVSource,
    IterableSource,
    RelationSource,
    RowSource,
    SQLiteSource,
    as_source,
)
from repro.io.text_format import (
    format_cfd,
    format_cfds,
    parse_cfd,
    parse_cfds,
    read_cfd_file,
    write_cfd_file,
)

__all__ = [
    "CSVSource",
    "IterableSource",
    "RelationSource",
    "RowSource",
    "SQLiteSource",
    "as_source",
    "cfd_to_dict",
    "cfds_from_json",
    "cfds_to_json",
    "dict_to_cfd",
    "format_cfd",
    "format_cfds",
    "parse_cfd",
    "parse_cfds",
    "read_cfd_file",
    "write_cfd_file",
]
