"""JSON serialization of CFDs.

The JSON form is a faithful structural dump, with ``"_"`` and ``"@"`` (by
default) standing for the wildcard and don't-care markers::

    {
      "cfds": [
        {
          "name": "phi1",
          "relation": "cust",
          "lhs": ["CC", "ZIP"],
          "rhs": ["STR"],
          "patterns": [
            {"lhs": {"CC": "44", "ZIP": "_"}, "rhs": {"STR": "_"}}
          ]
        }
      ]
    }

Unlike the text format, arbitrary (non-string) constants survive a JSON round
trip as long as they are JSON-representable, and constants that happen to be
the literal strings ``"_"`` / ``"@"`` can be preserved by choosing different
markers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.core.cfd import CFD
from repro.core.pattern import DONTCARE, WILDCARD, PatternValue
from repro.core.tableau import PatternTableau, PatternTuple
from repro.errors import ParseError

WILDCARD_MARKER = "_"
DONTCARE_MARKER = "@"


def _encode_cell(cell: PatternValue, wildcard: str, dontcare: str) -> Any:
    if cell.is_wildcard:
        return wildcard
    if cell.is_dontcare:
        return dontcare
    return cell.value


def _decode_cell(raw: Any, wildcard: str, dontcare: str) -> PatternValue:
    if raw == wildcard:
        return WILDCARD
    if raw == dontcare:
        return DONTCARE
    return PatternValue.constant(raw)


def cfd_to_dict(
    cfd: CFD,
    wildcard: str = WILDCARD_MARKER,
    dontcare: str = DONTCARE_MARKER,
) -> Dict[str, Any]:
    """A JSON-serializable dictionary describing ``cfd``."""
    patterns = []
    for pattern in cfd.tableau:
        patterns.append(
            {
                "lhs": {attr: _encode_cell(pattern.lhs_cell(attr), wildcard, dontcare) for attr in cfd.lhs},
                "rhs": {attr: _encode_cell(pattern.rhs_cell(attr), wildcard, dontcare) for attr in cfd.rhs},
            }
        )
    payload: Dict[str, Any] = {
        "name": cfd.name,
        "lhs": list(cfd.lhs),
        "rhs": list(cfd.rhs),
        "patterns": patterns,
    }
    if cfd.schema is not None:
        payload["relation"] = cfd.schema.name
    return payload


def dict_to_cfd(
    payload: Dict[str, Any],
    wildcard: str = WILDCARD_MARKER,
    dontcare: str = DONTCARE_MARKER,
) -> CFD:
    """Rebuild a CFD from :func:`cfd_to_dict` output."""
    try:
        lhs = list(payload["lhs"])
        rhs = list(payload["rhs"])
        raw_patterns = payload["patterns"]
    except (KeyError, TypeError) as exc:
        raise ParseError(f"malformed CFD payload: {payload!r}") from exc
    if not isinstance(raw_patterns, list) or not raw_patterns:
        raise ParseError("a CFD payload needs a non-empty 'patterns' list")
    rows: List[PatternTuple] = []
    for raw in raw_patterns:
        try:
            lhs_cells = {attr: _decode_cell(raw["lhs"][attr], wildcard, dontcare) for attr in lhs}
            rhs_cells = {attr: _decode_cell(raw["rhs"][attr], wildcard, dontcare) for attr in rhs}
        except (KeyError, TypeError) as exc:
            raise ParseError(f"malformed pattern payload: {raw!r}") from exc
        rows.append(PatternTuple(lhs_cells, rhs_cells))
    tableau = PatternTableau(lhs, rhs, rows)
    return CFD(lhs, rhs, tableau, name=payload.get("name"))


def cfds_to_json(
    cfds: Iterable[CFD],
    indent: Optional[int] = 2,
    wildcard: str = WILDCARD_MARKER,
    dontcare: str = DONTCARE_MARKER,
) -> str:
    """Serialize several CFDs to a JSON document with a top-level ``"cfds"`` list."""
    document = {"cfds": [cfd_to_dict(cfd, wildcard, dontcare) for cfd in cfds]}
    return json.dumps(document, indent=indent, sort_keys=False)


def cfds_from_json(
    text: str,
    wildcard: str = WILDCARD_MARKER,
    dontcare: str = DONTCARE_MARKER,
) -> List[CFD]:
    """Parse a JSON document produced by :func:`cfds_to_json` (or a bare list)."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from exc
    if isinstance(document, dict):
        entries = document.get("cfds")
        if entries is None:
            raise ParseError("JSON document has no 'cfds' key")
    elif isinstance(document, list):
        entries = document
    else:
        raise ParseError("JSON document must be an object or a list of CFDs")
    return [dict_to_cfd(entry, wildcard, dontcare) for entry in entries]


def read_cfd_json(path: Union[str, Path]) -> List[CFD]:
    """Load CFDs from a JSON file."""
    return cfds_from_json(Path(path).read_text(encoding="utf-8"))


def write_cfd_json(path: Union[str, Path], cfds: Iterable[CFD], indent: Optional[int] = 2) -> None:
    """Write CFDs to a JSON file."""
    Path(path).write_text(cfds_to_json(cfds, indent=indent), encoding="utf-8")
