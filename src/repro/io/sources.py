"""Pluggable row sources feeding the cleaning pipeline.

A :class:`RowSource` is the single ingestion abstraction of the pipeline: it
exposes a :class:`~repro.relation.schema.Schema` and an iterator of
positional rows, so the same :class:`~repro.pipeline.Cleaner` (and the
streaming detector, :func:`repro.detection.indexed.detect_stream`) can run
over an in-memory relation, a CSV file, a SQLite table, or any row iterable
without the caller hand-rolling ingestion — previously each entry point (the
CLI's CSV loader, ``detect_stream``'s raw ``(schema, rows)`` pair,
``Relation.from_csv``) did its own.

Adapters:

* :class:`RelationSource` — an in-memory :class:`~repro.relation.relation.Relation`;
* :class:`CSVSource` — a CSV path with a header row (string-typed schema
  inferred from the header unless one is given), streamed row by row;
* :class:`SQLiteSource` — a table in a SQLite database file or connection;
* :class:`IterableSource` — any iterable of positional tuples or
  attribute-name mappings, with an explicit schema.

:func:`as_source` coerces the common inputs (``Relation``, path, iterable)
so APIs can accept "anything row-shaped".
"""

from __future__ import annotations

import abc
import csv
import sqlite3
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.config import validate_storage
from repro.errors import ReproError
from repro.relation.columnar import ColumnStore
from repro.relation.mmap_store import MmapColumnStore
from repro.relation.relation import Relation, Row
from repro.relation.schema import Schema


def _relation_class(storage: Optional[str]) -> type:
    """The relation class for a storage name (``None`` keeps the row default).

    Validation is the config layer's (:data:`repro.config.STORAGES`), so an
    unknown name fails with the same :class:`~repro.errors.ConfigError`
    everywhere a storage is named.
    """
    validate_storage(storage)
    if storage == "columnar":
        return ColumnStore
    if storage == "mmap":
        return MmapColumnStore
    return Relation


class RowSource(abc.ABC):
    """One pass over a row collection, with a known schema."""

    @property
    @abc.abstractmethod
    def schema(self) -> Schema:
        """The schema the rows conform to."""

    @abc.abstractmethod
    def __iter__(self) -> Iterator[Row]:
        """Yield rows as positional tuples in schema attribute order."""

    def to_relation(
        self,
        storage: Optional[str] = None,
        spill_dir: Optional[str] = None,
        chunk_rows: Optional[int] = None,
    ) -> Relation:
        """Materialise the source into a relation.

        ``storage="columnar"`` dictionary-encodes the rows as they stream in
        (:class:`~repro.relation.columnar.ColumnStore`) — encoding at
        ingestion is what lets every later detection and repair pass run
        over integer codes.  ``storage="mmap"`` streams the codes straight
        into memory-mapped spill files
        (:class:`~repro.relation.mmap_store.MmapColumnStore` under
        ``spill_dir``, flushing every ``chunk_rows`` rows) so the full
        relation is never held as Python rows — the out-of-core ingestion
        path.  ``None``/``"rows"`` keeps the tuple-list layout.
        """
        if storage == "mmap":
            relation: Relation = MmapColumnStore(
                self.schema, spill_dir=spill_dir, chunk_rows=chunk_rows
            )
        else:
            relation = _relation_class(storage)(self.schema)
        relation.extend(self)
        return relation

    def describe(self) -> str:
        """A short human-readable label for audit trails."""
        return type(self).__name__


class RelationSource(RowSource):
    """An in-memory relation, passed through as-is.

    >>> from repro.datagen.cust import cust_relation
    >>> source = RelationSource(cust_relation())
    >>> len(source.to_relation())
    6
    """

    def __init__(self, relation: Relation) -> None:
        self._relation = relation

    @property
    def schema(self) -> Schema:
        return self._relation.schema

    def __iter__(self) -> Iterator[Row]:
        return iter(self._relation)

    def to_relation(
        self,
        storage: Optional[str] = None,
        spill_dir: Optional[str] = None,
        chunk_rows: Optional[int] = None,
    ) -> Relation:
        # No copy when the storage already matches: the pipeline copies
        # before mutating (repair works on a copy), so handing back the
        # original keeps ingestion free.  An explicit storage request that
        # does not match converts (never mutating the original).
        validate_storage(storage)
        if storage is None:
            return self._relation
        if storage == "mmap":
            if isinstance(self._relation, MmapColumnStore):
                return self._relation
            return MmapColumnStore.from_relation(
                self._relation, spill_dir=spill_dir, chunk_rows=chunk_rows
            )
        if storage == "columnar":
            if isinstance(self._relation, ColumnStore):
                return self._relation
            return ColumnStore.from_relation(self._relation)
        if isinstance(self._relation, ColumnStore):
            return Relation.from_validated_rows(self._relation.schema, self._relation)
        return self._relation

    def describe(self) -> str:
        return f"relation {self._relation.schema.name!r} ({len(self._relation)} rows)"


class IterableSource(RowSource):
    """Rows from any iterable — positional tuples or attribute mappings.

    The iterable is consumed lazily and only once; build a fresh source (or
    materialise with :meth:`to_relation`) to read it again.
    """

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Union[Row, Sequence[Any], Mapping[str, Any]]],
    ) -> None:
        self._schema = schema
        self._rows = rows

    @property
    def schema(self) -> Schema:
        return self._schema

    def __iter__(self) -> Iterator[Row]:
        names = self._schema.names
        for row in self._rows:
            if isinstance(row, Mapping):
                yield tuple(row[name] for name in names)
            else:
                yield tuple(row)

    def describe(self) -> str:
        return f"iterable over schema {self._schema.name!r}"


class CSVSource(RowSource):
    """A CSV file with a header row, streamed row by row.

    Without an explicit ``schema``, every column is a string attribute named
    by the header (the CLI's historical behaviour); with one, cells are
    parsed through the schema's attribute types the way
    :meth:`Relation.from_csv` does.
    """

    def __init__(
        self,
        path: Union[str, Path],
        schema: Optional[Schema] = None,
        relation_name: Optional[str] = None,
    ) -> None:
        self._path = Path(path)
        self._explicit_schema = schema
        self._relation_name = relation_name
        self._schema: Optional[Schema] = schema

    @property
    def schema(self) -> Schema:
        if self._schema is None:
            with open(self._path, newline="", encoding="utf-8") as handle:
                header = next(csv.reader(handle), None)
            if not header:
                raise ReproError(f"{self._path}: CSV file is empty or has no header row")
            self._schema = Schema(self._relation_name or self._path.stem, header)
        return self._schema

    def __iter__(self) -> Iterator[Row]:
        schema = self.schema
        parse = self._explicit_schema is not None
        with open(self._path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if not header:
                raise ReproError(f"{self._path}: CSV file is empty or has no header row")
            if tuple(header) != schema.names:
                raise ReproError(
                    f"{self._path}: CSV header {tuple(header)} does not match "
                    f"schema attributes {schema.names}"
                )
            for line_number, row in enumerate(reader, start=2):
                if len(row) != len(schema):
                    raise ReproError(
                        f"{self._path}: row {line_number} has {len(row)} fields, "
                        f"expected {len(schema)}"
                    )
                if parse:
                    yield tuple(
                        attribute.parse(cell)
                        for attribute, cell in zip(schema.attributes, row)
                    )
                else:
                    yield tuple(row)

    def describe(self) -> str:
        return f"csv {self._path}"


class SQLiteSource(RowSource):
    """A table in a SQLite database (path or open connection).

    The schema is read from ``PRAGMA table_info`` (string-typed attributes
    named by the columns) unless one is given; rows stream through a server
    cursor, so the table is never materialised twice.
    """

    def __init__(
        self,
        database: Union[str, Path, sqlite3.Connection],
        table: str,
        schema: Optional[Schema] = None,
    ) -> None:
        if not table.replace("_", "").isalnum():
            raise ReproError(f"unsafe SQLite table name {table!r}")
        self._database = database
        self._table = table
        self._schema = schema

    def _connect(self) -> sqlite3.Connection:
        if isinstance(self._database, sqlite3.Connection):
            return self._database
        return sqlite3.connect(str(self._database))

    def _close(self, connection: sqlite3.Connection) -> None:
        if not isinstance(self._database, sqlite3.Connection):
            connection.close()

    @property
    def schema(self) -> Schema:
        if self._schema is None:
            connection = self._connect()
            try:
                columns = [
                    row[1]
                    for row in connection.execute(f'PRAGMA table_info("{self._table}")')
                ]
            finally:
                self._close(connection)
            if not columns:
                raise ReproError(f"SQLite table {self._table!r} does not exist or has no columns")
            self._schema = Schema(self._table, columns)
        return self._schema

    def __iter__(self) -> Iterator[Row]:
        schema = self.schema
        quoted = ", ".join(f'"{name}"' for name in schema.names)
        connection = self._connect()
        try:
            for row in connection.execute(f'SELECT {quoted} FROM "{self._table}"'):
                yield tuple(row)
        finally:
            self._close(connection)

    def describe(self) -> str:
        database = (
            "<connection>"
            if isinstance(self._database, sqlite3.Connection)
            else str(self._database)
        )
        return f"sqlite {database}:{self._table}"


def as_source(
    data: Union[RowSource, Relation, str, Path, Iterable],
    schema: Optional[Schema] = None,
) -> RowSource:
    """Coerce ``data`` into a :class:`RowSource`.

    * a ``RowSource`` passes through unchanged;
    * a ``Relation`` becomes a :class:`RelationSource`;
    * a ``str``/``Path`` becomes a :class:`CSVSource` (optionally typed by
      ``schema``);
    * any other iterable becomes an :class:`IterableSource` — ``schema`` is
      required then.
    """
    if isinstance(data, RowSource):
        return data
    if isinstance(data, Relation):
        return RelationSource(data)
    if isinstance(data, (str, Path)):
        return CSVSource(data, schema=schema)
    if isinstance(data, Iterable):
        if schema is None:
            raise ReproError(
                "a schema is required to read rows from a plain iterable; "
                "pass as_source(rows, schema=...)"
            )
        return IterableSource(schema, data)
    raise ReproError(f"cannot build a RowSource from {type(data).__name__}")
