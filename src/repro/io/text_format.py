"""A compact text format for CFDs.

Grammar (one CFD per definition; ``#`` starts a comment):

* single-pattern form, written the way the paper writes refined FDs::

      cfd phi1 on cust: [CC = 44, ZIP] -> [STR]
      [ZIP] -> [ST]                            # header is optional

  An attribute without ``= value`` is the unnamed variable ``_``; ``= @`` is
  the don't-care symbol of merged tableaux; values containing commas, brackets
  or spaces can be double-quoted.

* multi-pattern form with an explicit tableau block::

      cfd phi2 on cust: [CC, AC, PN] -> [STR, CT, ZIP] {
          01, 908, _ | _, MH, _
          01, 212, _ | _, NYC, _
          _,  _,   _ | _, _,  _
      }

  Each tableau row lists the LHS cells, a ``|`` separator, then the RHS cells;
  ``_`` and ``@`` are the wildcard and don't-care markers.

The format is line-oriented and deliberately forgiving about whitespace.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.cfd import CFD
from repro.core.pattern import PatternValue
from repro.core.tableau import PatternTuple
from repro.errors import ParseError

_HEADER_RE = re.compile(
    r"^\s*(?:cfd\s+(?P<name>[\w.-]+)\s*(?:on\s+(?P<relation>[\w.-]+)\s*)?:\s*)?"
    r"\[(?P<lhs>[^\]]*)\]\s*->\s*\[(?P<rhs>[^\]]*)\]\s*(?P<brace>\{)?\s*$"
)


# ---------------------------------------------------------------------------
# small lexical helpers
# ---------------------------------------------------------------------------
def _strip_comment(line: str) -> str:
    in_quotes = False
    for position, char in enumerate(line):
        if char == '"':
            in_quotes = not in_quotes
        elif char == "#" and not in_quotes:
            return line[:position]
    return line


def _split_commas(text: str) -> List[str]:
    """Split on commas that are not inside double quotes."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    for char in text:
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
        elif char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return parts


def _unquote(token: str) -> str:
    token = token.strip()
    if len(token) >= 2 and token.startswith('"') and token.endswith('"'):
        return token[1:-1]
    return token


def _quote_if_needed(value: str) -> str:
    if value == "" or re.search(r'[,\[\]{}|#"=]|\s', value):
        escaped = value.replace('"', '\\"')
        return f'"{escaped}"'
    return value


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------
def _parse_attribute_item(item: str, line_number: int) -> Tuple[str, Optional[str]]:
    """Parse ``ATTR`` or ``ATTR = value``; returns (attribute, raw value or None)."""
    item = item.strip()
    if not item:
        raise ParseError(f"line {line_number}: empty attribute item")
    if "=" in item:
        attribute, _, raw_value = item.partition("=")
        attribute = attribute.strip()
        value = _unquote(raw_value)
        if not attribute:
            raise ParseError(f"line {line_number}: missing attribute name in {item!r}")
        return attribute, value
    return item, None


def _parse_header_cells(spec: str, line_number: int) -> Tuple[List[str], List[Optional[str]]]:
    attributes: List[str] = []
    cells: List[Optional[str]] = []
    spec = spec.strip()
    if not spec:
        return attributes, cells
    for item in _split_commas(spec):
        attribute, value = _parse_attribute_item(item, line_number)
        attributes.append(attribute)
        cells.append(value)
    return attributes, cells


def _cell_from_token(token: str) -> PatternValue:
    return PatternValue.coerce(_unquote(token))


def _parse_tableau_row(
    line: str,
    lhs: Sequence[str],
    rhs: Sequence[str],
    line_number: int,
) -> PatternTuple:
    if "|" not in line:
        raise ParseError(
            f"line {line_number}: tableau row must separate LHS and RHS cells with '|'"
        )
    lhs_part, _, rhs_part = line.partition("|")
    lhs_tokens = [token for token in _split_commas(lhs_part)] if lhs_part.strip() else []
    rhs_tokens = [token for token in _split_commas(rhs_part)]
    if lhs and len(lhs_tokens) != len(lhs):
        raise ParseError(
            f"line {line_number}: expected {len(lhs)} LHS cells, got {len(lhs_tokens)}"
        )
    if not lhs and lhs_part.strip():
        raise ParseError(f"line {line_number}: LHS cells given for a CFD with an empty LHS")
    if len(rhs_tokens) != len(rhs):
        raise ParseError(
            f"line {line_number}: expected {len(rhs)} RHS cells, got {len(rhs_tokens)}"
        )
    lhs_cells = {attr: _cell_from_token(token) for attr, token in zip(lhs, lhs_tokens)}
    rhs_cells = {attr: _cell_from_token(token) for attr, token in zip(rhs, rhs_tokens)}
    return PatternTuple(lhs_cells, rhs_cells)


def parse_cfds(text: str) -> List[CFD]:
    """Parse every CFD definition in ``text``.

    >>> cfds = parse_cfds("cfd phi1 on cust: [CC = 44, ZIP] -> [STR]")
    >>> cfds[0].name, cfds[0].lhs
    ('phi1', ('CC', 'ZIP'))
    """
    lines = text.splitlines()
    cfds: List[CFD] = []
    index = 0
    anonymous = 0
    while index < len(lines):
        raw = _strip_comment(lines[index]).strip()
        index += 1
        if not raw:
            continue
        match = _HEADER_RE.match(raw)
        if not match:
            raise ParseError(f"line {index}: cannot parse CFD header {raw!r}")
        lhs_attrs, lhs_cells = _parse_header_cells(match.group("lhs"), index)
        rhs_attrs, rhs_cells = _parse_header_cells(match.group("rhs"), index)
        if not rhs_attrs:
            raise ParseError(f"line {index}: a CFD needs at least one RHS attribute")
        name = match.group("name")
        if name is None:
            anonymous += 1
            name = f"cfd_{anonymous}"

        rows: List[PatternTuple] = []
        if match.group("brace"):
            closed = False
            while index < len(lines):
                row_line = _strip_comment(lines[index]).strip()
                index += 1
                if not row_line:
                    continue
                if row_line == "}":
                    closed = True
                    break
                rows.append(_parse_tableau_row(row_line, lhs_attrs, rhs_attrs, index))
            if not closed:
                raise ParseError(f"line {index}: unterminated tableau block (missing '}}')")
            if not rows:
                raise ParseError(f"line {index}: tableau block contains no pattern rows")
        else:
            lhs_row = {
                attr: (PatternValue.coerce(cell) if cell is not None else "_")
                for attr, cell in zip(lhs_attrs, lhs_cells)
            }
            rhs_row = {
                attr: (PatternValue.coerce(cell) if cell is not None else "_")
                for attr, cell in zip(rhs_attrs, rhs_cells)
            }
            rows.append(PatternTuple(lhs_row, rhs_row))

        from repro.core.tableau import PatternTableau

        tableau = PatternTableau(lhs_attrs, rhs_attrs, rows)
        cfds.append(CFD(lhs_attrs, rhs_attrs, tableau, name=name))
    return cfds


def parse_cfd(text: str) -> CFD:
    """Parse exactly one CFD definition."""
    cfds = parse_cfds(text)
    if len(cfds) != 1:
        raise ParseError(f"expected exactly one CFD definition, found {len(cfds)}")
    return cfds[0]


# ---------------------------------------------------------------------------
# formatting
# ---------------------------------------------------------------------------
def _format_cell(cell: PatternValue) -> str:
    if cell.is_wildcard:
        return "_"
    if cell.is_dontcare:
        return "@"
    return _quote_if_needed(str(cell.value))


def format_cfd(cfd: CFD, relation: Optional[str] = None) -> str:
    """Render a CFD in the text format (single-line when it has one pattern row)."""
    relation_part = f" on {relation}" if relation else (
        f" on {cfd.schema.name}" if cfd.schema is not None else ""
    )
    header_prefix = f"cfd {cfd.name}{relation_part}: "
    if len(cfd.tableau) == 1:
        pattern = cfd.tableau[0]
        lhs_items = []
        for attr in cfd.lhs:
            cell = pattern.lhs_cell(attr)
            lhs_items.append(attr if cell.is_wildcard else f"{attr} = {_format_cell(cell)}")
        rhs_items = []
        for attr in cfd.rhs:
            cell = pattern.rhs_cell(attr)
            rhs_items.append(attr if cell.is_wildcard else f"{attr} = {_format_cell(cell)}")
        return f"{header_prefix}[{', '.join(lhs_items)}] -> [{', '.join(rhs_items)}]"

    header = (
        f"{header_prefix}[{', '.join(cfd.lhs)}] -> [{', '.join(cfd.rhs)}] {{"
    )
    lines = [header]
    for pattern in cfd.tableau:
        lhs_cells = ", ".join(_format_cell(pattern.lhs_cell(attr)) for attr in cfd.lhs)
        rhs_cells = ", ".join(_format_cell(pattern.rhs_cell(attr)) for attr in cfd.rhs)
        lines.append(f"    {lhs_cells} | {rhs_cells}")
    lines.append("}")
    return "\n".join(lines)


def format_cfds(cfds: Iterable[CFD]) -> str:
    """Render several CFDs, blank-line separated."""
    return "\n\n".join(format_cfd(cfd) for cfd in cfds) + "\n"


# ---------------------------------------------------------------------------
# files
# ---------------------------------------------------------------------------
def read_cfd_file(path: Union[str, Path]) -> List[CFD]:
    """Parse a ``.cfd`` text file."""
    return parse_cfds(Path(path).read_text(encoding="utf-8"))


def write_cfd_file(path: Union[str, Path], cfds: Iterable[CFD]) -> None:
    """Write CFDs to a ``.cfd`` text file."""
    Path(path).write_text(format_cfds(cfds), encoding="utf-8")
