"""Kernel dispatch: pluggable implementations of the code-column hot loops.

PR 5 reduced detection and repair over a
:class:`~repro.relation.columnar.ColumnStore` to a family of integer
primitives — group-by over code columns, group-by over an index subset, the
``Q^V`` disagreement check, the ``Q^C`` constant-mismatch scan, the fused
variable-pattern scan, and the repair-side batch pair (``partition_classes``
to flatten a relation into equivalence classes, ``evaluate_classes`` to
resolve all ``Q^C``/``Q^V`` checks of a dirty class set in one call).  This
package gives those primitives swappable implementations:

* ``"python"`` — the pure-Python reference
  (:mod:`repro.kernels.python_kernels`), always available, defines the
  semantics;
* ``"numpy"`` — vectorised array kernels
  (:mod:`repro.kernels.numpy_kernels`), available when numpy is installed
  (the optional ``[fast]`` extra);
* ``"auto"`` — numpy when importable, python otherwise (the default).

Every kernel is **byte-identical**: same violations in the same order, same
repairs, same partition iteration order.  The grid in
``tests/integration/test_kernel_agreement.py`` pins that contract, so a
kernel is a pure speed knob exactly like the storage layer.

Dispatch follows the storage pattern: configs carry an optional ``kernel=``
name (:class:`~repro.config.DetectionConfig` /
:class:`~repro.config.RepairConfig`), defaulting to the ``REPRO_KERNEL``
environment variable, then ``"auto"``.  The public entry points
(:func:`~repro.detection.engine.detect_violations`,
:func:`~repro.repair.heuristic.repair`,
:func:`~repro.detection.indexed.detect_stream`) activate the configured
kernel with :func:`use_kernel` for the duration of the call; the hot layers
read :func:`active_kernel` once per pass and call its primitives directly.
The active kernel is a module global (engines are processes, not threads);
worker processes of the parallel backends resolve it from their own
environment/config — harmless either way, since kernels agree byte for byte.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.config import AUTO, KERNELS, kernel_from_env
from repro.errors import ConfigError
from repro.kernels.python_kernels import PYTHON_KERNEL, PythonKernel

__all__ = [
    "PythonKernel",
    "active_kernel",
    "get_kernel",
    "kernel_names",
    "numpy_available",
    "resolve_kernel_name",
    "use_kernel",
]

#: Tri-state import probe: ``None`` until first asked.
_numpy_available: Optional[bool] = None

#: The kernel pinned by the innermost :func:`use_kernel`; ``None`` when no
#: activation is in effect (then the environment default applies).
_active = None


def numpy_available() -> bool:
    """Whether the numpy kernel layer can be imported (probed once)."""
    global _numpy_available
    if _numpy_available is None:
        try:
            import numpy  # noqa: F401

            _numpy_available = True
        except ImportError:
            _numpy_available = False
    return _numpy_available


def kernel_names() -> tuple:
    """The kernels available *right now*: always python, numpy when importable."""
    return ("python", "numpy") if numpy_available() else ("python",)


def resolve_kernel_name(name: Optional[str] = None) -> str:
    """Resolve a kernel name (possibly ``None`` or ``"auto"``) to a concrete one.

    ``None`` defers to ``REPRO_KERNEL`` (then ``"auto"``); ``"auto"``
    degrades cleanly to ``"python"`` when numpy is missing.  An *explicit*
    ``"numpy"`` without numpy installed raises
    :class:`~repro.errors.ConfigError` instead of silently computing with
    the wrong kernel — the caller asked for something the machine lacks.
    """
    if name is None:
        name = kernel_from_env()
    if name == AUTO:
        return "numpy" if numpy_available() else "python"
    if name not in KERNELS:
        raise ConfigError(
            f"unknown kernel {name!r}; expected one of "
            f"{', '.join(map(repr, KERNELS + (AUTO,)))}"
        )
    if name == "numpy" and not numpy_available():
        raise ConfigError(
            "kernel='numpy' requested but numpy is not importable; install "
            "the [fast] extra (pip install repro-cfd[fast]) or use "
            "kernel='auto' to fall back to the python kernel"
        )
    return name


def get_kernel(name: Optional[str] = None):
    """The kernel object for ``name`` (resolution rules of :func:`resolve_kernel_name`)."""
    if resolve_kernel_name(name) == "numpy":
        from repro.kernels.numpy_kernels import NUMPY_KERNEL

        return NUMPY_KERNEL
    return PYTHON_KERNEL


def active_kernel():
    """The kernel the hot loops should compute with, right now.

    Inside a :func:`use_kernel` activation this is the pinned kernel (a
    plain global read — the hot path); outside one, the environment default
    is re-resolved per call, so ``REPRO_KERNEL`` changes are honoured even
    by low-level entry points that no config ever flows through.
    """
    if _active is not None:
        return _active
    return get_kernel(None)


@contextmanager
def use_kernel(name: Optional[str] = None) -> Iterator:
    """Activate a kernel for the duration of a ``with`` block.

    ``name`` follows :func:`resolve_kernel_name` (``None`` → environment →
    ``"auto"``).  Activations nest; the previous kernel is restored on exit
    even when the block raises.  This is what the detection/repair dispatch
    sites wrap around their backend calls.
    """
    global _active
    previous = _active
    _active = get_kernel(name)
    try:
        yield _active
    finally:
        _active = previous
