"""Numpy-vectorised kernels for the code-column hot loops.

This module imports :mod:`numpy` at the top — it is only ever imported by
the dispatcher (:mod:`repro.kernels`) after
:func:`repro.kernels.numpy_available` said yes, so a machine without the
``[fast]`` extra never touches it.

Each kernel reproduces the pure-Python reference
(:mod:`repro.kernels.python_kernels`) byte for byte; the interesting part is
recovering the reference *ordering* from sorted array output:

* grouping sorts the window with a **stable** lexsort, finds group
  boundaries as element-wise change points, then reorders the groups by
  their first member — stable sorting keeps each group's members in
  ascending original order, so the group whose first member is smallest is
  exactly the group whose key occurs first, recovering first-occurrence
  order without a hash table;
* disagreement and constant-mismatch checks are plain vectorised
  comparisons, which cannot reorder anything.

Tiny inputs fall back to the python kernel: below
:data:`SMALL_INPUT_THRESHOLD` elements the per-call numpy overhead (array
wrapping, fancy indexing) exceeds the loop it replaces, and the repair
loop's per-group checks are usually tiny.  The fallback is invisible —
both kernels produce identical output by contract.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.python_kernels import (
    PYTHON_KERNEL,
    ClassFinding,
    CodeColumn,
    CodeGroup,
)

#: Below this many elements the python loop wins; results are identical
#: either way, so the threshold is a pure speed knob.
SMALL_INPUT_THRESHOLD = 32

_INT_CODES = np.dtype(np.intc)


def _as_array(column: CodeColumn) -> np.ndarray:
    """A read-only ndarray view of a code column (zero-copy for ``array('i')``).

    ``array('i')`` exposes the buffer protocol, so the view costs nothing;
    the view is created fresh per kernel call and never outlives it, which
    keeps it safe against the column being resized by later inserts.
    """
    if isinstance(column, array):
        if len(column) == 0:
            return np.empty(0, dtype=_INT_CODES)
        return np.frombuffer(column, dtype=_INT_CODES)
    return np.asarray(column, dtype=_INT_CODES)


def _boundaries(sorted_cols: List[np.ndarray], count: int):
    """Start offsets of each run of equal keys in lexsorted columns."""
    change = np.zeros(count, dtype=bool)
    change[0] = True
    for sorted_col in sorted_cols:
        change[1:] |= sorted_col[1:] != sorted_col[:-1]
    starts = np.flatnonzero(change)
    ends = np.empty_like(starts)
    ends[:-1] = starts[1:]
    ends[-1] = count
    return starts, ends


def _stable_order(arrays: List[np.ndarray]) -> np.ndarray:
    """A stable sort order over multi-column keys.

    Fuses the columns into one ``int64`` composite key (codes are dense and
    non-negative, so ``key * radix + code`` is collision-free) and radix-sorts
    that — one pass instead of ``np.lexsort``'s pass per column.  Falls back
    to lexsort in the astronomical case where the fused key would overflow.
    Both routes are stable, so equal keys keep ascending position order.
    """
    if len(arrays) == 1:
        key = arrays[0]
        if key.dtype.itemsize > 2 and len(key) and int(key.max()) < 2**15:
            key = key.astype(np.int16)
        return np.argsort(key, kind="stable")
    key = arrays[0].astype(np.int64)
    for arr in arrays[1:]:
        radix = int(arr.max()) + 1
        if int(key.max()) >= (2**62) // radix:
            return np.lexsort(tuple(reversed(arrays)))
        key *= radix
        key += arr
    if int(key.max()) < 2**15:
        # numpy's stable sort is an O(n) radix sort for <= 16-bit integers
        # but a comparison sort above that — a ~7x gap on 50K keys.  Small
        # dictionaries (the common case) fit comfortably.
        key = key.astype(np.int16)
    return np.argsort(key, kind="stable")


def _grouped(
    arrays: List[np.ndarray], base: "np.ndarray"
) -> Iterable[CodeGroup]:
    """Group positions ``0..n-1`` of ``arrays`` and map them through ``base``.

    ``base[p]`` is the caller-facing index of position ``p``.  Stable
    sorting keeps equal keys in ascending position order, so each group's
    members come out ascending and the group with the smallest first member
    is the group whose key occurred first — sorting groups by first member
    reproduces first-occurrence order exactly.
    """
    count = len(base)
    order = _stable_order(arrays)
    sorted_cols = [array_[order] for array_ in arrays]
    starts, ends = _boundaries(sorted_cols, count)
    members = base[order]
    for group in np.argsort(members[starts], kind="stable"):
        group_start = starts[group]
        key = tuple(int(sorted_col[group_start]) for sorted_col in sorted_cols)
        yield key, members[group_start : ends[group]].tolist()


class NumpyKernel:
    """Vectorised implementations of the code-column hot loops."""

    name = "numpy"

    #: :meth:`variable_violation_groups` fuses the grouping sort and the
    #: disagreement reduction into whole-column array passes, so for a pure
    #: wildcard pattern it beats building a partition index first.
    fused_variable_scan = True

    #: The repair-side batch primitives run as one gather + ``reduceat``
    #: pass over all dirty classes at once, so the incremental repair state
    #: should drive its fixpoint through them (and through the array-backed
    #: partition index) instead of the per-class dict walk.
    fused_repair_scan = True

    def group_codes(
        self,
        columns: Sequence[CodeColumn],
        start: int,
        stop: int,
        sizes: Optional[Sequence[int]] = None,
    ) -> Iterable[CodeGroup]:
        count = stop - start
        if count <= 0:
            return []
        if count < SMALL_INPUT_THRESHOLD:
            return PYTHON_KERNEL.group_codes(columns, start, stop, sizes=sizes)
        arrays = [_as_array(column)[start:stop] for column in columns]
        base = np.arange(start, stop, dtype=np.intp)
        return _grouped(arrays, base)

    def group_projections(
        self, columns: Sequence[CodeColumn], indices: Sequence[int]
    ) -> Iterable[CodeGroup]:
        if len(indices) == 0:
            return []
        if len(indices) < SMALL_INPUT_THRESHOLD:
            return PYTHON_KERNEL.group_projections(columns, indices)
        base = np.asarray(indices, dtype=np.intp)
        arrays = [_as_array(column)[base] for column in columns]
        return _grouped(arrays, base)

    def codes_disagree(
        self, columns: Sequence[CodeColumn], indices: Sequence[int]
    ) -> bool:
        if len(indices) < SMALL_INPUT_THRESHOLD:
            return PYTHON_KERNEL.codes_disagree(columns, indices)
        gather = np.asarray(indices, dtype=np.intp)
        for column in columns:
            taken = _as_array(column)[gather]
            if bool((taken != taken[0]).any()):
                return True
        return False

    def variable_violation_groups(
        self,
        lhs_columns: Sequence[CodeColumn],
        rhs_columns: Sequence[CodeColumn],
        start: int,
        stop: int,
        mask: Optional[Sequence[Tuple[CodeColumn, int]]] = None,
    ) -> List[CodeGroup]:
        """The fused ``Q^V`` scan, entirely in array passes.

        One stable sort groups the window by its LHS codes; per-group RHS
        disagreement is then ``max != min`` over each run via ``reduceat``
        (codes are plain ints, so any two distinct codes differ in min/max).
        ``mask`` pairs (a pattern's constant LHS cells as ``(column, code)``)
        are applied as one boolean reduction *before* the radix group-by, so
        mixed constant/wildcard patterns stay on the fused path — the sort
        then only touches the surviving rows.  Only the violating groups are
        materialised back into python lists — on mostly-clean data that is a
        tiny fraction of the relation, which is where the fused path wins
        big over grouping through an index.
        """
        count = stop - start
        if count <= 0:
            return []
        if count < SMALL_INPUT_THRESHOLD:
            return PYTHON_KERNEL.variable_violation_groups(
                lhs_columns, rhs_columns, start, stop, mask=mask
            )
        if mask:
            keep = _as_array(mask[0][0])[start:stop] == mask[0][1]
            for column, code in mask[1:]:
                keep &= _as_array(column)[start:stop] == code
            base = np.flatnonzero(keep)
            count = len(base)
            if count == 0:
                return []
            lhs = [_as_array(column)[start:stop][base] for column in lhs_columns]
            rhs = [_as_array(column)[start:stop][base] for column in rhs_columns]
            masked_members: Optional[np.ndarray] = base + start if start else base
        else:
            lhs = [_as_array(column)[start:stop] for column in lhs_columns]
            rhs = [_as_array(column)[start:stop] for column in rhs_columns]
            masked_members = None
        order = _stable_order(lhs)
        sorted_lhs = [arr[order] for arr in lhs]
        starts, ends = _boundaries(sorted_lhs, count)
        disagree = np.zeros(len(starts), dtype=bool)
        for column in rhs:
            taken = column[order]
            disagree |= np.maximum.reduceat(taken, starts) != np.minimum.reduceat(
                taken, starts
            )
        disagree &= (ends - starts) > 1
        violating = np.flatnonzero(disagree)
        if len(violating) == 0:
            return []
        if masked_members is not None:
            members = masked_members[order]
        else:
            members = order + start if start else order
        # Stable sort keeps each group's members ascending, so the first
        # member is the key's first occurrence; sorting the violating groups
        # by it recovers first-occurrence emission order.
        violating = violating[np.argsort(members[starts[violating]], kind="stable")]
        out: List[CodeGroup] = []
        for group in violating:
            group_start = starts[group]
            key = tuple(int(sorted_col[group_start]) for sorted_col in sorted_lhs)
            out.append((key, members[group_start : ends[group]].tolist()))
        return out

    def constant_mismatches(
        self,
        column: CodeColumn,
        indices: Sequence[int],
        expected_code: Optional[int],
    ) -> List[int]:
        if expected_code is None:
            return list(indices)
        if len(indices) < SMALL_INPUT_THRESHOLD:
            return PYTHON_KERNEL.constant_mismatches(column, indices, expected_code)
        gather = np.asarray(indices, dtype=np.intp)
        taken = _as_array(column)[gather]
        return gather[taken != expected_code].tolist()

    # ------------------------------------------------------------------ repair-side batch primitives
    def partition_classes(
        self, columns: Sequence[CodeColumn], length: int
    ) -> Tuple[Sequence[int], Sequence[int]]:
        """One stable radix sort instead of a hash table per row.

        The composite-key argsort of :func:`_stable_order` is monotone in the
        code-key tuple (first column most significant), so ascending sorted
        position *is* ascending key order — the reference class order falls
        out of the sort with no reordering pass, and stability keeps members
        ascending within each class.
        """
        if length <= 0:
            return [], []
        if length < SMALL_INPUT_THRESHOLD:
            return PYTHON_KERNEL.partition_classes(columns, length)
        if not columns:
            return np.arange(length, dtype=np.intp), np.zeros(1, dtype=np.intp)
        arrays = [_as_array(column)[:length] for column in columns]
        order = _stable_order(arrays).astype(np.intp, copy=False)
        sorted_cols = [array_[order] for array_ in arrays]
        starts, _ends = _boundaries(sorted_cols, length)
        return order, starts

    def evaluate_classes(
        self,
        rhs_columns: Sequence[CodeColumn],
        indices: Sequence[int],
        offsets: Sequence[int],
        const_columns: Sequence[Tuple[CodeColumn, Optional[int]]] = (),
    ) -> List[ClassFinding]:
        """The batch re-evaluation primitive as whole-array reductions.

        The caller already hands the dirty classes over contiguously, so no
        sort is needed at all: each RHS column is gathered once and per-class
        disagreement is ``max != min`` over each run via ``reduceat``; each
        constant check is one gathered comparison whose per-class ``any`` is
        a ``logical_or.reduceat``.  Only the flagged classes materialise
        python lists — on mostly-clean data almost nothing does.
        """
        count = len(indices)
        class_count = len(offsets)
        if count == 0 or class_count == 0:
            return []
        if count < SMALL_INPUT_THRESHOLD:
            return PYTHON_KERNEL.evaluate_classes(
                rhs_columns,
                [int(index) for index in indices],
                [int(offset) for offset in offsets],
                const_columns,
            )
        gather = np.asarray(indices, dtype=np.intp)
        starts = np.asarray(offsets, dtype=np.intp)
        ends = np.empty_like(starts)
        ends[:-1] = starts[1:]
        ends[-1] = count
        disagree = np.zeros(class_count, dtype=bool)
        for column in rhs_columns:
            taken = _as_array(column)[gather]
            disagree |= np.maximum.reduceat(taken, starts) != np.minimum.reduceat(
                taken, starts
            )
        disagree &= (ends - starts) > 1
        report = disagree.copy()
        masks: List[np.ndarray] = []
        for column, expected_code in const_columns:
            if expected_code is None:
                mask = np.ones(count, dtype=bool)
            else:
                mask = _as_array(column)[gather] != expected_code
            masks.append(mask)
            report |= np.logical_or.reduceat(mask, starts)
        findings: List[ClassFinding] = []
        for position in np.flatnonzero(report):
            start, end = starts[position], ends[position]
            mismatches = tuple(
                gather[start:end][mask[start:end]].tolist() for mask in masks
            )
            findings.append((int(position), bool(disagree[position]), mismatches))
        return findings


#: The module singleton the dispatcher hands out.
NUMPY_KERNEL = NumpyKernel()


__all__ = ["NumpyKernel", "NUMPY_KERNEL", "SMALL_INPUT_THRESHOLD"]
