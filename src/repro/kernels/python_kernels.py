"""The pure-Python reference kernels (always available).

These are the loops the hot layers ran inline before the kernel split:
dictionary-code grouping (:meth:`ColumnStore.group_indices`), the ``Q^V``
code-disagreement check (:func:`repro.detection.indexed.codes_disagree`) and
the ``Q^C`` constant-mismatch scan.  They are the *semantics definition* —
the numpy kernels (:mod:`repro.kernels.numpy_kernels`) must reproduce their
output element for element, in the same order, and the agreement grid in
``tests/integration/test_kernel_agreement.py`` pins exactly that.

Ordering contract (shared by every kernel):

* grouping yields groups in **first-occurrence order** of their key, with
  members in **ascending index order**;
* :meth:`~PythonKernel.constant_mismatches` returns the mismatching subset of
  ``indices`` in the given order.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

#: A code column: an ``array('i')`` (or any int sequence) aligned with tuple
#: indices — ``column[i]`` is the dictionary code of tuple ``i``'s cell.
CodeColumn = Sequence[int]

#: One group: the key's code tuple plus the member indices (ascending).
CodeGroup = Tuple[Tuple[int, ...], List[int]]

#: One evaluated class with something to report: its position in the caller's
#: class sequence, whether the ``Q^V`` projection disagrees, and — aligned
#: with the caller's constant checks — each check's mismatching member subset
#: (ascending).
ClassFinding = Tuple[int, bool, Tuple[List[int], ...]]


class PythonKernel:
    """Reference implementations of the code-column hot loops."""

    name = "python"

    #: Whether :meth:`variable_violation_groups` beats grouping through a
    #: partition index.  For the reference kernel it does not (the method
    #: below *is* the index path minus the index), so the detector keeps
    #: building reusable indexes; array kernels that fuse the sort and the
    #: disagreement reduction set this to ``True``.
    fused_variable_scan = False

    #: Whether the repair-side batch primitives (:meth:`partition_classes`,
    #: :meth:`evaluate_classes`) beat the per-class dict walk of the
    #: incremental repair state.  For the reference kernel they do not (they
    #: *are* that walk, re-expressed), so :class:`RepairState` keeps its
    #: dict-backed partition indexes; array kernels that turn the walk into
    #: one gather + ``reduceat`` pass set this to ``True``.
    fused_repair_scan = False

    def group_codes(
        self,
        columns: Sequence[CodeColumn],
        start: int,
        stop: int,
        sizes: Optional[Sequence[int]] = None,
    ) -> Iterable[CodeGroup]:
        """Group row indices in ``[start, stop)`` by their code projection.

        ``sizes`` optionally gives each column's dictionary size, letting the
        single-column path bucket by direct list indexing instead of hashing.
        Groups come out in first-occurrence order, members ascending — the
        order :meth:`Relation.group_by` produces.
        """
        if stop <= start:
            return []
        if len(columns) == 1:
            return self._group_single(columns[0], start, stop, sizes)
        return self._group_multi(columns, start, stop)

    @staticmethod
    def _group_single(
        column: CodeColumn, start: int, stop: int, sizes: Optional[Sequence[int]]
    ) -> Iterable[CodeGroup]:
        window = (
            column if start == 0 and stop == len(column) else column[start:stop]
        )
        order: List[int] = []
        if sizes is not None:
            # Codes are dense in [0, dictionary size): bucket by direct list
            # indexing, no hashing at all.
            buckets: List[Optional[List[int]]] = [None] * sizes[0]
            index = start
            for code in window:
                bucket = buckets[code]
                if bucket is None:
                    buckets[code] = [index]
                    order.append(code)
                else:
                    bucket.append(index)
                index += 1
            for code in order:
                yield (code,), buckets[code]  # type: ignore[misc]
            return
        groups: dict = {}
        index = start
        for code in window:
            group = groups.get(code)
            if group is None:
                groups[code] = [index]
            else:
                group.append(index)
            index += 1
        for code, members in groups.items():
            yield (code,), members

    @staticmethod
    def _group_multi(
        columns: Sequence[CodeColumn], start: int, stop: int
    ) -> Iterable[CodeGroup]:
        windows = [
            column if start == 0 and stop == len(column) else column[start:stop]
            for column in columns
        ]
        groups: dict = {}
        for index, key in enumerate(zip(*windows), start):
            group = groups.get(key)
            if group is None:
                groups[key] = [index]
            else:
                group.append(index)
        return groups.items()

    def group_projections(
        self, columns: Sequence[CodeColumn], indices: Sequence[int]
    ) -> Iterable[CodeGroup]:
        """Group ``indices`` (ascending) by their code projection.

        The distinct-projection pass of the repair heuristic's plurality
        vote: same ordering contract as :meth:`group_codes`, but over an
        arbitrary index subset instead of a contiguous window.
        """
        groups: dict = {}
        if len(columns) == 1:
            column = columns[0]
            for index in indices:
                key = (column[index],)
                group = groups.get(key)
                if group is None:
                    groups[key] = [index]
                else:
                    group.append(index)
            return groups.items()
        for index in indices:
            key = tuple(column[index] for column in columns)
            group = groups.get(key)
            if group is None:
                groups[key] = [index]
            else:
                group.append(index)
        return groups.items()

    def codes_disagree(
        self, columns: Sequence[CodeColumn], indices: Sequence[int]
    ) -> bool:
        """Whether the code projections of ``indices`` take more than one value.

        Codes biject onto values per attribute, so code disagreement *is*
        value disagreement — the ``Q^V`` check without decoding a cell.
        """
        if len(columns) == 1:
            column = columns[0]
            first = column[indices[0]]
            return any(column[index] != first for index in indices[1:])
        first_index = indices[0]
        first = tuple(column[first_index] for column in columns)
        return any(
            tuple(column[index] for column in columns) != first
            for index in indices[1:]
        )

    def variable_violation_groups(
        self,
        lhs_columns: Sequence[CodeColumn],
        rhs_columns: Sequence[CodeColumn],
        start: int,
        stop: int,
        mask: Optional[Sequence[Tuple[CodeColumn, int]]] = None,
    ) -> List[CodeGroup]:
        """The fused ``Q^V`` scan: LHS groups whose RHS projection disagrees.

        Groups the rows of ``[start, stop)`` by their ``lhs_columns`` code
        projection and keeps exactly the groups a wildcard variable pattern
        violates: more than one member *and* more than one distinct
        ``rhs_columns`` projection.  ``mask`` — ``(column, code)`` pairs from
        a pattern's constant LHS cells — restricts the scan to the rows whose
        code equals the constant's in every pair, which is exactly the
        partition subset ``PartitionIndex.matching`` would select.  Same
        ordering contract as :meth:`group_codes` — groups in first-occurrence
        order of their LHS key, members ascending — so emitting one violation
        per returned group reproduces the partition-index walk byte for byte
        (restricting to masked rows preserves first-occurrence order among
        the surviving partitions, whose members are all masked rows).
        """
        if mask:
            indices = [
                index
                for index in range(start, stop)
                if all(column[index] == code for column, code in mask)
            ]
            return [
                (key_codes, members)
                for key_codes, members in self.group_projections(lhs_columns, indices)
                if len(members) > 1 and self.codes_disagree(rhs_columns, members)
            ]
        return [
            (key_codes, members)
            for key_codes, members in self.group_codes(lhs_columns, start, stop)
            if len(members) > 1 and self.codes_disagree(rhs_columns, members)
        ]

    def constant_mismatches(
        self,
        column: CodeColumn,
        indices: Sequence[int],
        expected_code: Optional[int],
    ) -> List[int]:
        """The subset of ``indices`` whose code differs from ``expected_code``.

        Order-preserving (the ``Q^C`` check emits violations in index order).
        ``expected_code`` of ``None`` means the expected constant occurs
        nowhere in the column's dictionary, so every index mismatches.
        """
        if expected_code is None:
            return list(indices)
        return [index for index in indices if column[index] != expected_code]

    # ------------------------------------------------------------------ repair-side batch primitives
    def partition_classes(
        self, columns: Sequence[CodeColumn], length: int
    ) -> Tuple[Sequence[int], Sequence[int]]:
        """Partition rows ``0..length-1`` into equivalence classes, flat form.

        Returns ``(order, offsets)``: ``order`` lists every row index grouped
        class by class — classes in **ascending code-key order**, members
        **ascending** within each class — and ``offsets[c]`` is the start of
        class ``c`` in ``order`` (``len(offsets)`` is the class count; class
        ``c`` ends where class ``c+1`` starts, the last at ``length``).  The
        flat form is exactly what :meth:`evaluate_classes` consumes, so a
        whole-relation repair scan is one partition + one evaluation call.
        Note the class order differs from :meth:`group_codes` deliberately:
        key order is what a delta-maintained sorted index preserves cheaply,
        and the repair state re-sorts its report canonically anyway.  With no
        columns every row falls into one class; with no rows there are none.
        """
        if length <= 0:
            return [], []
        if not columns:
            return list(range(length)), [0]
        groups: dict = {}
        if len(columns) == 1:
            column = columns[0]
            for index in range(length):
                key = (column[index],)
                group = groups.get(key)
                if group is None:
                    groups[key] = [index]
                else:
                    group.append(index)
        else:
            for index in range(length):
                key = tuple(column[index] for column in columns)
                group = groups.get(key)
                if group is None:
                    groups[key] = [index]
                else:
                    group.append(index)
        order: List[int] = []
        offsets: List[int] = []
        for key in sorted(groups):
            offsets.append(len(order))
            order.extend(groups[key])
        return order, offsets

    def evaluate_classes(
        self,
        rhs_columns: Sequence[CodeColumn],
        indices: Sequence[int],
        offsets: Sequence[int],
        const_columns: Sequence[Tuple[CodeColumn, Optional[int]]] = (),
    ) -> List[ClassFinding]:
        """The batch re-evaluation primitive: ``Q^C`` + ``Q^V`` over many classes.

        ``indices`` concatenates the members of every dirty class (each class
        contiguous and non-empty, members ascending) and ``offsets`` holds the
        class start positions — the flat form :meth:`partition_classes`
        produces.  Each class is checked for ``Q^V`` disagreement over
        ``rhs_columns`` (more than one member and more than one distinct
        projection) and, per ``(column, expected_code)`` pair in
        ``const_columns``, for ``Q^C`` mismatches (``None`` meaning the
        expected constant occurs nowhere, so every member mismatches).  Only
        the classes with something to report come back — as
        ``(class_position, rhs_disagree, per_check_mismatches)`` in ascending
        class position, mismatch subsets in member (ascending index) order —
        so on mostly-clean data the result is a tiny fraction of the input.
        An empty dirty-set returns an empty list.
        """
        findings: List[ClassFinding] = []
        count = len(indices)
        class_count = len(offsets)
        for position in range(class_count):
            start = offsets[position]
            stop = offsets[position + 1] if position + 1 < class_count else count
            members = indices[start:stop]
            disagree = bool(
                rhs_columns
                and stop - start > 1
                and self.codes_disagree(rhs_columns, members)
            )
            mismatches = tuple(
                self.constant_mismatches(column, members, expected_code)
                for column, expected_code in const_columns
            )
            if disagree or any(mismatches):
                findings.append((position, disagree, mismatches))
        return findings


#: The module singleton the dispatcher hands out.
PYTHON_KERNEL = PythonKernel()


__all__ = ["ClassFinding", "CodeColumn", "CodeGroup", "PythonKernel", "PYTHON_KERNEL"]
