"""Sharded parallel execution of CFD detection and repair.

``repro.parallel`` is the scaling layer the ROADMAP's "as fast as the
hardware allows" goal calls for: it splits a relation into sub-relations
closed under LHS equivalence-class sharing (:mod:`repro.parallel.sharding`),
fans per-shard detection/repair out over a ``concurrent.futures`` process
pool with a serial in-process fallback (:mod:`repro.parallel.executor`), and
merges the shard results back into the ordinary
:class:`~repro.core.violations.ViolationReport` /
:class:`~repro.repair.heuristic.RepairResult` types
(:mod:`repro.parallel.engine`, :mod:`repro.parallel.repairer`).

Importing this package registers both backends, making
``method="parallel"`` available everywhere backends are named — and
``method="auto"`` escalates to it past
:data:`repro.registry.PARALLEL_AUTO_ROW_THRESHOLD` rows.  See
``docs/parallel.md`` for the sharding invariant and its limits.
"""

from repro.parallel.engine import (
    ParallelDetectionRun,
    ParallelStats,
    ShardTiming,
    detect_sharded,
    find_violations_parallel,
)
from repro.parallel.executor import default_workers, resolve_workers, run_tasks
from repro.parallel.repairer import ParallelRepairEngine
from repro.parallel.sharding import Shard, ShardPlan, components, shard_relation

__all__ = [
    "ParallelDetectionRun",
    "ParallelRepairEngine",
    "ParallelStats",
    "Shard",
    "ShardPlan",
    "ShardTiming",
    "components",
    "default_workers",
    "detect_sharded",
    "find_violations_parallel",
    "resolve_workers",
    "run_tasks",
    "shard_relation",
]
