"""Sharded parallel violation detection (the ``method="parallel"`` backend).

The relation is split by :func:`repro.parallel.sharding.shard_relation` into
sub-relations closed under equivalence-class sharing, each shard is detected
independently with the partition-indexed backend — in a
``concurrent.futures`` process pool when one can start, serially in-process
otherwise — and the per-shard reports are remapped to global tuple indices
and merged in the scan oracle's canonical order.  By the sharding invariant
(no violation spans two shards) the merged report is violation-for-violation
identical to a serial run; the Hypothesis properties in
``tests/parallel/test_parallel_properties.py`` pin that down across random
shard and worker counts.

This module registers the backend, so importing it (or anything that calls
:func:`repro.registry.detector_names`) makes ``method="parallel"`` available
to :func:`repro.detection.engine.detect_violations`, the pipeline and the
CLI.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import DetectionConfig
from repro.core.cfd import CFD
from repro.core.violations import Violation, ViolationReport
from repro.detection.indexed import find_violations_indexed
from repro.parallel.executor import default_workers, resolve_workers, run_tasks
from repro.parallel.sharding import (
    Shard,
    ShardPlan,
    SpilledShardPlan,
    shard_relation,
    spill_shards,
)
from repro.registry import register_detector
from repro.relation.mmap_store import MmapColumnStore
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.repair.incremental import canonical_order


@dataclass(frozen=True)
class ShardTiming:
    """Wall-clock seconds one shard spent inside its worker."""

    shard_id: int
    rows: int
    seconds: float


@dataclass(frozen=True)
class ParallelStats:
    """How a parallel run actually executed (for audits and benchmarks)."""

    #: ``"process-pool"`` or ``"serial"`` (requested, forced, or fallback).
    mode: str
    #: Worker processes the run was allowed to use.
    workers: int
    #: Shards the plan produced (never more than requested).
    shard_count: int
    #: Union-find components available to the planner.
    component_count: int
    timings: Tuple[ShardTiming, ...] = ()

    def summary(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "shards": self.shard_count,
            "components": self.component_count,
            "shard_rows": [timing.rows for timing in self.timings],
            "shard_seconds": [round(timing.seconds, 6) for timing in self.timings],
        }


@dataclass(frozen=True)
class ParallelDetectionRun:
    """A merged detection report plus the execution statistics behind it."""

    report: ViolationReport
    stats: ParallelStats


def resolve_shard_count(shard_count: Optional[int], workers: Optional[int]) -> int:
    """The shard count to plan for: explicit, else the worker count."""
    if shard_count is not None:
        return shard_count
    if workers is not None:
        return max(1, workers)
    return default_workers()


def _detect_shard(payload: Tuple[Relation, List[CFD]]) -> Tuple[List[Violation], float]:
    """Worker body: detect one shard, report local-index violations + seconds."""
    relation, cfds = payload
    start = time.perf_counter()
    report = find_violations_indexed(relation, cfds)
    return list(report.violations), time.perf_counter() - start


def _remap_to_global(violations: Sequence[Violation], shard: Shard) -> List[Violation]:
    return [
        replace(
            violation,
            tuple_indices=tuple(
                shard.to_global(index) for index in violation.tuple_indices
            ),
        )
        for violation in violations
    ]


def _detect_spilled_shard(
    payload: Tuple[Schema, str, int, str, List[CFD]],
) -> Tuple[List[Violation], float]:
    """Worker body for a spilled shard: mmap the codes in place, then detect.

    The payload carries only paths and metadata — the worker maps the
    shard's code files directly off the spill directory (no pickled columns
    cross the process boundary) and loads the shared dictionaries once.
    """
    schema, shard_dir, length, dicts_path, cfds = payload
    start = time.perf_counter()
    with open(dicts_path, "rb") as handle:
        dictionaries = pickle.load(handle)
    relation = MmapColumnStore.adopt_spilled(schema, shard_dir, length, dictionaries)
    report = find_violations_indexed(relation, cfds)
    return list(report.violations), time.perf_counter() - start


def _spilled_payloads(
    plan: SpilledShardPlan, cfds: List[CFD]
) -> List[Tuple[Schema, str, int, str, List[CFD]]]:
    dicts_path = str(plan.dictionaries_path)
    return [
        (plan.schema, shard.directory, shard.length, dicts_path, cfds)
        for shard in plan.shards
    ]


def detect_sharded_spilled(
    relation: MmapColumnStore,
    cfds: Union[CFD, Sequence[CFD]],
    shard_count: Optional[int] = None,
    workers: Optional[int] = None,
    spill_dir: Optional[str] = None,
) -> ParallelDetectionRun:
    """Sharded detection over a spilled plan (the out-of-core path).

    Shard membership is identical to :func:`detect_sharded` (same component
    closure and packing, pinned by the sharding tests), but shards travel to
    workers as spill-directory paths instead of pickled relations, and each
    worker memory-maps its code files read-locally.  The spill run directory
    is removed when the merge succeeds and preserved on a crash, mirroring
    the store lifecycle.
    """
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)
    plan = spill_shards(
        relation, cfds, resolve_shard_count(shard_count, workers), spill_dir
    )
    payloads = _spilled_payloads(plan, cfds)
    outcomes, mode = run_tasks(_detect_spilled_shard, payloads, workers=workers)

    merged: List[Violation] = []
    timings: List[ShardTiming] = []
    for shard, (violations, seconds) in zip(plan.shards, outcomes):
        indices = shard.global_indices()
        merged.extend(
            replace(
                violation,
                tuple_indices=tuple(
                    int(indices[index]) for index in violation.tuple_indices
                ),
            )
            for violation in violations
        )
        timings.append(
            ShardTiming(shard_id=shard.shard_id, rows=shard.length, seconds=seconds)
        )
        del indices  # drop the index mmap before the plan directory goes away
    report = ViolationReport(canonical_order(merged, cfds))
    stats = ParallelStats(
        mode=mode,
        workers=resolve_workers(workers, len(payloads)) if payloads else 1,
        shard_count=len(plan.shards),
        component_count=plan.component_count,
        timings=tuple(timings),
    )
    plan.release()
    return ParallelDetectionRun(report=report, stats=stats)


def detect_sharded(
    relation: Relation,
    cfds: Union[CFD, Sequence[CFD]],
    shard_count: Optional[int] = None,
    workers: Optional[int] = None,
    plan: Optional[ShardPlan] = None,
    spill_dir: Optional[str] = None,
) -> ParallelDetectionRun:
    """Sharded detection with full execution statistics.

    ``shard_count`` defaults to the worker count (one shard per worker keeps
    every process busy without over-splitting); ``workers`` defaults to the
    CPU count.  A pre-computed ``plan`` (for the same relation and CFDs) is
    reused as-is.  A memory-mapped relation (no pre-computed plan) routes
    through :func:`detect_sharded_spilled`, keeping the whole run out of
    core.

    >>> from repro.datagen.cust import cust_relation, cust_cfds
    >>> run = detect_sharded(cust_relation(), cust_cfds(), shard_count=3, workers=1)
    >>> sorted(run.report.violating_indices())
    [0, 1, 2, 3]
    """
    if isinstance(cfds, CFD):
        cfds = [cfds]
    cfds = list(cfds)
    if plan is None and isinstance(relation, MmapColumnStore):
        return detect_sharded_spilled(
            relation,
            cfds,
            shard_count=shard_count,
            workers=workers,
            spill_dir=spill_dir,
        )
    if plan is None:
        plan = shard_relation(relation, cfds, resolve_shard_count(shard_count, workers))
    payloads = [(shard.relation, cfds) for shard in plan.shards]
    outcomes, mode = run_tasks(_detect_shard, payloads, workers=workers)

    merged: List[Violation] = []
    timings: List[ShardTiming] = []
    for shard, (violations, seconds) in zip(plan.shards, outcomes):
        merged.extend(_remap_to_global(violations, shard))
        timings.append(
            ShardTiming(shard_id=shard.shard_id, rows=len(shard), seconds=seconds)
        )
    report = ViolationReport(canonical_order(merged, cfds))
    stats = ParallelStats(
        mode=mode,
        workers=resolve_workers(workers, len(payloads)) if payloads else 1,
        shard_count=len(plan.shards),
        component_count=plan.component_count,
        timings=tuple(timings),
    )
    return ParallelDetectionRun(report=report, stats=stats)


def find_violations_parallel(
    relation: Relation,
    cfds: Union[CFD, Sequence[CFD]],
    shard_count: Optional[int] = None,
    workers: Optional[int] = None,
    spill_dir: Optional[str] = None,
) -> ViolationReport:
    """All violations of ``cfds`` in ``relation``, via sharded detection.

    Semantically identical to
    :func:`repro.core.satisfaction.find_all_violations` — shards only ever
    split tuples that cannot co-violate.

    >>> from repro.datagen.cust import cust_relation, cust_cfds
    >>> report = find_violations_parallel(cust_relation(), cust_cfds(), workers=1)
    >>> sorted(report.violating_indices())
    [0, 1, 2, 3]
    """
    return detect_sharded(
        relation, cfds, shard_count=shard_count, workers=workers, spill_dir=spill_dir
    ).report


@register_detector("parallel")
def _detect_parallel(
    relation: Relation, cfds: Sequence[CFD], config: DetectionConfig
) -> ViolationReport:
    return find_violations_parallel(
        relation,
        cfds,
        shard_count=config.shard_count,
        workers=config.workers,
        spill_dir=config.spill_dir,
    )
