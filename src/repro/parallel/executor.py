"""Process-pool plumbing shared by the parallel detection and repair backends.

Centralises the three behaviours the backends must agree on:

* **worker resolution** — ``workers=None`` means one worker per CPU, capped
  at the number of tasks; ``workers=1`` means "run serially in-process"
  (no pool, no pickling, same results);
* **serial fallback** — when the pool cannot start at all (sandboxed CI
  without ``/dev/shm`` semaphores, seccomp'd containers, resource limits),
  the tasks run serially in-process instead of failing the clean;
* **error surfacing** — an exception inside a worker reaches the caller as
  a :class:`~repro.errors.ParallelExecutionError` carrying the worker's own
  error message, never as a raw ``concurrent.futures``/``multiprocessing``
  traceback dump.

Task functions must be module-level (picklable) and pure: they receive one
payload and return one result.  Results are returned in payload order, so
parallel execution is observationally deterministic.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ParallelExecutionError

#: Execution modes reported back to callers (and into bench stats).
SERIAL = "serial"
PROCESS_POOL = "process-pool"


def default_workers() -> int:
    """One worker per CPU the scheduler will actually give us."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def resolve_workers(workers: Optional[int], task_count: int) -> int:
    """The effective worker count for ``task_count`` tasks.

    ``None`` resolves to the CPU count; the result is always capped at the
    task count (extra workers would only sit idle) and floored at 1.
    """
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ParallelExecutionError(f"workers must be at least 1, got {workers}")
    return max(1, min(workers, task_count))


def _run_serially(task: Callable[[Any], Any], payloads: Sequence[Any]) -> List[Any]:
    results = []
    for position, payload in enumerate(payloads):
        try:
            results.append(task(payload))
        except ParallelExecutionError:
            raise
        except Exception as error:
            raise ParallelExecutionError(
                f"parallel worker {position} failed: {error}"
            ) from error
    return results


def run_tasks(
    task: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: Optional[int] = None,
) -> Tuple[List[Any], str]:
    """Run ``task`` over every payload, returning ``(results, mode)``.

    Results come back in payload order.  ``mode`` is :data:`PROCESS_POOL`
    when a pool did the work and :data:`SERIAL` when the tasks ran in-process
    (requested via ``workers=1``, forced by a single payload, or the fallback
    after the pool failed to start).

    Raises :class:`~repro.errors.ParallelExecutionError` when a worker
    raises; the original exception is chained, not re-rendered as a
    multiprocessing traceback.
    """
    payloads = list(payloads)
    if not payloads:
        return [], SERIAL
    effective = resolve_workers(workers, len(payloads))
    if effective <= 1:
        return _run_serially(task, payloads), SERIAL

    try:
        pool = ProcessPoolExecutor(max_workers=effective)
    except (OSError, PermissionError, ValueError):
        # The pool could not even be created (no semaphores, no fork):
        # degrade to serial execution rather than failing the pipeline.
        return _run_serially(task, payloads), SERIAL

    futures: List[Future] = []
    try:
        try:
            for payload in payloads:
                futures.append(pool.submit(task, payload))
        except (OSError, PermissionError, RuntimeError, BrokenProcessPool):
            # Submission is where a sandboxed interpreter actually tries to
            # start worker processes; treat failure as "pool cannot start".
            for future in futures:
                future.cancel()
            return _run_serially(task, payloads), SERIAL

        results = []
        for position, future in enumerate(futures):
            try:
                results.append(future.result())
            except BrokenProcessPool:
                # Workers died before running anything (the usual sandbox
                # signature): fall back to serial execution of everything.
                return _run_serially(task, payloads), SERIAL
            except ParallelExecutionError:
                raise
            except Exception as error:
                raise ParallelExecutionError(
                    f"parallel worker {position} failed: {error}"
                ) from error
        return results, PROCESS_POOL
    finally:
        # Wait for the workers: every future above is already resolved (or
        # cancelled), so this only reaps processes — and skipping the wait
        # leaves an executor atexit hook racing a closed pipe, which prints
        # an "Exception ignored" OSError traceback at interpreter shutdown.
        pool.shutdown(wait=True, cancel_futures=True)
