"""Sharded parallel repair (the ``method="parallel"`` repair backend).

Unlike the other repair backends — which are *detection engines* driven one
cell change at a time by the greedy loop in
:mod:`repro.repair.heuristic` — the parallel backend is **self-driving**: it
implements the optional ``run(cost_model)`` protocol hook, sharding the
relation with :func:`repro.parallel.sharding.shard_relation` and running the
*entire* incremental repair fixpoint per shard in a process pool.  Each
worker returns its shard's :class:`~repro.repair.heuristic.RepairResult`;
the parent remaps cell changes to global tuple indices, replays them onto
the working relation, and re-verifies the merged result.

Because per-shard repair decisions (pattern constants, plurality targets,
deterministic fresh values) are pure functions of the shard's data, and the
sharding invariant keeps every violation inside one shard, the merged
relation is byte-identical to what the serial incremental engine produces —
``benchmarks/test_ablation_parallel.py`` asserts exactly that on the 10K tax
workload.  The one caveat: a repair can *move* a tuple into an equivalence
class that lives in another shard (only possible when one CFD's RHS overlaps
another's LHS).  The merge therefore re-verifies, and when cross-shard
residue exists it finishes the job with a serial incremental pass
(``docs/parallel.md`` discusses when that triggers).
"""

from __future__ import annotations

import pickle
import time
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.config import RepairConfig
from repro.core.cfd import CFD
from repro.detection.indexed import find_violations_indexed, lhs_free_attributes
from repro.parallel.engine import ParallelStats, ShardTiming, resolve_shard_count
from repro.parallel.executor import SERIAL, resolve_workers, run_tasks
from repro.parallel.sharding import (
    Shard,
    ShardPlan,
    SpilledShardPlan,
    shard_relation,
    spill_shards,
)
from repro.registry import register_repairer
from repro.relation.mmap_store import MmapColumnStore
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.repair.cost import CostModel
from repro.repair.heuristic import CellChange, RepairResult, repair


def _repairs_may_cross_shards(cfds: Sequence[CFD]) -> bool:
    """Whether a repair could move a tuple into another shard's class.

    Constant and variable fixes write a pattern's non-``@`` RHS cells; only
    when such a written attribute is also some pattern's grouping attribute
    can a fix change a tuple's equivalence class and create an agreement the
    shard planner never saw.  (The last-resort LHS modification writes
    grouping attributes too, but its deterministic fresh values cannot
    produce a *new* cross-shard agreement — see ``docs/parallel.md``.)
    When this returns ``False`` the merged relation needs no re-verification:
    per-shard cleanliness is global cleanliness.
    """
    grouping = set()
    written = set()
    for cfd in cfds:
        for pattern in cfd.tableau:
            grouping.update(lhs_free_attributes(cfd, pattern))
            written.update(
                attr for attr in cfd.rhs if not pattern.rhs_cell(attr).is_dontcare
            )
    return bool(grouping & written)


def _localize_cost_model(model: CostModel, shard: Shard) -> CostModel:
    """Rekey per-tuple weights from global to shard-local indices."""
    if not model.tuple_weights:
        return model
    weights = {
        local: model.tuple_weights[global_index]
        for local, global_index in enumerate(shard.global_indices)
        if global_index in model.tuple_weights
    }
    return replace(model, tuple_weights=weights)


def _repair_shard(
    payload: Tuple[Relation, List[CFD], RepairConfig]
) -> Tuple[RepairResult, float]:
    """Worker body: run the full incremental repair fixpoint on one shard."""
    relation, cfds, config = payload
    start = time.perf_counter()
    result = repair(relation, cfds, config=config)
    return result, time.perf_counter() - start


def _localize_weights_spilled(model: CostModel, indices: Sequence[int]) -> CostModel:
    """Rekey per-tuple weights onto a spilled shard's local indices."""
    if not model.tuple_weights:
        return model
    weights = {
        local: model.tuple_weights[int(global_index)]
        for local, global_index in enumerate(indices)
        if int(global_index) in model.tuple_weights
    }
    return replace(model, tuple_weights=weights)


def _repair_spilled_shard(
    payload: Tuple[Schema, str, int, str, List[CFD], RepairConfig],
) -> Tuple[int, bool, int, List[int], float]:
    """Worker body for a spilled shard: mmap, repair, log the deltas.

    The shard arrives as paths (see the detection counterpart in
    :mod:`repro.parallel.engine`); the worker maps the code files, runs the
    incremental fixpoint on a scratch copy spilled next to the shard, writes
    the resulting cell changes to ``changes.pkl`` inside the shard directory
    — the compact delta log the parent replays — and sends back only summary
    counters, never columns or rows.
    """
    schema, shard_dir, length, dicts_path, cfds, config = payload
    start = time.perf_counter()
    with open(dicts_path, "rb") as handle:
        dictionaries = pickle.load(handle)
    relation = MmapColumnStore.adopt_spilled(schema, shard_dir, length, dictionaries)
    result = repair(relation, cfds, config=config)
    with open(Path(shard_dir) / "changes.pkl", "wb") as handle:
        pickle.dump(list(result.changes), handle, protocol=pickle.HIGHEST_PROTOCOL)
    if result.relation is not relation and isinstance(
        result.relation, MmapColumnStore
    ):
        # repair() worked on a scratch copy spilled under the plan directory;
        # drop it now that the delta log is on disk, so peak spill usage
        # stays bounded by the plan plus one in-flight copy per worker.
        result.relation.release()
    return (
        len(result.changes),
        result.clean,
        result.passes,
        list(result.pass_violation_counts),
        time.perf_counter() - start,
    )


class ParallelRepairEngine:
    """Self-driving repair engine: shard, repair per shard, merge, verify."""

    def __init__(
        self, relation: Relation, cfds: Sequence[CFD], config: RepairConfig
    ) -> None:
        self.relation = relation
        self._cfds = list(cfds)
        self._config = config
        #: Execution statistics of the last :meth:`run` (None before it).
        self.stats: Optional[ParallelStats] = None

    def _inner_config(self, cost_model: CostModel) -> RepairConfig:
        """The per-shard configuration: serial incremental, no re-checks.

        The storage and kernel choices ride along, so shards of an encoded
        relation are repaired columnar in their workers (they arrive as
        :class:`~repro.relation.columnar.ColumnStore` slices already), a
        pinned kernel is honoured inside each worker process, and
        ``storage="rows"`` cross-checking stays rows all the way down.

        Because each worker runs the stock incremental engine on a columnar
        shard, it adopts the *batched* fixpoint automatically whenever the
        active kernel advertises ``fused_repair_scan`` — the per-shard
        re-evaluation, partition-delta and candidate-pricing hot loops all go
        through the fused kernels with no parallel-specific wiring here.
        """
        return RepairConfig(
            method="incremental",
            max_passes=self._config.max_passes,
            check_consistency=False,  # repair() already checked, once
            cost_model=cost_model,
            cache_size=self._config.cache_size,
            storage=self._config.storage,
            kernel=self._config.kernel,
        )

    def run(self, cost_model: CostModel) -> RepairResult:
        cfds = self._cfds
        work = self.relation
        if isinstance(work, MmapColumnStore):
            return self._run_spilled(cost_model)
        plan = shard_relation(
            work,
            cfds,
            resolve_shard_count(self._config.shard_count, self._config.workers),
        )
        if len(plan) <= 1:
            # A single component (or a single-shard request): the pool would
            # only add overhead, so run the serial incremental engine as-is.
            result = repair(work, cfds, config=self._inner_config(cost_model))
            self.stats = ParallelStats(
                mode=SERIAL,
                workers=1,
                shard_count=len(plan),
                component_count=plan.component_count,
            )
            result.parallel_stats = self.stats
            return result

        payloads = [
            (
                shard.relation,
                cfds,
                self._inner_config(_localize_cost_model(cost_model, shard)),
            )
            for shard in plan.shards
        ]
        outcomes, mode = run_tasks(
            _repair_shard, payloads, workers=self._config.workers
        )

        changes: List[CellChange] = []
        pass_counts: List[int] = []
        timings: List[ShardTiming] = []
        passes = 0
        all_clean = True
        for shard, (shard_result, seconds) in zip(plan.shards, outcomes):
            for change in shard_result.changes:
                global_index = shard.to_global(change.tuple_index)
                work.update(global_index, change.attribute, change.new_value)
                changes.append(replace(change, tuple_index=global_index))
            for position, count in enumerate(shard_result.pass_violation_counts):
                if position < len(pass_counts):
                    pass_counts[position] += count
                else:
                    pass_counts.append(count)
            passes = max(passes, shard_result.passes)
            all_clean = all_clean and shard_result.clean
            timings.append(
                ShardTiming(shard_id=shard.shard_id, rows=len(shard), seconds=seconds)
            )

        result = RepairResult(
            relation=work,
            changes=changes,
            clean=all_clean,
            passes=passes,
            pass_violation_counts=pass_counts,
        )
        if (
            all_clean
            and _repairs_may_cross_shards(cfds)
            and not find_violations_indexed(work, cfds).is_clean()
        ):
            # Cross-shard residue: repairs moved tuples into equivalence
            # classes owned by other shards (RHS/LHS attribute overlap).
            # Finish serially from the merged state; changes stay global.
            reconcile = repair(work, cfds, config=self._inner_config(cost_model))
            result = RepairResult(
                relation=reconcile.relation,
                changes=changes + list(reconcile.changes),
                clean=reconcile.clean,
                passes=passes + reconcile.passes,
                pass_violation_counts=pass_counts
                + list(reconcile.pass_violation_counts),
            )
        self.stats = ParallelStats(
            mode=mode,
            workers=resolve_workers(self._config.workers, len(plan.shards)),
            shard_count=len(plan.shards),
            component_count=plan.component_count,
            timings=tuple(timings),
        )
        result.parallel_stats = self.stats
        return result

    def _run_spilled(self, cost_model: CostModel) -> RepairResult:
        """The out-of-core :meth:`run`: shards spill to disk, workers mmap.

        Same merge contract as the in-memory path — shard membership is
        identical (pinned by the sharding tests), per-shard repair decisions
        are pure functions of shard data, so replaying the delta logs in
        shard order onto the global store is byte-identical to the serial
        incremental engine, modulo the same cross-shard caveat handled by
        the reconcile pass below.  The spill plan is released when the merge
        succeeds and preserved if anything raises.
        """
        cfds = self._cfds
        work = self.relation
        plan = spill_shards(
            work,
            cfds,
            resolve_shard_count(self._config.shard_count, self._config.workers),
            self._config.spill_dir,
        )
        if len(plan) <= 1:
            plan.release()
            result = repair(work, cfds, config=self._inner_config(cost_model))
            self.stats = ParallelStats(
                mode=SERIAL,
                workers=1,
                shard_count=len(plan),
                component_count=plan.component_count,
            )
            result.parallel_stats = self.stats
            return result

        dicts_path = str(plan.dictionaries_path)
        payloads = []
        for shard in plan.shards:
            local_model = (
                _localize_weights_spilled(cost_model, shard.global_indices())
                if cost_model.tuple_weights
                else cost_model
            )
            payloads.append(
                (
                    plan.schema,
                    shard.directory,
                    shard.length,
                    dicts_path,
                    cfds,
                    self._inner_config(local_model),
                )
            )
        outcomes, mode = run_tasks(
            _repair_spilled_shard, payloads, workers=self._config.workers
        )

        changes: List[CellChange] = []
        pass_counts: List[int] = []
        timings: List[ShardTiming] = []
        passes = 0
        all_clean = True
        for shard, outcome in zip(plan.shards, outcomes):
            change_count, clean, shard_passes, shard_pass_counts, seconds = outcome
            if change_count:
                with open(Path(shard.directory) / "changes.pkl", "rb") as handle:
                    logged: List[CellChange] = pickle.load(handle)
                indices = shard.global_indices()
                for change in logged:
                    global_index = int(indices[change.tuple_index])
                    work.update(global_index, change.attribute, change.new_value)
                    changes.append(replace(change, tuple_index=global_index))
                del indices  # unmap before the plan directory is released
            for position, count in enumerate(shard_pass_counts):
                if position < len(pass_counts):
                    pass_counts[position] += count
                else:
                    pass_counts.append(count)
            passes = max(passes, shard_passes)
            all_clean = all_clean and clean
            timings.append(
                ShardTiming(
                    shard_id=shard.shard_id, rows=shard.length, seconds=seconds
                )
            )

        result = RepairResult(
            relation=work,
            changes=changes,
            clean=all_clean,
            passes=passes,
            pass_violation_counts=pass_counts,
        )
        if (
            all_clean
            and _repairs_may_cross_shards(cfds)
            and not find_violations_indexed(work, cfds).is_clean()
        ):
            reconcile = repair(work, cfds, config=self._inner_config(cost_model))
            result = RepairResult(
                relation=reconcile.relation,
                changes=changes + list(reconcile.changes),
                clean=reconcile.clean,
                passes=passes + reconcile.passes,
                pass_violation_counts=pass_counts
                + list(reconcile.pass_violation_counts),
            )
        self.stats = ParallelStats(
            mode=mode,
            workers=resolve_workers(self._config.workers, len(plan.shards)),
            shard_count=len(plan.shards),
            component_count=plan.component_count,
            timings=tuple(timings),
        )
        result.parallel_stats = self.stats
        plan.release()
        return result

    def plan(self) -> Union[ShardPlan, SpilledShardPlan]:
        """The shard plan the next :meth:`run` would use (for inspection)."""
        if isinstance(self.relation, MmapColumnStore):
            return spill_shards(
                self.relation,
                self._cfds,
                resolve_shard_count(self._config.shard_count, self._config.workers),
                self._config.spill_dir,
            )
        return shard_relation(
            self.relation,
            self._cfds,
            resolve_shard_count(self._config.shard_count, self._config.workers),
        )


register_repairer("parallel")(ParallelRepairEngine)
