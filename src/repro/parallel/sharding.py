"""Equivalence-class-aware sharding of a relation for parallel execution.

CFD detection and repair are embarrassingly parallel *across LHS equivalence
classes*: a constant violation (``Q^C``) involves a single tuple, and a
variable violation (``Q^V``) involves only tuples that agree on the pattern's
``@``-free LHS attributes.  Two tuples that never share an equivalence class
under *any* pattern of the workload can therefore never co-violate, and the
relation can be split into sub-relations that are detected (and repaired)
independently.

:func:`shard_relation` computes that split:

1. For every pattern tuple of every CFD, take its ``@``-free LHS attribute
   set and group the relation's tuples by their projection onto it (exactly
   the grouping the partition-indexed detector builds).
2. Union-find over tuple indices merges every group into one *component*, so
   a component is closed under "shares an equivalence class with, under some
   pattern" — the transitive closure across all patterns.
3. Components are packed into ``shard_count`` shards by greedy size-balanced
   assignment (largest component first, onto the currently smallest shard).
   The assignment is a pure function of the data — ties break on the lowest
   shard id and components are ordered by size then smallest member — so it
   is stable across runs and worker processes, unlike ``hash()`` of a string
   key, which ``PYTHONHASHSEED`` would randomise.

The resulting **sharding invariant** — *no variable-CFD violation spans two
shards* — is what makes the per-shard reports (and the per-shard repairs)
compose into exactly the global result; ``docs/parallel.md`` spells out the
argument and its limits under repair-induced value changes.
"""

from __future__ import annotations

import pickle
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.cfd import CFD
from repro.detection.indexed import lhs_free_attributes
from repro.errors import ParallelExecutionError
from repro.kernels import active_kernel
from repro.relation.columnar import ColumnStore
from repro.relation.mmap_store import (
    MmapColumnStore,
    _numpy,
    create_run_dir,
    resolve_spill_base,
)
from repro.relation.relation import Relation
from repro.relation.schema import Schema


@dataclass(frozen=True)
class Shard:
    """One sub-relation plus the mapping back to global tuple indices."""

    shard_id: int
    #: Global tuple indices in ascending order; ``global_indices[local]`` is
    #: the index the shard's row ``local`` has in the source relation.
    global_indices: Tuple[int, ...]
    relation: Relation

    def __len__(self) -> int:
        return len(self.global_indices)

    def to_global(self, local_index: int) -> int:
        """Translate a shard-local tuple index back to the source relation."""
        return self.global_indices[local_index]


@dataclass(frozen=True)
class ShardPlan:
    """The full decomposition of one relation for one CFD workload."""

    shards: Tuple[Shard, ...]
    #: Number of union-find components (upper bound on useful shards).
    component_count: int
    #: Shard count that was requested (the plan may hold fewer, never more).
    requested_shard_count: int

    def __len__(self) -> int:
        return len(self.shards)

    def sizes(self) -> Tuple[int, ...]:
        return tuple(len(shard) for shard in self.shards)

    def summary(self) -> Dict[str, object]:
        return {
            "shards": len(self.shards),
            "requested_shards": self.requested_shard_count,
            "components": self.component_count,
            "sizes": list(self.sizes()),
        }


class _UnionFind:
    """Plain union-find with path halving and union by size."""

    __slots__ = ("parent", "size")

    def __init__(self, count: int) -> None:
        self.parent = list(range(count))
        self.size = [1] * count

    def find(self, item: int) -> int:
        parent = self.parent
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(self, left: int, right: int) -> None:
        root_left, root_right = self.find(left), self.find(right)
        if root_left == root_right:
            return
        if self.size[root_left] < self.size[root_right]:
            root_left, root_right = root_right, root_left
        self.parent[root_right] = root_left
        self.size[root_left] += self.size[root_right]


def _grouping_attribute_sets(cfds: Sequence[CFD]) -> List[Tuple[str, ...]]:
    """Every distinct ``@``-free LHS attribute tuple across all patterns.

    Reuses the detector's own projection
    (:func:`repro.detection.indexed.lhs_free_attributes`), so the sharding
    invariant can never drift from the grouping semantics detection and
    repair actually use.
    """
    seen: Dict[Tuple[str, ...], None] = {}
    for cfd in cfds:
        for pattern in cfd.tableau:
            seen.setdefault(lhs_free_attributes(cfd, pattern), None)
    return list(seen)


def components(relation: Relation, cfds: Sequence[CFD]) -> List[List[int]]:
    """Tuple-index components closed under equivalence-class sharing.

    Each returned list holds the global indices (ascending) of one component;
    components are ordered by descending size, ties by smallest member.  An
    empty LHS attribute set (a pattern whose LHS is all don't-care, or a
    constant CFD over the empty LHS) puts the whole relation into a single
    component — the degenerate but correct answer, since such a pattern
    groups every tuple together.
    """
    count = len(relation)
    if count == 0:
        return []
    uf = _UnionFind(count)
    columnar = isinstance(relation, ColumnStore)
    for attributes in _grouping_attribute_sets(cfds):
        if columnar:
            # The union-find only consumes the members, so the grouping runs
            # entirely over dictionary codes through the active kernel; no
            # partition key is ever built — not even decoded code tuples.
            if attributes:
                columns = list(relation.project_codes(attributes))
                groups = (
                    members
                    for _codes, members in active_kernel().group_codes(
                        columns, 0, count
                    )
                )
            else:
                # Empty LHS groups every tuple together.
                groups = iter([list(range(count))])
        else:
            groups = iter(relation.group_by(attributes).values())
        for indices in groups:
            first = indices[0]
            for other in indices[1:]:
                uf.union(first, other)
    grouped: Dict[int, List[int]] = {}
    for index in range(count):
        grouped.setdefault(uf.find(index), []).append(index)
    return sorted(grouped.values(), key=lambda member: (-len(member), member[0]))


def shard_relation(
    relation: Relation, cfds: Sequence[CFD], shard_count: int
) -> ShardPlan:
    """Split ``relation`` into at most ``shard_count`` class-closed shards.

    Rows keep their relative order inside a shard (ascending global index),
    so per-shard detection reports violations in the same relative order as a
    global run — which is what lets the merged, canonically-ordered report
    match the serial engines violation for violation.

    ``shard_count`` larger than the number of components (or than the number
    of rows) simply yields fewer shards; it is never an error.
    """
    if shard_count < 1:
        raise ParallelExecutionError(
            f"shard_count must be at least 1, got {shard_count}"
        )
    member_lists = components(relation, cfds)
    bucket_count = max(1, min(shard_count, len(member_lists)))
    buckets: List[List[int]] = [[] for _ in range(bucket_count)]
    loads = [0] * bucket_count
    for members in member_lists:
        target = loads.index(min(loads))  # lowest id wins ties: deterministic
        buckets[target].extend(members)
        loads[target] += len(members)

    shards: List[Shard] = []
    for shard_id, bucket in enumerate(buckets):
        bucket.sort()
        # take() preserves the storage class without re-coercion (sharding
        # runs on the 150K+-row hot path): a ColumnStore shard is gathered
        # code-wise and ships to its worker as int arrays plus one dictionary
        # per attribute — far cheaper to pickle than value tuples.
        sub = relation.take(bucket)
        shards.append(
            Shard(shard_id=shard_id, global_indices=tuple(bucket), relation=sub)
        )
    return ShardPlan(
        shards=tuple(shards),
        component_count=len(member_lists),
        requested_shard_count=shard_count,
    )


# ---------------------------------------------------------------------------
# out-of-core sharding (spill-to-disk plans)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpilledShard:
    """One shard living on disk: code files plus the global-index map.

    The shard's directory holds one ``col<p>.0.bin`` per schema position
    (``length`` 32-bit codes each, the layout
    :meth:`~repro.relation.mmap_store.MmapColumnStore.adopt_spilled` opens)
    and ``indices.bin`` — the ascending global tuple indices as 64-bit
    ints.  Workers mmap the code files read-locally instead of receiving
    pickled columns; the parent maps ``indices.bin`` to translate shard-local
    results back to global indices without holding ``O(rows)`` Python ints.
    """

    shard_id: int
    directory: str
    length: int

    def __len__(self) -> int:
        return self.length

    @property
    def indices_path(self) -> Path:
        return Path(self.directory) / "indices.bin"

    def global_indices(self) -> Sequence[int]:
        """The ascending global indices, memory-mapped when numpy is present."""
        np_module = _numpy()
        if np_module is not None and self.length:
            return np_module.memmap(
                str(self.indices_path),
                dtype=np_module.int64,
                mode="r",
                shape=(self.length,),
            )
        indices = array("q")
        if self.length:
            with open(self.indices_path, "rb") as handle:
                indices.frombytes(handle.read())
        return indices

    def open_relation(
        self, schema: Schema, dictionaries: Sequence[Sequence[Any]]
    ) -> MmapColumnStore:
        """Map the shard's code files as a relation (the worker-side open)."""
        return MmapColumnStore.adopt_spilled(
            schema, self.directory, self.length, dictionaries
        )


@dataclass(frozen=True)
class SpilledShardPlan:
    """A :class:`ShardPlan` counterpart whose shards live in a spill directory.

    The plan owns one run directory containing a ``shard<i>/`` per shard and
    a single ``dictionaries.pkl`` (the per-position decode lists, shared by
    every shard — shards carry full-width code columns over the *parent's*
    dictionaries, which is what keeps per-shard repair decisions, including
    the full-schema LHS fallback, byte-identical to a serial run).  Call
    :meth:`release` when the run succeeded; a crash leaves the directory for
    post-mortem inspection, mirroring the store lifecycle.
    """

    schema: Schema
    shards: Tuple[SpilledShard, ...]
    component_count: int
    requested_shard_count: int
    plan_dir: str

    def __len__(self) -> int:
        return len(self.shards)

    def sizes(self) -> Tuple[int, ...]:
        return tuple(shard.length for shard in self.shards)

    @property
    def dictionaries_path(self) -> Path:
        return Path(self.plan_dir) / "dictionaries.pkl"

    def load_dictionaries(self) -> List[List[Any]]:
        with open(self.dictionaries_path, "rb") as handle:
            return pickle.load(handle)

    def release(self) -> None:
        """Remove the plan's spill files (idempotent)."""
        import shutil

        shutil.rmtree(self.plan_dir, ignore_errors=True)

    def summary(self) -> Dict[str, object]:
        return {
            "shards": len(self.shards),
            "requested_shards": self.requested_shard_count,
            "components": self.component_count,
            "sizes": list(self.sizes()),
            "plan_dir": self.plan_dir,
        }


def _component_roots_vector(
    relation: ColumnStore, cfds: Sequence[CFD], np_module: Any
) -> Any:
    """``roots[i]`` = the smallest tuple index of ``i``'s component (vectorised).

    Per grouping attribute set, rows are labelled by their code projection
    (dense labels via ``np.unique``); components are then the connected
    closure over all labelings, computed by iterative min-propagation —
    every label group pulls each member down to the group's current minimum,
    and pointer-jumping (``roots = roots[roots]``) compresses chains — until
    a fixpoint.  Monotone decreasing, so it terminates; the fixpoint is the
    same partition the union-find in :func:`components` produces, with the
    representative being the minimum member by construction.
    """
    count = len(relation)
    labelings: List[Any] = []
    for attributes in _grouping_attribute_sets(cfds):
        if not attributes:
            labelings.append(np_module.zeros(count, dtype=np_module.int64))
            continue
        labels: Optional[Any] = None
        for column in relation.project_codes(attributes):
            codes = np_module.asarray(column, dtype=np_module.int64)
            if labels is None:
                key = codes
            else:
                # labels < count and codes fit int32, so the composite stays
                # far below 2**63; re-densifying per column keeps it there
                # for any number of attributes.
                key = labels * (int(codes.max()) + 1) + codes
            _, labels = np_module.unique(key, return_inverse=True)
        labelings.append(labels)
    roots = np_module.arange(count, dtype=np_module.int64)
    changed = True
    while changed:
        changed = False
        for labels in labelings:
            group_min = np_module.full(
                int(labels.max()) + 1, count, dtype=np_module.int64
            )
            np_module.minimum.at(group_min, labels, roots)
            pulled = np_module.minimum(roots, group_min[labels])
            if not np_module.array_equal(pulled, roots):
                roots = pulled
                changed = True
        while True:
            jumped = roots[roots]
            if np_module.array_equal(jumped, roots):
                break
            roots = jumped
            changed = True
    return roots


def _pack_components(
    ordered_sizes: Sequence[int], shard_count: int
) -> Tuple[List[int], int]:
    """Greedy size-balanced packing: component position → shard id.

    Components must arrive largest-first (ties by smallest member), exactly
    the order :func:`components` emits — the assignment is then identical to
    :func:`shard_relation`'s, which is what makes a spilled plan's shard
    membership byte-compatible with the in-memory plan for the same input.
    """
    bucket_count = max(1, min(shard_count, len(ordered_sizes)))
    loads = [0] * bucket_count
    assignment: List[int] = []
    for size in ordered_sizes:
        target = loads.index(min(loads))  # lowest id wins ties: deterministic
        assignment.append(target)
        loads[target] += size
    return assignment, bucket_count


def spill_shards(
    relation: ColumnStore,
    cfds: Sequence[CFD],
    shard_count: int,
    spill_dir: Optional[Union[str, Path]] = None,
) -> SpilledShardPlan:
    """Split an encoded relation into class-closed shards spilled to disk.

    The out-of-core counterpart of :func:`shard_relation`: shard membership
    is identical (same component closure, same ordering, same greedy
    packing), but instead of materialising sub-relations for pickling, each
    shard's full-width code columns are written under a spill run directory
    from which workers mmap them read-locally
    (:meth:`SpilledShard.open_relation`).  With numpy the component closure
    is computed by vectorised min-propagation over dense label arrays — no
    per-row Python objects; the pure-Python fallback routes through
    :func:`components` (correct, but O(rows) Python ints, so no-numpy runs
    should stay small).
    """
    if shard_count < 1:
        raise ParallelExecutionError(
            f"shard_count must be at least 1, got {shard_count}"
        )
    schema = relation.schema
    width = len(schema)
    count = len(relation)
    base, _explicit = resolve_spill_base(spill_dir)
    plan_dir = create_run_dir(base)
    dictionaries = [list(relation.dictionary(name)) for name in schema.names]
    with open(plan_dir / "dictionaries.pkl", "wb") as handle:
        pickle.dump(dictionaries, handle, protocol=pickle.HIGHEST_PROTOCOL)

    np_module = _numpy()
    shards: List[SpilledShard] = []
    if count == 0:
        component_count = 0
    elif np_module is not None:
        roots = _component_roots_vector(relation, cfds, np_module)
        unique_roots, inverse, counts = np_module.unique(
            roots, return_inverse=True, return_counts=True
        )
        component_count = len(unique_roots)
        # Largest component first, ties by smallest member (the root *is*
        # the smallest member) — the order components() emits.
        order = np_module.lexsort((unique_roots, -counts))
        assignment, bucket_count = _pack_components(
            [int(counts[position]) for position in order], shard_count
        )
        shard_of_component = np_module.empty(component_count, dtype=np_module.int64)
        shard_of_component[order] = np_module.asarray(assignment, dtype=np_module.int64)
        shard_of_row = shard_of_component[inverse]
        columns = [
            np_module.asarray(relation.codes(name), dtype=np_module.intc)
            for name in schema.names
        ]
        for shard_id in range(bucket_count):
            indices = np_module.flatnonzero(shard_of_row == shard_id)
            shard_dir = Path(plan_dir) / f"shard{shard_id}"
            shard_dir.mkdir()
            indices.astype(np_module.int64).tofile(str(shard_dir / "indices.bin"))
            for position in range(width):
                columns[position][indices].tofile(
                    str(shard_dir / f"col{position}.0.bin")
                )
            shards.append(
                SpilledShard(
                    shard_id=shard_id,
                    directory=str(shard_dir),
                    length=int(len(indices)),
                )
            )
    else:
        member_lists = components(relation, cfds)
        component_count = len(member_lists)
        assignment, bucket_count = _pack_components(
            [len(members) for members in member_lists], shard_count
        )
        buckets: List[List[int]] = [[] for _ in range(bucket_count)]
        for members, target in zip(member_lists, assignment):
            buckets[target].extend(members)
        columns_seq = [relation.codes(name) for name in schema.names]
        for shard_id, bucket in enumerate(buckets):
            bucket.sort()
            shard_dir = Path(plan_dir) / f"shard{shard_id}"
            shard_dir.mkdir()
            with open(shard_dir / "indices.bin", "wb") as handle:
                handle.write(array("q", bucket).tobytes())
            for position in range(width):
                source = columns_seq[position]
                with open(shard_dir / f"col{position}.0.bin", "wb") as handle:
                    handle.write(
                        array("i", (source[index] for index in bucket)).tobytes()
                    )
            shards.append(
                SpilledShard(
                    shard_id=shard_id, directory=str(shard_dir), length=len(bucket)
                )
            )
    return SpilledShardPlan(
        schema=schema,
        shards=tuple(shards),
        component_count=component_count,
        requested_shard_count=shard_count,
        plan_dir=str(plan_dir),
    )
