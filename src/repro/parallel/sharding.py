"""Equivalence-class-aware sharding of a relation for parallel execution.

CFD detection and repair are embarrassingly parallel *across LHS equivalence
classes*: a constant violation (``Q^C``) involves a single tuple, and a
variable violation (``Q^V``) involves only tuples that agree on the pattern's
``@``-free LHS attributes.  Two tuples that never share an equivalence class
under *any* pattern of the workload can therefore never co-violate, and the
relation can be split into sub-relations that are detected (and repaired)
independently.

:func:`shard_relation` computes that split:

1. For every pattern tuple of every CFD, take its ``@``-free LHS attribute
   set and group the relation's tuples by their projection onto it (exactly
   the grouping the partition-indexed detector builds).
2. Union-find over tuple indices merges every group into one *component*, so
   a component is closed under "shares an equivalence class with, under some
   pattern" — the transitive closure across all patterns.
3. Components are packed into ``shard_count`` shards by greedy size-balanced
   assignment (largest component first, onto the currently smallest shard).
   The assignment is a pure function of the data — ties break on the lowest
   shard id and components are ordered by size then smallest member — so it
   is stable across runs and worker processes, unlike ``hash()`` of a string
   key, which ``PYTHONHASHSEED`` would randomise.

The resulting **sharding invariant** — *no variable-CFD violation spans two
shards* — is what makes the per-shard reports (and the per-shard repairs)
compose into exactly the global result; ``docs/parallel.md`` spells out the
argument and its limits under repair-induced value changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.cfd import CFD
from repro.detection.indexed import lhs_free_attributes
from repro.errors import ParallelExecutionError
from repro.kernels import active_kernel
from repro.relation.columnar import ColumnStore
from repro.relation.relation import Relation


@dataclass(frozen=True)
class Shard:
    """One sub-relation plus the mapping back to global tuple indices."""

    shard_id: int
    #: Global tuple indices in ascending order; ``global_indices[local]`` is
    #: the index the shard's row ``local`` has in the source relation.
    global_indices: Tuple[int, ...]
    relation: Relation

    def __len__(self) -> int:
        return len(self.global_indices)

    def to_global(self, local_index: int) -> int:
        """Translate a shard-local tuple index back to the source relation."""
        return self.global_indices[local_index]


@dataclass(frozen=True)
class ShardPlan:
    """The full decomposition of one relation for one CFD workload."""

    shards: Tuple[Shard, ...]
    #: Number of union-find components (upper bound on useful shards).
    component_count: int
    #: Shard count that was requested (the plan may hold fewer, never more).
    requested_shard_count: int

    def __len__(self) -> int:
        return len(self.shards)

    def sizes(self) -> Tuple[int, ...]:
        return tuple(len(shard) for shard in self.shards)

    def summary(self) -> Dict[str, object]:
        return {
            "shards": len(self.shards),
            "requested_shards": self.requested_shard_count,
            "components": self.component_count,
            "sizes": list(self.sizes()),
        }


class _UnionFind:
    """Plain union-find with path halving and union by size."""

    __slots__ = ("parent", "size")

    def __init__(self, count: int) -> None:
        self.parent = list(range(count))
        self.size = [1] * count

    def find(self, item: int) -> int:
        parent = self.parent
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(self, left: int, right: int) -> None:
        root_left, root_right = self.find(left), self.find(right)
        if root_left == root_right:
            return
        if self.size[root_left] < self.size[root_right]:
            root_left, root_right = root_right, root_left
        self.parent[root_right] = root_left
        self.size[root_left] += self.size[root_right]


def _grouping_attribute_sets(cfds: Sequence[CFD]) -> List[Tuple[str, ...]]:
    """Every distinct ``@``-free LHS attribute tuple across all patterns.

    Reuses the detector's own projection
    (:func:`repro.detection.indexed.lhs_free_attributes`), so the sharding
    invariant can never drift from the grouping semantics detection and
    repair actually use.
    """
    seen: Dict[Tuple[str, ...], None] = {}
    for cfd in cfds:
        for pattern in cfd.tableau:
            seen.setdefault(lhs_free_attributes(cfd, pattern), None)
    return list(seen)


def components(relation: Relation, cfds: Sequence[CFD]) -> List[List[int]]:
    """Tuple-index components closed under equivalence-class sharing.

    Each returned list holds the global indices (ascending) of one component;
    components are ordered by descending size, ties by smallest member.  An
    empty LHS attribute set (a pattern whose LHS is all don't-care, or a
    constant CFD over the empty LHS) puts the whole relation into a single
    component — the degenerate but correct answer, since such a pattern
    groups every tuple together.
    """
    count = len(relation)
    if count == 0:
        return []
    uf = _UnionFind(count)
    columnar = isinstance(relation, ColumnStore)
    for attributes in _grouping_attribute_sets(cfds):
        if columnar:
            # The union-find only consumes the members, so the grouping runs
            # entirely over dictionary codes through the active kernel; no
            # partition key is ever built — not even decoded code tuples.
            if attributes:
                columns = list(relation.project_codes(attributes))
                groups = (
                    members
                    for _codes, members in active_kernel().group_codes(
                        columns, 0, count
                    )
                )
            else:
                # Empty LHS groups every tuple together.
                groups = iter([list(range(count))])
        else:
            groups = iter(relation.group_by(attributes).values())
        for indices in groups:
            first = indices[0]
            for other in indices[1:]:
                uf.union(first, other)
    grouped: Dict[int, List[int]] = {}
    for index in range(count):
        grouped.setdefault(uf.find(index), []).append(index)
    return sorted(grouped.values(), key=lambda member: (-len(member), member[0]))


def shard_relation(
    relation: Relation, cfds: Sequence[CFD], shard_count: int
) -> ShardPlan:
    """Split ``relation`` into at most ``shard_count`` class-closed shards.

    Rows keep their relative order inside a shard (ascending global index),
    so per-shard detection reports violations in the same relative order as a
    global run — which is what lets the merged, canonically-ordered report
    match the serial engines violation for violation.

    ``shard_count`` larger than the number of components (or than the number
    of rows) simply yields fewer shards; it is never an error.
    """
    if shard_count < 1:
        raise ParallelExecutionError(
            f"shard_count must be at least 1, got {shard_count}"
        )
    member_lists = components(relation, cfds)
    bucket_count = max(1, min(shard_count, len(member_lists)))
    buckets: List[List[int]] = [[] for _ in range(bucket_count)]
    loads = [0] * bucket_count
    for members in member_lists:
        target = loads.index(min(loads))  # lowest id wins ties: deterministic
        buckets[target].extend(members)
        loads[target] += len(members)

    shards: List[Shard] = []
    for shard_id, bucket in enumerate(buckets):
        bucket.sort()
        # take() preserves the storage class without re-coercion (sharding
        # runs on the 150K+-row hot path): a ColumnStore shard is gathered
        # code-wise and ships to its worker as int arrays plus one dictionary
        # per attribute — far cheaper to pickle than value tuples.
        sub = relation.take(bucket)
        shards.append(
            Shard(shard_id=shard_id, global_indices=tuple(bucket), relation=sub)
        )
    return ShardPlan(
        shards=tuple(shards),
        component_count=len(member_lists),
        requested_shard_count=shard_count,
    )
