"""The unified cleaning pipeline: detect → repair → verify, as one call.

The paper's workflow is a loop — find the CFD violations, repair the data,
re-verify until clean — but until this module the repo only exposed the
individual stages (:func:`~repro.detection.engine.detect_violations`,
:func:`~repro.repair.heuristic.repair`).  :class:`Cleaner` is the facade
that runs the whole loop over any :class:`~repro.io.sources.RowSource` and
returns a :class:`CleaningResult` carrying the clean relation *and* the
audit trail: per-pass violation counts, every applied cell change, the total
repair cost, and per-stage wall-clock timings.

>>> from repro.datagen.cust import cust_relation, cust_cfds
>>> result = Cleaner().clean(cust_relation(), cust_cfds())
>>> result.clean
True
>>> result.final_report.is_clean()
True

Backends are picked through :mod:`repro.registry` — by name via
:class:`~repro.config.DetectionConfig` / :class:`~repro.config.RepairConfig`,
or automatically with ``method="auto"`` (the default).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis import AnalysisReport, AnalysisWarning, analyze, require_clean
from repro.config import AUTO, DetectionConfig, RepairConfig, strictest_analysis
from repro.core.cfd import CFD
from repro.core.violations import ViolationReport
from repro.detection.engine import detect_violations
from repro.detection.indexed import detect_stream
from repro.errors import ReproError
from repro.io.sources import RelationSource, RowSource, as_source
from repro.kernels import resolve_kernel_name
from repro.registry import (
    COLUMNAR_DETECTORS,
    COLUMNAR_REPAIRERS,
    apply_storage,
    resolve_detector,
    resolve_repairer,
)
from repro.relation.columnar import ColumnStore
from repro.relation.mmap_store import MmapColumnStore, chunk_rows_for_budget
from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.repair.heuristic import CellChange, RepairResult, repair

__all__ = [
    "CleaningResult",
    "Cleaner",
    "DetectionConfig",
    "RepairConfig",
    "RowSource",
    "clean",
]


@dataclass
class CleaningResult:
    """Everything a cleaning run produced, stages and audit trail included."""

    #: The cleaned relation (repair copies first; the source is never mutated).
    relation: Relation
    #: Whether the verification stage found the relation violation-free.
    clean: bool
    #: Violations found by the initial detection stage.
    initial_report: ViolationReport
    #: Violations remaining after repair (empty when ``clean``).
    final_report: ViolationReport
    #: Violations outstanding at the start of every repair pass, across rounds.
    pass_violation_counts: List[int] = field(default_factory=list)
    #: Every cell modification the repair applied, in order.
    changes: List[CellChange] = field(default_factory=list)
    #: Total modification cost under the repair's cost model.
    total_cost: float = 0.0
    #: Repair passes executed (across all detect→repair rounds).
    passes: int = 0
    #: Detect→repair rounds the pipeline ran (normally 1).
    rounds: int = 0
    #: Wall-clock seconds per stage: ingest, detect, repair, verify.
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Backend names the registry resolved, e.g. ``{"detect": "indexed", ...}``.
    backends: Dict[str, str] = field(default_factory=dict)
    #: Human-readable description of the ingested source.
    source: str = ""
    #: The pre-flight static-analysis report (``None`` when ``analysis="off"``).
    analysis_report: Optional[AnalysisReport] = None

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def summary(self) -> Dict[str, Any]:
        """A JSON-friendly digest (what ``repro clean`` prints as its audit)."""
        return {
            "source": self.source,
            "tuples": len(self.relation),
            "clean": self.clean,
            "initial_violations": len(self.initial_report),
            "final_violations": len(self.final_report),
            "pass_violation_counts": list(self.pass_violation_counts),
            "changes": len(self.changes),
            "total_cost": round(self.total_cost, 4),
            "passes": self.passes,
            "rounds": self.rounds,
            "backends": dict(self.backends),
            "stage_seconds": {
                stage: round(seconds, 6)
                for stage, seconds in self.stage_seconds.items()
            },
        }


class Cleaner:
    """Runs the full detect → repair → verify loop over a row source.

    Parameters
    ----------
    detection:
        How to detect violations (backend, SQL knobs, parallel
        ``workers``/``shard_count``).  Defaults to ``method="auto"``, which
        escalates to the sharded parallel backend past
        :data:`repro.registry.PARALLEL_AUTO_ROW_THRESHOLD` rows.
    repair:
        How to repair them (engine, pass budget, cost model, parallel
        ``workers``/``shard_count``).  Defaults to ``method="auto"``.  A
        parallel run degrades to serial in-process execution when the pool
        cannot start (sandboxed CI) and surfaces a genuine worker crash as
        a :class:`~repro.errors.ParallelExecutionError` — a
        :class:`~repro.errors.ReproError`, not a raw multiprocessing
        traceback.
    verify_method:
        Backend for the final verification stage.  Defaults to the
        pure-Python oracle, so a ``clean=True`` result is vouched for by the
        reference semantics regardless of which backends did the work.
    max_rounds:
        Detect→repair rounds before giving up.  One round normally suffices
        (the repair loop itself iterates to a fixpoint); the re-verify loop
        guards the pipeline contract end to end.
    """

    def __init__(
        self,
        detection: Optional[DetectionConfig] = None,
        repair: Optional[RepairConfig] = None,
        verify_method: str = "inmemory",
        max_rounds: int = 3,
    ) -> None:
        if max_rounds < 1:
            raise ReproError(f"max_rounds must be at least 1, got {max_rounds}")
        self.detection = detection or DetectionConfig()
        self.repair = repair or RepairConfig()
        self.verify_method = verify_method
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------ stages
    def _preflight(
        self, cfds: Sequence[CFD], schema: Optional[Schema]
    ) -> Optional[AnalysisReport]:
        """The pre-flight static-analysis gate (see ``docs/analysis.md``).

        Runs :func:`repro.analysis.analyze` with ``deep=False`` — the cheap
        structural, consistency and hazard checks whose cost depends only on
        the rule set, never on the data — at the *strictest* of the two
        configs' ``analysis`` levels.  ``"strict"`` raises
        :class:`~repro.errors.AnalysisError` on error-severity diagnostics
        before any ingestion or detection work; ``"warn"`` surfaces findings
        as :class:`~repro.analysis.AnalysisWarning` warnings and proceeds
        (results are untouched — the gate never mutates anything);
        ``"off"`` skips the pass and returns ``None``.
        """
        level = strictest_analysis(
            self.detection.effective_analysis, self.repair.effective_analysis
        )
        if level == "off":
            return None
        report = analyze(
            cfds,
            schema,
            detection=self.detection,
            repair=self.repair,
            deep=False,
        )
        if level == "strict":
            require_clean(report)
        else:
            for diagnostic in report.errors() + report.warnings():
                warnings.warn(diagnostic.render(), AnalysisWarning, stacklevel=4)
        return report

    def ingest(
        self,
        source: Union[RowSource, Relation, str, Iterable],
        schema: Optional[Schema] = None,
        storage: Optional[str] = None,
        spill_dir: Optional[str] = None,
    ) -> Relation:
        """Materialise any supported source into a relation.

        ``storage="columnar"`` dictionary-encodes at ingestion;
        ``storage="mmap"`` additionally spills the code columns to
        memory-mapped files under ``spill_dir``; ``None`` keeps whatever
        layout the source naturally produces.
        """
        return as_source(source, schema=schema).to_relation(
            storage=storage, spill_dir=spill_dir
        )

    def detect(
        self,
        source: Union[RowSource, Relation, str, Iterable],
        cfds: Union[CFD, Sequence[CFD]],
        schema: Optional[Schema] = None,
    ) -> ViolationReport:
        """Run only the detection stage (ingest + detect).

        When the backend resolves to ``"indexed"`` and the source is not
        already an in-memory relation, the rows are *streamed* through
        :func:`repro.detection.indexed.detect_stream` in batches of
        ``detection.chunk_size`` — only the attributes the CFDs mention are
        retained, so a CSV or SQLite source never materialises in full.
        """
        row_source = as_source(source, schema=schema)
        if not isinstance(row_source, RelationSource):
            # "auto" on a not-yet-materialised source favours the streaming
            # backend: the workload shape is unknown until ingested, and only
            # the indexed backend can detect without materialising.
            if self.detection.method in ("indexed", AUTO):
                return detect_stream(
                    row_source.schema,
                    iter(row_source),
                    cfds,
                    chunk_size=self.detection.chunk_size,
                    storage=self.detection.effective_storage,
                    kernel=self.detection.effective_kernel,
                    spill_dir=self.detection.spill_dir,
                )
        relation = row_source.to_relation()
        return detect_violations(relation, cfds, config=self.detection)

    def clean(
        self,
        source: Union[RowSource, Relation, str, Iterable],
        cfds: Union[CFD, Sequence[CFD]],
        schema: Optional[Schema] = None,
    ) -> CleaningResult:
        """Ingest ``source``, repair it against ``cfds``, verify, and report.

        The source data is never mutated: repair works on a copy, so passing
        a ``Relation`` directly leaves it untouched.
        """
        if isinstance(cfds, CFD):
            cfds = [cfds]
        cfds = list(cfds)
        stage_seconds: Dict[str, float] = {}

        detect_storage = self.detection.effective_storage
        repair_storage = self.repair.effective_storage
        spill_dir = self.detection.spill_dir or self.repair.spill_dir
        memory_budget = self.detection.memory_budget_mb or self.repair.memory_budget_mb

        row_source = as_source(source, schema=schema)

        # Pre-flight gate: statically analyse the rule set against the
        # source schema and the engine configs *before* ingesting a single
        # row — a 10M-row mmap ingest is exactly the work an inconsistent
        # rule set must not be allowed to waste.
        start = time.perf_counter()
        analysis_report = self._preflight(cfds, row_source.schema)
        stage_seconds["analyze"] = time.perf_counter() - start

        start = time.perf_counter()
        if "mmap" in (detect_storage, repair_storage):
            # Out-of-core ingestion: stream the rows straight into spilled
            # code columns so the relation is never materialised as Python
            # tuples — the whole point of storage="mmap".
            relation = row_source.to_relation(
                storage="mmap",
                spill_dir=spill_dir,
                chunk_rows=(
                    chunk_rows_for_budget(memory_budget, len(row_source.schema))
                    if memory_budget is not None
                    else None
                ),
            )
        else:
            relation = row_source.to_relation()
        stage_seconds["ingest"] = time.perf_counter() - start

        detect_name, _ = resolve_detector(self.detection.method, relation, cfds)
        repair_name, _ = resolve_repairer(self.repair.method, relation, cfds)
        # Encode once, up front — but only when some resolved stage will
        # actually work columnar (a capable backend *and* that stage's
        # config asking for it); then detection, every repair round and the
        # audit share one encoded relation instead of re-encoding per stage.
        # A stage asking for "mmap" escalates the shared target to the
        # spilled backing (an MmapColumnStore satisfies "columnar" requests
        # unchanged — see apply_storage).
        detect_columnar = (
            detect_name in COLUMNAR_DETECTORS
            and detect_storage in ("columnar", "mmap")
        )
        repair_columnar = (
            repair_name in COLUMNAR_REPAIRERS
            and repair_storage in ("columnar", "mmap")
        )
        target = "columnar"
        if (detect_columnar and detect_storage == "mmap") or (
            repair_columnar and repair_storage == "mmap"
        ):
            target = "mmap"
        start = time.perf_counter()
        relation = apply_storage(
            relation,
            target,
            detect_columnar or repair_columnar,
            spill_dir=spill_dir,
            memory_budget_mb=memory_budget,
        )
        stage_seconds["ingest"] += time.perf_counter() - start
        if isinstance(relation, MmapColumnStore):
            storage_name = "mmap"
        elif isinstance(relation, ColumnStore):
            storage_name = "columnar"
        else:
            storage_name = "rows"
        backends = {
            "detect": detect_name,
            "repair": repair_name,
            "verify": self.verify_method,
            "storage": storage_name,
            "kernel": resolve_kernel_name(self.detection.effective_kernel),
        }

        start = time.perf_counter()
        initial_report = detect_violations(
            relation, cfds, config=self.detection.with_method(detect_name)
        )
        stage_seconds["detect"] = time.perf_counter() - start

        result = CleaningResult(
            relation=relation,
            clean=initial_report.is_clean(),
            initial_report=initial_report,
            final_report=initial_report,
            stage_seconds=stage_seconds,
            backends=backends,
            source=row_source.describe(),
            analysis_report=analysis_report,
        )
        stage_seconds["repair"] = 0.0
        stage_seconds["verify"] = 0.0

        report = initial_report
        for _ in range(self.max_rounds):
            if report.is_clean():
                break
            result.rounds += 1

            start = time.perf_counter()
            repaired: RepairResult = repair(
                result.relation, cfds, config=self.repair.with_method(repair_name)
            )
            stage_seconds["repair"] += time.perf_counter() - start
            result.relation = repaired.relation
            result.changes.extend(repaired.changes)
            result.total_cost += repaired.total_cost
            result.passes += repaired.passes
            result.pass_violation_counts.extend(repaired.pass_violation_counts)

            start = time.perf_counter()
            report = detect_violations(result.relation, cfds, method=self.verify_method)
            stage_seconds["verify"] += time.perf_counter() - start

        result.final_report = report
        result.clean = report.is_clean()
        # The ingested spill store is dead once repair replaced it with its
        # own copy — release its run directory now instead of waiting for
        # GC (and never release a store the caller handed in, or the one
        # the caller is about to read results from).
        if (
            isinstance(relation, MmapColumnStore)
            and relation is not result.relation
            and relation is not getattr(row_source, "_relation", None)
        ):
            relation.release()
        return result


def clean(
    source: Union[RowSource, Relation, str, Iterable],
    cfds: Union[CFD, Sequence[CFD]],
    detection: Optional[DetectionConfig] = None,
    repair: Optional[RepairConfig] = None,
    schema: Optional[Schema] = None,
) -> CleaningResult:
    """One-call cleaning: ``clean(source, cfds)`` with default configs.

    >>> from repro.datagen.cust import cust_relation, cust_cfds
    >>> clean(cust_relation(), cust_cfds()).clean
    True
    """
    return Cleaner(detection=detection, repair=repair).clean(source, cfds, schema=schema)
