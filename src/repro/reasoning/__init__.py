"""Reasoning about CFDs: consistency, implication, inference rules, minimal covers."""

from repro.reasoning.consistency import (
    consistency_witness,
    is_consistent,
    is_consistent_with_binding,
)
from repro.reasoning.implication import equivalent, implies
from repro.reasoning.inference import Derivation, InferenceRules
from repro.reasoning.mincover import minimal_cover

__all__ = [
    "Derivation",
    "InferenceRules",
    "consistency_witness",
    "equivalent",
    "implies",
    "is_consistent",
    "is_consistent_with_binding",
    "minimal_cover",
]
