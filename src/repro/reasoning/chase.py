"""A generalised chase over symbolic tuples, shared by consistency and implication.

The chase manipulates one or two *symbolic tuples* whose cells are either

* **bound** to a constant, or
* **free**, standing for "some value different from every constant named in
  the input CFDs" (possible only for attributes with an unbounded domain).

Free cells of different tuples may be *unified* (forced equal) without being
bound; the machinery below therefore keeps a union-find over cells, with each
equivalence class optionally carrying a constant binding.

The soundness/completeness argument (sketched in DESIGN.md and standard for
CFDs) rests on two facts:

* CFD satisfaction is preserved under taking sub-instances, so consistency and
  implication have one- and two-tuple small-model properties respectively;
* every binding or unification performed by the chase is *forced*: it must
  hold in every instance of the sought shape, so a conflict proves that no
  such instance exists, and a chase fixpoint without conflict can be
  instantiated into a concrete witness by giving distinct fresh values to the
  remaining free classes (fresh values exist because those attributes have
  unbounded domains).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.core.cfd import CFD
from repro.core.pattern import PatternValue

Cell = Tuple[int, str]  # (tuple id, attribute name)


class ChaseConflict(Exception):
    """Two different constants were forced onto the same cell class."""


class SymbolicState:
    """One or two symbolic tuples with a union-find over their cells."""

    def __init__(self, tuple_ids: Sequence[int], attributes: Sequence[str]) -> None:
        self._tuple_ids = tuple(tuple_ids)
        self._attributes = tuple(attributes)
        self._parent: Dict[Cell, Cell] = {}
        self._constant: Dict[Cell, Any] = {}
        for tuple_id in self._tuple_ids:
            for attribute in self._attributes:
                cell = (tuple_id, attribute)
                self._parent[cell] = cell

    # ------------------------------------------------------------------ union-find
    def _find(self, cell: Cell) -> Cell:
        root = cell
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[cell] != root:
            self._parent[cell], cell = root, self._parent[cell]
        return root

    def bind(self, tuple_id: int, attribute: str, value: Any) -> bool:
        """Force a cell to a constant.  Returns True if the state changed.

        Raises :class:`ChaseConflict` when the cell class already holds a
        different constant.
        """
        root = self._find((tuple_id, attribute))
        if root in self._constant:
            if self._constant[root] != value:
                raise ChaseConflict(
                    f"cell {tuple_id}.{attribute} forced to both "
                    f"{self._constant[root]!r} and {value!r}"
                )
            return False
        self._constant[root] = value
        return True

    def unify(self, left: Cell, right: Cell) -> bool:
        """Force two cells to be equal.  Returns True if the state changed."""
        left_root = self._find(left)
        right_root = self._find(right)
        if left_root == right_root:
            return False
        left_const = self._constant.get(left_root)
        right_const = self._constant.get(right_root)
        if left_const is not None and right_const is not None and left_const != right_const:
            raise ChaseConflict(
                f"cells {left} and {right} forced equal but bound to "
                f"{left_const!r} and {right_const!r}"
            )
        self._parent[right_root] = left_root
        if right_const is not None and left_const is None:
            self._constant[left_root] = right_const
        self._constant.pop(right_root, None)
        return True

    # ------------------------------------------------------------------ queries
    def constant_of(self, tuple_id: int, attribute: str) -> Optional[Any]:
        """The constant bound to the cell's class, or ``None`` if it is free."""
        return self._constant.get(self._find((tuple_id, attribute)))

    def is_bound(self, tuple_id: int, attribute: str) -> bool:
        return self.constant_of(tuple_id, attribute) is not None

    def same_class(self, left: Cell, right: Cell) -> bool:
        """Whether two cells are known to be equal (same class or same constant)."""
        left_root = self._find(left)
        right_root = self._find(right)
        if left_root == right_root:
            return True
        left_const = self._constant.get(left_root)
        right_const = self._constant.get(right_root)
        return left_const is not None and left_const == right_const

    def matches_cell(self, tuple_id: int, attribute: str, cell: PatternValue) -> bool:
        """Whether the symbolic cell is *known* to match the pattern cell.

        A free cell stands for a fresh value distinct from every constant in
        the input, so it matches only wildcard / don't-care cells; a bound
        cell matches a constant cell iff the constants are equal.
        """
        if not cell.is_constant:
            return True
        value = self.constant_of(tuple_id, attribute)
        return value is not None and value == cell.value

    def matches_lhs(self, tuple_id: int, cfd: CFD, pattern_index: int = 0) -> bool:
        """Whether the symbolic tuple matches the pattern's LHS cells."""
        pattern = cfd.tableau[pattern_index]
        return all(
            self.matches_cell(tuple_id, attribute, pattern.lhs_cell(attribute))
            for attribute in cfd.lhs
        )

    def instantiate(
        self,
        attributes: Sequence[str],
        forbidden: Iterable[Any] = (),
        finite_domains: Optional[Dict[str, Tuple[Any, ...]]] = None,
    ) -> Dict[int, Dict[str, Any]]:
        """Produce concrete tuples from the symbolic state.

        Free classes receive distinct synthetic values ``"$fresh_<n>"`` chosen
        to avoid ``forbidden`` constants.  ``finite_domains`` is only used to
        sanity-check that no free cell belongs to a finite-domain attribute
        (callers pre-bind those before chasing).
        """
        finite_domains = finite_domains or {}
        forbidden_set = set(forbidden)
        class_value: Dict[Cell, Any] = {}
        counter = 0
        result: Dict[int, Dict[str, Any]] = {tid: {} for tid in self._tuple_ids}
        for tuple_id in self._tuple_ids:
            for attribute in attributes:
                root = self._find((tuple_id, attribute))
                if root in self._constant:
                    result[tuple_id][attribute] = self._constant[root]
                    continue
                if attribute in finite_domains:
                    raise ChaseConflict(
                        f"free cell on finite-domain attribute {attribute!r}; "
                        "callers must enumerate finite domains before chasing"
                    )
                if root not in class_value:
                    value = f"$fresh_{counter}"
                    while value in forbidden_set:
                        counter += 1
                        value = f"$fresh_{counter}"
                    counter += 1
                    class_value[root] = value
                result[tuple_id][attribute] = class_value[root]
        return result


def single_tuple_chase(cfds: Sequence[CFD], state: SymbolicState, tuple_id: int = 0) -> None:
    """Chase a single symbolic tuple with normal-form CFDs until fixpoint.

    Whenever the tuple matches a pattern's LHS and the RHS cell is a constant,
    that constant is forced onto the RHS attribute.  Raises
    :class:`ChaseConflict` if two different constants are forced on one cell.
    """
    changed = True
    while changed:
        changed = False
        for cfd in cfds:
            pattern = cfd.tableau[0]
            rhs_attr = cfd.rhs[0]
            rhs_cell = pattern.rhs_cell(rhs_attr)
            if not rhs_cell.is_constant:
                continue
            if state.matches_lhs(tuple_id, cfd):
                if state.bind(tuple_id, rhs_attr, rhs_cell.value):
                    changed = True


def pair_chase(cfds: Sequence[CFD], state: SymbolicState) -> None:
    """Chase two symbolic tuples (ids 0 and 1) with normal-form CFDs until fixpoint.

    Applies both the single-tuple constant rule to each tuple and the pairwise
    rule: if the tuples are known equal on a pattern's LHS and both match it,
    their RHS cells are unified.
    """
    changed = True
    while changed:
        changed = False
        for cfd in cfds:
            pattern = cfd.tableau[0]
            rhs_attr = cfd.rhs[0]
            rhs_cell = pattern.rhs_cell(rhs_attr)
            for tuple_id in (0, 1):
                if rhs_cell.is_constant and state.matches_lhs(tuple_id, cfd):
                    if state.bind(tuple_id, rhs_attr, rhs_cell.value):
                        changed = True
            lhs_equal = all(
                state.same_class((0, attribute), (1, attribute)) for attribute in cfd.lhs
            )
            if (
                lhs_equal
                and state.matches_lhs(0, cfd)
                and state.matches_lhs(1, cfd)
                and state.unify((0, rhs_attr), (1, rhs_attr))
            ):
                changed = True


def constants_in(cfds: Iterable[CFD]) -> Dict[str, set]:
    """All constants mentioned in the CFDs, grouped by attribute."""
    constants: Dict[str, set] = {}
    for cfd in cfds:
        for pattern in cfd.tableau:
            for attribute, cell in list(pattern.lhs.items()) + list(pattern.rhs.items()):
                if cell.is_constant:
                    constants.setdefault(attribute, set()).add(cell.value)
    return constants


def all_constants(cfds: Iterable[CFD]) -> set:
    """All constants mentioned anywhere in the CFDs."""
    flat: set = set()
    for values in constants_in(cfds).values():
        flat.update(values)
    return flat
