"""Attribute closures for the standard FDs embedded in CFDs.

Classic FD reasoning (attribute closure, candidate keys) remains useful when
working with CFDs: the embedded FDs of a CFD set bound what the CFDs can say,
and the discovery algorithms in :mod:`repro.discovery` prune their search
space with plain FD closures.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.cfd import CFD, FD


def attribute_closure(attributes: Iterable[str], fds: Sequence[FD]) -> FrozenSet[str]:
    """The closure ``X+`` of ``attributes`` under the given FDs."""
    closure: Set[str] = set(attributes)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if set(fd.lhs) <= closure and not set(fd.rhs) <= closure:
                closure.update(fd.rhs)
                changed = True
    return frozenset(closure)


def embedded_fds(cfds: Iterable[CFD]) -> List[FD]:
    """The standard FDs embedded in a collection of CFDs."""
    return [cfd.embedded_fd for cfd in cfds]


def fd_implies(fds: Sequence[FD], candidate: FD) -> bool:
    """Classic FD implication via attribute closure."""
    return set(candidate.rhs) <= attribute_closure(candidate.lhs, fds)


def candidate_keys(attributes: Sequence[str], fds: Sequence[FD]) -> List[Tuple[str, ...]]:
    """All minimal candidate keys of a schema w.r.t. plain FDs.

    Exponential in the number of attributes; intended for the small schemas
    used in tests and discovery, not for wide tables.
    """
    universe = tuple(attributes)
    keys: List[Tuple[str, ...]] = []
    # Breadth-first over subset size guarantees minimality by construction.
    from itertools import combinations

    for size in range(0, len(universe) + 1):
        for subset in combinations(universe, size):
            if any(set(key) <= set(subset) for key in keys):
                continue
            if attribute_closure(subset, fds) >= set(universe):
                keys.append(subset)
    return keys
