"""Consistency analysis of CFD sets (Section 3.1 of the paper).

The consistency problem asks whether a nonempty instance satisfying a set
``Σ`` of CFDs exists at all.  It is NP-complete in general (Theorem 3.1) but
decidable in ``O(|Σ|²)`` time when the schema is predefined or no attribute
in ``Σ`` has a finite domain (Theorem 3.2).  The algorithm implemented here
follows the chase sketched in the paper:

* CFD satisfaction is closed under sub-instances, so ``Σ`` is consistent iff
  some *single* tuple satisfies it;
* for attributes with unbounded domains the most general candidate tuple
  (one fresh value per attribute, specialised only when a CFD forces a
  constant) is a witness whenever any witness exists;
* attributes with finite domains are enumerated exhaustively, which is the
  source of intractability in the general case and a constant factor when the
  schema is predefined.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.cfd import CFD, normalize_all
from repro.reasoning.chase import (
    ChaseConflict,
    SymbolicState,
    all_constants,
    single_tuple_chase,
)
from repro.relation.schema import Schema


def _attributes_of(cfds: Sequence[CFD], extra: Iterable[str] = ()) -> Tuple[str, ...]:
    """All attributes mentioned in the CFDs (plus ``extra``), in stable order."""
    seen: List[str] = []
    for cfd in cfds:
        for attribute in cfd.attributes:
            if attribute not in seen:
                seen.append(attribute)
    for attribute in extra:
        if attribute not in seen:
            seen.append(attribute)
    return tuple(seen)


def _finite_domains(
    attributes: Sequence[str], schema: Optional[Schema]
) -> Dict[str, Tuple[Any, ...]]:
    """Finite domains (from the schema) of the attributes that have one."""
    if schema is None:
        return {}
    domains: Dict[str, Tuple[Any, ...]] = {}
    for attribute in attributes:
        if attribute in schema and schema[attribute].has_finite_domain:
            domain = schema[attribute].domain
            assert domain is not None
            domains[attribute] = tuple(sorted(domain, key=repr))
    return domains


def _finite_assignments(
    domains: Dict[str, Tuple[Any, ...]]
) -> Iterable[Dict[str, Any]]:
    """Every total assignment of the finite-domain attributes."""
    if not domains:
        yield {}
        return
    names = list(domains)
    for values in itertools.product(*(domains[name] for name in names)):
        yield dict(zip(names, values))


def consistency_witness(
    cfds: Sequence[CFD],
    schema: Optional[Schema] = None,
    bindings: Optional[Dict[str, Any]] = None,
) -> Optional[Dict[str, Any]]:
    """A single tuple satisfying every CFD in ``cfds``, or ``None`` if none exists.

    ``bindings`` optionally pre-binds attributes to constants, which is how
    the ``(Σ, B = b)`` consistency test of Section 3.2 is expressed.
    """
    normalized = normalize_all(cfds)
    bindings = bindings or {}
    attributes = _attributes_of(normalized, extra=bindings)
    if not attributes:
        return {}
    domains = _finite_domains(attributes, schema)
    forbidden = all_constants(normalized)

    for assignment in _finite_assignments(domains):
        state = SymbolicState((0,), attributes)
        try:
            for attribute, value in bindings.items():
                state.bind(0, attribute, value)
            for attribute, value in assignment.items():
                state.bind(0, attribute, value)
            single_tuple_chase(normalized, state)
            concrete = state.instantiate(attributes, forbidden=forbidden, finite_domains=domains)
        except ChaseConflict:
            continue
        return concrete[0]
    return None


def is_consistent(cfds: Sequence[CFD], schema: Optional[Schema] = None) -> bool:
    """Whether a nonempty instance satisfying ``cfds`` exists (Theorem 3.2)."""
    return consistency_witness(cfds, schema=schema) is not None


def is_consistent_with_binding(
    cfds: Sequence[CFD],
    attribute: str,
    value: Any,
    schema: Optional[Schema] = None,
) -> bool:
    """The ``(Σ, B = b)`` consistency test used by inference rules FD7 and FD8.

    True iff some instance satisfies ``cfds`` *and* contains a tuple whose
    ``attribute`` equals ``value``.
    """
    return consistency_witness(cfds, schema=schema, bindings={attribute: value}) is not None


def consistent_domain_values(
    cfds: Sequence[CFD],
    attribute: str,
    schema: Schema,
) -> Tuple[Any, ...]:
    """The values ``b`` of a finite-domain attribute for which ``(Σ, B=b)`` is consistent."""
    attr = schema[attribute]
    if not attr.has_finite_domain:
        raise ValueError(f"attribute {attribute!r} does not have a finite domain")
    assert attr.domain is not None
    values = tuple(sorted(attr.domain, key=repr))
    return tuple(
        value
        for value in values
        if is_consistent_with_binding(cfds, attribute, value, schema=schema)
    )
