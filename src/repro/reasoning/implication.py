"""Implication analysis for CFDs (Section 3.2, Theorems 3.4 and 3.5).

``Σ |= φ`` holds when every instance satisfying ``Σ`` also satisfies ``φ``.
The problem is coNP-complete in general but solvable in
``O((|Σ|+|φ|)²)`` time when the schema is predefined or no attribute has a
finite domain.  The algorithm implemented here is the chase used in the
paper, exploiting the small-model property of CFD violations:

* a CFD whose RHS pattern cell is a **constant** can only be refuted by a
  single tuple, so the test chases one symbolic tuple that matches the LHS
  pattern and asks whether the RHS constant is forced;
* a CFD whose RHS pattern cell is the **wildcard** can only be refuted by a
  pair of tuples agreeing on the LHS, so the test chases two symbolic tuples
  initialised to agree on (and match) the LHS pattern and asks whether their
  RHS cells are forced equal;
* attributes with finite domains are enumerated exhaustively (the source of
  coNP-hardness, a constant factor for predefined schemas).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.cfd import CFD, normalize_all
from repro.reasoning.chase import (
    ChaseConflict,
    SymbolicState,
    pair_chase,
    single_tuple_chase,
)
from repro.reasoning.consistency import _attributes_of, _finite_domains
from repro.relation.schema import Schema


def implies(
    sigma: Sequence[CFD],
    phi: CFD,
    schema: Optional[Schema] = None,
) -> bool:
    """Whether ``sigma |= phi`` (Theorem 3.5 chase).

    >>> from repro.core.cfd import CFD
    >>> psi1 = CFD.build(["A"], ["B"], [["_", "b"]])
    >>> psi2 = CFD.build(["B"], ["C"], [["_", "c"]])
    >>> phi = CFD.build(["A"], ["C"], [["a", "_"]])
    >>> implies([psi1, psi2], phi)    # Example 3.2 of the paper
    True
    """
    sigma_nf = normalize_all(sigma)
    for part in phi.normalize():
        if not _implies_normal_form(sigma_nf, part, schema):
            return False
    return True


def equivalent(
    sigma1: Sequence[CFD],
    sigma2: Sequence[CFD],
    schema: Optional[Schema] = None,
) -> bool:
    """Whether two CFD sets are equivalent (``Σ1 ≡ Σ2``)."""
    return all(implies(sigma1, phi, schema) for phi in sigma2) and all(
        implies(sigma2, phi, schema) for phi in sigma1
    )


# ---------------------------------------------------------------------------
# normal-form implication
# ---------------------------------------------------------------------------
def _implies_normal_form(sigma_nf: List[CFD], phi: CFD, schema: Optional[Schema]) -> bool:
    pattern = phi.single_pattern()
    rhs_attr = phi.rhs[0]
    rhs_cell = pattern.rhs_cell(rhs_attr)
    attributes = _attributes_of(sigma_nf + [phi])
    domains = _finite_domains(attributes, schema)
    if rhs_cell.is_constant:
        return not _constant_counterexample_exists(sigma_nf, phi, attributes, domains)
    return not _variable_counterexample_exists(sigma_nf, phi, attributes, domains)


def _finite_assignments_for_pair(
    domains: Dict[str, Tuple[Any, ...]],
    shared_attributes: Sequence[str],
) -> Iterable[Tuple[Dict[str, Any], Dict[str, Any]]]:
    """Joint finite-domain assignments for a tuple pair.

    Attributes in ``shared_attributes`` (the CFD's LHS, on which a violating
    pair must agree) receive a single shared value; all other finite-domain
    attributes are assigned independently per tuple.
    """
    if not domains:
        yield {}, {}
        return
    shared = [name for name in domains if name in shared_attributes]
    independent = [name for name in domains if name not in shared_attributes]
    shared_products = itertools.product(*(domains[name] for name in shared)) if shared else [()]
    for shared_values in shared_products:
        shared_assignment = dict(zip(shared, shared_values))
        left_products = (
            itertools.product(*(domains[name] for name in independent)) if independent else [()]
        )
        for left_values in left_products:
            right_products = (
                itertools.product(*(domains[name] for name in independent))
                if independent
                else [()]
            )
            for right_values in right_products:
                left = dict(shared_assignment)
                left.update(zip(independent, left_values))
                right = dict(shared_assignment)
                right.update(zip(independent, right_values))
                yield left, right


def _finite_assignments_single(
    domains: Dict[str, Tuple[Any, ...]]
) -> Iterable[Dict[str, Any]]:
    if not domains:
        yield {}
        return
    names = list(domains)
    for values in itertools.product(*(domains[name] for name in names)):
        yield dict(zip(names, values))


def _constant_counterexample_exists(
    sigma_nf: List[CFD],
    phi: CFD,
    attributes: Sequence[str],
    domains: Dict[str, Tuple[Any, ...]],
) -> bool:
    """Is there a single tuple matching ``φ``'s LHS, satisfying Σ, violating the RHS constant?"""
    pattern = phi.single_pattern()
    rhs_attr = phi.rhs[0]
    expected = pattern.rhs_cell(rhs_attr).value
    for assignment in _finite_assignments_single(domains):
        state = SymbolicState((0,), attributes)
        try:
            for attribute in phi.lhs:
                cell = pattern.lhs_cell(attribute)
                if cell.is_constant:
                    state.bind(0, attribute, cell.value)
            for attribute, value in assignment.items():
                state.bind(0, attribute, value)
            single_tuple_chase(sigma_nf, state)
        except ChaseConflict:
            continue
        forced = state.constant_of(0, rhs_attr)
        if forced is None:
            # Unbounded-domain attribute left free: instantiate it with a
            # fresh value different from the expected constant.
            return True
        if forced != expected:
            return True
    return False


def _variable_counterexample_exists(
    sigma_nf: List[CFD],
    phi: CFD,
    attributes: Sequence[str],
    domains: Dict[str, Tuple[Any, ...]],
) -> bool:
    """Is there a pair agreeing on (and matching) ``φ``'s LHS, satisfying Σ, disagreeing on the RHS?"""
    pattern = phi.single_pattern()
    rhs_attr = phi.rhs[0]
    for left_assignment, right_assignment in _finite_assignments_for_pair(domains, phi.lhs):
        state = SymbolicState((0, 1), attributes)
        try:
            for attribute in phi.lhs:
                cell = pattern.lhs_cell(attribute)
                if cell.is_constant:
                    state.bind(0, attribute, cell.value)
                    state.bind(1, attribute, cell.value)
                else:
                    state.unify((0, attribute), (1, attribute))
            for attribute, value in left_assignment.items():
                state.bind(0, attribute, value)
            for attribute, value in right_assignment.items():
                state.bind(1, attribute, value)
            pair_chase(sigma_nf, state)
        except ChaseConflict:
            continue
        if not state.same_class((0, rhs_attr), (1, rhs_attr)):
            left_value = state.constant_of(0, rhs_attr)
            right_value = state.constant_of(1, rhs_attr)
            if rhs_attr in domains and left_value == right_value:
                # Both bound to the same finite-domain value in this branch:
                # no disagreement possible here even though the cells were
                # never unified.
                continue
            return True
    return False
