"""The inference system ``I`` for CFDs (Figure 3 of the paper).

The eight rules FD1–FD8 generalise Armstrong's axioms.  Each rule is exposed
as a static method on :class:`InferenceRules` that, given premises satisfying
the rule's preconditions, returns the concluded normal-form CFD; premises that
do not satisfy the preconditions raise :class:`~repro.errors.ReasoningError`.
A :class:`Derivation` records a proof as a sequence of steps, mirroring the
derivation of Example 3.2.

The system is sound and complete for CFD implication (Theorem 3.3); soundness
of every rule is exercised in the test suite by checking each conclusion with
the chase-based :func:`repro.reasoning.implication.implies`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.cfd import CFD
from repro.core.pattern import WILDCARD, PatternValue
from repro.core.tableau import PatternTableau, PatternTuple
from repro.errors import ReasoningError
from repro.reasoning.consistency import is_consistent_with_binding
from repro.relation.schema import Schema


def _require_normal_form(cfd: CFD, rule: str) -> PatternTuple:
    if not cfd.is_normal_form():
        raise ReasoningError(
            f"{rule} expects a normal-form CFD (single RHS attribute, single pattern); "
            f"got {cfd!r}"
        )
    return cfd.single_pattern()


def _normal_form(lhs: Sequence[str], rhs_attr: str, lhs_cells: Dict[str, Any], rhs_cell: Any,
                 name: Optional[str] = None) -> CFD:
    tableau = PatternTableau(tuple(lhs), (rhs_attr,), [PatternTuple(lhs_cells, {rhs_attr: rhs_cell})])
    return CFD(tuple(lhs), (rhs_attr,), tableau, name=name)


class InferenceRules:
    """The rules FD1–FD8 of the inference system ``I``."""

    # ------------------------------------------------------------------ FD1
    @staticmethod
    def fd1(attributes: Sequence[str], target: str) -> CFD:
        """FD1 (reflexivity): if ``A ∈ X`` then ``(X → A, tp)`` with all-wildcard ``tp``."""
        if target not in attributes:
            raise ReasoningError(f"FD1 requires the target {target!r} to belong to X {tuple(attributes)}")
        lhs_cells = {attribute: WILDCARD for attribute in attributes}
        return _normal_form(attributes, target, lhs_cells, WILDCARD, name="fd1")

    # ------------------------------------------------------------------ FD2
    @staticmethod
    def fd2(premise: CFD, new_attribute: str) -> CFD:
        """FD2 (augmentation): from ``(X → A, tp)`` infer ``([X, B] → A, tp')`` with ``tp'[B] = _``."""
        pattern = _require_normal_form(premise, "FD2")
        if new_attribute in premise.lhs:
            raise ReasoningError(f"FD2: attribute {new_attribute!r} is already in the LHS")
        lhs = tuple(premise.lhs) + (new_attribute,)
        lhs_cells = {attribute: pattern.lhs_cell(attribute) for attribute in premise.lhs}
        lhs_cells[new_attribute] = WILDCARD
        rhs_attr = premise.rhs[0]
        return _normal_form(lhs, rhs_attr, lhs_cells, pattern.rhs_cell(rhs_attr), name="fd2")

    # ------------------------------------------------------------------ FD3
    @staticmethod
    def fd3(premises: Sequence[CFD], final: CFD) -> CFD:
        """FD3 (transitivity): from ``(X → Ai, ti)`` (i ∈ [1,k]) and ``([A1..Ak] → B, tp)``
        with ``(t1[A1], ..., tk[Ak]) ⪯ tp[A1..Ak]`` infer ``(X → B, tp')`` with
        ``tp'[X] = t1[X]`` and ``tp'[B] = tp[B]``.
        """
        if not premises:
            raise ReasoningError("FD3 needs at least one premise (X -> Ai, ti)")
        patterns = [_require_normal_form(cfd, "FD3") for cfd in premises]
        final_pattern = _require_normal_form(final, "FD3")
        lhs = premises[0].lhs
        first = patterns[0]
        for cfd, pattern in zip(premises, patterns):
            if cfd.lhs != lhs:
                raise ReasoningError("FD3: every premise must share the same LHS attribute list X")
            for attribute in lhs:
                if pattern.lhs_cell(attribute) != first.lhs_cell(attribute):
                    raise ReasoningError("FD3: premises must agree on the LHS pattern (ti[X] = tj[X])")
        middle_attributes = tuple(cfd.rhs[0] for cfd in premises)
        if set(final.lhs) != set(middle_attributes):
            raise ReasoningError(
                f"FD3: the final CFD's LHS {final.lhs} must be the premises' RHS attributes "
                f"{middle_attributes}"
            )
        for cfd, pattern in zip(premises, patterns):
            middle_attr = cfd.rhs[0]
            produced = pattern.rhs_cell(middle_attr)
            required = final_pattern.lhs_cell(middle_attr)
            if not produced.subsumed_by(required):
                raise ReasoningError(
                    f"FD3: pattern cell {produced.render()!r} for {middle_attr!r} is not within "
                    f"the scope of {required.render()!r}"
                )
        rhs_attr = final.rhs[0]
        lhs_cells = {attribute: first.lhs_cell(attribute) for attribute in lhs}
        return _normal_form(lhs, rhs_attr, lhs_cells, final_pattern.rhs_cell(rhs_attr), name="fd3")

    # ------------------------------------------------------------------ FD4
    @staticmethod
    def fd4(premise: CFD, dropped: str) -> CFD:
        """FD4: from ``([B, X] → A, tp)`` with ``tp[B] = _`` and ``tp[A]`` a constant,
        infer ``(X → A, tp')`` with ``B`` dropped from the LHS."""
        pattern = _require_normal_form(premise, "FD4")
        if dropped not in premise.lhs:
            raise ReasoningError(f"FD4: attribute {dropped!r} is not in the premise LHS")
        if not pattern.lhs_cell(dropped).is_wildcard:
            raise ReasoningError("FD4 requires the dropped attribute's pattern cell to be '_'")
        rhs_attr = premise.rhs[0]
        if not pattern.rhs_cell(rhs_attr).is_constant:
            raise ReasoningError("FD4 requires the RHS pattern cell to be a constant")
        lhs = tuple(attribute for attribute in premise.lhs if attribute != dropped)
        lhs_cells = {attribute: pattern.lhs_cell(attribute) for attribute in lhs}
        return _normal_form(lhs, rhs_attr, lhs_cells, pattern.rhs_cell(rhs_attr), name="fd4")

    # ------------------------------------------------------------------ FD5
    @staticmethod
    def fd5(premise: CFD, attribute: str, constant: Any) -> CFD:
        """FD5: in ``([B, X] → A, tp)`` with ``tp[B] = _`` substitute a constant ``b`` for ``_``."""
        pattern = _require_normal_form(premise, "FD5")
        if attribute not in premise.lhs:
            raise ReasoningError(f"FD5: attribute {attribute!r} is not in the premise LHS")
        if not pattern.lhs_cell(attribute).is_wildcard:
            raise ReasoningError("FD5 requires the substituted attribute's pattern cell to be '_'")
        lhs_cells = {attr: pattern.lhs_cell(attr) for attr in premise.lhs}
        lhs_cells[attribute] = PatternValue.constant(constant)
        rhs_attr = premise.rhs[0]
        return _normal_form(premise.lhs, rhs_attr, lhs_cells, pattern.rhs_cell(rhs_attr), name="fd5")

    # ------------------------------------------------------------------ FD6
    @staticmethod
    def fd6(premise: CFD) -> CFD:
        """FD6: in ``(X → A, tp)`` with ``tp[A] = a`` substitute ``_`` for the constant."""
        pattern = _require_normal_form(premise, "FD6")
        rhs_attr = premise.rhs[0]
        if not pattern.rhs_cell(rhs_attr).is_constant:
            raise ReasoningError("FD6 requires the RHS pattern cell to be a constant")
        lhs_cells = {attr: pattern.lhs_cell(attr) for attr in premise.lhs}
        return _normal_form(premise.lhs, rhs_attr, lhs_cells, WILDCARD, name="fd6")

    # ------------------------------------------------------------------ FD7
    @staticmethod
    def fd7(
        sigma: Sequence[CFD],
        premises: Sequence[CFD],
        finite_attribute: str,
        schema: Schema,
    ) -> CFD:
        """FD7 (finite-domain upgrade): if ``Σ ⊢ ([X, B] → A, ti)`` for every value
        ``bi`` of ``dom(B)`` for which ``(Σ, B = bi)`` is consistent, and the
        premises agree on ``X``, infer ``([X, B] → A, tp)`` with ``tp[B] = _``.
        """
        if not premises:
            raise ReasoningError("FD7 needs at least one premise")
        patterns = [_require_normal_form(cfd, "FD7") for cfd in premises]
        attribute = schema[finite_attribute]
        if not attribute.has_finite_domain:
            raise ReasoningError(f"FD7: attribute {finite_attribute!r} must have a finite domain")
        lhs = premises[0].lhs
        rhs_attr = premises[0].rhs[0]
        if finite_attribute not in lhs:
            raise ReasoningError(f"FD7: attribute {finite_attribute!r} must be in the premise LHS")
        first = patterns[0]
        other_lhs = [attr for attr in lhs if attr != finite_attribute]
        for cfd, pattern in zip(premises, patterns):
            if cfd.lhs != lhs or cfd.rhs[0] != rhs_attr:
                raise ReasoningError("FD7: premises must share the same embedded FD")
            for attr in other_lhs:
                if pattern.lhs_cell(attr) != first.lhs_cell(attr):
                    raise ReasoningError("FD7: premises must agree on the X pattern cells")
            if not pattern.lhs_cell(finite_attribute).is_constant:
                raise ReasoningError("FD7: each premise must bind the finite attribute to a constant")
        covered = {pattern.lhs_cell(finite_attribute).value for pattern in patterns}
        assert attribute.domain is not None
        for value in attribute.domain:
            if value in covered:
                continue
            if is_consistent_with_binding(list(sigma), finite_attribute, value, schema=schema):
                raise ReasoningError(
                    f"FD7: value {value!r} of {finite_attribute!r} is consistent with Σ but not "
                    "covered by any premise"
                )
        lhs_cells = {attr: first.lhs_cell(attr) for attr in other_lhs}
        lhs_cells[finite_attribute] = WILDCARD
        return _normal_form(lhs, rhs_attr, lhs_cells, first.rhs_cell(rhs_attr), name="fd7")

    # ------------------------------------------------------------------ FD8
    @staticmethod
    def fd8(sigma: Sequence[CFD], finite_attribute: str, schema: Schema) -> CFD:
        """FD8: if exactly one value ``b1`` of ``dom(B)`` is consistent with Σ,
        infer ``(B → B, (_, b1))``."""
        attribute = schema[finite_attribute]
        if not attribute.has_finite_domain:
            raise ReasoningError(f"FD8: attribute {finite_attribute!r} must have a finite domain")
        assert attribute.domain is not None
        consistent_values = [
            value
            for value in sorted(attribute.domain, key=repr)
            if is_consistent_with_binding(list(sigma), finite_attribute, value, schema=schema)
        ]
        if len(consistent_values) != 1:
            raise ReasoningError(
                f"FD8 requires exactly one consistent value for {finite_attribute!r}, "
                f"found {consistent_values!r}"
            )
        value = consistent_values[0]
        return _normal_form(
            (finite_attribute,),
            finite_attribute,
            {finite_attribute: WILDCARD},
            PatternValue.constant(value),
            name="fd8",
        )


@dataclass
class DerivationStep:
    """One application of an inference rule."""

    rule: str
    conclusion: CFD
    premises: Tuple[CFD, ...] = ()
    note: str = ""


@dataclass
class Derivation:
    """A proof ``Σ ⊢_I φ`` recorded as a sequence of rule applications.

    >>> derivation = Derivation()
    >>> _ = derivation.assume(CFD.build(["A"], ["B"], [["_", "b"]]), note="psi1")
    >>> len(derivation.steps)
    1
    """

    steps: List[DerivationStep] = field(default_factory=list)

    def assume(self, cfd: CFD, note: str = "") -> CFD:
        """Record a premise taken from Σ."""
        self.steps.append(DerivationStep(rule="premise", conclusion=cfd, note=note))
        return cfd

    def apply(self, rule: str, conclusion: CFD, premises: Sequence[CFD], note: str = "") -> CFD:
        """Record a rule application and return its conclusion."""
        self.steps.append(
            DerivationStep(rule=rule, conclusion=conclusion, premises=tuple(premises), note=note)
        )
        return conclusion

    @property
    def conclusion(self) -> CFD:
        """The conclusion of the final step."""
        if not self.steps:
            raise ReasoningError("empty derivation has no conclusion")
        return self.steps[-1].conclusion

    def render(self) -> str:
        """A numbered, human-readable listing in the style of Example 3.2."""
        lines = []
        for index, step in enumerate(self.steps, start=1):
            note = f"  -- {step.note}" if step.note else ""
            lines.append(f"({index}) [{step.rule}] {step.conclusion.render().splitlines()[0]}{note}")
        return "\n".join(lines)
