"""Minimal covers of CFD sets (algorithm MinCover, Figure 4 of the paper).

A minimal cover ``Σ_mc`` of ``Σ`` is an equivalent set of normal-form CFDs
containing no redundant CFDs, attributes or patterns.  Computing it is an
optimisation step for data cleaning: detection and repair costs grow with the
number and width of the CFDs to be checked, so a smaller equivalent set is
cheaper to validate (Section 3.3).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.cfd import CFD, normalize_all
from repro.core.tableau import PatternTableau, PatternTuple
from repro.reasoning.consistency import is_consistent
from repro.reasoning.implication import implies
from repro.relation.schema import Schema


def _drop_lhs_attribute(cfd: CFD, attribute: str) -> CFD:
    """``(X − {B} → A, (tp[X − {B}], tp[A]))`` — the reduction of line 5 of MinCover."""
    pattern = cfd.single_pattern()
    lhs = tuple(attr for attr in cfd.lhs if attr != attribute)
    rhs_attr = cfd.rhs[0]
    reduced = PatternTuple(
        {attr: pattern.lhs_cell(attr) for attr in lhs},
        {rhs_attr: pattern.rhs_cell(rhs_attr)},
    )
    tableau = PatternTableau(lhs, (rhs_attr,), [reduced])
    return CFD(lhs, (rhs_attr,), tableau, name=cfd.name, schema=cfd.schema)


def minimal_cover(cfds: Sequence[CFD], schema: Optional[Schema] = None) -> List[CFD]:
    """Compute a minimal cover of ``cfds`` (Figure 4).

    Returns an empty list when ``cfds`` is inconsistent, exactly as the
    paper's algorithm does (lines 1–2).

    >>> psi1 = CFD.build(["A"], ["B"], [["_", "b"]])
    >>> psi2 = CFD.build(["B"], ["C"], [["_", "c"]])
    >>> phi = CFD.build(["A"], ["C"], [["a", "_"]])
    >>> cover = minimal_cover([psi1, psi2, phi])
    >>> sorted((cfd.lhs, cfd.rhs) for cfd in cover)
    [((), ('B',)), ((), ('C',))]
    """
    sigma: List[CFD] = normalize_all(cfds)
    if not is_consistent(sigma, schema):
        return []

    # Lines 3–6: remove redundant attributes from each CFD's LHS.
    for index in range(len(sigma)):
        current = sigma[index]
        changed = True
        while changed:
            changed = False
            for attribute in current.lhs:
                reduced = _drop_lhs_attribute(current, attribute)
                if implies(sigma, reduced, schema):
                    sigma[index] = reduced
                    current = reduced
                    changed = True
                    break

    # Lines 8–10: remove redundant CFDs.
    mincover: List[CFD] = list(sigma)
    for cfd in list(sigma):
        if cfd not in mincover:
            continue
        remaining = [other for other in mincover if other is not cfd]
        if remaining and implies(remaining, cfd, schema):
            mincover = remaining
    return mincover


def is_minimal(cfds: Sequence[CFD], schema: Optional[Schema] = None) -> bool:
    """Check the minimality conditions of Section 3.3 on an already-normalised set."""
    sigma = list(cfds)
    for cfd in sigma:
        if not cfd.is_normal_form():
            return False
        remaining = [other for other in sigma if other is not cfd]
        if remaining and implies(remaining, cfd, schema):
            return False
        for attribute in cfd.lhs:
            reduced = _drop_lhs_attribute(cfd, attribute)
            if implies(sigma, reduced, schema):
                return False
    return True
