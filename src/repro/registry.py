"""Named registries of detection and repair backends.

This module replaces the stringly-typed ``method=`` dispatch that used to be
hard-coded into :func:`repro.detection.engine.detect_violations` and
:func:`repro.repair.heuristic.repair`.  Backends are plain callables keyed by
name:

* a **detector** maps ``(relation, cfds, config)`` to a
  :class:`~repro.core.violations.ViolationReport`;
* a **repair engine** maps ``(relation, cfds, config)`` to an engine object
  exposing ``relation``, ``report()`` and ``update(index, attribute, value)``
  — the protocol the greedy repair loop drives (see
  :mod:`repro.repair.heuristic`) — or, for *self-driving* engines, a single
  ``run(cost_model)`` method that owns the whole fixpoint and returns the
  :class:`~repro.repair.heuristic.RepairResult` itself (the sharded
  parallel engine works this way).

The built-in backends register themselves when their home modules import
(``repro.detection.engine`` registers ``inmemory``/``sql``/``indexed``;
``repro.repair.heuristic`` registers ``scan``/``indexed``/``incremental``;
``repro.parallel`` registers ``parallel`` for both kinds);
user code adds its own with the same decorators:

>>> from repro.registry import register_detector, unregister_detector
>>> @register_detector("noop")
... def detect_nothing(relation, cfds, config):
...     from repro.core.violations import ViolationReport
...     return ViolationReport()
>>> unregister_detector("noop")

The special name ``"auto"`` is not a backend: :func:`resolve_detector` and
:func:`resolve_repairer` translate it to a concrete registered name from the
workload shape (relation size x pattern count), mirroring the dynamic
strategy-selection idea the ISSUE cites.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Sequence, Tuple, TypeVar

from repro.config import AUTO
from repro.core.cfd import CFD
from repro.errors import RegistryError
from repro.relation.columnar import ColumnStore
from repro.relation.mmap_store import MmapColumnStore, chunk_rows_for_budget
from repro.relation.relation import Relation

_Backend = TypeVar("_Backend", bound=Callable)

_DETECTORS: Dict[str, Callable] = {}
_REPAIRERS: Dict[str, Callable] = {}
_ANALYSIS_CHECKS: Dict[str, Callable] = {}

#: Workload size (rows x pattern tuples) below which full re-scans win.
#: Detection: the in-memory oracle beats building partition maps on tiny
#: inputs.  Repair: rebuilding indexes per pass is fine on tiny inputs, the
#: delta-maintained state only pays off once the product grows past this.
AUTO_CELL_THRESHOLD = 50_000

def _parallel_threshold_from_env(default: int = 150_000) -> int:
    """Parse ``REPRO_PARALLEL_AUTO_ROWS``, falling back on garbage.

    An unparsable value must not make ``import repro`` itself crash with a
    raw ``ValueError`` (this runs at import time); mirror the forgiving
    behaviour of ``REPRO_BENCH_SCALE`` and keep the default instead.
    """
    raw = os.environ.get("REPRO_PARALLEL_AUTO_ROWS")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else default


#: Relation size (rows) above which ``method="auto"`` escalates to the
#: sharded parallel backend for both detection and repair.  Below it, the
#: per-shard pickling and process start-up would eat the win; above it, the
#: per-shard work dominates and the pool pays for itself.  Configurable via
#: the ``REPRO_PARALLEL_AUTO_ROWS`` environment variable (read at import) or
#: by assigning the module attribute (read at every selection).
PARALLEL_AUTO_ROW_THRESHOLD = _parallel_threshold_from_env()

#: Built-in detection backends whose hot loops consume the columnar code
#: protocol.  The oracle and the SQL backend read rows either way; converting
#: for them would only add decode overhead.
COLUMNAR_DETECTORS = frozenset({"indexed", "parallel"})

#: Built-in repair engines whose detection layer is columnar-capable.  The
#: scan engine is the row-semantics correctness baseline and stays on rows.
COLUMNAR_REPAIRERS = frozenset({"indexed", "incremental", "parallel"})


def apply_storage(
    relation: Relation,
    storage: str,
    columnar_capable: bool,
    spill_dir: Optional[str] = None,
    memory_budget_mb: Optional[int] = None,
) -> Relation:
    """The relation in the storage layer the resolved backend should see.

    ``storage`` is an *effective* storage name
    (:attr:`repro.config.DetectionConfig.effective_storage`).  Columnar-
    capable backends get the requested layer — ``REPRO_STORAGE=rows``
    genuinely pins the legacy path for cross-checking, and ``"mmap"``
    spills the code columns to memory-mapped files under ``spill_dir``
    (``memory_budget_mb`` sizes the ingestion chunks).  A
    :class:`~repro.relation.mmap_store.MmapColumnStore` passes a
    ``"columnar"`` request through unchanged — it *is* a column store, and
    decoding it back into memory would defeat the out-of-core point.
    Row-reading backends (the scan oracle, the SQL loader) always get
    materialised rows: one decode pass here is far cheaper than the
    per-cell decode their full scans would otherwise pay against an encoded
    relation.  When no conversion is needed the relation is returned as-is
    (callers that must not share state copy afterwards, as
    :func:`repro.repair.heuristic.repair` does).
    """
    if columnar_capable:
        if storage == "columnar" and not isinstance(relation, ColumnStore):
            return ColumnStore.from_relation(relation)
        if storage == "mmap" and not isinstance(relation, MmapColumnStore):
            return MmapColumnStore.from_relation(
                relation,
                spill_dir=spill_dir,
                chunk_rows=(
                    chunk_rows_for_budget(memory_budget_mb, len(relation.schema))
                    if memory_budget_mb is not None
                    else None
                ),
            )
        if storage == "rows" and isinstance(relation, ColumnStore):
            return Relation.from_validated_rows(relation.schema, relation)
        return relation
    if isinstance(relation, ColumnStore):
        return Relation.from_validated_rows(relation.schema, relation)
    return relation


def apply_kernel(kernel: Optional[str]):
    """Context manager activating the kernel a resolved backend should use.

    The kernel counterpart of :func:`apply_storage`: ``kernel`` is an
    *effective* kernel name (:attr:`repro.config.DetectionConfig.effective_kernel`
    — possibly still ``"auto"``, possibly ``None`` to defer to
    ``REPRO_KERNEL``).  Dispatch sites wrap their backend call in it so every
    hot loop underneath — partition grouping, ``Q^C``/``Q^V`` checks, the
    repair vote — computes through the same kernel.  Kernels are
    byte-identical by contract (``tests/integration/test_kernel_agreement.py``),
    so this is a speed knob, never a semantics knob.  Raises
    :class:`~repro.errors.ConfigError` when an explicitly requested kernel is
    not importable (``"auto"`` degrades instead).
    """
    from repro.kernels import use_kernel

    return use_kernel(kernel)


def _ensure_builtins() -> None:
    """Import the modules whose import side-effect registers the built-ins."""
    import repro.detection.engine  # noqa: F401
    import repro.parallel.engine  # noqa: F401
    import repro.parallel.repairer  # noqa: F401
    import repro.repair.heuristic  # noqa: F401


def _ensure_analysis_builtins() -> None:
    """Import the built-in analysis checks (deferred: they import back here)."""
    import repro.analysis.checks  # noqa: F401


def _register(table: Dict[str, Callable], kind: str, name: str, replace: bool):
    if name == AUTO:
        raise RegistryError(f'"{AUTO}" is reserved for automatic backend selection')

    def decorator(fn: _Backend) -> _Backend:
        if not replace and name in table:
            raise RegistryError(
                f"a {kind} named {name!r} is already registered; "
                f"pass replace=True to overwrite it"
            )
        table[name] = fn
        return fn

    return decorator


def register_detector(name: str, *, replace: bool = False):
    """Decorator registering a detection backend under ``name``."""
    return _register(_DETECTORS, "detector", name, replace)


def register_repairer(name: str, *, replace: bool = False):
    """Decorator registering a repair engine factory under ``name``."""
    return _register(_REPAIRERS, "repairer", name, replace)


def register_analysis_check(name: str, *, replace: bool = False):
    """Decorator registering a static-analysis check under ``name``.

    A check is a callable ``check(ctx)`` taking an
    :class:`repro.analysis.AnalysisContext` and yielding
    :class:`repro.analysis.Diagnostic` findings.  The built-in checks
    (``repro.analysis.checks``) register themselves this way; backends that
    ship their own hazard analyses use the same decorator:

    >>> from repro.registry import register_analysis_check, unregister_analysis_check
    >>> @register_analysis_check("my-hazard")
    ... def my_hazard(ctx):
    ...     return []
    >>> unregister_analysis_check("my-hazard")
    """
    return _register(_ANALYSIS_CHECKS, "analysis check", name, replace)


def unregister_analysis_check(name: str) -> None:
    """Remove a registered analysis check (primarily for tests)."""
    _ANALYSIS_CHECKS.pop(name, None)


def analysis_check_names() -> Tuple[str, ...]:
    """Every registered analysis check name, sorted."""
    _ensure_analysis_builtins()
    return tuple(sorted(_ANALYSIS_CHECKS))


def get_analysis_check(name: str) -> Callable:
    """The analysis check registered under ``name``."""
    _ensure_analysis_builtins()
    try:
        return _ANALYSIS_CHECKS[name]
    except KeyError:
        raise RegistryError(
            f"unknown analysis check {name!r}; expected one of "
            f"{', '.join(map(repr, analysis_check_names()))}"
        ) from None


def unregister_detector(name: str) -> None:
    """Remove a registered detector (primarily for tests)."""
    _DETECTORS.pop(name, None)


def unregister_repairer(name: str) -> None:
    """Remove a registered repair engine (primarily for tests)."""
    _REPAIRERS.pop(name, None)


def detector_names() -> Tuple[str, ...]:
    """Every registered detection backend name, sorted."""
    _ensure_builtins()
    return tuple(sorted(_DETECTORS))


def repairer_names() -> Tuple[str, ...]:
    """Every registered repair engine name, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REPAIRERS))


def get_detector(name: str) -> Callable:
    """The detection backend registered under ``name`` (not ``"auto"``)."""
    _ensure_builtins()
    try:
        return _DETECTORS[name]
    except KeyError:
        raise RegistryError(
            f"unknown detection method {name!r}; expected one of "
            f"{', '.join(map(repr, detector_names() + (AUTO,)))}"
        ) from None


def get_repairer(name: str) -> Callable:
    """The repair engine factory registered under ``name`` (not ``"auto"``)."""
    _ensure_builtins()
    try:
        return _REPAIRERS[name]
    except KeyError:
        raise RegistryError(
            f"unknown repair method {name!r}; expected one of "
            f"{', '.join(map(repr, repairer_names() + (AUTO,)))}"
        ) from None


# ---------------------------------------------------------------------------
# automatic backend selection
# ---------------------------------------------------------------------------
def _workload_cells(relation: Relation, cfds: Sequence[CFD]) -> int:
    patterns = sum(len(cfd.tableau) for cfd in cfds)
    return len(relation) * max(1, patterns)


def select_detection_method(relation: Relation, cfds: Sequence[CFD]) -> str:
    """The backend ``method="auto"`` resolves to for this detection workload.

    The oracle scans the relation once per pattern tuple — ``O(rows x
    patterns)`` — so on small products it beats paying the partition-map
    build; past :data:`AUTO_CELL_THRESHOLD` the indexed backend's one
    grouping pass per distinct LHS set wins; past
    :data:`PARALLEL_AUTO_ROW_THRESHOLD` rows the workload is sharded over a
    process pool.
    """
    if len(relation) > PARALLEL_AUTO_ROW_THRESHOLD:
        return "parallel"
    if _workload_cells(relation, cfds) <= AUTO_CELL_THRESHOLD:
        return "inmemory"
    return "indexed"


def select_repair_method(relation: Relation, cfds: Sequence[CFD]) -> str:
    """The engine ``method="auto"`` resolves to for this repair workload.

    Small products re-detect from scratch cheaply (over partition indexes);
    large ones amortise the one-off ingest of the delta-maintained
    incremental state across passes; past
    :data:`PARALLEL_AUTO_ROW_THRESHOLD` rows whole equivalence classes are
    repaired concurrently in a process pool.
    """
    if len(relation) > PARALLEL_AUTO_ROW_THRESHOLD:
        return "parallel"
    if _workload_cells(relation, cfds) <= AUTO_CELL_THRESHOLD:
        return "indexed"
    return "incremental"


def resolve_detector(
    method: str, relation: Optional[Relation] = None, cfds: Sequence[CFD] = ()
) -> Tuple[str, Callable]:
    """Resolve ``method`` (possibly ``"auto"``) to ``(name, backend)``.

    ``"auto"`` requires ``relation`` so the workload shape can be inspected.
    """
    if method == AUTO:
        if relation is None:
            raise RegistryError('method="auto" needs the relation to pick a backend')
        method = select_detection_method(relation, cfds)
    return method, get_detector(method)


def resolve_repairer(
    method: str, relation: Optional[Relation] = None, cfds: Sequence[CFD] = ()
) -> Tuple[str, Callable]:
    """Resolve ``method`` (possibly ``"auto"``) to ``(name, engine factory)``."""
    if method == AUTO:
        if relation is None:
            raise RegistryError('method="auto" needs the relation to pick a backend')
        method = select_repair_method(relation, cfds)
    return method, get_repairer(method)
