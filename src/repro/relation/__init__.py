"""In-memory relational substrate: attributes, schemas, relations, CSV I/O."""

from repro.relation.attribute import Attribute
from repro.relation.relation import Relation
from repro.relation.schema import Schema

__all__ = ["Attribute", "Relation", "Schema"]
