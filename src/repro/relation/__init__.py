"""In-memory relational substrate: attributes, schemas, relations, CSV I/O.

Two storage layers share the :class:`Relation` API: the legacy list of row
tuples and the dictionary-encoded :class:`ColumnStore` (one integer code
column per attribute) that the hot detection/repair/sharding paths consume
directly.  See ``docs/columnar.md``.
"""

from repro.relation.attribute import Attribute
from repro.relation.columnar import ColumnStore
from repro.relation.relation import Relation
from repro.relation.schema import Schema

__all__ = ["Attribute", "ColumnStore", "Relation", "Schema"]
