"""Attributes of a relation schema.

The paper distinguishes attributes with *finite* domains (e.g. ``bool``)
from attributes with unbounded domains because finite domains are what make
CFD consistency and implication intractable (Theorems 3.1 and 3.4).  An
:class:`Attribute` therefore optionally carries an explicit finite domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Optional

from repro.errors import DomainError, SchemaError


@dataclass(frozen=True)
class Attribute:
    """A named attribute, optionally restricted to a finite domain.

    Parameters
    ----------
    name:
        Attribute name.  Must be a non-empty string.
    domain:
        Optional finite domain.  ``None`` (the default) means the attribute
        ranges over an unbounded (countably infinite) domain, which is the
        standard assumption for string/numeric columns.
    dtype:
        Python type used when parsing values from text (CSV files or SQL
        results).  Defaults to ``str``.
    """

    name: str
    domain: Optional[FrozenSet[Any]] = None
    dtype: type = str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")
        if self.domain is not None:
            object.__setattr__(self, "domain", frozenset(self.domain))
            if not self.domain:
                raise DomainError(f"attribute {self.name!r} declared with an empty finite domain")

    @property
    def has_finite_domain(self) -> bool:
        """Whether the attribute was declared with an explicit finite domain."""
        return self.domain is not None

    def admits(self, value: Any) -> bool:
        """Return ``True`` when ``value`` belongs to the attribute's domain."""
        if self.domain is None:
            return True
        return value in self.domain

    def check(self, value: Any) -> Any:
        """Validate ``value`` against the domain and return it unchanged.

        Raises
        ------
        DomainError
            If the attribute has a finite domain and ``value`` is not in it.
        """
        if not self.admits(value):
            raise DomainError(
                f"value {value!r} is not in the finite domain of attribute {self.name!r}"
            )
        return value

    def parse(self, text: str) -> Any:
        """Parse a textual value (e.g. a CSV cell) into the attribute's dtype."""
        if self.dtype is str:
            return text
        if self.dtype is bool:
            lowered = text.strip().lower()
            if lowered in ("true", "1", "t", "yes"):
                return True
            if lowered in ("false", "0", "f", "no"):
                return False
            raise DomainError(f"cannot parse {text!r} as a boolean for attribute {self.name!r}")
        try:
            return self.dtype(text)
        except (TypeError, ValueError) as exc:
            raise DomainError(
                f"cannot parse {text!r} as {self.dtype.__name__} for attribute {self.name!r}"
            ) from exc

    def __str__(self) -> str:
        return self.name


def bool_attribute(name: str) -> Attribute:
    """Convenience constructor for a boolean attribute (finite domain)."""
    return Attribute(name, domain=frozenset({True, False}), dtype=bool)


def enum_attribute(name: str, values: Any) -> Attribute:
    """Convenience constructor for a finite string-valued attribute."""
    return Attribute(name, domain=frozenset(values), dtype=str)
