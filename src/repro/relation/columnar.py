"""Dictionary-encoded columnar storage behind the :class:`Relation` API.

Every engine in the repo ultimately asks equality questions — *which tuples
agree on these attributes?* (the heart of the paper's ``Q^C``/``Q^V``
violation queries) — and with row storage each pass pays Python-object
hashing per cell.  A :class:`ColumnStore` holds the relation column-wise and
dictionary-encodes each attribute at most once:

* per attribute, a **dictionary** maps each distinct value to a dense
  integer *code* (``value → code``) and back (``code → value``);
* the attribute's cells become one **code column** — an ``array('i')`` of
  small ints, not a slice of value tuples.

Work is **lazy per column**.  Adopting an existing row block
(:meth:`from_validated_rows`, :meth:`from_relation`) keeps the rows as a
*pending* block; a column is split out of it only when touched, and
dictionary-encoded only when something asks for its codes — which in
practice means exactly the attributes some CFD groups or checks on.  A
near-unique free-text column that no constraint mentions is never extracted,
let alone encoded; it would cost a dictionary as large as the column and buy
nothing.  Extraction and encoding change no observable content, so neither
bumps the mutation :attr:`~Relation.version`.

Two properties make the encoding invisible to everything above it:

1. **Bijection per attribute** — two cells hold equal values *iff* they hold
   equal codes, so grouping, distinct-counting and equality filtering can run
   entirely over codes (int hashing, or no hashing at all for single-column
   grouping) and still produce byte-identical answers.
2. **Code stability** — a code, once assigned, always decodes to the same
   value.  Updates swap one cell's code (appending a dictionary entry when
   the value is new); they never renumber.  Dictionary entries orphaned by
   updates or deletes are left in place rather than compacted — stale entries
   cost a little memory, renumbering would invalidate every live code.

The class subclasses :class:`Relation` and overrides every accessor and
mutator, so all existing call sites keep working; the hot layers
(:mod:`repro.detection.partition_index`, :mod:`repro.repair.incremental`,
:mod:`repro.parallel.sharding`) detect the columnar storage and consume the
fast-path protocol — :meth:`codes`, :meth:`project_codes`, :meth:`encode`,
:meth:`decode`, :meth:`group_indices` — directly.  ``docs/columnar.md``
covers the encoding model, the invariants above, and when the row backend
still wins.
"""

from __future__ import annotations

from array import array
from operator import itemgetter
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import SchemaError
from repro.kernels import active_kernel
from repro.relation.relation import Relation, Row
from repro.relation.schema import Schema


class ColumnStore(Relation):
    """A relation stored as lazily dictionary-encoded columns.

    Drop-in replacement for :class:`Relation` (same constructor, same
    methods, equality across storage classes compares decoded rows), plus
    the code-level protocol the hot layers use.

    Each column is in one of three states, promoted on demand and never
    demoted: *pending* (served from the adopted row block), *raw* (its own
    value list), or *encoded* (code array + dictionary).  A cell written to
    a column leaves its stale copy in the pending block; reads of that
    column come from its own storage from then on, so the staleness is
    unobservable.

    >>> from repro.relation.schema import Schema
    >>> store = ColumnStore(Schema("r", ["A", "B"]), [("x", 1), ("y", 2), ("x", 2)])
    >>> store[2]
    ('x', 2)
    >>> list(store.codes("A"))
    [0, 1, 0]
    >>> store.decode("A", 1)
    'y'
    >>> store == Relation(Schema("r", ["A", "B"]), [("x", 1), ("y", 2), ("x", 2)])
    True
    """

    __slots__ = ("_pending", "_raw", "_codes", "_values", "_value_maps", "_length")

    def __init__(
        self,
        schema: Schema,
        rows: Optional[Iterable[Union[Row, Mapping[str, Any]]]] = None,
    ) -> None:
        self._schema = schema
        self._version = 0
        width = len(schema)
        #: The adopted-but-unsplit row block; ``None`` once every column owns
        #: its cells (or when the store was built row by row).
        self._pending: Optional[List[Row]] = None
        #: Per column: the raw value list, ``None`` while pending or encoded.
        self._raw: List[Optional[List[Any]]] = [[] for _ in range(width)]
        self._codes: List[Optional[array]] = [None] * width
        self._values: List[List[Any]] = [[] for _ in range(width)]
        self._value_maps: List[Dict[Any, int]] = [{} for _ in range(width)]
        self._length = 0
        if rows is not None:
            self.extend(rows)

    # ------------------------------------------------------------------ lazy states
    def _extract_raw(self, position: int) -> List[Any]:
        """The raw value list of a not-yet-encoded column, splitting it out
        of the pending block on first demand."""
        raw = self._raw[position]
        if raw is None:
            raw = list(map(itemgetter(position), self._pending))
            self._raw[position] = raw
        return raw

    def _ensure_encoded(self, position: int) -> array:
        """The code column at ``position``, encoding it on first demand.

        Three C-level passes over the column: ``dict.fromkeys`` discovers the
        dictionary in first-occurrence order (the same order incremental
        interning would assign), a comprehension builds the code map, and a
        mapped ``array`` fill writes the codes.  Encoding never changes
        observable content, so the mutation version is untouched.
        """
        codes = self._codes[position]
        if codes is not None:
            return codes
        raw = self._raw[position]
        if raw is None:
            raw = list(map(itemgetter(position), self._pending))
        values = list(dict.fromkeys(raw))
        value_map = {value: code for code, value in enumerate(values)}
        codes = array("i", map(value_map.__getitem__, raw))
        self._values[position] = values
        self._value_maps[position] = value_map
        self._codes[position] = codes
        self._raw[position] = None
        return codes

    def is_encoded(self, attribute: str) -> bool:
        """Whether ``attribute``'s column has been dictionary-encoded yet."""
        return self._codes[self._schema.position(attribute)] is not None

    def _intern(self, position: int, value: Any) -> int:
        """The code of ``value`` in an *encoded* column, assigning one if new."""
        code = self._value_maps[position].get(value, -1)
        if code < 0:
            values = self._values[position]
            code = len(values)
            self._value_maps[position][value] = code
            values.append(value)
        return code

    def _column_values(self, position: int) -> Sequence[Any]:
        """The column at ``position`` as values (no copy where avoidable)."""
        codes = self._codes[position]
        if codes is not None:
            return list(map(self._values[position].__getitem__, codes))
        raw = self._raw[position]
        if raw is not None:
            return raw
        return list(map(itemgetter(position), self._pending))

    # ------------------------------------------------------------------ basics
    @property
    def rows(self) -> Tuple[Row, ...]:
        """A decoded snapshot of all rows as positional tuples."""
        return tuple(self)

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Row]:
        if self._length == 0:
            return iter(())
        if self._pending is not None and all(
            codes is None and raw is None
            for codes, raw in zip(self._codes, self._raw)
        ):
            # Nothing split out yet: the pending block *is* the rows.
            return iter(self._pending)
        return zip(
            *(self._column_values(position) for position in range(len(self._schema)))
        )

    def __getitem__(self, index: int) -> Row:
        cells = []
        pending = self._pending
        for position in range(len(self._schema)):
            codes = self._codes[position]
            if codes is not None:
                cells.append(self._values[position][codes[index]])
                continue
            raw = self._raw[position]
            if raw is not None:
                cells.append(raw[index])
            else:
                cells.append(pending[index][position])
        return tuple(cells)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self._schema != other.schema or self._length != len(other):
            return False
        return all(mine == theirs for mine, theirs in zip(self, other))

    def __repr__(self) -> str:
        encoded = sum(1 for codes in self._codes if codes is not None)
        entries = sum(len(values) for values in self._values)
        return (
            f"ColumnStore({self._schema.name!r}, {self._length} rows, "
            f"{encoded}/{len(self._schema)} columns encoded, "
            f"{entries} dictionary entries)"
        )

    # ------------------------------------------------------------------ mutation
    def insert(self, row: Union[Row, Sequence[Any], Mapping[str, Any]]) -> int:
        """Insert a row given positionally or as a mapping; return its index."""
        self._append_validated(self._coerce(row))
        self._version += 1
        return self._length - 1

    def update(self, index: int, attribute: str, value: Any) -> None:
        """Set ``attribute`` of the row at ``index`` to ``value`` (a code swap)."""
        position = self._schema.position(attribute)
        self._schema[attribute].check(value)
        codes = self._codes[position]
        if codes is None:
            raw = self._extract_raw(position)
            raw[index] = value  # IndexError on a bad index, like the row backend
        else:
            # Probe the array bound first: an out-of-range index must fail
            # the way the row backend does, before a dictionary entry is
            # created for a value that never lands.
            codes[index]
            codes[index] = self._intern(position, value)
        self._version += 1

    def delete(self, index: int) -> Row:
        """Remove and return the row at ``index``.

        As on :class:`Relation`, this invalidates any live index built over
        the relation; the version bump turns their next read into a
        :class:`~repro.errors.DetectionError`.  Dictionary entries that lose
        their last reference are kept (code stability beats compaction).
        """
        row = self[index]
        if self._pending is not None:
            self._pending.pop(index)
        for position in range(len(self._schema)):
            codes = self._codes[position]
            if codes is not None:
                codes.pop(index)
                continue
            raw = self._raw[position]
            if raw is not None:
                raw.pop(index)
        self._length -= 1
        self._version += 1
        return row

    def _append_validated(self, values: Row) -> None:
        if self._pending is not None:
            # The pending block keeps serving the columns not yet split out;
            # split-out columns get their cell directly (their pending copy
            # is stale and never read).
            self._pending.append(tuple(values))
        for position, value in enumerate(values):
            codes = self._codes[position]
            if codes is not None:
                codes.append(self._intern(position, value))
                continue
            raw = self._raw[position]
            if raw is not None:
                raw.append(value)
        self._length += 1

    # ------------------------------------------------------------------ access
    def value(self, index: int, attribute: str) -> Any:
        """The value of ``attribute`` in the row at ``index``."""
        position = self._schema.position(attribute)
        codes = self._codes[position]
        if codes is not None:
            return self._values[position][codes[index]]
        raw = self._raw[position]
        if raw is not None:
            return raw[index]
        return self._pending[index][position]

    def row_dict(self, index: int) -> Dict[str, Any]:
        """The row at ``index`` as an attribute-name → value mapping."""
        return dict(zip(self._schema.names, self[index]))

    def project_row(self, index: int, attributes: Sequence[str]) -> Row:
        """Project the row at ``index`` onto ``attributes`` (positional result)."""
        return tuple(self.value(index, attribute) for attribute in attributes)

    # ------------------------------------------------------------------ the code protocol
    def codes(self, attribute: str) -> array:
        """The live code column of ``attribute`` (treat as read-only).

        Encodes the column on first demand.  Aligned with tuple indices:
        ``codes(A)[i]`` is the code of tuple ``i``'s ``A`` cell.  The array
        object is stable across updates (cells are swapped in place), so hot
        loops may hold it across a detection pass; inserts and deletes resize
        it, which the version counter turns into a loud consumer-side error.
        """
        return self._ensure_encoded(self._schema.position(attribute))

    def project_codes(self, attributes: Sequence[str]) -> Tuple[array, ...]:
        """The code columns of ``attributes``, aligned with the given order."""
        return tuple(self.codes(attribute) for attribute in attributes)

    def encode(self, attribute: str, value: Any) -> Optional[int]:
        """The code of ``value`` in ``attribute``'s dictionary, or ``None``.

        ``None`` means the value occurs nowhere in the column's history — a
        constant pattern looking for it can only match nothing.
        """
        position = self._schema.position(attribute)
        self._ensure_encoded(position)
        return self._value_maps[position].get(value)

    def decode(self, attribute: str, code: int) -> Any:
        """The value a code stands for in ``attribute``'s dictionary."""
        return self._values[self._schema.position(attribute)][code]

    def dictionary(self, attribute: str) -> Tuple[Any, ...]:
        """The dictionary of ``attribute``: position ``c`` decodes code ``c``.

        May contain entries no live cell references (see the module notes on
        code stability); :meth:`active_domain` reports occurring values only.
        """
        position = self._schema.position(attribute)
        self._ensure_encoded(position)
        return tuple(self._values[position])

    def dictionary_size(self, attribute: str) -> int:
        """Number of dictionary entries (assigned codes) of ``attribute``."""
        position = self._schema.position(attribute)
        self._ensure_encoded(position)
        return len(self._values[position])

    def dictionary_version(self, attribute: str) -> int:
        """A counter that changes exactly when ``attribute``'s dictionary grows.

        Dictionaries are append-only (codes are never renumbered), so the
        entry count *is* a version: any cached artifact derived from the
        dictionary — an encoded constant, a code-pair distance memo — stays
        valid while this number stands still, and existing entries stay
        valid even across growth.  The repair layer keys its per-evaluation
        caches on this instead of re-encoding every call.
        """
        return self.dictionary_size(attribute)

    def group_indices(
        self,
        attributes: Sequence[str],
        start: int = 0,
        stop: Optional[int] = None,
    ) -> Iterator[Tuple[Row, List[int]]]:
        """Group the row indices in ``[start, stop)`` by their projection.

        The grouping pass runs entirely over codes — delegated to the active
        kernel (:func:`repro.kernels.active_kernel`) — and each group key is
        decoded to values exactly once at the end, so the yielded
        ``(value_key, indices)`` pairs are indistinguishable from
        :meth:`Relation.group_by` output: same keys, same members in
        ascending row order, same first-occurrence iteration order.  This is
        the pass behind the partition-indexed detector and the sharding
        planner on columnar storage.
        """
        positions = self._schema.positions(attributes)
        if stop is None:
            stop = self._length
        if not positions:
            # A pattern whose LHS is all don't-care groups every tuple
            # together (the row backend's key is () for every row).
            if stop > start:
                yield (), list(range(start, stop))
            return
        columns = [self._ensure_encoded(position) for position in positions]
        value_lists = [self._values[position] for position in positions]
        sizes = [len(values) for values in value_lists]
        kernel = active_kernel()
        for key_codes, members in kernel.group_codes(columns, start, stop, sizes=sizes):
            yield (
                tuple(values[code] for values, code in zip(value_lists, key_codes)),
                members,
            )

    # ------------------------------------------------------------------ algebra
    def project(self, attributes: Sequence[str], distinct: bool = False) -> ColumnStore:
        """Project onto ``attributes``; optionally de-duplicate the result."""
        projected_schema = self._schema.project(attributes)
        positions = self._schema.positions(attributes)
        result = ColumnStore(projected_schema)
        if not distinct:
            for target, position in enumerate(positions):
                self._copy_column(position, result, target, None)
            result._length = self._length
            return result
        # Distinct over code tuples is distinct over value tuples (bijection),
        # keeping first occurrences in row order like the row backend.
        seen = set()
        keep: List[int] = []
        key_columns = [self._ensure_encoded(position) for position in positions]
        for index, key in enumerate(zip(*key_columns)):
            if key in seen:
                continue
            seen.add(key)
            keep.append(index)
        for target, position in enumerate(positions):
            self._copy_column(position, result, target, keep)
        result._length = len(keep)
        return result

    def group_by(self, attributes: Sequence[str]) -> Dict[Row, List[int]]:
        """Group row indices by their projection onto ``attributes``."""
        return dict(self.group_indices(attributes))

    def _copy_column(
        self,
        position: int,
        target_store: ColumnStore,
        target_position: int,
        indices: Optional[Sequence[int]],
    ) -> None:
        """Copy one column into ``target_store``, preserving its encoding state.

        ``indices`` of ``None`` copies the column whole; otherwise the listed
        rows are gathered in order.  Encoded columns travel as code arrays
        plus copied dictionaries (codes stay valid even when the subset
        references only part of the dictionary); raw and pending columns
        travel as value lists.
        """
        codes = self._codes[position]
        if codes is not None:
            target_store._raw[target_position] = None
            target_store._codes[target_position] = (
                codes[:]
                if indices is None
                else array("i", (codes[index] for index in indices))
            )
            target_store._values[target_position] = list(self._values[position])
            target_store._value_maps[target_position] = dict(self._value_maps[position])
            return
        raw = self._raw[position]
        if raw is None:
            cell = itemgetter(position)
            pending = self._pending
            column = (
                list(map(cell, pending))
                if indices is None
                else [cell(pending[index]) for index in indices]
            )
        else:
            column = list(raw) if indices is None else [raw[index] for index in indices]
        target_store._raw[target_position] = column

    def copy(self) -> ColumnStore:
        """An independent copy sharing no mutable state.

        Column states are preserved: copying must not force a split or an
        encode the original never needed.
        """
        return self._gather(None)

    def take(self, indices: Sequence[int]) -> ColumnStore:
        """The rows at ``indices``, in that order, as a new column store.

        Encoded columns are gathered code-wise with their dictionaries copied
        as-is, so a shard of an encoded relation ships to a worker process as
        small int arrays plus one dictionary per attribute — not as
        re-materialised value tuples.  A still-pending block is gathered in
        one row pass and stays pending in the result.
        """
        return self._gather(list(indices))

    def _gather(self, indices: Optional[List[int]]) -> ColumnStore:
        """A new store with all rows (``None``) or the rows at ``indices``,
        every column keeping its current state."""
        clone = ColumnStore(self._schema)
        pending = self._pending
        if pending is not None:
            clone._pending = (
                list(pending)
                if indices is None
                else [pending[index] for index in indices]
            )
        clone._raw = [None] * len(self._schema)
        for position in range(len(self._schema)):
            codes = self._codes[position]
            raw = self._raw[position]
            if codes is not None:
                clone._codes[position] = (
                    codes[:]
                    if indices is None
                    else array("i", (codes[index] for index in indices))
                )
                clone._values[position] = list(self._values[position])
                clone._value_maps[position] = dict(self._value_maps[position])
            elif raw is not None:
                clone._raw[position] = (
                    list(raw) if indices is None else [raw[index] for index in indices]
                )
        clone._length = self._length if indices is None else len(indices)
        return clone

    @classmethod
    def from_validated_rows(cls, schema: Schema, rows: Iterable[Row]) -> ColumnStore:
        """Adopt positional rows already validated for ``schema``.

        Adoption is O(1) per row (the block is kept pending); each column is
        split out and dictionary-encoded only when something asks for it.
        That is what makes "encode at ingestion" affordable even for wide
        relations: the per-cell dictionary cost is paid only for the
        attributes the workload actually groups or checks on.
        """
        store = cls(schema)
        materialised = list(rows)
        if not materialised:
            return store
        if len(materialised[0]) != len(schema):
            raise SchemaError(
                f"validated rows have {len(materialised[0])} values but schema "
                f"{schema.name!r} has {len(schema)} attributes"
            )
        store._pending = materialised
        store._raw = [None] * len(schema)
        store._length = len(materialised)
        return store

    @classmethod
    def from_relation(cls, relation: Relation) -> ColumnStore:
        """Columnar view of an existing relation (rows trusted, no re-coercion)."""
        if isinstance(relation, ColumnStore):
            return relation.copy()
        return cls.from_validated_rows(relation.schema, relation)

    def active_domain(self, attribute: str) -> Tuple[Any, ...]:
        """Distinct values of ``attribute`` occurring in the relation, sorted."""
        position = self._schema.position(attribute)
        codes = self._codes[position]
        if codes is not None:
            values = self._values[position]
            occurring = {values[code] for code in set(codes)}
        else:
            occurring = set(self._column_values(position))
        try:
            return tuple(sorted(occurring))
        except TypeError:
            return tuple(sorted(occurring, key=repr))
