"""Memory-mapped columnar storage: code columns that live on disk.

A :class:`MmapColumnStore` is a :class:`~repro.relation.columnar.ColumnStore`
whose encoded code columns are backed by files in a per-run *spill
directory* and accessed through memory maps — ``numpy.memmap`` when the
``[fast]`` extra is installed, a raw :mod:`mmap` viewed as a
``memoryview("i")`` otherwise.  The dictionaries (value ↔ code) stay in
memory: they grow with the number of *distinct* values, not with the number
of rows, so a 10M-row relation costs the process its dictionaries plus one
ingestion chunk of Python objects — the O(rows) payload lives in the page
cache, where the OS can evict it under memory pressure.

Differences from the in-memory parent, none of them observable through the
:class:`~repro.relation.relation.Relation` API:

* **always encoded** — there is no pending or raw column state; every
  column is a mapped code array from the first row on (an empty relation
  holds empty ``array('i')`` placeholders, since a zero-length file cannot
  be mapped);
* **chunked ingestion** — :meth:`extend` interns rows into small in-memory
  buffers and flushes them to the column files every ``chunk_rows`` rows,
  so the full relation is never materialised as Python rows;
* **append = grow + remap** — inserts append bytes to the same column file
  and remap it (the file only ever grows, so any older, shorter map other
  code still holds stays valid);
* **delete = new generation** — deletes rewrite the column into a fresh
  ``col<p>.<gen>.bin`` and unlink the old file instead of truncating it in
  place (truncating a mapped file is a ``SIGBUS`` waiting to happen);
  unlinking while mapped is safe — live maps keep serving off the unlinked
  pages.

Spill layout and lifecycle (``docs/out_of_core.md`` has the full model):
every store owns one run directory ``run-<pid>-<seq>`` under a base that
resolves explicit argument → ``REPRO_SPILL_DIR`` → the system temp
directory.  Anonymous (temp-based) runs are removed by a ``weakref``
finalizer when the store is garbage collected; runs under an explicit base
are user-managed — :meth:`MmapColumnStore.release` (or the
:func:`spill_run` context manager) removes them on success, and a crash
preserves them for debugging.  The ``pid``/counter naming keeps concurrent
processes and concurrent stores in one process isolated from each other.
"""

from __future__ import annotations

import contextlib
import itertools
import mmap
import os
import shutil
import tempfile
import weakref
from array import array
from pathlib import Path
from typing import (
    Any,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import SchemaError
from repro.kernels import numpy_available
from repro.relation.columnar import ColumnStore
from repro.relation.relation import Relation, Row
from repro.relation.schema import Schema

#: Environment variable naming the spill base directory (the middle rung of
#: the resolution chain: explicit argument → this variable → system tempdir).
SPILL_ENV = "REPRO_SPILL_DIR"

#: Rows interned into the in-memory buffers between flushes to the column
#: files during chunked ingestion.  The per-chunk memory is what bounds the
#: resident cost of building an arbitrarily large store.
DEFAULT_CHUNK_ROWS = 65_536

#: Rough resident bytes per cell while a chunk of Python-object rows is in
#: flight (the row tuple, its cells, and the interning buffer entry).  Used
#: by :func:`chunk_rows_for_budget` to turn a memory budget into a chunk
#: size; deliberately pessimistic so the budget holds for string-heavy data.
INGEST_BYTES_PER_CELL = 96

_CODE_ITEMSIZE = array("i").itemsize

_RUN_COUNTER = itertools.count()

_np_module: Optional[Any] = None
_np_checked = False


def _numpy() -> Optional[Any]:
    """The numpy module when importable, else ``None`` (probed once)."""
    global _np_module, _np_checked
    if not _np_checked:
        _np_checked = True
        if numpy_available():
            import numpy

            _np_module = numpy
    return _np_module


# ---------------------------------------------------------------------------
# spill-directory lifecycle
# ---------------------------------------------------------------------------
def resolve_spill_base(
    spill_dir: Optional[Union[str, Path]] = None,
) -> Tuple[Path, bool]:
    """The spill base directory and whether it was explicitly chosen.

    Resolution: an explicit ``spill_dir`` argument, then the
    :data:`SPILL_ENV` environment variable, then ``<tempdir>/repro-spill``.
    The flag drives cleanup policy — explicit bases are user-managed
    (preserved on crash for debugging), anonymous temp runs are finalized
    with the store.
    """
    if spill_dir:
        return Path(spill_dir), True
    env = os.environ.get(SPILL_ENV)
    if env:
        return Path(env), True
    return Path(tempfile.gettempdir()) / "repro-spill", False


def create_run_dir(base: Path) -> Path:
    """A fresh ``run-<pid>-<seq>`` directory under ``base``.

    The pid isolates concurrent processes sharing one base, the
    process-wide counter isolates concurrent stores in one process, and the
    creation loop closes the (theoretical) race with a stale same-named
    directory left by a previous pid reuse.
    """
    base.mkdir(parents=True, exist_ok=True)
    while True:
        run_dir = base / f"run-{os.getpid()}-{next(_RUN_COUNTER)}"
        try:
            run_dir.mkdir()
        except FileExistsError:
            continue
        return run_dir


@contextlib.contextmanager
def spill_run(spill_dir: Optional[Union[str, Path]] = None) -> Iterator[Path]:
    """A per-run spill directory, removed on success and kept on failure.

    The directory is yielded for the caller to place spill files in; a
    clean exit removes it, an exception propagates with the directory (and
    whatever partial state it holds) preserved for post-mortem inspection.
    """
    base, _ = resolve_spill_base(spill_dir)
    run_dir = create_run_dir(base)
    yield run_dir
    shutil.rmtree(str(run_dir), ignore_errors=True)


def chunk_rows_for_budget(memory_budget_mb: Optional[int], width: int) -> int:
    """The ingestion chunk size that keeps a memory budget, given row width.

    The budget models the transient cost of one in-flight chunk of
    Python-object rows at :data:`INGEST_BYTES_PER_CELL` per cell; the
    result is clamped to ``[1_024, 1_048_576]`` so a tiny budget still
    makes progress and a huge one does not defeat the point of chunking.
    ``None`` keeps :data:`DEFAULT_CHUNK_ROWS`.
    """
    if memory_budget_mb is None:
        return DEFAULT_CHUNK_ROWS
    cells = max(1, width) * INGEST_BYTES_PER_CELL
    rows = (memory_budget_mb * 1024 * 1024) // cells
    return max(1_024, min(1_048_576, int(rows)))


def _map_codes(path: Path, count: int) -> Any:
    """A writable ``"i"``-typed map over ``count`` codes stored at ``path``.

    Zero rows map to an empty ``array('i')`` placeholder — an empty file
    cannot be memory-mapped.  With numpy the map is an ``np.memmap`` (an
    ndarray, so the kernels consume it zero-copy); without it a raw
    ``mmap`` is cast to a ``memoryview("i")``, which satisfies the same
    sequence protocol the pure-Python kernels use.
    """
    if count == 0:
        return array("i")
    np_module = _numpy()
    if np_module is not None:
        return np_module.memmap(
            str(path), dtype=np_module.intc, mode="r+", shape=(count,)
        )
    descriptor = os.open(str(path), os.O_RDWR)
    try:
        mapped = mmap.mmap(descriptor, count * _CODE_ITEMSIZE, access=mmap.ACCESS_WRITE)
    finally:
        os.close(descriptor)
    return memoryview(mapped).cast("i")


def _code_bytes(column: Any) -> bytes:
    """The raw little-endian-native bytes of any code column representation."""
    if isinstance(column, array):
        return column.tobytes()
    np_module = _numpy()
    if np_module is not None and isinstance(column, np_module.ndarray):
        return column.tobytes()
    return bytes(column)


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------
class MmapColumnStore(ColumnStore):
    """A :class:`ColumnStore` whose code columns live in memory-mapped files.

    Drop-in for the parent everywhere a relation is consumed: the code
    protocol (:meth:`codes`, :meth:`project_codes`, :meth:`group_indices`,
    …) serves mapped arrays that both kernels consume directly, and every
    mutator keeps the files consistent with the in-memory dictionaries.
    Reports, repairs and versions are byte-identical to the in-memory
    store by the storage-agreement contract
    (``tests/integration/test_storage_agreement.py``).

    >>> from repro.relation.schema import Schema
    >>> store = MmapColumnStore(Schema("r", ["A", "B"]), [("x", 1), ("y", 2)])
    >>> store[1]
    ('y', 2)
    >>> list(store.codes("A"))
    [0, 1]
    >>> store.release()
    """

    __slots__ = (
        "_base",
        "_explicit",
        "_dir",
        "_gens",
        "_chunk_rows",
        "_finalizer",
        "__weakref__",
    )

    def __init__(
        self,
        schema: Schema,
        rows: Optional[Iterable[Union[Row, Mapping[str, Any]]]] = None,
        *,
        spill_dir: Optional[Union[str, Path]] = None,
        chunk_rows: Optional[int] = None,
    ) -> None:
        super().__init__(schema)
        width = len(schema)
        # Always-encoded: no pending block, no raw columns, and empty
        # array('i') placeholders standing in for unmappable zero-row files.
        self._pending = None
        self._raw = [None] * width
        self._codes = [array("i") for _ in range(width)]
        base, explicit = resolve_spill_base(spill_dir)
        self._base = base
        self._explicit = explicit
        self._dir = create_run_dir(base)
        self._gens = [0] * width
        self._chunk_rows = max(1, int(chunk_rows)) if chunk_rows else DEFAULT_CHUNK_ROWS
        # Anonymous temp runs are garbage; explicit bases are user-managed
        # and must survive a crash (release() removes them on success).
        self._finalizer = (
            None
            if explicit
            else weakref.finalize(self, shutil.rmtree, str(self._dir), True)
        )
        if rows is not None:
            self.extend(rows)

    # ------------------------------------------------------------------ spill files
    @property
    def spill_directory(self) -> Path:
        """The run directory holding this store's column files."""
        return self._dir

    def _column_path(self, position: int) -> Path:
        return self._dir / f"col{position}.{self._gens[position]}.bin"

    def _remap(self) -> None:
        """Re-open every column map at the current length."""
        for position in range(len(self._schema)):
            self._codes[position] = _map_codes(
                self._column_path(position), self._length
            )

    def _flush(self, buffers: List[array]) -> None:
        """Append the buffered codes to the column files and clear the buffers."""
        for position, buffer in enumerate(buffers):
            with open(self._column_path(position), "ab") as handle:
                handle.write(buffer.tobytes())
            del buffer[:]

    def release(self) -> None:
        """Remove this store's spill directory (idempotent).

        Live maps keep serving off the unlinked pages, so a released store
        remains readable until it is garbage collected; the disk space is
        reclaimed when the last map closes.  Call this when a run under an
        explicit spill base succeeds — anonymous temp runs are finalized
        automatically.
        """
        if self._finalizer is not None:
            self._finalizer()
        else:
            shutil.rmtree(str(self._dir), ignore_errors=True)

    # ------------------------------------------------------------------ ingestion
    def extend(self, rows: Iterable[Union[Row, Mapping[str, Any]]]) -> None:
        """Insert several rows through the chunked spill path.

        One version bump per row, matching :meth:`Relation.extend`'s
        insert-per-row accounting, but the rows are interned in chunks of
        ``chunk_rows`` so ingestion memory is bounded regardless of input
        size.
        """
        self._version += self._ingest(rows, coerce=True)

    def _ingest(self, rows: Iterable[Any], coerce: bool) -> int:
        width = len(self._schema)
        buffers = [array("i") for _ in range(width)]
        buffered = 0
        count = 0
        limit = self._chunk_rows
        intern = self._intern
        for row in rows:
            if coerce:
                values = self._coerce(row)
            else:
                values = tuple(row)
                if len(values) != width:
                    raise SchemaError(
                        f"validated rows have {len(values)} values but schema "
                        f"{self._schema.name!r} has {width} attributes"
                    )
            for position in range(width):
                buffers[position].append(intern(position, values[position]))
            buffered += 1
            count += 1
            if buffered >= limit:
                self._flush(buffers)
                buffered = 0
        if buffered:
            self._flush(buffers)
        if count:
            self._length += count
            self._remap()
        return count

    def _append_validated(self, values: Row) -> None:
        # The single-insert path: append one code per column and remap.
        for position, value in enumerate(values):
            with open(self._column_path(position), "ab") as handle:
                handle.write(array("i", (self._intern(position, value),)).tobytes())
        self._length += 1
        self._remap()

    # ------------------------------------------------------------------ mutation
    # update() is inherited unchanged: the maps are writable, so the
    # parent's in-place code swap writes straight through to the file.

    def delete(self, index: int) -> Row:
        """Remove and return the row at ``index``.

        Each column is rewritten into a new generation file and the old one
        unlinked — never truncated in place, which would ``SIGBUS`` any map
        still open over the shrunk region.
        """
        row = self[index]
        for position in range(len(self._schema)):
            remaining = array("i")
            remaining.frombytes(_code_bytes(self._codes[position]))
            remaining.pop(index)
            self._rewrite_column(position, remaining)
        self._length -= 1
        self._version += 1
        return row

    def _rewrite_column(self, position: int, codes: array) -> None:
        stale = self._column_path(position)
        self._gens[position] += 1
        fresh = self._column_path(position)
        with open(fresh, "wb") as handle:
            handle.write(codes.tobytes())
        self._codes[position] = _map_codes(fresh, len(codes))
        with contextlib.suppress(OSError):
            stale.unlink()

    # ------------------------------------------------------------------ algebra
    def _gather(self, indices: Optional[List[int]]) -> MmapColumnStore:
        """A new mapped store (own run dir, same base) with the chosen rows."""
        clone = self._spawn()
        width = len(self._schema)
        for position in range(width):
            clone._values[position] = list(self._values[position])
            clone._value_maps[position] = dict(self._value_maps[position])
        count = self._length if indices is None else len(indices)
        if count:
            np_module = _numpy()
            gather = (
                np_module.asarray(indices, dtype=np_module.intp)
                if np_module is not None and indices is not None
                else None
            )
            for position in range(width):
                source = self._codes[position]
                with open(clone._column_path(position), "wb") as handle:
                    if indices is None:
                        handle.write(_code_bytes(source))
                    elif gather is not None:
                        taken = np_module.asarray(source, dtype=np_module.intc)[gather]
                        handle.write(taken.tobytes())
                    else:
                        limit = self._chunk_rows
                        for start in range(0, count, limit):
                            block = array(
                                "i",
                                (
                                    source[index]
                                    for index in indices[start : start + limit]
                                ),
                            )
                            handle.write(block.tobytes())
            clone._length = count
            clone._remap()
        return clone

    def _spawn(self) -> MmapColumnStore:
        return MmapColumnStore(
            self._schema,
            spill_dir=str(self._base) if self._explicit else None,
            chunk_rows=self._chunk_rows,
        )

    def _copy_column(
        self,
        position: int,
        target_store: ColumnStore,
        target_position: int,
        indices: Optional[Sequence[int]],
    ) -> None:
        # Projections build plain in-memory ColumnStores; materialise the
        # codes instead of handing the target a view into our files (a view
        # would alias the spill, and writes through it would corrupt us).
        gathered = array("i")
        codes = self._codes[position]
        if indices is None:
            gathered.frombytes(_code_bytes(codes))
        else:
            gathered.extend(int(codes[index]) for index in indices)
        target_store._raw[target_position] = None
        target_store._codes[target_position] = gathered
        target_store._values[target_position] = list(self._values[position])
        target_store._value_maps[target_position] = dict(self._value_maps[position])

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_validated_rows(
        cls,
        schema: Schema,
        rows: Iterable[Row],
        *,
        spill_dir: Optional[Union[str, Path]] = None,
        chunk_rows: Optional[int] = None,
    ) -> MmapColumnStore:
        """Adopt positional rows already validated for ``schema`` (chunked)."""
        store = cls(schema, spill_dir=spill_dir, chunk_rows=chunk_rows)
        store._ingest(rows, coerce=False)
        return store

    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        *,
        spill_dir: Optional[Union[str, Path]] = None,
        chunk_rows: Optional[int] = None,
    ) -> MmapColumnStore:
        """Mapped view of an existing relation (rows trusted, no re-coercion).

        An encoded :class:`ColumnStore` transfers column-wise — its code
        arrays are written to the spill files directly and its dictionaries
        copied — so conversion never round-trips through Python rows.
        """
        if isinstance(relation, MmapColumnStore):
            return relation.copy()
        store = cls(relation.schema, spill_dir=spill_dir, chunk_rows=chunk_rows)
        if isinstance(relation, ColumnStore):
            store._adopt_columnar(relation)
            return store
        store._ingest(relation, coerce=False)
        return store

    def _adopt_columnar(self, source: ColumnStore) -> None:
        count = len(source)
        for position in range(len(self._schema)):
            codes = source._ensure_encoded(position)
            self._values[position] = list(source._values[position])
            self._value_maps[position] = dict(source._value_maps[position])
            if count:
                with open(self._column_path(position), "wb") as handle:
                    handle.write(_code_bytes(codes))
        self._length = count
        if count:
            self._remap()

    @classmethod
    def adopt_spilled(
        cls,
        schema: Schema,
        directory: Union[str, Path],
        length: int,
        dictionaries: Sequence[Sequence[Any]],
        *,
        chunk_rows: Optional[int] = None,
    ) -> MmapColumnStore:
        """Open shard files written by :func:`repro.parallel.sharding.spill_shards`.

        The directory must hold one ``col<p>.0.bin`` per schema position
        with ``length`` codes each; ``dictionaries`` is the per-position
        decode list.  The adopted store does **not** own the directory —
        no finalizer is attached and :meth:`release` is the owner's call —
        so worker processes can map their shard without racing the parent
        plan's cleanup.
        """
        store = cls.__new__(cls)
        width = len(schema)
        store._schema = schema
        store._version = 0
        store._pending = None
        store._raw = [None] * width
        store._values = [list(values) for values in dictionaries]
        store._value_maps = [
            {value: code for code, value in enumerate(values)}
            for values in dictionaries
        ]
        store._length = length
        run_dir = Path(directory)
        store._base = run_dir.parent
        store._explicit = True
        store._dir = run_dir
        store._gens = [0] * width
        store._chunk_rows = (
            max(1, int(chunk_rows)) if chunk_rows else DEFAULT_CHUNK_ROWS
        )
        store._finalizer = None
        store._codes = [
            _map_codes(store._column_path(position), length)
            for position in range(width)
        ]
        return store

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:
        entries = sum(len(values) for values in self._values)
        return (
            f"MmapColumnStore({self._schema.name!r}, {self._length} rows, "
            f"{entries} dictionary entries, spill={str(self._dir)!r})"
        )


__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "INGEST_BYTES_PER_CELL",
    "MmapColumnStore",
    "SPILL_ENV",
    "chunk_rows_for_budget",
    "create_run_dir",
    "resolve_spill_base",
    "spill_run",
]
