"""In-memory relation instances.

A :class:`Relation` is a bag (multiset) of tuples over a :class:`Schema`.
Tuples are stored positionally as Python tuples; the class exposes both
positional and by-name access, projection, selection, and CSV round-tripping.
The CFD machinery treats relations as *bags* because the paper's experiments
generate synthetic data that may contain duplicate rows.
"""

from __future__ import annotations

import csv
from collections.abc import Mapping as MappingABC
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import SchemaError
from repro.relation.schema import Schema

Row = Tuple[Any, ...]


class _RowView(MappingABC):
    """A read-only attribute-name view over one positional row.

    :meth:`Relation.select` hands these to predicates instead of building a
    fresh ``dict`` per row: the name → position map is resolved once per
    relation and shared by every view, so a cheap predicate no longer pays a
    full dict allocation per tuple just to read one or two cells.
    """

    __slots__ = ("_row", "_positions")

    def __init__(self, row: Row, positions: Mapping[str, int]) -> None:
        self._row = row
        self._positions = positions

    def __getitem__(self, name: str) -> Any:
        try:
            return self._row[self._positions[name]]
        except KeyError:
            raise KeyError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._positions)

    def __len__(self) -> int:
        return len(self._positions)

    def __repr__(self) -> str:
        return repr(dict(self))


class Relation:
    """A mutable in-memory instance of a relation schema.

    >>> schema = Schema("r", ["A", "B"])
    >>> rel = Relation(schema)
    >>> rel.insert({"A": 1, "B": 2})
    0
    >>> rel.insert((3, 4))
    1
    >>> len(rel)
    2
    >>> rel.value(0, "B")
    2
    """

    __slots__ = ("_schema", "_rows", "_version")

    def __init__(self, schema: Schema, rows: Optional[Iterable[Union[Row, Mapping[str, Any]]]] = None) -> None:
        self._schema = schema
        self._rows: List[Row] = []
        self._version = 0
        if rows is not None:
            for row in rows:
                self.insert(row)

    # ------------------------------------------------------------------ basics
    @property
    def schema(self) -> Schema:
        """The schema of this relation."""
        return self._schema

    @property
    def version(self) -> int:
        """A counter bumped by every mutation (insert, update, delete).

        Index structures built over the relation (partition indexes, the
        incremental repair state) snapshot this counter and refuse to serve
        reads once it moves without them — a deleted or inserted tuple shifts
        or extends the index space, so a stale index would silently return
        wrong answers.  See :meth:`repro.detection.partition_index.PartitionIndexCache.apply_update`
        for the sanctioned way to mutate under a live index.
        """
        return self._version

    @property
    def rows(self) -> Tuple[Row, ...]:
        """A snapshot of all rows as positional tuples."""
        return tuple(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __repr__(self) -> str:
        return f"Relation({self._schema.name!r}, {len(self._rows)} rows)"

    # ------------------------------------------------------------------ mutation
    def insert(self, row: Union[Row, Sequence[Any], Mapping[str, Any]]) -> int:
        """Insert a row given positionally or as a mapping; return its index."""
        self._rows.append(self._coerce(row))
        self._version += 1
        return len(self._rows) - 1

    def extend(self, rows: Iterable[Union[Row, Mapping[str, Any]]]) -> None:
        """Insert several rows."""
        for row in rows:
            self.insert(row)

    def update(self, index: int, attribute: str, value: Any) -> None:
        """Set ``attribute`` of the row at ``index`` to ``value`` in place."""
        position = self._schema.position(attribute)
        self._schema[attribute].check(value)
        row = list(self._rows[index])
        row[position] = value
        self._rows[index] = tuple(row)
        self._version += 1

    def delete(self, index: int) -> Row:
        """Remove and return the row at ``index``.

        Deleting shifts every later tuple index, so any live
        :class:`~repro.detection.partition_index.PartitionIndex` or
        :class:`~repro.repair.incremental.RepairState` over the relation is
        invalidated; the :attr:`version` bump makes their next read raise a
        :class:`~repro.errors.DetectionError` instead of answering stale.
        """
        row = self._rows.pop(index)
        self._version += 1
        return row

    def _coerce(self, row: Union[Row, Sequence[Any], Mapping[str, Any]]) -> Row:
        if isinstance(row, Mapping):
            missing = [name for name in self._schema.names if name not in row]
            if missing:
                raise SchemaError(f"row is missing attributes {missing} for schema {self._schema.name!r}")
            extra = [name for name in row if name not in self._schema]
            if extra:
                raise SchemaError(f"row has unknown attributes {extra} for schema {self._schema.name!r}")
            values = tuple(row[name] for name in self._schema.names)
        else:
            values = tuple(row)
            if len(values) != len(self._schema):
                raise SchemaError(
                    f"row has {len(values)} values but schema {self._schema.name!r} "
                    f"has {len(self._schema)} attributes"
                )
        for attribute, value in zip(self._schema, values):
            attribute.check(value)
        return values

    # ------------------------------------------------------------------ access
    def value(self, index: int, attribute: str) -> Any:
        """The value of ``attribute`` in the row at ``index``."""
        return self._rows[index][self._schema.position(attribute)]

    def row_dict(self, index: int) -> Dict[str, Any]:
        """The row at ``index`` as an attribute-name → value mapping."""
        return dict(zip(self._schema.names, self._rows[index]))

    def project_row(self, index: int, attributes: Sequence[str]) -> Row:
        """Project the row at ``index`` onto ``attributes`` (positional result)."""
        positions = self._schema.positions(attributes)
        row = self._rows[index]
        return tuple(row[position] for position in positions)

    def iter_dicts(self) -> Iterator[Dict[str, Any]]:
        """Iterate over rows as dictionaries."""
        names = self._schema.names
        for row in self:
            yield dict(zip(names, row))

    # ------------------------------------------------------------------ algebra
    def select(self, predicate: Callable[[Mapping[str, Any]], bool]) -> Relation:
        """Return a new relation with the rows whose mapping satisfies ``predicate``.

        The predicate receives a read-only by-name mapping over each row.
        Attribute positions are resolved once for the whole pass and rows are
        handed over positionally behind the mapping facade, so selection no
        longer allocates a dict per row.
        """
        positions = {name: position for position, name in enumerate(self._schema.names)}
        matching = [
            index
            for index, row in enumerate(self)
            if predicate(_RowView(row, positions))
        ]
        return self.take(matching)

    def project(self, attributes: Sequence[str], distinct: bool = False) -> Relation:
        """Project onto ``attributes``; optionally de-duplicate the result."""
        projected_schema = self._schema.project(attributes)
        positions = self._schema.positions(attributes)
        result = Relation(projected_schema)
        seen = set()
        for row in self:
            values = tuple(row[position] for position in positions)
            if distinct:
                if values in seen:
                    continue
                seen.add(values)
            result._rows.append(values)
        return result

    def group_by(self, attributes: Sequence[str]) -> Dict[Row, List[int]]:
        """Group row indices by their projection onto ``attributes``."""
        positions = self._schema.positions(attributes)
        groups: Dict[Row, List[int]] = {}
        for index, row in enumerate(self):
            key = tuple(row[position] for position in positions)
            groups.setdefault(key, []).append(index)
        return groups

    def copy(self) -> Relation:
        """A shallow copy (rows are immutable tuples, so this is safe)."""
        clone = Relation(self._schema)
        clone._rows = list(self._rows)
        return clone

    def take(self, indices: Sequence[int]) -> Relation:
        """The rows at ``indices``, in that order, as a new relation.

        Preserves the storage class: a row relation yields a row relation, a
        :class:`~repro.relation.columnar.ColumnStore` yields a column store
        (the sharding planner relies on that to ship encoded shards).
        """
        rows = self._rows
        return Relation.from_validated_rows(
            self._schema, (rows[index] for index in indices)
        )

    @classmethod
    def from_validated_rows(cls, schema: Schema, rows: Iterable[Row]) -> Relation:
        """Build a relation from positional rows already validated for ``schema``.

        Skips the per-row coercion of :meth:`insert` — the fast path for
        moving tuples between same-schema relations (copying, projection,
        sharding), where re-validating every cell is pure overhead.  Rows
        from untrusted sources belong in :meth:`insert`/:meth:`extend`.
        """
        relation = cls(schema)
        relation._rows = list(rows)
        return relation

    def active_domain(self, attribute: str) -> Tuple[Any, ...]:
        """Distinct values of ``attribute`` occurring in the relation, sorted."""
        position = self._schema.position(attribute)
        values = {row[position] for row in self._rows}
        try:
            return tuple(sorted(values))
        except TypeError:
            return tuple(sorted(values, key=repr))

    # ------------------------------------------------------------------ I/O
    def to_csv(self, path: Union[str, Path]) -> None:
        """Write the relation to a CSV file with a header row."""
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(self._schema.names)
            writer.writerows(self)

    @classmethod
    def from_csv(cls, schema: Schema, path: Union[str, Path]) -> Relation:
        """Load a relation from a CSV file whose header matches ``schema``.

        Cells are parsed through the schema's attribute types and checked
        against any finite domains, then the whole file is adopted through
        the :meth:`from_validated_rows` fast path — re-validating every cell
        a second time through :meth:`insert` is pure overhead once
        :meth:`~repro.relation.attribute.Attribute.parse` has run.
        """
        attributes = schema.attributes
        width = len(attributes)
        finite = [
            (position, attribute)
            for position, attribute in enumerate(attributes)
            if attribute.has_finite_domain
        ]
        rows: List[Row] = []
        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                return cls(schema)
            if tuple(header) != schema.names:
                raise SchemaError(
                    f"CSV header {tuple(header)} does not match schema attributes {schema.names}"
                )
            for cells in reader:
                parsed = tuple(
                    attribute.parse(cell) for attribute, cell in zip(attributes, cells)
                )
                if len(parsed) != width:
                    raise SchemaError(
                        f"row has {len(parsed)} values but schema {schema.name!r} "
                        f"has {width} attributes"
                    )
                for position, attribute in finite:
                    attribute.check(parsed[position])
                rows.append(parsed)
        return cls.from_validated_rows(schema, rows)

    @classmethod
    def from_dicts(cls, schema: Schema, rows: Iterable[Mapping[str, Any]]) -> Relation:
        """Build a relation from an iterable of attribute-name → value mappings."""
        return cls(schema, rows)
