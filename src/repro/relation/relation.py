"""In-memory relation instances.

A :class:`Relation` is a bag (multiset) of tuples over a :class:`Schema`.
Tuples are stored positionally as Python tuples; the class exposes both
positional and by-name access, projection, selection, and CSV round-tripping.
The CFD machinery treats relations as *bags* because the paper's experiments
generate synthetic data that may contain duplicate rows.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import SchemaError
from repro.relation.schema import Schema

Row = Tuple[Any, ...]


class Relation:
    """A mutable in-memory instance of a relation schema.

    >>> schema = Schema("r", ["A", "B"])
    >>> rel = Relation(schema)
    >>> rel.insert({"A": 1, "B": 2})
    0
    >>> rel.insert((3, 4))
    1
    >>> len(rel)
    2
    >>> rel.value(0, "B")
    2
    """

    __slots__ = ("_schema", "_rows")

    def __init__(self, schema: Schema, rows: Optional[Iterable[Union[Row, Mapping[str, Any]]]] = None) -> None:
        self._schema = schema
        self._rows: List[Row] = []
        if rows is not None:
            for row in rows:
                self.insert(row)

    # ------------------------------------------------------------------ basics
    @property
    def schema(self) -> Schema:
        """The schema of this relation."""
        return self._schema

    @property
    def rows(self) -> Tuple[Row, ...]:
        """A snapshot of all rows as positional tuples."""
        return tuple(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __repr__(self) -> str:
        return f"Relation({self._schema.name!r}, {len(self._rows)} rows)"

    # ------------------------------------------------------------------ mutation
    def insert(self, row: Union[Row, Sequence[Any], Mapping[str, Any]]) -> int:
        """Insert a row given positionally or as a mapping; return its index."""
        self._rows.append(self._coerce(row))
        return len(self._rows) - 1

    def extend(self, rows: Iterable[Union[Row, Mapping[str, Any]]]) -> None:
        """Insert several rows."""
        for row in rows:
            self.insert(row)

    def update(self, index: int, attribute: str, value: Any) -> None:
        """Set ``attribute`` of the row at ``index`` to ``value`` in place."""
        position = self._schema.position(attribute)
        self._schema[attribute].check(value)
        row = list(self._rows[index])
        row[position] = value
        self._rows[index] = tuple(row)

    def delete(self, index: int) -> Row:
        """Remove and return the row at ``index``."""
        return self._rows.pop(index)

    def _coerce(self, row: Union[Row, Sequence[Any], Mapping[str, Any]]) -> Row:
        if isinstance(row, Mapping):
            missing = [name for name in self._schema.names if name not in row]
            if missing:
                raise SchemaError(f"row is missing attributes {missing} for schema {self._schema.name!r}")
            extra = [name for name in row if name not in self._schema]
            if extra:
                raise SchemaError(f"row has unknown attributes {extra} for schema {self._schema.name!r}")
            values = tuple(row[name] for name in self._schema.names)
        else:
            values = tuple(row)
            if len(values) != len(self._schema):
                raise SchemaError(
                    f"row has {len(values)} values but schema {self._schema.name!r} "
                    f"has {len(self._schema)} attributes"
                )
        for attribute, value in zip(self._schema, values):
            attribute.check(value)
        return values

    # ------------------------------------------------------------------ access
    def value(self, index: int, attribute: str) -> Any:
        """The value of ``attribute`` in the row at ``index``."""
        return self._rows[index][self._schema.position(attribute)]

    def row_dict(self, index: int) -> Dict[str, Any]:
        """The row at ``index`` as an attribute-name → value mapping."""
        return dict(zip(self._schema.names, self._rows[index]))

    def project_row(self, index: int, attributes: Sequence[str]) -> Row:
        """Project the row at ``index`` onto ``attributes`` (positional result)."""
        positions = self._schema.positions(attributes)
        row = self._rows[index]
        return tuple(row[position] for position in positions)

    def iter_dicts(self) -> Iterator[Dict[str, Any]]:
        """Iterate over rows as dictionaries."""
        names = self._schema.names
        for row in self._rows:
            yield dict(zip(names, row))

    # ------------------------------------------------------------------ algebra
    def select(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Relation":
        """Return a new relation with the rows whose dict satisfies ``predicate``."""
        result = Relation(self._schema)
        for row, row_dict in zip(self._rows, self.iter_dicts()):
            if predicate(row_dict):
                result._rows.append(row)
        return result

    def project(self, attributes: Sequence[str], distinct: bool = False) -> "Relation":
        """Project onto ``attributes``; optionally de-duplicate the result."""
        projected_schema = self._schema.project(attributes)
        positions = self._schema.positions(attributes)
        result = Relation(projected_schema)
        seen = set()
        for row in self._rows:
            values = tuple(row[position] for position in positions)
            if distinct:
                if values in seen:
                    continue
                seen.add(values)
            result._rows.append(values)
        return result

    def group_by(self, attributes: Sequence[str]) -> Dict[Row, List[int]]:
        """Group row indices by their projection onto ``attributes``."""
        positions = self._schema.positions(attributes)
        groups: Dict[Row, List[int]] = {}
        for index, row in enumerate(self._rows):
            key = tuple(row[position] for position in positions)
            groups.setdefault(key, []).append(index)
        return groups

    def copy(self) -> "Relation":
        """A shallow copy (rows are immutable tuples, so this is safe)."""
        clone = Relation(self._schema)
        clone._rows = list(self._rows)
        return clone

    @classmethod
    def from_validated_rows(cls, schema: Schema, rows: Iterable[Row]) -> "Relation":
        """Build a relation from positional rows already validated for ``schema``.

        Skips the per-row coercion of :meth:`insert` — the fast path for
        moving tuples between same-schema relations (copying, projection,
        sharding), where re-validating every cell is pure overhead.  Rows
        from untrusted sources belong in :meth:`insert`/:meth:`extend`.
        """
        relation = cls(schema)
        relation._rows = list(rows)
        return relation

    def active_domain(self, attribute: str) -> Tuple[Any, ...]:
        """Distinct values of ``attribute`` occurring in the relation, sorted."""
        position = self._schema.position(attribute)
        values = {row[position] for row in self._rows}
        try:
            return tuple(sorted(values))
        except TypeError:
            return tuple(sorted(values, key=repr))

    # ------------------------------------------------------------------ I/O
    def to_csv(self, path: Union[str, Path]) -> None:
        """Write the relation to a CSV file with a header row."""
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(self._schema.names)
            writer.writerows(self._rows)

    @classmethod
    def from_csv(cls, schema: Schema, path: Union[str, Path]) -> "Relation":
        """Load a relation from a CSV file whose header matches ``schema``."""
        relation = cls(schema)
        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                return relation
            if tuple(header) != schema.names:
                raise SchemaError(
                    f"CSV header {tuple(header)} does not match schema attributes {schema.names}"
                )
            for row in reader:
                parsed = tuple(
                    attribute.parse(cell) for attribute, cell in zip(schema.attributes, row)
                )
                relation.insert(parsed)
        return relation

    @classmethod
    def from_dicts(cls, schema: Schema, rows: Iterable[Mapping[str, Any]]) -> "Relation":
        """Build a relation from an iterable of attribute-name → value mappings."""
        return cls(schema, rows)
