"""Relation schemas: ordered collections of :class:`~repro.relation.attribute.Attribute`."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple, Union

from repro.errors import SchemaError
from repro.relation.attribute import Attribute

AttributeLike = Union[str, Attribute]


class Schema:
    """An ordered relation schema ``R(A1, ..., An)``.

    The schema is immutable once constructed.  Attributes may be given either
    as :class:`Attribute` objects or as plain strings (which become
    unbounded-domain string attributes).

    >>> schema = Schema("cust", ["CC", "AC", "PN", "NM", "STR", "CT", "ZIP"])
    >>> schema.names[:3]
    ('CC', 'AC', 'PN')
    """

    __slots__ = ("_name", "_attributes", "_index")

    def __init__(self, name: str, attributes: Iterable[AttributeLike]) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"schema name must be a non-empty string, got {name!r}")
        attrs: List[Attribute] = []
        for item in attributes:
            if isinstance(item, Attribute):
                attrs.append(item)
            elif isinstance(item, str):
                attrs.append(Attribute(item))
            else:
                raise SchemaError(f"attributes must be Attribute or str, got {type(item).__name__}")
        if not attrs:
            raise SchemaError(f"schema {name!r} must have at least one attribute")
        index: Dict[str, int] = {}
        for position, attribute in enumerate(attrs):
            if attribute.name in index:
                raise SchemaError(f"duplicate attribute {attribute.name!r} in schema {name!r}")
            index[attribute.name] = position
        self._name = name
        self._attributes: Tuple[Attribute, ...] = tuple(attrs)
        self._index = index

    @property
    def name(self) -> str:
        """The relation name."""
        return self._name

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The attributes, in declaration order."""
        return self._attributes

    @property
    def names(self) -> Tuple[str, ...]:
        """The attribute names, in declaration order."""
        return tuple(attribute.name for attribute in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise SchemaError(f"schema {self._name!r} has no attribute {name!r}") from None

    def position(self, name: str) -> int:
        """Return the 0-based position of attribute ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"schema {self._name!r} has no attribute {name!r}") from None

    def positions(self, names: Sequence[str]) -> Tuple[int, ...]:
        """Return positions for several attribute names at once."""
        return tuple(self.position(name) for name in names)

    def validate_attributes(self, names: Iterable[str]) -> Tuple[str, ...]:
        """Check that every name exists in the schema; return them as a tuple."""
        resolved = tuple(names)
        for name in resolved:
            if name not in self._index:
                raise SchemaError(f"schema {self._name!r} has no attribute {name!r}")
        return resolved

    def project(self, names: Sequence[str]) -> Schema:
        """Return a new schema containing only ``names`` (in the given order)."""
        self.validate_attributes(names)
        return Schema(self._name, [self[name] for name in names])

    def finite_domain_attributes(self) -> Tuple[Attribute, ...]:
        """Attributes declared with finite domains (relevant for consistency)."""
        return tuple(attribute for attribute in self._attributes if attribute.has_finite_domain)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._name == other._name and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash((self._name, self._attributes))

    def __repr__(self) -> str:
        attrs = ", ".join(self.names)
        return f"Schema({self._name!r}: {attrs})"
