"""Cost-based heuristic repair of CFD violations (Section 6 of the paper)."""

from repro.repair.cost import CostModel, levenshtein
from repro.repair.heuristic import REPAIR_METHODS, RepairResult, repair
from repro.repair.incremental import RepairState, canonical_order

__all__ = [
    "REPAIR_METHODS",
    "CostModel",
    "RepairResult",
    "RepairState",
    "canonical_order",
    "levenshtein",
    "repair",
]
