"""Cost-based heuristic repair of CFD violations (Section 6 of the paper)."""

from repro.repair.cost import CostModel, levenshtein
from repro.repair.heuristic import RepairResult, repair

__all__ = ["CostModel", "RepairResult", "levenshtein", "repair"]
