"""The cost model for value-modification repairs.

Section 6 of the paper adopts the repair model of Bohannon et al.
(SIGMOD 2005): repairs are attribute-value modifications and a repair's cost
is the sum of the costs of its modifications, each weighted by how much the
new value differs from the old one and by an optional per-tuple confidence
weight.  The distance used for strings is a normalised Levenshtein distance;
other values fall back to a 0/1 distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


def levenshtein(left: str, right: str) -> int:
    """The classic edit distance between two strings (insert/delete/substitute)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for row, left_char in enumerate(left, start=1):
        current = [row]
        for column, right_char in enumerate(right, start=1):
            insert_cost = current[column - 1] + 1
            delete_cost = previous[column] + 1
            substitute_cost = previous[column - 1] + (left_char != right_char)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def normalized_distance(old: Any, new: Any) -> float:
    """A distance in ``[0, 1]``: normalised Levenshtein for strings, 0/1 otherwise."""
    if old == new:
        return 0.0
    if isinstance(old, str) and isinstance(new, str):
        longest = max(len(old), len(new))
        if longest == 0:
            return 0.0
        return levenshtein(old, new) / longest
    return 1.0


@dataclass
class CostModel:
    """Costs of value modifications.

    Parameters
    ----------
    tuple_weights:
        Optional per-tuple confidence weights (index → weight); tuples not
        listed get :attr:`default_weight`.  Higher weight means the tuple is
        more trusted, so changing it costs more.
    default_weight:
        Weight used for tuples without an explicit entry.
    """

    tuple_weights: Dict[int, float] = field(default_factory=dict)
    default_weight: float = 1.0

    def weight(self, tuple_index: int) -> float:
        return self.tuple_weights.get(tuple_index, self.default_weight)

    def modification_cost(self, tuple_index: int, old: Any, new: Any) -> float:
        """The cost of changing one cell of one tuple from ``old`` to ``new``."""
        return self.weight(tuple_index) * normalized_distance(old, new)
