"""The cost model for value-modification repairs.

Section 6 of the paper adopts the repair model of Bohannon et al.
(SIGMOD 2005): repairs are attribute-value modifications and a repair's cost
is the sum of the costs of its modifications, each weighted by how much the
new value differs from the old one and by an optional per-tuple confidence
weight.  The distance used for strings is a normalised Levenshtein distance;
other values fall back to a 0/1 distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, List, Sequence, Tuple

from repro.relation.columnar import ColumnStore

#: Size of the memo for repeated string comparisons.  Plurality voting in the
#: repair heuristic compares the same few candidate values against every group
#: member, pass after pass, so the working set is tiny compared to this bound.
_DISTANCE_CACHE_SIZE = 65_536


def levenshtein(left: str, right: str) -> int:
    """The classic edit distance between two strings (insert/delete/substitute)."""
    if left == right:
        return 0
    # A shared prefix or suffix contributes nothing to the distance; stripping
    # it shrinks (often collapses) the DP table for near-identical values.
    start = 0
    shortest = min(len(left), len(right))
    while start < shortest and left[start] == right[start]:
        start += 1
    end_left, end_right = len(left), len(right)
    while end_left > start and end_right > start and left[end_left - 1] == right[end_right - 1]:
        end_left -= 1
        end_right -= 1
    left, right = left[start:end_left], right[start:end_right]
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for row, left_char in enumerate(left, start=1):
        current = [row]
        for column, right_char in enumerate(right, start=1):
            insert_cost = current[column - 1] + 1
            delete_cost = previous[column] + 1
            substitute_cost = previous[column - 1] + (left_char != right_char)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


@lru_cache(maxsize=_DISTANCE_CACHE_SIZE)
def _string_distance(left: str, right: str) -> float:
    """Memoised normalised Levenshtein; callers order the pair for symmetry."""
    longest = max(len(left), len(right))
    if longest == 0:
        return 0.0
    if longest - min(len(left), len(right)) == longest:
        # Length-difference lower bound meets the upper bound: one string is
        # empty, so the distance is exactly ``longest`` — skip the DP.
        return 1.0
    return levenshtein(left, right) / longest


def normalized_distance(old: Any, new: Any) -> float:
    """A distance in ``[0, 1]``: normalised Levenshtein for strings, 0/1 otherwise.

    String comparisons are served from an LRU memo keyed on the (unordered)
    value pair: plurality voting in the repair heuristic prices the same
    candidate values against each other over and over, so repeats are ``O(1)``.
    """
    if old == new:
        return 0.0
    if isinstance(old, str) and isinstance(new, str):
        # The distance is symmetric; order the pair so both directions share
        # one memo entry.
        return _string_distance(old, new) if old <= new else _string_distance(new, old)
    return 1.0


@dataclass
class CostModel:
    """Costs of value modifications.

    Parameters
    ----------
    tuple_weights:
        Optional per-tuple confidence weights (index → weight); tuples not
        listed get :attr:`default_weight`.  Higher weight means the tuple is
        more trusted, so changing it costs more.
    default_weight:
        Weight used for tuples without an explicit entry.
    """

    tuple_weights: Dict[int, float] = field(default_factory=dict)
    default_weight: float = 1.0

    def weight(self, tuple_index: int) -> float:
        return self.tuple_weights.get(tuple_index, self.default_weight)

    def group_weight(self, indices: Sequence[int]) -> float:
        """The summed weight of a group of tuples, in the given order.

        Accumulates one weight at a time (no ``count * weight`` shortcut):
        float addition is not associative, and the repair heuristic's
        byte-identity contract across storage layers and kernels requires
        every implementation to produce the exact same partial sums — so the
        summation order is part of the interface: ascending tuple index.

        One shortcut *is* exact: with no per-tuple weights and the default
        weight of 1.0, the running sum is an integer at every step, and
        integers up to 2**53 are represented exactly — ``float(len(indices))``
        is bit-identical to the loop.
        """
        if not self.tuple_weights and self.default_weight == 1.0:
            return float(len(indices))
        total = 0.0
        for tuple_index in indices:
            total += self.weight(tuple_index)
        return total

    def modification_cost(self, tuple_index: int, old: Any, new: Any) -> float:
        """The cost of changing one cell of one tuple from ``old`` to ``new``."""
        return self.weight(tuple_index) * normalized_distance(old, new)

    def projection_cost(
        self, weight: float, old_values: Sequence[Any], new_values: Sequence[Any]
    ) -> float:
        """The cost of moving cells worth ``weight`` from one projection to another.

        The repair heuristic prices candidate target values against every
        tuple of a violating group; grouping the tuples by their *current*
        projection first means each distance is computed once per distinct
        value pair — once per **dictionary entry pair** when the relation is
        dictionary-encoded (:class:`~repro.relation.columnar.ColumnStore`),
        no matter how many rows share the typo — and multiplied by the
        group's summed weight.
        """
        return weight * sum(
            normalized_distance(old, new) for old, new in zip(old_values, new_values)
        )


class CodeDistanceCache:
    """Per-attribute distance matrix over dictionary *codes*, version-cached.

    The columnar repair path prices candidate projections over code tuples;
    decoding every code back to its value just to hit the string-keyed
    distance memo costs a dictionary lookup plus a value hash per pair, every
    time.  This cache keys the memo on ``(attribute, code pair)`` instead —
    two int comparisons — and holds the decoded value list per attribute so a
    miss decodes by plain list indexing.  Codes are never renumbered
    (:class:`~repro.relation.columnar.ColumnStore`'s append-only dictionary),
    so memo entries stay valid forever; the value snapshot alone refreshes
    when :meth:`ColumnStore.dictionary_version` reports growth — the lazily
    built distance matrix of the tentpole, filled batch by batch as the
    heuristic prices candidates.

    Distances come from :func:`normalized_distance` (symmetric), so each
    unordered code pair is computed once.
    """

    __slots__ = ("_store", "_versions", "_values", "_memo")

    def __init__(self, store: ColumnStore) -> None:
        self._store = store
        self._versions: Dict[str, int] = {}
        self._values: Dict[str, Tuple[Any, ...]] = {}
        self._memo: Dict[str, Dict[Tuple[int, int], float]] = {}

    def _dictionary(self, attribute: str) -> Tuple[Any, ...]:
        version = self._store.dictionary_version(attribute)
        if self._versions.get(attribute) != version:
            self._versions[attribute] = version
            self._values[attribute] = self._store.dictionary(attribute)
            # Existing memo entries survive growth: old codes keep their
            # values, so their distances are unchanged.
            self._memo.setdefault(attribute, {})
        return self._values[attribute]

    def distance(self, attribute: str, old_code: int, new_code: int) -> float:
        """``normalized_distance`` between two of ``attribute``'s codes."""
        if old_code == new_code:
            return 0.0
        pair = (old_code, new_code) if old_code < new_code else (new_code, old_code)
        memo = self._memo.get(attribute)
        if memo is None:
            self._dictionary(attribute)
            memo = self._memo[attribute]
        cached = memo.get(pair)
        if cached is None:
            values = self._dictionary(attribute)
            cached = memo[pair] = normalized_distance(
                values[old_code], values[new_code]
            )
        return cached

    def projection_cost(
        self,
        weight: float,
        attributes: Sequence[str],
        old_codes: Sequence[int],
        new_codes: Sequence[int],
    ) -> float:
        """:meth:`CostModel.projection_cost` over code tuples.

        Accumulates per-attribute distances left to right before the weight
        multiply — the exact float operation order of the value-level
        reference, so candidate costs (and therefore repair decisions) are
        bit-identical.
        """
        total = 0.0
        for attribute, old_code, new_code in zip(attributes, old_codes, new_codes):
            total += self.distance(attribute, old_code, new_code)
        return weight * total
