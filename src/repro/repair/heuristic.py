"""A greedy, cost-based repair heuristic for CFD violations.

The paper proves that CFD repairing is NP-complete (Theorem 6.1), points out
that — unlike standard FDs — some violations can only be resolved by
modifying *LHS* attributes, and defers its heuristic algorithm to a later
report.  This module provides that deferred piece (flagged as an extension in
DESIGN.md), following the cost-based value-modification model the paper
cites:

1. **Constant violations** are resolved by overwriting the offending RHS cell
   with the pattern constant (the only value that satisfies the pattern).
2. **Variable violations** are resolved per group by moving every tuple of the
   group to the group's cheapest target value (the plurality value under the
   cost model).
3. If a cell keeps oscillating (a sign that RHS modification cannot resolve
   the conflict — the paper's Section 6 example), the heuristic falls back to
   modifying an LHS attribute of the cheapest tuple to a fresh value, which
   breaks the pattern match.

The algorithm re-checks satisfaction after every pass and stops when the
relation is clean or a pass budget is exhausted.  *How* satisfaction is
re-checked is pluggable (``method``):

* ``"incremental"`` (default) maintains the violation state under each cell
  change via :class:`repro.repair.incremental.RepairState` — the relation is
  ingested once into partition indexes and every pass reads the maintained
  report, so a pass costs work proportional to the cells it changed;
* ``"indexed"`` re-runs the partition-indexed detector from scratch on every
  check (full re-detection, but over indexes);
* ``"scan"`` re-runs the pure-Python scan oracle from scratch on every check —
  the seed behaviour, kept as the correctness baseline;
* ``"parallel"`` (registered by :mod:`repro.parallel.repairer`) is
  *self-driving*: instead of exposing ``report()``/``update()`` it implements
  the optional ``run(cost_model)`` hook, and :func:`repair` delegates the
  whole fixpoint to it — it shards the relation by LHS equivalence classes
  and runs the incremental engine per shard in a process pool.

All three methods feed the greedy policy the same violations in the same
canonical order (:func:`repro.repair.incremental.canonical_order`), so they
produce *identical* repairs; ``benchmarks/test_ablation_repair_incremental.py``
asserts both the agreement and the speedup.  The heuristic does not guarantee
minimum cost (that is the NP-complete part) but it does guarantee termination
and, on consistent CFD sets, the tests verify it reaches a clean instance on
all exercised workloads.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.config import RepairConfig
from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations
from repro.core.violations import ConstantViolation, VariableViolation, ViolationReport
from repro.detection.indexed import find_violations_indexed
from repro.errors import ConfigError, InconsistentCFDsError, RegistryError, RepairError
from repro.kernels import active_kernel, use_kernel
from repro.reasoning.consistency import is_consistent
from repro.registry import COLUMNAR_REPAIRERS, apply_storage, register_repairer, resolve_repairer
from repro.relation.columnar import ColumnStore
from repro.relation.relation import Relation
from repro.repair.cost import CodeDistanceCache, CostModel
from repro.repair.incremental import RepairState, canonical_order

#: The built-in engines (the ``"auto"`` selector is not an engine).  Kept
#: for backward compatibility; the authoritative list is
#: ``repro.registry.repairer_names()``.
REPAIR_METHODS = ("scan", "indexed", "incremental")


@dataclass(frozen=True)
class CellChange:
    """One attribute-value modification performed by the repair."""

    tuple_index: int
    attribute: str
    old_value: Any
    new_value: Any
    cost: float
    reason: str


@dataclass
class RepairResult:
    """The outcome of :func:`repair`."""

    relation: Relation
    changes: List[CellChange] = field(default_factory=list)
    clean: bool = False
    passes: int = 0
    #: Violations outstanding at the *start* of each pass (the pipeline's
    #: per-pass audit trail; monotonicity is not guaranteed pass-to-pass,
    #: reaching zero is what terminates the loop).
    pass_violation_counts: List[int] = field(default_factory=list)
    #: Execution statistics of the sharded parallel engine
    #: (:class:`repro.parallel.engine.ParallelStats`); ``None`` for the
    #: serial engines.  Typed loosely to keep this module import-light.
    parallel_stats: Optional[Any] = None

    @property
    def total_cost(self) -> float:
        return sum(change.cost for change in self.changes)

    def changed_cells(self) -> Set[Tuple[int, str]]:
        return {(change.tuple_index, change.attribute) for change in self.changes}

    def summary(self) -> Dict[str, Any]:
        return {
            "changes": len(self.changes),
            "total_cost": round(self.total_cost, 4),
            "clean": self.clean,
            "passes": self.passes,
        }


_FRESH_PREFIX = "__repaired"


# ---------------------------------------------------------------------------
# detection engines driving the repair loop (self-registering backends)
# ---------------------------------------------------------------------------
class _ScanEngine:
    """Full re-detection through the pure-Python oracle (the seed behaviour)."""

    def __init__(self, relation: Relation, cfds: Sequence[CFD], config: RepairConfig) -> None:
        self.relation = relation
        self._cfds = cfds

    def report(self) -> ViolationReport:
        report = find_all_violations(self.relation, self._cfds)
        return ViolationReport(canonical_order(report, self._cfds))

    def update(self, tuple_index: int, attribute: str, new_value: Any) -> None:
        self.relation.update(tuple_index, attribute, new_value)


class _IndexedEngine:
    """Full re-detection through the partition-index backend, rebuilt per check."""

    def __init__(self, relation: Relation, cfds: Sequence[CFD], config: RepairConfig) -> None:
        self.relation = relation
        self._cfds = cfds

    def report(self) -> ViolationReport:
        # The relation mutates between checks, so each detection starts from
        # a fresh cache — that full rebuild is exactly what the incremental
        # engine avoids.
        report = find_violations_indexed(self.relation, self._cfds)
        return ViolationReport(canonical_order(report, self._cfds))

    def update(self, tuple_index: int, attribute: str, new_value: Any) -> None:
        self.relation.update(tuple_index, attribute, new_value)


class _IncrementalEngine:
    """Delta-maintained violation state (:class:`RepairState`)."""

    def __init__(self, relation: Relation, cfds: Sequence[CFD], config: RepairConfig) -> None:
        self.relation = relation
        self._state = RepairState(relation, cfds, cache_size=config.cache_size)

    def report(self) -> ViolationReport:
        return self._state.report()

    def update(self, tuple_index: int, attribute: str, new_value: Any) -> None:
        self._state.apply_change(tuple_index, attribute, new_value)

    def update_many(self, changes: Sequence[Tuple[int, str, Any]]) -> None:
        """Apply one violation's cell changes as a single delta batch.

        On the batched repair path this is where the per-violation fan-out
        collapses: the state re-evaluates each dirty (pattern, class) pair
        once per *batch* instead of once per cell.
        """
        self._state.apply_changes(changes)


register_repairer("scan")(_ScanEngine)
register_repairer("indexed")(_IndexedEngine)
register_repairer("incremental")(_IncrementalEngine)


# ---------------------------------------------------------------------------
# the repair loop
# ---------------------------------------------------------------------------
def repair(
    relation: Relation,
    cfds: Sequence[CFD],
    cost_model: Optional[CostModel] = None,
    max_passes: int = 25,
    check_consistency: bool = True,
    method: str = "incremental",
    config: Optional[RepairConfig] = None,
) -> RepairResult:
    """Produce a repaired copy of ``relation`` satisfying ``cfds``.

    The input relation is not modified.  ``method`` selects the detection
    engine driving the passes — any name registered via
    :func:`repro.registry.register_repairer`, or ``"auto"`` to pick from the
    workload shape; every engine yields the same repaired relation, differing
    only in speed.  A :class:`~repro.config.RepairConfig` may be passed
    instead of the individual keywords (mutually exclusive with them).
    Raises :class:`~repro.errors.InconsistentCFDsError` when the CFD set has
    no satisfying instance at all (no repair can exist then).

    >>> from repro.datagen.cust import cust_relation, cust_cfds
    >>> result = repair(cust_relation(), cust_cfds())
    >>> result.clean
    True
    """
    cfds = list(cfds)
    if config is not None:
        if (
            cost_model is not None
            or max_passes != 25
            or check_consistency is not True
            or method != "incremental"
        ):
            raise RepairError(
                "pass either a RepairConfig or explicit keyword options, not both"
            )
    else:
        try:
            config = RepairConfig(
                method=method,
                max_passes=max_passes,
                check_consistency=check_consistency,
                cost_model=cost_model,
            )
        except ConfigError as error:
            raise RepairError(str(error)) from None
    try:
        name, engine_factory = resolve_repairer(config.method, relation, cfds)
    except RegistryError as error:
        raise RepairError(str(error)) from None
    config = config.with_method(name)
    if config.check_consistency and cfds and not is_consistent(cfds):
        raise InconsistentCFDsError("the CFD set is inconsistent; no repair exists")
    cost_model = config.cost_model or CostModel()
    # The columnar-capable engines work over the configured storage layer;
    # when apply_storage converts it already built a fresh object, otherwise
    # copy — either way the caller's relation is never mutated.  The repaired
    # relation comes back in that storage; its rows are identical either way.
    converted = apply_storage(
        relation,
        config.effective_storage,
        name in COLUMNAR_REPAIRERS,
        spill_dir=config.spill_dir,
        memory_budget_mb=config.memory_budget_mb,
    )
    work = relation.copy() if converted is relation else converted
    # The configured kernel (see repro.kernels) is active for the whole
    # fixpoint: every engine's detection passes and the heuristic's own
    # distinct-projection votes all compute through it.  Kernels are
    # byte-identical, so this changes speed only.
    with use_kernel(config.effective_kernel):
        engine = engine_factory(work, cfds, config)
        runner = getattr(engine, "run", None)
        if callable(runner):
            # A self-driving engine (e.g. the sharded parallel backend) owns
            # the whole fixpoint; the greedy per-violation loop below never
            # runs.
            return runner(cost_model)
        result = RepairResult(relation=work)
        modification_counts: Dict[Tuple[int, str], int] = defaultdict(int)
        # Candidate pricing over dictionary codes, memoised across the whole
        # fixpoint (codes are stable, so entries never invalidate).
        code_costs = CodeDistanceCache(work) if isinstance(work, ColumnStore) else None

        for pass_number in range(1, config.max_passes + 1):
            result.passes = pass_number
            report = engine.report()
            result.pass_violation_counts.append(len(report))
            if report.is_clean():
                result.clean = True
                return result
            progressed = False
            for violation in report.constant_violations():
                progressed |= _fix_constant_violation(
                    engine, violation, cost_model, result, modification_counts
                )
            # Re-check after the forced constant fixes: they may already
            # resolve (or change the shape of) the variable violations.
            report = engine.report()
            if report.is_clean():
                result.clean = True
                return result
            for violation in report.variable_violations():
                progressed |= _fix_variable_violation(
                    engine,
                    violation,
                    cfds,
                    cost_model,
                    result,
                    modification_counts,
                    code_costs=code_costs,
                )
            if not progressed:
                raise RepairError(
                    "repair made no progress; giving up to avoid looping"
                )

        result.clean = engine.report().is_clean()
        return result


# ---------------------------------------------------------------------------
# individual fixes
# ---------------------------------------------------------------------------
def _fresh_value(attribute: str, old_value: Any, counter: int) -> str:
    """A deterministic replacement value for a last-resort LHS modification.

    The value is a pure function of the *cell being broken* — attribute, its
    current value, and how many times this cell was already modified — not of
    any global state (the old scheme numbered fresh values by the length of
    the global change list).  That makes the repair of an equivalence class a
    pure function of the class's own data, which is exactly what lets the
    sharded parallel engine reproduce the serial engines byte for byte.
    """
    return f"{_FRESH_PREFIX}_{attribute}_{counter}_{old_value}"


def _record_change(
    engine,
    result: RepairResult,
    counts: Dict[Tuple[int, str], int],
    tuple_index: int,
    attribute: str,
    new_value: Any,
    cost_model: CostModel,
    reason: str,
    pending: Optional[List[Tuple[int, str, Any]]] = None,
) -> bool:
    old_value = engine.relation.value(tuple_index, attribute)
    if old_value == new_value:
        return False
    if pending is None:
        engine.update(tuple_index, attribute, new_value)
    else:
        # Plan-then-apply: the caller flushes the whole violation's cells in
        # one _apply_planned batch.  Safe to defer because one violation
        # never plans the same cell twice, so the live reads above (and the
        # bookkeeping below) see exactly what sequential application would.
        pending.append((tuple_index, attribute, new_value))
    counts[(tuple_index, attribute)] += 1
    result.changes.append(
        CellChange(
            tuple_index=tuple_index,
            attribute=attribute,
            old_value=old_value,
            new_value=new_value,
            cost=cost_model.modification_cost(tuple_index, old_value, new_value),
            reason=reason,
        )
    )
    return True


def _apply_planned(engine, pending: List[Tuple[int, str, Any]]) -> None:
    """Flush one violation's planned cell changes into the engine.

    Engines exposing ``update_many`` (the incremental state) ingest the
    batch as a single delta — on the batched kernel path that means one
    partition-index scatter and one ``evaluate_classes`` call per dirty
    pattern for the whole violation.  Stateless engines apply cell by cell,
    which is equivalent because a violation's planned cells are distinct.
    """
    if not pending:
        return
    update_many = getattr(engine, "update_many", None)
    if callable(update_many):
        update_many(pending)
        return
    for tuple_index, attribute, new_value in pending:
        engine.update(tuple_index, attribute, new_value)


def _fix_constant_violation(
    engine,
    violation: ConstantViolation,
    cost_model: CostModel,
    result: RepairResult,
    counts: Dict[Tuple[int, str], int],
) -> bool:
    tuple_index = violation.tuple_index
    key = (tuple_index, violation.attribute)
    if counts[key] >= 3:
        # The RHS keeps being pushed back and forth: break the pattern match
        # by moving an LHS value out of the way instead (Section 6's point
        # that CFD repairs sometimes must touch the LHS).
        return _break_lhs_match(engine, tuple_index, violation.cfd_name, cost_model, result, counts)
    return _record_change(
        engine,
        result,
        counts,
        tuple_index,
        violation.attribute,
        violation.expected,
        cost_model,
        reason=f"constant violation of {violation.cfd_name}",
    )


def _resolve_variable_cfd(violation: VariableViolation, cfds: Sequence[CFD]) -> Optional[CFD]:
    """The CFD a variable violation came from.

    Violations carry only the CFD's *name*, and auto-derived names collide
    for CFDs over the same embedded FD — so a bare name match can resolve to
    the wrong CFD (whose same-index pattern may not even be able to produce a
    variable violation, wedging the repair).  Require everything the source
    pattern must satisfy: it exists, its ``@``-free LHS equals the violation's
    grouping attributes, its LHS cells match the group key, and it constrains
    at least one RHS attribute (else no variable violation could arise).
    """
    for candidate in cfds:
        if candidate.name != violation.cfd_name:
            continue
        if violation.pattern_index >= len(candidate.tableau):
            continue
        pattern = candidate.tableau[violation.pattern_index]
        lhs_free = tuple(
            attr for attr in candidate.lhs if not pattern.lhs_cell(attr).is_dontcare
        )
        if lhs_free != violation.attributes:
            continue
        if not all(
            pattern.lhs_cell(attr).matches(value)
            for attr, value in zip(lhs_free, violation.group_key)
        ):
            continue
        if not any(not pattern.rhs_cell(attr).is_dontcare for attr in candidate.rhs):
            continue
        return candidate
    return None


def _fix_variable_violation(
    engine,
    violation: VariableViolation,
    cfds: Sequence[CFD],
    cost_model: CostModel,
    result: RepairResult,
    counts: Dict[Tuple[int, str], int],
    code_costs: Optional[CodeDistanceCache] = None,
) -> bool:
    work = engine.relation
    cfd = _resolve_variable_cfd(violation, cfds)
    if cfd is None:
        raise RepairError(f"violation refers to unknown CFD {violation.cfd_name!r}")
    pattern = cfd.tableau[violation.pattern_index]
    rhs_free = [attr for attr in cfd.rhs if not pattern.rhs_cell(attr).is_dontcare]
    indices = list(violation.tuple_indices)
    if len(indices) < 2 or not rhs_free:
        return False

    # Choose the target RHS value: the plurality value, breaking ties by the
    # total cost of moving everyone else onto it.  Tuples are grouped by
    # their current projection first, so each candidate is priced with one
    # distance computation per *distinct* current value (per dictionary
    # entry pair on columnar storage) times the group's summed weight — not
    # one per cell.
    if isinstance(work, ColumnStore):
        # Distinct-projection pass over codes: the active kernel groups the
        # member indices by RHS code projection (first-occurrence order,
        # members ascending — exactly the row branch's insertion order) and
        # group weights accumulate in ascending member order
        # (CostModel.group_weight).  Candidates are priced as *code* tuples
        # through the version-cached distance matrix — codes biject onto
        # values, so the grouping, the accumulation order and every distance
        # match the row branch bit for bit; only the winning projection
        # decodes.
        if code_costs is None:
            code_costs = CodeDistanceCache(work)
        columns = list(work.project_codes(rhs_free))
        groups = list(active_kernel().group_projections(columns, indices))
        weight_by_codes: Dict[Tuple[int, ...], float] = {}
        code_by_index: Dict[int, Tuple[int, ...]] = {}
        for key_codes, members in groups:
            for index in members:
                code_by_index[index] = key_codes
            weight_by_codes[key_codes] = cost_model.group_weight(members)
        # Stable sort by descending group size reproduces
        # Counter.most_common(): ties stay in first-occurrence order.
        candidates = [
            key_codes for key_codes, _members in sorted(groups, key=lambda g: -len(g[1]))
        ]
        best_codes = None
        best_cost = None
        for candidate_codes in candidates:
            candidate_cost = 0.0
            for key_codes, weight in weight_by_codes.items():
                candidate_cost += code_costs.projection_cost(
                    weight, rhs_free, key_codes, candidate_codes
                )
            if best_cost is None or candidate_cost < best_cost:
                best_cost = candidate_cost
                best_codes = candidate_codes
        assert best_codes is not None
        best_value: Tuple[Any, ...] = tuple(
            work.decode(attr, code) for attr, code in zip(rhs_free, best_codes)
        )
        settled = {
            index for index, key_codes in code_by_index.items() if key_codes == best_codes
        }
    else:
        projections = {index: work.project_row(index, rhs_free) for index in indices}
        frequency = Counter(projections.values())
        weight_by_projection: Dict[Tuple[Any, ...], float] = {}
        for index, projection in projections.items():
            weight_by_projection[projection] = (
                weight_by_projection.get(projection, 0.0) + cost_model.weight(index)
            )
        value_candidates = [value for value, _count in frequency.most_common()]
        chosen = None
        best_cost = None
        for candidate_value in value_candidates:
            candidate_cost = 0.0
            for projection, weight in weight_by_projection.items():
                candidate_cost += cost_model.projection_cost(
                    weight, projection, candidate_value
                )
            if best_cost is None or candidate_cost < best_cost:
                best_cost = candidate_cost
                chosen = candidate_value
        assert chosen is not None
        best_value = chosen
        settled = {
            index for index, projection in projections.items() if projection == best_value
        }

    progressed = False
    pending: List[Tuple[int, str, Any]] = []
    for index in indices:
        if index in settled:
            continue
        if any(counts[(index, attribute)] >= 3 for attribute in rhs_free):
            progressed |= _break_lhs_match(
                engine, index, cfd.name, cost_model, result, counts, cfd=cfd,
                pending=pending,
            )
            continue
        for attribute, new_value in zip(rhs_free, best_value):
            progressed |= _record_change(
                engine,
                result,
                counts,
                index,
                attribute,
                new_value,
                cost_model,
                reason=f"variable violation of {cfd.name}",
                pending=pending,
            )
    _apply_planned(engine, pending)
    return progressed


def _break_lhs_match(
    engine,
    tuple_index: int,
    cfd_name: str,
    cost_model: CostModel,
    result: RepairResult,
    counts: Dict[Tuple[int, str], int],
    cfd: Optional[CFD] = None,
    pending: Optional[List[Tuple[int, str, Any]]] = None,
) -> bool:
    """Last-resort fix: move an LHS value to a fresh constant to break the match."""
    attributes: Sequence[str]
    if cfd is not None and cfd.lhs:
        attributes = cfd.lhs
    else:
        # Fall back to any attribute of the tuple that has been modified least.
        attributes = tuple(engine.relation.schema.names)
    attribute = min(attributes, key=lambda attr: counts[(tuple_index, attr)])
    fresh = _fresh_value(
        attribute,
        engine.relation.value(tuple_index, attribute),
        counts[(tuple_index, attribute)],
    )
    return _record_change(
        engine,
        result,
        counts,
        tuple_index,
        attribute,
        fresh,
        cost_model,
        reason=f"LHS modification to break the match of {cfd_name}",
        pending=pending,
    )
