"""Delta-maintained violation state for the repair loop.

The repair heuristic (Section 6) is an iterative fixpoint: detect violations,
fix some cells, detect again.  Re-running full detection on every pass costs
``O(passes x |Σ| x |I| x TABSZ)`` with the scan oracle — and even the
partition-indexed backend rebuilds its partition maps from scratch each time.
But a repair pass changes a handful of *cells*, and a single cell change can
only affect

* the patterns whose ``@``-free LHS or non-``@`` RHS mentions the changed
  attribute, and
* within such a pattern, the tuples of the changed tuple's *old* and *new*
  equivalence classes under the pattern's LHS partition.

:class:`RepairState` exploits exactly that, through one of two execution
modes picked at construction:

* the **reference path** (rows storage, or the python kernel) ingests the
  relation once into the dict-backed
  :class:`~repro.detection.partition_index.PartitionIndex` maps of PR 1 and
  maintains them under :meth:`RepairState.apply_change` by moving the
  changed tuple between equivalence classes
  (:meth:`PartitionIndex.reindex_tuple`) and re-evaluating only the old and
  new classes of the changed tuple;
* the **batched path** (a :class:`~repro.relation.columnar.ColumnStore`
  under a kernel advertising ``fused_repair_scan``) replaces the dict
  indexes with the array-backed
  :class:`~repro.detection.partition_index.CodePartitionIndex` and resolves
  the *entire dirty class set* of a change batch with one
  ``evaluate_classes`` kernel call per pattern
  (:meth:`RepairState.apply_changes`) — gather the affected members into
  one array, reduce, materialise only what reports.

Both modes produce byte-identical reports: the python reference kernel
defines the semantics, and evaluating every dirtied class once at the
post-batch state yields exactly what change-by-change re-evaluation yields
(a later change that could alter a class's verdict necessarily re-dirties
that class).  Reports are emitted in the *canonical order* — the order the
scan oracle produces — so the greedy repair heuristic makes identical
decisions no matter which detection engine (or mode) feeds it.  See
``docs/repair.md`` for the complexity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.cfd import CFD
from repro.core.pattern import PatternValue
from repro.core.violations import (
    ConstantViolation,
    VariableViolation,
    Violation,
    ViolationReport,
)
from repro.detection.indexed import constant_code_violations
from repro.detection.partition_index import CodePartitionIndex, PartitionIndexCache
from repro.errors import DetectionError
from repro.kernels import active_kernel
from repro.relation.columnar import ColumnStore
from repro.relation.relation import Relation


# ---------------------------------------------------------------------------
# canonical violation order
# ---------------------------------------------------------------------------
def canonical_order(violations: Iterable[Violation], cfds: Sequence[CFD]) -> List[Violation]:
    """Sort ``violations`` into the order the scan oracle reports them.

    The oracle (:func:`repro.core.satisfaction.find_all_violations`) emits,
    per CFD in input order and per pattern tuple in tableau order, first the
    constant violations (ascending tuple index, RHS attributes in CFD order)
    and then the variable violations (ascending smallest member index).  Every
    backend finds the same violation *set*; sorting by this key makes the
    *sequence* identical too, which is what lets the greedy repair heuristic
    reach the same repaired relation regardless of the detection engine
    driving it.  The sort is stable, so a report already in oracle order is
    returned unchanged.
    """
    cfd_position: Dict[str, int] = {}
    rhs_position: Dict[str, Dict[str, int]] = {}
    for position, cfd in enumerate(cfds):
        if cfd.name not in cfd_position:
            cfd_position[cfd.name] = position
            rhs_position[cfd.name] = {attr: i for i, attr in enumerate(cfd.rhs)}

    def key(violation: Violation) -> Tuple[int, int, int, int, int]:
        cfd_rank = cfd_position.get(violation.cfd_name, len(cfd_position))
        if isinstance(violation, ConstantViolation):
            attr_rank = rhs_position.get(violation.cfd_name, {}).get(violation.attribute, 0)
            return (cfd_rank, violation.pattern_index, 0, violation.tuple_indices[0], attr_rank)
        return (cfd_rank, violation.pattern_index, 1, min(violation.tuple_indices), 0)

    return sorted(violations, key=key)


# ---------------------------------------------------------------------------
# per-pattern metadata
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _PatternSpec:
    """Everything needed to evaluate one pattern tuple against one partition."""

    spec_id: int
    cfd: CFD
    pattern_index: int
    #: ``@``-free LHS attributes in LHS order — the partition attributes.
    lhs_free: Tuple[str, ...]
    lhs_positions: Tuple[int, ...]
    #: LHS pattern cells aligned with ``lhs_free``.
    cells: Tuple[PatternValue, ...]
    #: ``(attribute, schema position, expected constant)`` per constant RHS cell.
    constant_rhs: Tuple[Tuple[str, int, Any], ...]
    #: non-``@`` RHS attributes in RHS order (the ``Q^V`` projection).
    rhs_free: Tuple[str, ...]
    rhs_positions: Tuple[int, ...]

    def key_matches(self, key: Tuple[Any, ...]) -> bool:
        """Whether a partition key matches this pattern's LHS constants."""
        return all(cell.matches(value) for cell, value in zip(self.cells, key))


def _build_specs(relation: Relation, cfds: Sequence[CFD]) -> List[_PatternSpec]:
    schema = relation.schema
    specs: List[_PatternSpec] = []
    for cfd in cfds:
        for pattern_index, pattern in enumerate(cfd.tableau):
            lhs_free = tuple(attr for attr in cfd.lhs if not pattern.lhs_cell(attr).is_dontcare)
            rhs_free = tuple(attr for attr in cfd.rhs if not pattern.rhs_cell(attr).is_dontcare)
            constant_rhs = tuple(
                (attr, schema.position(attr), pattern.rhs_cell(attr).value)
                for attr in cfd.rhs
                if pattern.rhs_cell(attr).is_constant
            )
            specs.append(
                _PatternSpec(
                    spec_id=len(specs),
                    cfd=cfd,
                    pattern_index=pattern_index,
                    lhs_free=lhs_free,
                    lhs_positions=schema.positions(lhs_free),
                    cells=tuple(pattern.lhs_cell(attr) for attr in lhs_free),
                    constant_rhs=constant_rhs,
                    rhs_free=rhs_free,
                    rhs_positions=schema.positions(rhs_free) if rhs_free else (),
                )
            )
    return specs


# ---------------------------------------------------------------------------
# the incremental engine
# ---------------------------------------------------------------------------
class RepairState:
    """Violation state of ``relation`` against ``cfds``, maintained under cell changes.

    The relation is ingested once (one partition index per distinct ``@``-free
    LHS attribute tuple, shared across patterns and CFDs); the initial report
    is computed from those indexes exactly as the ``method="indexed"``
    detection backend would.  From then on :meth:`apply_change` /
    :meth:`apply_changes` keep both the indexes and the per-partition
    violation store correct in time proportional to the *touched* partitions,
    not the relation (see the module docstring for the two execution modes).

    The state owns ``relation`` operationally: every mutation must flow
    through :meth:`apply_change` or :meth:`apply_changes`, or the maintained
    report goes stale.

    >>> from repro.datagen.cust import cust_relation, cust_cfds
    >>> state = RepairState(cust_relation(), cust_cfds())
    >>> state.is_clean()
    False
    >>> sorted(state.report().violating_indices())
    [0, 1, 2, 3]
    """

    def __init__(
        self,
        relation: Relation,
        cfds: Sequence[CFD],
        cache_size: Optional[int] = None,
    ) -> None:
        self._relation = relation
        self._cfds = list(cfds)
        self._specs = _build_specs(relation, self._cfds)

        # attribute -> specs whose LHS ∪ RHS mention it (the dirty-spec map).
        self._specs_by_attr: Dict[str, List[_PatternSpec]] = {}
        for spec in self._specs:
            for attr in dict.fromkeys(spec.lhs_free + spec.rhs_free):
                self._specs_by_attr.setdefault(attr, []).append(spec)

        distinct_lhs = {spec.lhs_free for spec in self._specs}
        # cache_size (RepairConfig.cache_size) below the number of distinct
        # LHS sets would evict live indexes and stale the store, so it only
        # ever widens the auto-sized cache.
        auto_size = max(32, len(distinct_lhs))
        self._cache = PartitionIndexCache(
            relation, maxsize=max(auto_size, cache_size or 0)
        )

        # spec_id -> partition key -> violations of that pattern in that class.
        self._store: List[Dict[Tuple[Any, ...], List[Violation]]] = [
            {} for _ in self._specs
        ]
        # spec_id -> (dictionary versions, encoded Q^C checks) — see
        # _const_checks.
        self._const_cache: Dict[int, Tuple[Tuple[int, ...], List[Tuple[str, Any, Optional[int], Any]]]] = {}

        # The batched path needs both columnar codes and a kernel whose batch
        # primitives actually win (fused_repair_scan); anything else — rows
        # storage, the python reference kernel — takes the dict-indexed path.
        self._batched = isinstance(relation, ColumnStore) and bool(
            getattr(active_kernel(), "fused_repair_scan", False)
        )
        self._code_indexes: Dict[Tuple[str, ...], CodePartitionIndex] = {}
        if self._batched:
            try:
                for lhs_free in distinct_lhs:
                    self._code_indexes[lhs_free] = CodePartitionIndex(relation, lhs_free)
            except DetectionError:
                # Composite-key overflow (astronomically wide dictionaries):
                # the array index cannot represent the partition, so run the
                # dict-backed reference path instead.
                self._batched = False
                self._code_indexes.clear()

        if self._batched:
            self._build_initial_batched()
        else:
            # Pre-build every index: with maxsize >= the number of distinct
            # LHS tuples nothing is ever evicted, so apply_update sees them
            # all.
            for lhs_free in distinct_lhs:
                self._cache.get(lhs_free)
            for spec in self._specs:
                store = self._store[spec.spec_id]
                index = self._cache.get(spec.lhs_free)
                for key, indices in index.matching(spec.cells):
                    violations = self._evaluate(spec, tuple(key), indices)
                    if violations:
                        store[tuple(key)] = violations

        self._changes_applied = 0
        self._patterns_reevaluated = 0
        self._partitions_reevaluated = 0
        self._expected_version = relation.version

    def _build_initial_batched(self) -> None:
        """The initial report as one ``evaluate_classes`` call per pattern.

        The per-LHS :class:`CodePartitionIndex` hands every class over in
        flat array form (zero per-class materialisation); patterns with
        constant LHS cells first narrow the class set with one vectorised
        key comparison.  Only the classes the kernel flags materialise
        members and decode their keys.
        """
        kernel = active_kernel()
        store = self._relation
        assert isinstance(store, ColumnStore)
        for spec in self._specs:
            spec_store = self._store[spec.spec_id]
            index = self._code_indexes[spec.lhs_free]
            checks = self._const_checks(spec)
            const_pairs = [(column, code) for _attr, column, code, _expected in checks]
            rhs_columns = store.project_codes(spec.rhs_free) if spec.rhs_free else ()
            constants: List[Tuple[int, int]] = []
            dead = False
            for offset, cell in enumerate(spec.cells):
                if cell.is_constant:
                    code = store.encode(spec.lhs_free[offset], cell.value)
                    if code is None:
                        # No cell ever held the constant: nothing matches
                        # this pattern, so it cannot be violated.
                        dead = True
                        break
                    constants.append((offset, code))
            if dead:
                continue
            if constants:
                positions = index.matching_positions(constants)
                indices, offsets = index.gather(positions)
            else:
                positions = None
                indices, offsets = index.class_table()
            for local, disagree, mismatches in kernel.evaluate_classes(
                rhs_columns, indices, offsets, const_pairs
            ):
                class_position = int(positions[local]) if positions is not None else local
                key = tuple(
                    store.decode(attr, code)
                    for attr, code in zip(spec.lhs_free, index.key_codes_at(class_position))
                )
                spec_store[key] = self._class_violations(
                    spec,
                    checks,
                    key,
                    index.members_at(class_position),
                    disagree,
                    mismatches,
                )

    # ------------------------------------------------------------------ queries
    @property
    def relation(self) -> Relation:
        """The relation whose violation state is being maintained."""
        return self._relation

    @property
    def cfds(self) -> Tuple[CFD, ...]:
        return tuple(self._cfds)

    @property
    def batched(self) -> bool:
        """Whether this state runs the array-backed batched path."""
        return self._batched

    def _check_synchronized(self) -> None:
        """Raise when the relation mutated outside :meth:`apply_change`.

        An insert, delete or raw update behind the state's back leaves the
        maintained report describing a relation that no longer exists; the
        version counter turns the next read into a loud error instead of a
        silently wrong answer.
        """
        if self._relation.version != self._expected_version:
            raise DetectionError(
                "the relation was mutated outside apply_change while a "
                f"RepairState was live (version {self._relation.version}, "
                f"state built at {self._expected_version}); rebuild the "
                "RepairState over the current relation"
            )

    def violation_count(self) -> int:
        self._check_synchronized()
        return sum(len(violations) for store in self._store for violations in store.values())

    def is_clean(self) -> bool:
        """Whether the relation currently satisfies every CFD."""
        self._check_synchronized()
        return all(not store for store in self._store)

    def report(self) -> ViolationReport:
        """The current violations, in the scan oracle's canonical order."""
        self._check_synchronized()
        violations = [
            violation
            for store in self._store
            for partition_violations in store.values()
            for violation in partition_violations
        ]
        return ViolationReport(canonical_order(violations, self._cfds))

    def stats(self) -> Dict[str, int]:
        """Delta-maintenance counters (how little work apply_change did)."""
        return {
            "changes_applied": self._changes_applied,
            "patterns_reevaluated": self._patterns_reevaluated,
            "partitions_reevaluated": self._partitions_reevaluated,
            **{f"cache_{name}": value for name, value in self._cache.stats().items()},
        }

    # ------------------------------------------------------------------ the delta
    def apply_change(self, tuple_index: int, attribute: str, new_value: Any) -> bool:
        """Set one cell and repair the violation state by delta.

        Returns ``False`` (and changes nothing) when the cell already holds
        ``new_value``.  Otherwise the affected partition indexes move the
        tuple between equivalence classes in place, and only the patterns
        mentioning ``attribute`` are re-evaluated — over only the tuple's old
        and new classes.
        """
        if self._batched:
            return self.apply_changes([(tuple_index, attribute, new_value)]) > 0
        self._check_synchronized()
        position = self._relation.schema.position(attribute)
        old_row = self._relation[tuple_index]
        if old_row[position] == new_value:
            return False
        self._relation.update(tuple_index, attribute, new_value)
        new_row = self._relation[tuple_index]
        self._cache.apply_update(tuple_index, attribute, old_row)
        self._expected_version = self._relation.version
        self._changes_applied += 1

        for spec in self._specs_by_attr.get(attribute, ()):
            self._patterns_reevaluated += 1
            old_key = tuple(old_row[p] for p in spec.lhs_positions)
            new_key = tuple(new_row[p] for p in spec.lhs_positions)
            # When the change touched an RHS-only attribute the two keys
            # coincide and a single class is re-checked.
            self._reevaluate(spec, old_key)
            if new_key != old_key:
                self._reevaluate(spec, new_key)
        return True

    def apply_changes(self, changes: Sequence[Tuple[int, str, Any]]) -> int:
        """Apply a batch of cell changes and repair the state in one delta.

        Semantically identical to calling :meth:`apply_change` per entry, in
        order (no-op entries included); returns how many entries actually
        changed a cell.  On the batched path the whole batch costs three
        bulk steps instead of per-change work: the cell updates themselves
        (collecting each change's old/new partition keys as the dirty set),
        **one scatter per touched partition index** re-placing the moved
        tuples, and **one ``evaluate_classes`` kernel call per dirty
        pattern** over all of its dirty classes at once.  Evaluating each
        dirtied class once against the final state is exactly equivalent to
        the sequential delta: any intermediate change that could alter a
        class's verdict also dirties that class.
        """
        if not self._batched:
            applied = 0
            for tuple_index, attribute, new_value in changes:
                if self.apply_change(tuple_index, attribute, new_value):
                    applied += 1
            return applied
        self._check_synchronized()
        relation = self._relation
        schema = relation.schema
        # Evolving row snapshots: each change's old/new keys are computed
        # against the rows as they stand mid-batch, mirroring the sequential
        # path (a tuple changed twice dirties its intermediate class too).
        rows_now: Dict[int, List[Any]] = {}
        changed_attrs: Dict[int, Set[str]] = {}
        dirty: Dict[int, Dict[Tuple[Any, ...], None]] = {}
        applied = 0
        for tuple_index, attribute, new_value in changes:
            position = schema.position(attribute)
            row = rows_now.get(tuple_index)
            if row is None:
                row = list(relation[tuple_index])
            if row[position] == new_value:
                continue
            old_row = tuple(row)
            relation.update(tuple_index, attribute, new_value)
            row[position] = new_value
            rows_now[tuple_index] = row
            changed_attrs.setdefault(tuple_index, set()).add(attribute)
            applied += 1
            for spec in self._specs_by_attr.get(attribute, ()):
                self._patterns_reevaluated += 1
                keys = dirty.setdefault(spec.spec_id, {})
                keys[tuple(old_row[p] for p in spec.lhs_positions)] = None
                keys[tuple(row[p] for p in spec.lhs_positions)] = None
        if not applied:
            return 0
        self._changes_applied += applied
        self._expected_version = relation.version
        for lhs_free, index in self._code_indexes.items():
            if not lhs_free:
                continue
            moved = [
                tuple_index
                for tuple_index, attrs in changed_attrs.items()
                if attrs.intersection(lhs_free)
            ]
            if moved:
                index.apply_moves(moved)
        for spec in self._specs:
            keys = dirty.get(spec.spec_id)
            if keys:
                self._reevaluate_batched(spec, list(keys))
        return applied

    def _reevaluate_batched(self, spec: _PatternSpec, keys: List[Tuple[Any, ...]]) -> None:
        """Recompute one pattern over its dirty classes — one kernel call."""
        store = self._relation
        assert isinstance(store, ColumnStore)
        spec_store = self._store[spec.spec_id]
        index = self._code_indexes[spec.lhs_free]
        live: List[Tuple[Tuple[Any, ...], int]] = []
        for key in keys:
            self._partitions_reevaluated += 1
            if not spec.key_matches(key):
                # The class fell outside the pattern's LHS constants (e.g.
                # the changed tuple moved into a non-matching class): nothing
                # of this pattern can be violated there.
                spec_store.pop(key, None)
                continue
            position = index.find(
                tuple(store.encode(attr, value) for attr, value in zip(spec.lhs_free, key))
            )
            if position < 0:
                # The class emptied out (every member moved away).
                spec_store.pop(key, None)
                continue
            live.append((key, position))
        if not live:
            return
        checks = self._const_checks(spec)
        const_pairs = [(column, code) for _attr, column, code, _expected in checks]
        rhs_columns = store.project_codes(spec.rhs_free) if spec.rhs_free else ()
        positions = [position for _key, position in live]
        if len(positions) <= 8:
            # The typical mid-fixpoint batch dirties one or two small classes;
            # flattening them as python lists here skips the numpy gather
            # round-trip the kernel's small-input fallback would undo anyway.
            flat: List[int] = []
            offs: List[int] = []
            for position in positions:
                offs.append(len(flat))
                flat.extend(index.members_at(position))
            indices, offsets = flat, offs
        else:
            indices, offsets = index.gather(positions)
        findings = {
            local: (disagree, mismatches)
            for local, disagree, mismatches in active_kernel().evaluate_classes(
                rhs_columns, indices, offsets, const_pairs
            )
        }
        for local, (key, position) in enumerate(live):
            finding = findings.get(local)
            if finding is None:
                spec_store.pop(key, None)
                continue
            disagree, mismatches = finding
            spec_store[key] = self._class_violations(
                spec, checks, key, index.members_at(position), disagree, mismatches
            )

    def _reevaluate(self, spec: _PatternSpec, key: Tuple[Any, ...]) -> None:
        """Recompute one pattern's violations over one equivalence class."""
        self._partitions_reevaluated += 1
        store = self._store[spec.spec_id]
        if not spec.key_matches(key):
            # The class fell outside the pattern's LHS constants (e.g. the
            # changed tuple moved into a non-matching class): nothing of this
            # pattern can be violated there.
            store.pop(key, None)
            return
        indices = self._cache.get(spec.lhs_free).get(key)
        violations = self._evaluate(spec, key, indices)
        if violations:
            store[key] = violations
        else:
            store.pop(key, None)

    def _const_checks(self, spec: _PatternSpec) -> List[Tuple[str, Any, Optional[int], Any]]:
        """The pattern's encoded ``Q^C`` checks, cached per dictionary version.

        Each entry is ``(attribute, code column, expected code, expected
        value)``.  The dictionary grows under repair — an expected constant
        absent at one evaluation can be interned by a later fix — so the
        encode is not stable across the whole run; but it *is* stable while
        the constant attributes' dictionary versions stand still, which is
        virtually every evaluation.  Columnar storage only.
        """
        if not spec.constant_rhs:
            return []
        store = self._relation
        assert isinstance(store, ColumnStore)
        versions = tuple(
            store.dictionary_version(attr) for attr, _position, _expected in spec.constant_rhs
        )
        cached = self._const_cache.get(spec.spec_id)
        if cached is not None and cached[0] == versions:
            return cached[1]
        checks = [
            (attr, store.codes(attr), store.encode(attr, expected), expected)
            for attr, _position, expected in spec.constant_rhs
        ]
        self._const_cache[spec.spec_id] = (versions, checks)
        return checks

    def _class_violations(
        self,
        spec: _PatternSpec,
        checks: Sequence[Tuple[str, Any, Optional[int], Any]],
        key: Tuple[Any, ...],
        members: Sequence[int],
        disagree: bool,
        mismatches: Sequence[Sequence[int]],
    ) -> List[Violation]:
        """Materialise one reported class's violations from kernel output.

        Emission matches the reference :meth:`_evaluate` exactly: ``Q^C``
        violations tuple-major through the shared
        :func:`~repro.detection.indexed.constant_code_violations` helper,
        then the single ``Q^V`` violation over the full member list.
        """
        store = self._relation
        assert isinstance(store, ColumnStore)
        violations: List[Violation] = []
        if checks:
            violations.extend(
                constant_code_violations(
                    store, spec.cfd.name, spec.pattern_index, checks, mismatches
                )
            )
        if disagree:
            violations.append(
                VariableViolation(
                    cfd_name=spec.cfd.name,
                    pattern_index=spec.pattern_index,
                    tuple_indices=tuple(members),
                    attributes=spec.lhs_free,
                    group_key=key,
                )
            )
        return violations

    def _evaluate(
        self, spec: _PatternSpec, key: Tuple[Any, ...], indices: Sequence[int]
    ) -> List[Violation]:
        """One pattern's violations over one equivalence class (assumed matching).

        On a :class:`~repro.relation.columnar.ColumnStore` both checks run
        over dictionary codes, mirroring the indexed detection backend:
        expected constants come pre-encoded from the version-keyed
        :meth:`_const_checks` cache, RHS agreement is code-projection
        cardinality through the active kernel, and values decode only into
        emitted violations (via the shared
        :func:`~repro.detection.indexed.constant_code_violations` emission
        helper, which also serves indexed detection and the batched path).
        """
        relation = self._relation
        violations: List[Violation] = []
        store = relation if isinstance(relation, ColumnStore) else None
        if spec.constant_rhs:
            if store is not None:
                kernel = active_kernel()
                checks = self._const_checks(spec)
                mismatches = [
                    kernel.constant_mismatches(column, indices, expected_code)
                    for _attr, column, expected_code, _expected in checks
                ]
                violations.extend(
                    constant_code_violations(
                        store, spec.cfd.name, spec.pattern_index, checks, mismatches
                    )
                )
            else:
                for tuple_index in indices:
                    row = relation[tuple_index]
                    for attr, position, expected in spec.constant_rhs:
                        if row[position] != expected:
                            violations.append(
                                ConstantViolation(
                                    cfd_name=spec.cfd.name,
                                    pattern_index=spec.pattern_index,
                                    tuple_indices=(tuple_index,),
                                    attribute=attr,
                                    expected=expected,
                                    actual=row[position],
                                )
                            )
        if spec.rhs_free and len(indices) > 1:
            if store is not None:
                disagree = active_kernel().codes_disagree(
                    store.project_codes(spec.rhs_free), indices
                )
            else:
                rhs_values = {
                    tuple(relation[tuple_index][position] for position in spec.rhs_positions)
                    for tuple_index in indices
                }
                disagree = len(rhs_values) > 1
            if disagree:
                violations.append(
                    VariableViolation(
                        cfd_name=spec.cfd.name,
                        pattern_index=spec.pattern_index,
                        tuple_indices=tuple(indices),
                        attributes=spec.lhs_free,
                        group_key=key,
                    )
                )
        return violations

    def __repr__(self) -> str:
        return (
            f"RepairState({self._relation!r}, {len(self._cfds)} CFDs, "
            f"{self.violation_count()} violations)"
        )
