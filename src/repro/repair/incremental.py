"""Delta-maintained violation state for the repair loop.

The repair heuristic (Section 6) is an iterative fixpoint: detect violations,
fix some cells, detect again.  Re-running full detection on every pass costs
``O(passes x |Σ| x |I| x TABSZ)`` with the scan oracle — and even the
partition-indexed backend rebuilds its partition maps from scratch each time.
But a repair pass changes a handful of *cells*, and a single cell change can
only affect

* the patterns whose ``@``-free LHS or non-``@`` RHS mentions the changed
  attribute, and
* within such a pattern, the tuples of the changed tuple's *old* and *new*
  equivalence classes under the pattern's LHS partition.

:class:`RepairState` exploits exactly that: it ingests the relation once into
the :class:`~repro.detection.partition_index.PartitionIndex` maps of PR 1,
computes the initial :class:`~repro.core.violations.ViolationReport` the way
the indexed backend does, and then keeps the report correct under
:meth:`RepairState.apply_change` by

1. moving the changed tuple between equivalence classes in the affected
   partition indexes (:meth:`PartitionIndex.reindex_tuple` — in place, no
   rebuild), and
2. re-evaluating only the affected patterns over only the old and new
   classes of the changed tuple (a dirty-set delta, not a rescan).

Reports are emitted in the *canonical order* — the order the scan oracle
produces — so the greedy repair heuristic makes identical decisions no
matter which detection engine feeds it.  See ``docs/repair.md`` for the
complexity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.cfd import CFD
from repro.core.pattern import PatternValue
from repro.core.violations import (
    ConstantViolation,
    VariableViolation,
    Violation,
    ViolationReport,
)
from repro.detection.indexed import codes_disagree
from repro.detection.partition_index import PartitionIndexCache
from repro.errors import DetectionError
from repro.kernels import active_kernel
from repro.relation.columnar import ColumnStore
from repro.relation.relation import Relation


# ---------------------------------------------------------------------------
# canonical violation order
# ---------------------------------------------------------------------------
def canonical_order(violations: Iterable[Violation], cfds: Sequence[CFD]) -> List[Violation]:
    """Sort ``violations`` into the order the scan oracle reports them.

    The oracle (:func:`repro.core.satisfaction.find_all_violations`) emits,
    per CFD in input order and per pattern tuple in tableau order, first the
    constant violations (ascending tuple index, RHS attributes in CFD order)
    and then the variable violations (ascending smallest member index).  Every
    backend finds the same violation *set*; sorting by this key makes the
    *sequence* identical too, which is what lets the greedy repair heuristic
    reach the same repaired relation regardless of the detection engine
    driving it.  The sort is stable, so a report already in oracle order is
    returned unchanged.
    """
    cfd_position: Dict[str, int] = {}
    rhs_position: Dict[str, Dict[str, int]] = {}
    for position, cfd in enumerate(cfds):
        if cfd.name not in cfd_position:
            cfd_position[cfd.name] = position
            rhs_position[cfd.name] = {attr: i for i, attr in enumerate(cfd.rhs)}

    def key(violation: Violation) -> Tuple[int, int, int, int, int]:
        cfd_rank = cfd_position.get(violation.cfd_name, len(cfd_position))
        if isinstance(violation, ConstantViolation):
            attr_rank = rhs_position.get(violation.cfd_name, {}).get(violation.attribute, 0)
            return (cfd_rank, violation.pattern_index, 0, violation.tuple_indices[0], attr_rank)
        return (cfd_rank, violation.pattern_index, 1, min(violation.tuple_indices), 0)

    return sorted(violations, key=key)


# ---------------------------------------------------------------------------
# per-pattern metadata
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _PatternSpec:
    """Everything needed to evaluate one pattern tuple against one partition."""

    spec_id: int
    cfd: CFD
    pattern_index: int
    #: ``@``-free LHS attributes in LHS order — the partition attributes.
    lhs_free: Tuple[str, ...]
    lhs_positions: Tuple[int, ...]
    #: LHS pattern cells aligned with ``lhs_free``.
    cells: Tuple[PatternValue, ...]
    #: ``(attribute, schema position, expected constant)`` per constant RHS cell.
    constant_rhs: Tuple[Tuple[str, int, Any], ...]
    #: non-``@`` RHS attributes in RHS order (the ``Q^V`` projection).
    rhs_free: Tuple[str, ...]
    rhs_positions: Tuple[int, ...]

    def key_matches(self, key: Tuple[Any, ...]) -> bool:
        """Whether a partition key matches this pattern's LHS constants."""
        return all(cell.matches(value) for cell, value in zip(self.cells, key))


def _build_specs(relation: Relation, cfds: Sequence[CFD]) -> List[_PatternSpec]:
    schema = relation.schema
    specs: List[_PatternSpec] = []
    for cfd in cfds:
        for pattern_index, pattern in enumerate(cfd.tableau):
            lhs_free = tuple(attr for attr in cfd.lhs if not pattern.lhs_cell(attr).is_dontcare)
            rhs_free = tuple(attr for attr in cfd.rhs if not pattern.rhs_cell(attr).is_dontcare)
            constant_rhs = tuple(
                (attr, schema.position(attr), pattern.rhs_cell(attr).value)
                for attr in cfd.rhs
                if pattern.rhs_cell(attr).is_constant
            )
            specs.append(
                _PatternSpec(
                    spec_id=len(specs),
                    cfd=cfd,
                    pattern_index=pattern_index,
                    lhs_free=lhs_free,
                    lhs_positions=schema.positions(lhs_free),
                    cells=tuple(pattern.lhs_cell(attr) for attr in lhs_free),
                    constant_rhs=constant_rhs,
                    rhs_free=rhs_free,
                    rhs_positions=schema.positions(rhs_free) if rhs_free else (),
                )
            )
    return specs


# ---------------------------------------------------------------------------
# the incremental engine
# ---------------------------------------------------------------------------
class RepairState:
    """Violation state of ``relation`` against ``cfds``, maintained under cell changes.

    The relation is ingested once (one partition index per distinct ``@``-free
    LHS attribute tuple, shared across patterns and CFDs); the initial report
    is computed from those indexes exactly as the ``method="indexed"``
    detection backend would.  From then on :meth:`apply_change` keeps both the
    indexes and the per-partition violation store correct in time proportional
    to the *touched* partitions, not the relation.

    The state owns ``relation`` operationally: every mutation must flow
    through :meth:`apply_change`, or the maintained report goes stale.

    >>> from repro.datagen.cust import cust_relation, cust_cfds
    >>> state = RepairState(cust_relation(), cust_cfds())
    >>> state.is_clean()
    False
    >>> sorted(state.report().violating_indices())
    [0, 1, 2, 3]
    """

    def __init__(
        self,
        relation: Relation,
        cfds: Sequence[CFD],
        cache_size: Optional[int] = None,
    ) -> None:
        self._relation = relation
        self._cfds = list(cfds)
        self._specs = _build_specs(relation, self._cfds)

        # attribute -> specs whose LHS ∪ RHS mention it (the dirty-spec map).
        self._specs_by_attr: Dict[str, List[_PatternSpec]] = {}
        for spec in self._specs:
            for attr in dict.fromkeys(spec.lhs_free + spec.rhs_free):
                self._specs_by_attr.setdefault(attr, []).append(spec)

        distinct_lhs = {spec.lhs_free for spec in self._specs}
        # cache_size (RepairConfig.cache_size) below the number of distinct
        # LHS sets would evict live indexes and stale the store, so it only
        # ever widens the auto-sized cache.
        auto_size = max(32, len(distinct_lhs))
        self._cache = PartitionIndexCache(
            relation, maxsize=max(auto_size, cache_size or 0)
        )
        # Pre-build every index: with maxsize >= the number of distinct LHS
        # tuples nothing is ever evicted, so apply_update sees them all.
        for lhs_free in distinct_lhs:
            self._cache.get(lhs_free)

        # spec_id -> partition key -> violations of that pattern in that class.
        self._store: List[Dict[Tuple[Any, ...], List[Violation]]] = [
            {} for _ in self._specs
        ]
        for spec in self._specs:
            store = self._store[spec.spec_id]
            index = self._cache.get(spec.lhs_free)
            for key, indices in index.matching(spec.cells):
                violations = self._evaluate(spec, tuple(key), indices)
                if violations:
                    store[tuple(key)] = violations

        self._changes_applied = 0
        self._patterns_reevaluated = 0
        self._partitions_reevaluated = 0
        self._expected_version = relation.version

    # ------------------------------------------------------------------ queries
    @property
    def relation(self) -> Relation:
        """The relation whose violation state is being maintained."""
        return self._relation

    @property
    def cfds(self) -> Tuple[CFD, ...]:
        return tuple(self._cfds)

    def _check_synchronized(self) -> None:
        """Raise when the relation mutated outside :meth:`apply_change`.

        An insert, delete or raw update behind the state's back leaves the
        maintained report describing a relation that no longer exists; the
        version counter turns the next read into a loud error instead of a
        silently wrong answer.
        """
        if self._relation.version != self._expected_version:
            raise DetectionError(
                "the relation was mutated outside apply_change while a "
                f"RepairState was live (version {self._relation.version}, "
                f"state built at {self._expected_version}); rebuild the "
                "RepairState over the current relation"
            )

    def violation_count(self) -> int:
        self._check_synchronized()
        return sum(len(violations) for store in self._store for violations in store.values())

    def is_clean(self) -> bool:
        """Whether the relation currently satisfies every CFD."""
        self._check_synchronized()
        return all(not store for store in self._store)

    def report(self) -> ViolationReport:
        """The current violations, in the scan oracle's canonical order."""
        self._check_synchronized()
        violations = [
            violation
            for store in self._store
            for partition_violations in store.values()
            for violation in partition_violations
        ]
        return ViolationReport(canonical_order(violations, self._cfds))

    def stats(self) -> Dict[str, int]:
        """Delta-maintenance counters (how little work apply_change did)."""
        return {
            "changes_applied": self._changes_applied,
            "patterns_reevaluated": self._patterns_reevaluated,
            "partitions_reevaluated": self._partitions_reevaluated,
            **{f"cache_{name}": value for name, value in self._cache.stats().items()},
        }

    # ------------------------------------------------------------------ the delta
    def apply_change(self, tuple_index: int, attribute: str, new_value: Any) -> bool:
        """Set one cell and repair the violation state by delta.

        Returns ``False`` (and changes nothing) when the cell already holds
        ``new_value``.  Otherwise the affected partition indexes move the
        tuple between equivalence classes in place, and only the patterns
        mentioning ``attribute`` are re-evaluated — over only the tuple's old
        and new classes.
        """
        self._check_synchronized()
        position = self._relation.schema.position(attribute)
        old_row = self._relation[tuple_index]
        if old_row[position] == new_value:
            return False
        self._relation.update(tuple_index, attribute, new_value)
        new_row = self._relation[tuple_index]
        self._cache.apply_update(tuple_index, attribute, old_row)
        self._expected_version = self._relation.version
        self._changes_applied += 1

        for spec in self._specs_by_attr.get(attribute, ()):
            self._patterns_reevaluated += 1
            old_key = tuple(old_row[p] for p in spec.lhs_positions)
            new_key = tuple(new_row[p] for p in spec.lhs_positions)
            # When the change touched an RHS-only attribute the two keys
            # coincide and a single class is re-checked.
            self._reevaluate(spec, old_key)
            if new_key != old_key:
                self._reevaluate(spec, new_key)
        return True

    def _reevaluate(self, spec: _PatternSpec, key: Tuple[Any, ...]) -> None:
        """Recompute one pattern's violations over one equivalence class."""
        self._partitions_reevaluated += 1
        store = self._store[spec.spec_id]
        if not spec.key_matches(key):
            # The class fell outside the pattern's LHS constants (e.g. the
            # changed tuple moved into a non-matching class): nothing of this
            # pattern can be violated there.
            store.pop(key, None)
            return
        indices = self._cache.get(spec.lhs_free).get(key)
        violations = self._evaluate(spec, key, indices)
        if violations:
            store[key] = violations
        else:
            store.pop(key, None)

    def _evaluate(
        self, spec: _PatternSpec, key: Tuple[Any, ...], indices: Sequence[int]
    ) -> List[Violation]:
        """One pattern's violations over one equivalence class (assumed matching).

        On a :class:`~repro.relation.columnar.ColumnStore` both checks run
        over dictionary codes, mirroring the indexed detection backend:
        expected constants encode once per evaluation (the dictionary grows
        under repair, so codes are not cached across calls) and RHS agreement
        is code-projection cardinality — values decode only into emitted
        violations.
        """
        relation = self._relation
        violations: List[Violation] = []
        store = relation if isinstance(relation, ColumnStore) else None
        if spec.constant_rhs:
            if store is not None:
                kernel = active_kernel()
                checks = [
                    (attr, store.codes(attr), store.encode(attr, expected), expected)
                    for attr, _position, expected in spec.constant_rhs
                ]
                # Tuple-major emission, like the indexed backend: the kernel
                # finds each check's mismatching subset, the union is walked
                # in ascending index order (`indices` is ascending, so
                # sorted() restores the reference order).
                if len(checks) == 1:
                    attr, column, expected_code, expected = checks[0]
                    for tuple_index in kernel.constant_mismatches(
                        column, indices, expected_code
                    ):
                        violations.append(
                            ConstantViolation(
                                cfd_name=spec.cfd.name,
                                pattern_index=spec.pattern_index,
                                tuple_indices=(tuple_index,),
                                attribute=attr,
                                expected=expected,
                                actual=store.decode(attr, column[tuple_index]),
                            )
                        )
                else:
                    dirty: set = set()
                    for _attr, column, expected_code, _expected in checks:
                        dirty.update(
                            kernel.constant_mismatches(column, indices, expected_code)
                        )
                    for tuple_index in sorted(dirty):
                        for attr, column, expected_code, expected in checks:
                            code = column[tuple_index]
                            if code != expected_code:
                                violations.append(
                                    ConstantViolation(
                                        cfd_name=spec.cfd.name,
                                        pattern_index=spec.pattern_index,
                                        tuple_indices=(tuple_index,),
                                        attribute=attr,
                                        expected=expected,
                                        actual=store.decode(attr, code),
                                    )
                                )
            else:
                for tuple_index in indices:
                    row = relation[tuple_index]
                    for attr, position, expected in spec.constant_rhs:
                        if row[position] != expected:
                            violations.append(
                                ConstantViolation(
                                    cfd_name=spec.cfd.name,
                                    pattern_index=spec.pattern_index,
                                    tuple_indices=(tuple_index,),
                                    attribute=attr,
                                    expected=expected,
                                    actual=row[position],
                                )
                            )
        if spec.rhs_free and len(indices) > 1:
            if store is not None:
                disagree = codes_disagree(store.project_codes(spec.rhs_free), indices)
            else:
                rhs_values = {
                    tuple(relation[tuple_index][position] for position in spec.rhs_positions)
                    for tuple_index in indices
                }
                disagree = len(rhs_values) > 1
            if disagree:
                violations.append(
                    VariableViolation(
                        cfd_name=spec.cfd.name,
                        pattern_index=spec.pattern_index,
                        tuple_indices=tuple(indices),
                        attributes=spec.lhs_free,
                        group_key=key,
                    )
                )
        return violations

    def __repr__(self) -> str:
        return (
            f"RepairState({self._relation!r}, {len(self._cfds)} CFDs, "
            f"{self.violation_count()} violations)"
        )
