"""SQL-based CFD violation detection (Section 4 of the paper).

* :mod:`repro.sql.single` — the query pair ``(Q^C_φ, Q^V_φ)`` for one CFD.
* :mod:`repro.sql.merge` — merging the tableaux of a CFD set into the
  union-compatible ``T^X_Σ`` / ``T^Y_Σ`` pair with ``@`` don't-care cells.
* :mod:`repro.sql.multi` — the single query pair ``(Q^C_Σ, Q^V_Σ)`` that
  validates the whole set in two passes using a CASE-masked ``Macro`` relation.
* :mod:`repro.sql.engine` — a SQLite execution engine tying it all together.
"""

from repro.sql.dialect import SQLDialect
from repro.sql.engine import SQLDetector
from repro.sql.merge import MergedTableau, merge_cfds
from repro.sql.multi import MergedQueryBuilder
from repro.sql.single import SingleCFDQueryBuilder

__all__ = [
    "MergedQueryBuilder",
    "MergedTableau",
    "SQLDetector",
    "SQLDialect",
    "SingleCFDQueryBuilder",
    "merge_cfds",
]
