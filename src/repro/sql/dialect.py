"""SQL dialect helpers: identifier quoting, literals, and pattern markers.

The paper treats the pattern tableau as an ordinary data table joined with the
relation, so the unnamed variable ``_`` and the don't-care symbol ``@`` must
be representable as column *values*.  The markers used for them are part of
the dialect so that tests (and users whose data legitimately contains ``_`` or
``@``) can change them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.core.pattern import PatternValue
from repro.errors import SQLGenerationError

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True)
class SQLDialect:
    """Rendering rules for the generated SQL.

    The defaults target SQLite but the generated text is intentionally plain
    (ANSI joins in the FROM list, CASE expressions, GROUP BY / HAVING) so it
    also runs on DB2/PostgreSQL-style engines; the only SQLite-specific
    accommodation is that multi-column ``COUNT(DISTINCT a, b)`` is emulated by
    concatenating the columns with :attr:`concat_separator`.
    """

    wildcard_marker: str = "_"
    dontcare_marker: str = "@"
    concat_separator: str = "\x1f"
    lhs_prefix: str = "x_"
    rhs_prefix: str = "y_"
    index_column: str = "_idx"
    pattern_id_column: str = "pid"

    # ------------------------------------------------------------------ identifiers
    def quote_identifier(self, name: str) -> str:
        """Quote an identifier; reject names that cannot be quoted safely."""
        if '"' in name:
            raise SQLGenerationError(f"identifier {name!r} contains a double quote")
        if _IDENTIFIER_RE.match(name):
            return f'"{name}"'
        return f'"{name}"'

    def column(self, table_alias: str, name: str) -> str:
        """Render ``alias."name"``."""
        return f"{table_alias}.{self.quote_identifier(name)}"

    # ------------------------------------------------------------------ literals
    def literal(self, value: Any) -> str:
        """Render a Python value as a SQL literal."""
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, (int, float)):
            return repr(value)
        text = str(value).replace("'", "''")
        return f"'{text}'"

    # ------------------------------------------------------------------ pattern cells
    def encode_cell(self, cell: PatternValue) -> Any:
        """The value stored in a tableau table for a pattern cell."""
        if cell.is_wildcard:
            return self.wildcard_marker
        if cell.is_dontcare:
            return self.dontcare_marker
        return cell.value

    def lhs_column(self, attribute: str) -> str:
        """The tableau column storing a pattern's LHS cell for ``attribute``."""
        return f"{self.lhs_prefix}{attribute}"

    def rhs_column(self, attribute: str) -> str:
        """The tableau column storing a pattern's RHS cell for ``attribute``."""
        return f"{self.rhs_prefix}{attribute}"

    # ------------------------------------------------------------------ predicates
    def match_predicate(self, data_column: str, pattern_column: str, with_dontcare: bool = False) -> str:
        """The ``t[X] ≍ tp[X]`` shorthand of Section 4.1 / 4.2.2.

        ``(t.X = tp.X OR tp.X = '_')``, extended with ``OR tp.X = '@'`` for
        merged tableaux.
        """
        clauses = [
            f"{data_column} = {pattern_column}",
            f"{pattern_column} = {self.literal(self.wildcard_marker)}",
        ]
        if with_dontcare:
            clauses.append(f"{pattern_column} = {self.literal(self.dontcare_marker)}")
        return "(" + " OR ".join(clauses) + ")"

    def mismatch_predicate(self, data_column: str, pattern_column: str, with_dontcare: bool = False) -> str:
        """The ``t[Y] ≭ tp[Y]`` shorthand: a constant cell contradicted by the data."""
        clauses = [
            f"{data_column} <> {pattern_column}",
            f"{pattern_column} <> {self.literal(self.wildcard_marker)}",
        ]
        if with_dontcare:
            clauses.append(f"{pattern_column} <> {self.literal(self.dontcare_marker)}")
        return "(" + " AND ".join(clauses) + ")"

    def concat(self, columns: Any) -> str:
        """Concatenate columns with the dialect separator (multi-column DISTINCT emulation)."""
        columns = list(columns)
        if not columns:
            raise SQLGenerationError("cannot build a DISTINCT expression over zero columns")
        if len(columns) == 1:
            return columns[0]
        separator = self.literal(self.concat_separator)
        return f" || {separator} || ".join(columns)


DEFAULT_DIALECT = SQLDialect()
