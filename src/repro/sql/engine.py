"""The SQLite execution engine for CFD violation detection.

:class:`SQLDetector` loads a relation into an (in-memory by default) SQLite
database and runs the detection queries of Section 4 against it, in any of
four configurations:

* per-CFD queries (``strategy="per_cfd"``), the paper's Section 4.1, with
  either the CNF or the DNF WHERE-clause formulation;
* merged queries (``strategy="merged"``), the paper's Section 4.2, which
  validate the whole CFD set with a single query pair and two passes over the
  data.

Results are returned as :class:`~repro.core.violations.ViolationReport`
objects whose tuple indices refer to the original in-memory relation, so they
can be compared directly with the pure-Python detector (the correctness
oracle used in the integration tests).  Timing of each executed query is
recorded for the benchmark harness.
"""

from __future__ import annotations

import sqlite3
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.core.cfd import CFD
from repro.core.violations import (
    ConstantViolation,
    VariableViolation,
    ViolationReport,
)
from repro.errors import DetectionError
from repro.relation.relation import Relation
from repro.sql.dialect import DEFAULT_DIALECT, SQLDialect
from repro.sql.loader import (
    create_indexes,
    load_merged_tableau,
    load_relation,
    load_single_tableau,
    tableau_table_name,
)
from repro.sql.merge import merge_cfds
from repro.sql.multi import MergedQueryBuilder
from repro.sql.single import SingleCFDQueryBuilder

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.config import DetectionConfig


@dataclass
class QueryTiming:
    """Wall-clock timing of one executed detection query."""

    label: str
    sql: str
    seconds: float
    rows: int


@dataclass
class DetectionRun:
    """The outcome of one detection call: a report plus per-query timings."""

    report: ViolationReport
    timings: List[QueryTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.timings)

    def seconds_for(self, prefix: str) -> float:
        """Total time of the queries whose label starts with ``prefix`` (e.g. ``"qc"``)."""
        return sum(timing.seconds for timing in self.timings if timing.label.startswith(prefix))


class SQLDetector:
    """Detects CFD violations with SQL, backed by SQLite.

    >>> from repro.datagen.cust import cust_relation, cust_cfds
    >>> detector = SQLDetector(cust_relation())
    >>> run = detector.detect(cust_cfds())
    >>> sorted(run.report.violating_indices())
    [0, 1, 2, 3]
    """

    def __init__(
        self,
        relation: Relation,
        connection: Optional[sqlite3.Connection] = None,
        dialect: SQLDialect = DEFAULT_DIALECT,
        build_indexes: bool = True,
    ) -> None:
        self.relation = relation
        self.dialect = dialect
        self.connection = connection or sqlite3.connect(":memory:")
        self.data_table = load_relation(self.connection, relation, dialect)
        self._build_indexes = build_indexes
        self._loaded_tableaux: Dict[CFD, str] = {}

    # ------------------------------------------------------------------ plumbing
    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> SQLDetector:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _execute(self, label: str, sql: str, parameters: Sequence[Any] = ()) -> Tuple[List[tuple], QueryTiming]:
        start = time.perf_counter()
        cursor = self.connection.execute(sql, tuple(parameters))
        rows = cursor.fetchall()
        elapsed = time.perf_counter() - start
        return rows, QueryTiming(label=label, sql=sql, seconds=elapsed, rows=len(rows))

    def _ensure_tableau(self, cfd: CFD) -> str:
        # Keyed by the CFD itself (not just its name): two distinct CFDs may
        # share a name (e.g. both auto-derived from the same embedded FD) and
        # must not silently reuse each other's tableau table.
        if cfd in self._loaded_tableaux:
            return self._loaded_tableaux[cfd]
        base_name = tableau_table_name(cfd)
        name = base_name
        suffix = 1
        while name in self._loaded_tableaux.values():
            name = f"{base_name}_{suffix}"
            suffix += 1
        load_single_tableau(self.connection, cfd, self.dialect, table_name=name)
        self._loaded_tableaux[cfd] = name
        return name

    # ------------------------------------------------------------------ public API
    def detect(
        self,
        cfds: Sequence[CFD],
        strategy: str = "per_cfd",
        form: str = "dnf",
        expand_variable_violations: bool = True,
        config: Optional[DetectionConfig] = None,
    ) -> DetectionRun:
        """Detect all violations of ``cfds`` in the loaded relation.

        Parameters
        ----------
        strategy:
            ``"per_cfd"`` runs one query pair per CFD (Section 4.1);
            ``"merged"`` merges all tableaux and runs a single pair
            (Section 4.2).
        form:
            WHERE-clause formulation for the per-CFD strategy: ``"cnf"`` or
            ``"dnf"``.  The merged strategy always uses the paper's CNF form
            (its DNF expansion is ``3^k`` and not practical, as the paper
            notes).
        expand_variable_violations:
            When True, the engine runs the extra "expansion" query that maps
            violating GROUP BY groups back to tuple indices, so that the
            resulting report is comparable with the in-memory detector.  The
            benchmarks disable it to time exactly the paper's query pair.
        config:
            A :class:`~repro.config.DetectionConfig`; when given, its
            ``strategy``/``form``/``expand_variable_violations`` override the
            keyword arguments (the pipeline passes configs, the keywords
            remain for direct use).
        """
        if config is not None:
            strategy = config.effective_strategy
            form = config.effective_form
            expand_variable_violations = config.expand_variable_violations
        cfds = list(cfds)
        if not cfds:
            return DetectionRun(report=ViolationReport())
        if self._build_indexes:
            create_indexes(self.connection, self.data_table, cfds, self.dialect)
        if strategy == "per_cfd":
            return self._detect_per_cfd(cfds, form, expand_variable_violations)
        if strategy == "merged":
            return self._detect_merged(cfds, expand_variable_violations)
        raise DetectionError(f"unknown detection strategy {strategy!r}")

    # ------------------------------------------------------------------ per-CFD strategy
    def _detect_per_cfd(
        self, cfds: Sequence[CFD], form: str, expand: bool
    ) -> DetectionRun:
        report = ViolationReport()
        timings: List[QueryTiming] = []
        for cfd in cfds:
            tableau_table = self._ensure_tableau(cfd)
            builder = SingleCFDQueryBuilder(cfd, self.data_table, tableau_table, self.dialect)

            qc_rows, qc_timing = self._execute(f"qc:{cfd.name}", builder.qc_sql(form))
            timings.append(qc_timing)
            # The DNF (UNION ALL) form may report the same (tuple, pattern)
            # pair once per clashing RHS attribute; deduplicate so the report
            # is independent of the query formulation.
            seen_qc = set()
            for tuple_index, pattern_index in qc_rows:
                if (tuple_index, pattern_index) in seen_qc:
                    continue
                seen_qc.add((tuple_index, pattern_index))
                report.add(
                    ConstantViolation(
                        cfd_name=cfd.name,
                        pattern_index=pattern_index,
                        tuple_indices=(tuple_index,),
                    )
                )

            qv_rows, qv_timing = self._execute(f"qv:{cfd.name}", builder.qv_sql(form))
            timings.append(qv_timing)
            for group in qv_rows:
                indices: Tuple[int, ...] = ()
                if expand and cfd.lhs:
                    expanded, expansion_timing = self._execute(
                        f"qv_expand:{cfd.name}", builder.qv_expansion_sql(), group
                    )
                    timings.append(expansion_timing)
                    indices = tuple(row[0] for row in expanded)
                elif expand:
                    expanded, expansion_timing = self._execute(
                        f"qv_expand:{cfd.name}", builder.qv_expansion_sql()
                    )
                    timings.append(expansion_timing)
                    indices = tuple(row[0] for row in expanded)
                report.add(
                    VariableViolation(
                        cfd_name=cfd.name,
                        pattern_index=-1,
                        tuple_indices=indices,
                        attributes=tuple(cfd.lhs),
                        group_key=tuple(group) if cfd.lhs else (),
                    )
                )
        return DetectionRun(report=report, timings=timings)

    # ------------------------------------------------------------------ merged strategy
    def _detect_merged(self, cfds: Sequence[CFD], expand: bool) -> DetectionRun:
        merged = merge_cfds(cfds)
        tables = load_merged_tableau(self.connection, merged, self.dialect)
        builder = MergedQueryBuilder(
            merged, self.data_table, tables["x"], tables["y"], self.dialect
        )
        report = ViolationReport()
        timings: List[QueryTiming] = []
        pattern_by_id = {row.pattern_id: row for row in merged.rows}

        qc_rows, qc_timing = self._execute("qc:merged", builder.qc_sql())
        timings.append(qc_timing)
        for tuple_index, pattern_id in qc_rows:
            source = pattern_by_id[pattern_id]
            report.add(
                ConstantViolation(
                    cfd_name=source.source_cfd,
                    pattern_index=source.source_pattern_index,
                    tuple_indices=(tuple_index,),
                )
            )

        qv_rows, qv_timing = self._execute("qv:merged", builder.qv_sql())
        timings.append(qv_timing)
        if qv_rows:
            indices_by_group: Dict[Tuple[Any, ...], List[int]] = {}
            if expand:
                expanded, expansion_timing = self._execute(
                    "qv_expand:merged", builder.qv_expansion_sql()
                )
                timings.append(expansion_timing)
                for row in expanded:
                    indices_by_group.setdefault(tuple(row[:-1]), []).append(row[-1])
            for group in qv_rows:
                report.add(
                    VariableViolation(
                        cfd_name="merged",
                        pattern_index=-1,
                        tuple_indices=tuple(indices_by_group.get(tuple(group), ())),
                        attributes=tuple(merged.lhs_attributes),
                        group_key=tuple(group),
                    )
                )
        return DetectionRun(report=report, timings=timings)

    # ------------------------------------------------------------------ introspection
    def generated_sql(
        self, cfds: Sequence[CFD], strategy: str = "per_cfd", form: str = "dnf"
    ) -> Dict[str, str]:
        """The SQL text that :meth:`detect` would run, keyed by query label."""
        cfds = list(cfds)
        queries: Dict[str, str] = {}
        if strategy == "per_cfd":
            for cfd in cfds:
                builder = SingleCFDQueryBuilder(
                    cfd, self.data_table, tableau_table_name(cfd), self.dialect
                )
                queries[f"qc:{cfd.name}"] = builder.qc_sql(form)
                queries[f"qv:{cfd.name}"] = builder.qv_sql(form)
        elif strategy == "merged":
            merged = merge_cfds(cfds)
            builder = MergedQueryBuilder(merged, self.data_table, "tx_sigma", "ty_sigma", self.dialect)
            queries["qc:merged"] = builder.qc_sql()
            queries["qv:merged"] = builder.qv_sql()
        else:
            raise DetectionError(f"unknown detection strategy {strategy!r}")
        return queries
