"""Ablation: inlining pattern constants into the query text.

The paper's key engineering trick (Section 4.1) is to join the pattern tableau
as an ordinary table, which keeps the query text bounded by the embedded FD —
independent of how many pattern tuples the tableau holds.  The obvious
alternative is to *inline* every pattern tuple into the SQL text: one
conjunctive sub-query per pattern row, with the row's constants written as
literals.  This module implements that alternative so the design choice can be
ablated (see ``benchmarks/test_ablation_inline_vs_join.py``): the inlined
form produces SQL whose size grows linearly with TABSZ and that the database
must parse and plan on every execution, while the join form stays constant.
SQLite additionally caps compound SELECTs at ~500 arms, so the inlined form
cannot even express large tableaux — one more reason the paper's design is
the right one.
"""

from __future__ import annotations

from typing import List

from repro.core.cfd import CFD
from repro.core.tableau import PatternTuple
from repro.errors import SQLGenerationError
from repro.sql.dialect import DEFAULT_DIALECT, SQLDialect


class InlineCFDQueryBuilder:
    """Builds detection SQL with every pattern tuple inlined as literals.

    Semantically equivalent to :class:`repro.sql.single.SingleCFDQueryBuilder`
    (the tests check this); meant only as the ablation baseline for the
    paper's bounded-size tableau-join design.
    """

    def __init__(self, cfd: CFD, data_table: str, dialect: SQLDialect = DEFAULT_DIALECT) -> None:
        self.cfd = cfd
        self.data_table = data_table
        self.dialect = dialect

    # ------------------------------------------------------------------ helpers
    def _data_col(self, attribute: str) -> str:
        return self.dialect.column("t", attribute)

    def _from_clause(self) -> str:
        return f"FROM {self.dialect.quote_identifier(self.data_table)} t"

    def _lhs_conjuncts(self, pattern: PatternTuple) -> List[str]:
        conjuncts = []
        for attribute in self.cfd.lhs:
            cell = pattern.lhs_cell(attribute)
            if cell.is_constant:
                conjuncts.append(f"{self._data_col(attribute)} = {self.dialect.literal(cell.value)}")
        return conjuncts

    # ------------------------------------------------------------------ queries
    def qc_sql(self) -> str:
        """The inlined ``Q^C_φ``: one sub-query per (pattern row, constant RHS attribute)."""
        branches: List[str] = []
        for pattern_index, pattern in enumerate(self.cfd.tableau):
            lhs_conjuncts = self._lhs_conjuncts(pattern)
            for attribute in self.cfd.rhs:
                cell = pattern.rhs_cell(attribute)
                if not cell.is_constant:
                    continue
                conjuncts = list(lhs_conjuncts)
                conjuncts.append(
                    f"{self._data_col(attribute)} <> {self.dialect.literal(cell.value)}"
                )
                branches.append(
                    f"SELECT {self._data_col(self.dialect.index_column)} AS tuple_index, "
                    f"{pattern_index} AS pattern_index\n"
                    f"{self._from_clause()}\n"
                    f"WHERE {' AND '.join(conjuncts) if conjuncts else '1 = 1'}"
                )
        if not branches:
            # No constant RHS cells anywhere: Q^C can never return anything.
            return (
                f"SELECT {self._data_col(self.dialect.index_column)} AS tuple_index, "
                f"-1 AS pattern_index\n{self._from_clause()}\nWHERE 1 = 0"
            )
        return "\nUNION ALL\n".join(branches)

    def qv_sql(self) -> str:
        """The inlined ``Q^V_φ``: per-pattern GROUP BY sub-queries, unioned."""
        if not self.cfd.rhs:
            raise SQLGenerationError("a CFD must have RHS attributes")
        group_columns = [self._data_col(attribute) for attribute in self.cfd.lhs]
        select_list = (
            ", ".join(
                f"{column} AS {self.dialect.quote_identifier(attr)}"
                for column, attr in zip(group_columns, self.cfd.lhs)
            )
            or "1 AS all_rows"
        )
        rhs_concat = self.dialect.concat([self._data_col(attr) for attr in self.cfd.rhs])
        group_by = f"GROUP BY {', '.join(group_columns)}\n" if group_columns else ""
        branches = []
        for pattern in self.cfd.tableau:
            conjuncts = self._lhs_conjuncts(pattern)
            where = " AND ".join(conjuncts) if conjuncts else "1 = 1"
            branches.append(
                f"SELECT DISTINCT {select_list}\n"
                f"{self._from_clause()}\n"
                f"WHERE {where}\n"
                f"{group_by}"
                f"HAVING COUNT(DISTINCT {rhs_concat}) > 1"
            )
        return "\nUNION\n".join(branches)

    def query_text_size(self) -> int:
        """Total characters of SQL — the quantity that grows with TABSZ here."""
        return len(self.qc_sql()) + len(self.qv_sql())
