"""Loading relations and pattern tableaux into SQLite.

The detection engine treats the pattern tableau exactly as the paper does —
as an ordinary table joined with the data — so both the relation instance and
every tableau are materialised as SQLite tables here.
"""

from __future__ import annotations

import re
import sqlite3
from typing import Dict, Iterable, List, Optional

from repro.core.cfd import CFD
from repro.relation.relation import Relation
from repro.sql.dialect import DEFAULT_DIALECT, SQLDialect
from repro.sql.merge import MergedTableau

_NAME_SANITIZER = re.compile(r"[^A-Za-z0-9_]")


def sanitize_name(name: str) -> str:
    """Turn an arbitrary name into a safe SQL identifier fragment."""
    sanitized = _NAME_SANITIZER.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = f"t_{sanitized}"
    return sanitized


def data_table_name(relation: Relation) -> str:
    """The table name used for a relation instance."""
    return sanitize_name(relation.schema.name)


def tableau_table_name(cfd: CFD) -> str:
    """The table name used for a single CFD's pattern tableau."""
    return f"tab_{sanitize_name(cfd.name)}"


def load_relation(
    connection: sqlite3.Connection,
    relation: Relation,
    dialect: SQLDialect = DEFAULT_DIALECT,
    table_name: Optional[str] = None,
) -> str:
    """Create and populate the data table; returns its name.

    The table has one column per schema attribute plus the dialect's index
    column, which stores the row's position in the in-memory relation so that
    SQL results can be mapped back to :class:`Relation` indices.
    """
    name = table_name or data_table_name(relation)
    quoted = dialect.quote_identifier(name)
    columns = ", ".join(
        f"{dialect.quote_identifier(attribute)}" for attribute in relation.schema.names
    )
    index_column = dialect.quote_identifier(dialect.index_column)
    connection.execute(f"DROP TABLE IF EXISTS {quoted}")
    connection.execute(f"CREATE TABLE {quoted} ({index_column} INTEGER PRIMARY KEY, {columns})")
    placeholders = ", ".join(["?"] * (len(relation.schema) + 1))
    connection.executemany(
        f"INSERT INTO {quoted} VALUES ({placeholders})",
        ((index,) + row for index, row in enumerate(relation)),
    )
    connection.commit()
    return name


def create_indexes(
    connection: sqlite3.Connection,
    table_name: str,
    cfds: Iterable[CFD],
    dialect: SQLDialect = DEFAULT_DIALECT,
) -> List[str]:
    """Create one composite index per distinct CFD LHS on the data table.

    Mirrors the paper's observation that constants in pattern tuples let the
    optimizer use indexes, while variables restrict index use.
    """
    created: List[str] = []
    seen = set()
    for cfd in cfds:
        if not cfd.lhs or cfd.lhs in seen:
            continue
        seen.add(cfd.lhs)
        index_name = f"idx_{sanitize_name(table_name)}_{'_'.join(sanitize_name(a) for a in cfd.lhs)}"
        columns = ", ".join(dialect.quote_identifier(attribute) for attribute in cfd.lhs)
        connection.execute(
            f"CREATE INDEX IF NOT EXISTS {dialect.quote_identifier(index_name)} "
            f"ON {dialect.quote_identifier(table_name)} ({columns})"
        )
        created.append(index_name)
    connection.commit()
    return created


def load_single_tableau(
    connection: sqlite3.Connection,
    cfd: CFD,
    dialect: SQLDialect = DEFAULT_DIALECT,
    table_name: Optional[str] = None,
) -> str:
    """Create and populate the tableau table of one CFD; returns its name.

    The table stores LHS cells in ``x_<attr>`` columns and RHS cells in
    ``y_<attr>`` columns (this keeps the two occurrences of an attribute that
    appears on both sides distinct, the paper's ``t[A_L]``/``t[A_R]``).
    """
    name = table_name or tableau_table_name(cfd)
    quoted = dialect.quote_identifier(name)
    columns = [f"{dialect.quote_identifier(dialect.pattern_id_column)} INTEGER PRIMARY KEY"]
    columns.extend(dialect.quote_identifier(dialect.lhs_column(attr)) for attr in cfd.lhs)
    columns.extend(dialect.quote_identifier(dialect.rhs_column(attr)) for attr in cfd.rhs)
    connection.execute(f"DROP TABLE IF EXISTS {quoted}")
    connection.execute(f"CREATE TABLE {quoted} ({', '.join(columns)})")
    width = 1 + len(cfd.lhs) + len(cfd.rhs)
    placeholders = ", ".join(["?"] * width)
    rows = []
    for pattern_index, pattern in enumerate(cfd.tableau):
        cells = [pattern_index]
        cells.extend(dialect.encode_cell(pattern.lhs_cell(attr)) for attr in cfd.lhs)
        cells.extend(dialect.encode_cell(pattern.rhs_cell(attr)) for attr in cfd.rhs)
        rows.append(tuple(cells))
    connection.executemany(f"INSERT INTO {quoted} VALUES ({placeholders})", rows)
    connection.commit()
    return name


def load_merged_tableau(
    connection: sqlite3.Connection,
    merged: MergedTableau,
    dialect: SQLDialect = DEFAULT_DIALECT,
    name_prefix: str = "sigma",
) -> Dict[str, str]:
    """Create and populate ``T^X_Σ`` and ``T^Y_Σ``; returns their table names."""
    prefix = sanitize_name(name_prefix)
    x_name = f"tx_{prefix}"
    y_name = f"ty_{prefix}"
    pid = dialect.quote_identifier(dialect.pattern_id_column)

    x_quoted = dialect.quote_identifier(x_name)
    x_columns = [f"{pid} INTEGER PRIMARY KEY"]
    x_columns.extend(
        dialect.quote_identifier(dialect.lhs_column(attr)) for attr in merged.lhs_attributes
    )
    connection.execute(f"DROP TABLE IF EXISTS {x_quoted}")
    connection.execute(f"CREATE TABLE {x_quoted} ({', '.join(x_columns)})")
    x_placeholders = ", ".join(["?"] * (1 + len(merged.lhs_attributes)))
    connection.executemany(
        f"INSERT INTO {x_quoted} VALUES ({x_placeholders})",
        (
            (pattern_id,) + tuple(dialect.encode_cell(cell) for cell in cells)
            for pattern_id, cells in merged.x_rows()
        ),
    )

    y_quoted = dialect.quote_identifier(y_name)
    y_columns = [f"{pid} INTEGER PRIMARY KEY"]
    y_columns.extend(
        dialect.quote_identifier(dialect.rhs_column(attr)) for attr in merged.rhs_attributes
    )
    connection.execute(f"DROP TABLE IF EXISTS {y_quoted}")
    connection.execute(f"CREATE TABLE {y_quoted} ({', '.join(y_columns)})")
    y_placeholders = ", ".join(["?"] * (1 + len(merged.rhs_attributes)))
    connection.executemany(
        f"INSERT INTO {y_quoted} VALUES ({y_placeholders})",
        (
            (pattern_id,) + tuple(dialect.encode_cell(cell) for cell in cells)
            for pattern_id, cells in merged.y_rows()
        ),
    )
    connection.commit()
    return {"x": x_name, "y": y_name}
