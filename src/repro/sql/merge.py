"""Merging the pattern tableaux of several CFDs (Section 4.2.1).

To validate a whole set ``Σ`` of CFDs with a single pair of SQL queries, the
paper first merges all pattern tableaux into one pair of union-compatible
tableaux:

* every tableau is extended to the union of all LHS (resp. RHS) attributes,
  filling the new columns with the don't-care symbol ``@``;
* because one attribute may be an LHS attribute for one CFD and an RHS
  attribute for another, the merged tableau is split into ``T^X_Σ`` (LHS
  cells) and ``T^Y_Σ`` (RHS cells), linked by a per-pattern tuple id.

:class:`MergedTableau` holds the result; :func:`merge_cfds` builds it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.cfd import CFD
from repro.core.pattern import DONTCARE, PatternValue
from repro.core.tableau import PatternTableau, PatternTuple
from repro.errors import SQLGenerationError


@dataclass(frozen=True)
class MergedPatternRow:
    """One row of the merged tableau.

    ``pattern_id`` links the ``T^X_Σ`` and ``T^Y_Σ`` halves; ``source_cfd``
    and ``source_pattern_index`` record provenance for reporting.
    """

    pattern_id: int
    source_cfd: str
    source_pattern_index: int
    lhs_cells: Dict[str, PatternValue]
    rhs_cells: Dict[str, PatternValue]

    def lhs_cell(self, attribute: str) -> PatternValue:
        return self.lhs_cells.get(attribute, DONTCARE)

    def rhs_cell(self, attribute: str) -> PatternValue:
        return self.rhs_cells.get(attribute, DONTCARE)

    def ymask(self) -> Tuple[bool, ...]:
        """Which RHS attributes are free (non-``@``), in merged-attribute order.

        Used by the merged ``Q^V_Σ`` query to avoid mixing pattern rows with
        different RHS shapes inside one GROUP BY group.
        """
        return tuple(not cell.is_dontcare for cell in self.rhs_cells.values())


class MergedTableau:
    """The union-compatible merged tableau ``T_Σ`` split into its X and Y halves."""

    def __init__(
        self,
        lhs_attributes: Sequence[str],
        rhs_attributes: Sequence[str],
        rows: Sequence[MergedPatternRow],
    ) -> None:
        if not rows:
            raise SQLGenerationError("cannot merge an empty CFD set")
        self._lhs_attributes = tuple(lhs_attributes)
        self._rhs_attributes = tuple(rhs_attributes)
        self._rows = tuple(rows)

    @property
    def lhs_attributes(self) -> Tuple[str, ...]:
        """Union of the LHS attributes of every merged CFD (``T^X_Σ`` columns)."""
        return self._lhs_attributes

    @property
    def rhs_attributes(self) -> Tuple[str, ...]:
        """Union of the RHS attributes of every merged CFD (``T^Y_Σ`` columns)."""
        return self._rhs_attributes

    @property
    def rows(self) -> Tuple[MergedPatternRow, ...]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    # ------------------------------------------------------------------ views
    def x_rows(self) -> List[Tuple[int, Tuple[PatternValue, ...]]]:
        """``T^X_Σ``: (pattern id, LHS cells in column order) for every row."""
        return [
            (row.pattern_id, tuple(row.lhs_cell(attr) for attr in self._lhs_attributes))
            for row in self._rows
        ]

    def y_rows(self) -> List[Tuple[int, Tuple[PatternValue, ...]]]:
        """``T^Y_Σ``: (pattern id, RHS cells in column order) for every row."""
        return [
            (row.pattern_id, tuple(row.rhs_cell(attr) for attr in self._rhs_attributes))
            for row in self._rows
        ]

    def to_cfd(self, name: str = "merged") -> CFD:
        """The merged tableau as a single CFD using ``@`` cells (Figure 6).

        Useful for checking the merged semantics with the in-memory detector.
        """
        tableau = PatternTableau(
            self._lhs_attributes,
            self._rhs_attributes,
            [
                PatternTuple(
                    {attr: row.lhs_cell(attr) for attr in self._lhs_attributes},
                    {attr: row.rhs_cell(attr) for attr in self._rhs_attributes},
                )
                for row in self._rows
            ],
        )
        return CFD(self._lhs_attributes, self._rhs_attributes, tableau, name=name)

    def render(self) -> str:
        """Plain-text rendering of both halves (in the style of Figure 7)."""
        lines = ["T^X_Sigma:", "id\t" + "\t".join(self._lhs_attributes)]
        for pattern_id, cells in self.x_rows():
            lines.append(f"{pattern_id}\t" + "\t".join(cell.render() for cell in cells))
        lines.append("T^Y_Sigma:")
        lines.append("id\t" + "\t".join(self._rhs_attributes))
        for pattern_id, cells in self.y_rows():
            lines.append(f"{pattern_id}\t" + "\t".join(cell.render() for cell in cells))
        return "\n".join(lines)


def merge_cfds(cfds: Sequence[CFD]) -> MergedTableau:
    """Merge the tableaux of ``cfds`` into a single :class:`MergedTableau`.

    >>> from repro.datagen.cust import cust_cfds
    >>> merged = merge_cfds(cust_cfds())
    >>> len(merged) == sum(len(cfd.tableau) for cfd in cust_cfds())
    True
    """
    cfds = list(cfds)
    if not cfds:
        raise SQLGenerationError("cannot merge an empty CFD set")
    lhs_attributes: List[str] = []
    rhs_attributes: List[str] = []
    for cfd in cfds:
        for attribute in cfd.lhs:
            if attribute not in lhs_attributes:
                lhs_attributes.append(attribute)
        for attribute in cfd.rhs:
            if attribute not in rhs_attributes:
                rhs_attributes.append(attribute)

    rows: List[MergedPatternRow] = []
    pattern_id = 0
    for cfd in cfds:
        for pattern_index, pattern in enumerate(cfd.tableau):
            lhs_cells = {
                attribute: (pattern.lhs_cell(attribute) if attribute in cfd.lhs else DONTCARE)
                for attribute in lhs_attributes
            }
            rhs_cells = {
                attribute: (pattern.rhs_cell(attribute) if attribute in cfd.rhs else DONTCARE)
                for attribute in rhs_attributes
            }
            rows.append(
                MergedPatternRow(
                    pattern_id=pattern_id,
                    source_cfd=cfd.name,
                    source_pattern_index=pattern_index,
                    lhs_cells=lhs_cells,
                    rhs_cells=rhs_cells,
                )
            )
            pattern_id += 1
    return MergedTableau(lhs_attributes, rhs_attributes, rows)
