"""SQL generation for a merged CFD set: the query pair ``(Q^C_Σ, Q^V_Σ)`` of Section 4.2.2.

The merged scheme validates an arbitrary number of CFDs with a single pair of
queries whose text is bounded by the number of attributes involved (never by
the number of CFDs or pattern tuples), and that read the data table only
twice.  The key construction is the ``Macro`` derived relation, which joins
the data with ``T^X_Σ``/``T^Y_Σ`` and uses ``CASE`` expressions to mask with
``@`` every attribute the matched pattern row does not care about; the
subsequent ``GROUP BY`` then effectively groups each tuple only on the
attributes its pattern row constrains.

One refinement over the paper's text: the GROUP BY key additionally contains
the pattern row's RHS *shape* (which RHS attributes are ``@``).  Without it,
pattern rows that constrain the same LHS attributes but different RHS
attributes could land in one group and produce spurious ``COUNT(DISTINCT …)``
hits; grouping by the shape keeps the merged query equivalent to running the
per-CFD queries.  The shape is a constant per pattern row, so the query size
stays bounded by the embedded FDs exactly as the paper requires.
"""

from __future__ import annotations

from typing import List

from repro.sql.dialect import DEFAULT_DIALECT, SQLDialect
from repro.sql.merge import MergedTableau


class MergedQueryBuilder:
    """Builds ``Q^C_Σ`` and ``Q^V_Σ`` for a merged tableau against one data table."""

    def __init__(
        self,
        merged: MergedTableau,
        data_table: str,
        x_table: str,
        y_table: str,
        dialect: SQLDialect = DEFAULT_DIALECT,
    ) -> None:
        self.merged = merged
        self.data_table = data_table
        self.x_table = x_table
        self.y_table = y_table
        self.dialect = dialect

    # ------------------------------------------------------------------ helpers
    def _data_col(self, attribute: str) -> str:
        return self.dialect.column("t", attribute)

    def _x_col(self, attribute: str) -> str:
        return self.dialect.column("tx", self.dialect.lhs_column(attribute))

    def _y_col(self, attribute: str) -> str:
        return self.dialect.column("ty", self.dialect.rhs_column(attribute))

    def _from_clause(self) -> str:
        data = self.dialect.quote_identifier(self.data_table)
        x_table = self.dialect.quote_identifier(self.x_table)
        y_table = self.dialect.quote_identifier(self.y_table)
        return f"FROM {data} t, {x_table} tx, {y_table} ty"

    def _join_condition(self) -> str:
        pid = self.dialect.pattern_id_column
        return f"{self.dialect.column('tx', pid)} = {self.dialect.column('ty', pid)}"

    def _lhs_match_clauses(self) -> List[str]:
        return [
            self.dialect.match_predicate(self._data_col(attr), self._x_col(attr), with_dontcare=True)
            for attr in self.merged.lhs_attributes
        ]

    # ------------------------------------------------------------------ Q^C_Σ
    def qc_sql(self) -> str:
        """``Q^C_Σ``: single-tuple violations of any merged pattern row."""
        mismatch = [
            self.dialect.mismatch_predicate(self._data_col(attr), self._y_col(attr), with_dontcare=True)
            for attr in self.merged.rhs_attributes
        ]
        where_clauses = [self._join_condition()] + self._lhs_match_clauses()
        where_clauses.append("(" + " OR ".join(mismatch) + ")")
        index_col = self._data_col(self.dialect.index_column)
        pattern_id = self.dialect.column("tx", self.dialect.pattern_id_column)
        return (
            f"SELECT {index_col} AS tuple_index, {pattern_id} AS pattern_id\n"
            f"{self._from_clause()}\n"
            f"WHERE {' AND '.join(where_clauses)}"
        )

    # ------------------------------------------------------------------ Macro and Q^V_Σ
    def macro_sql(self, include_index: bool = False) -> str:
        """The ``Macro`` derived relation: data joined on X and masked by ``@`` cells.

        ``include_index`` additionally projects the data table's index column,
        which the expansion query uses to recover violating tuples.
        """
        at_literal = self.dialect.literal(self.dialect.dontcare_marker)
        select_items: List[str] = []
        for attr in self.merged.lhs_attributes:
            select_items.append(
                f"CASE {self._x_col(attr)} WHEN {at_literal} THEN {at_literal} "
                f"ELSE {self._data_col(attr)} END AS {self.dialect.quote_identifier('mx_' + attr)}"
            )
        for attr in self.merged.rhs_attributes:
            select_items.append(
                f"CASE {self._y_col(attr)} WHEN {at_literal} THEN {at_literal} "
                f"ELSE {self._data_col(attr)} END AS {self.dialect.quote_identifier('my_' + attr)}"
            )
        ymask_parts = [
            f"CASE {self._y_col(attr)} WHEN {at_literal} THEN '0' ELSE '1' END"
            for attr in self.merged.rhs_attributes
        ]
        select_items.append(
            "(" + " || ".join(ymask_parts) + f") AS {self.dialect.quote_identifier('_ymask')}"
        )
        if include_index:
            select_items.append(
                f"{self._data_col(self.dialect.index_column)} AS "
                f"{self.dialect.quote_identifier(self.dialect.index_column)}"
            )
        where_clauses = [self._join_condition()] + self._lhs_match_clauses()
        return (
            f"SELECT {', '.join(select_items)}\n"
            f"{self._from_clause()}\n"
            f"WHERE {' AND '.join(where_clauses)}"
        )

    def _group_columns(self) -> List[str]:
        columns = [self.dialect.quote_identifier("mx_" + attr) for attr in self.merged.lhs_attributes]
        columns.append(self.dialect.quote_identifier("_ymask"))
        return columns

    def _distinct_rhs_expression(self) -> str:
        return self.dialect.concat(
            self.dialect.quote_identifier("my_" + attr) for attr in self.merged.rhs_attributes
        )

    def qv_sql(self) -> str:
        """``Q^V_Σ``: multi-tuple violations via GROUP BY over the masked ``Macro``."""
        group_columns = self._group_columns()
        return (
            f"SELECT DISTINCT {', '.join(group_columns)}\n"
            f"FROM ({self.macro_sql()}) tM\n"
            f"GROUP BY {', '.join(group_columns)}\n"
            f"HAVING COUNT(DISTINCT {self._distinct_rhs_expression()}) > 1"
        )

    def qv_expansion_sql(self) -> str:
        """Recover the tuple indices belonging to the violating ``Q^V_Σ`` groups.

        Returns one row per (group column values..., tuple index) so callers
        can attribute every recovered tuple to its violating group.
        """
        group_columns = self._group_columns()
        join_conditions = " AND ".join(
            f"tM.{column} = v.{column}" for column in group_columns
        )
        group_select = ", ".join(f"v.{column}" for column in group_columns)
        index_col = self.dialect.quote_identifier(self.dialect.index_column)
        return (
            f"SELECT DISTINCT {group_select}, tM.{index_col} AS tuple_index\n"
            f"FROM ({self.macro_sql(include_index=True)}) tM\n"
            f"JOIN ({self.qv_sql()}) v ON {join_conditions}"
        )
