"""SQL generation for a single CFD: the query pair ``(Q^C_φ, Q^V_φ)`` of Section 4.1.

``Q^C_φ`` finds *single-tuple* violations (a tuple matches a pattern on ``X``
but clashes with a constant in the pattern's ``Y`` cells); ``Q^V_φ`` finds
*multi-tuple* violations (tuples agreeing on ``X`` and matching a pattern on
``X`` but taking more than one distinct ``Y`` value).  The pattern tableau is
joined as an ordinary table, so the query text is bounded by the size of the
embedded FD and independent of the number of pattern tuples.

Both queries are produced in two formulations of the WHERE clause:

* ``cnf`` — the conjunctive normal form given verbatim in the paper;
* ``dnf`` — the disjunctive normal form the paper's experiments found far
  friendlier to the optimizer (Figure 9(a)/(b)); the blow-up is exponential
  only in the number of attributes of the embedded FD, which is small.
"""

from __future__ import annotations

from itertools import product
from typing import List, Tuple

from repro.core.cfd import CFD
from repro.errors import SQLGenerationError
from repro.sql.dialect import DEFAULT_DIALECT, SQLDialect

QueryForm = str  # "cnf" | "dnf"

_VALID_FORMS = ("cnf", "dnf")


def _check_form(form: str) -> str:
    if form not in _VALID_FORMS:
        raise SQLGenerationError(f"unknown query form {form!r}; expected one of {_VALID_FORMS}")
    return form


class SingleCFDQueryBuilder:
    """Builds the detection SQL for one CFD against one data table.

    Parameters
    ----------
    cfd:
        The CFD to check.
    data_table:
        Name of the table holding the relation instance.
    tableau_table:
        Name of the table holding the CFD's pattern tableau (one row per
        pattern tuple, LHS cells in ``x_<attr>`` columns, RHS cells in
        ``y_<attr>`` columns — see :class:`repro.sql.dialect.SQLDialect`).
    dialect:
        Rendering rules; defaults to the SQLite-friendly dialect.
    """

    def __init__(
        self,
        cfd: CFD,
        data_table: str,
        tableau_table: str,
        dialect: SQLDialect = DEFAULT_DIALECT,
    ) -> None:
        self.cfd = cfd
        self.data_table = data_table
        self.tableau_table = tableau_table
        self.dialect = dialect

    # ------------------------------------------------------------------ atoms
    def _data_col(self, attribute: str) -> str:
        return self.dialect.column("t", attribute)

    def _lhs_col(self, attribute: str) -> str:
        return self.dialect.column("tp", self.dialect.lhs_column(attribute))

    def _rhs_col(self, attribute: str) -> str:
        return self.dialect.column("tp", self.dialect.rhs_column(attribute))

    def _from_clause(self) -> str:
        data = self.dialect.quote_identifier(self.data_table)
        tableau = self.dialect.quote_identifier(self.tableau_table)
        return f"FROM {data} t, {tableau} tp"

    def _lhs_match_atoms(self, attribute: str) -> Tuple[str, str]:
        """The two atoms of ``t[X] ≍ tp[X]``: equality and wildcard."""
        data_col = self._data_col(attribute)
        pattern_col = self._lhs_col(attribute)
        equality = f"{data_col} = {pattern_col}"
        wildcard = f"{pattern_col} = {self.dialect.literal(self.dialect.wildcard_marker)}"
        return equality, wildcard

    def _rhs_mismatch_conjunction(self, attribute: str) -> str:
        """``t[Y] ≭ tp[Y]``: the constant cell exists and is contradicted."""
        data_col = self._data_col(attribute)
        pattern_col = self._rhs_col(attribute)
        return (
            f"({data_col} <> {pattern_col} "
            f"AND {pattern_col} <> {self.dialect.literal(self.dialect.wildcard_marker)})"
        )

    # ------------------------------------------------------------------ WHERE clauses
    def _lhs_where_cnf(self) -> List[str]:
        clauses = []
        for attribute in self.cfd.lhs:
            equality, wildcard = self._lhs_match_atoms(attribute)
            clauses.append(f"({equality} OR {wildcard})")
        return clauses

    def _lhs_where_dnf_disjuncts(self) -> List[List[str]]:
        """Every choice of one atom per LHS attribute — ``2^|X|`` conjunct lists."""
        per_attribute = [self._lhs_match_atoms(attribute) for attribute in self.cfd.lhs]
        if not per_attribute:
            return [[]]
        return [list(choice) for choice in product(*per_attribute)]

    def qc_where(self, form: QueryForm = "cnf") -> str:
        """The WHERE clause of ``Q^C_φ`` in the requested form."""
        _check_form(form)
        rhs_disjuncts = [self._rhs_mismatch_conjunction(attribute) for attribute in self.cfd.rhs]
        if form == "cnf":
            clauses = self._lhs_where_cnf()
            clauses.append("(" + " OR ".join(rhs_disjuncts) + ")")
            return " AND ".join(clauses) if clauses else "1 = 1"
        disjuncts = []
        for lhs_conjuncts in self._lhs_where_dnf_disjuncts():
            for rhs in rhs_disjuncts:
                conjuncts = lhs_conjuncts + [rhs]
                disjuncts.append("(" + " AND ".join(conjuncts) + ")")
        return " OR ".join(disjuncts)

    def qv_where(self, form: QueryForm = "cnf") -> str:
        """The WHERE clause of ``Q^V_φ`` in the requested form."""
        _check_form(form)
        if form == "cnf":
            clauses = self._lhs_where_cnf()
            return " AND ".join(clauses) if clauses else "1 = 1"
        disjuncts = []
        for lhs_conjuncts in self._lhs_where_dnf_disjuncts():
            if not lhs_conjuncts:
                return "1 = 1"
            disjuncts.append("(" + " AND ".join(lhs_conjuncts) + ")")
        return " OR ".join(disjuncts)

    # ------------------------------------------------------------------ queries
    def qc_sql(self, form: QueryForm = "cnf") -> str:
        """``Q^C_φ``: the single-tuple (constant-clash) violation query.

        Selects the data table's index column and the matching pattern id so
        the result can be turned into structured violation objects.

        With ``form="cnf"`` the WHERE clause is the paper's conjunctive form.
        With ``form="dnf"`` the query is emitted as a UNION ALL of purely
        conjunctive sub-queries, one per DNF disjunct: this is how the
        disjuncts are presented to the optimizer as separately optimizable
        units (the paper's Section 5 observation that "care must be taken to
        present the complicated where clauses ... to the optimizer in a way
        that can be easily optimized"), and it is what lets SQLite drive each
        disjunct through the LHS index.  The number of sub-queries is
        ``|Y| · 2^|X|`` — bounded by the embedded FD, independent of TABSZ.
        """
        _check_form(form)
        index_col = self._data_col(self.dialect.index_column)
        pattern_id = self.dialect.column("tp", self.dialect.pattern_id_column)
        select_clause = f"SELECT {index_col} AS tuple_index, {pattern_id} AS pattern_index"
        if form == "cnf":
            return f"{select_clause}\n{self._from_clause()}\nWHERE {self.qc_where('cnf')}"
        rhs_disjuncts = [self._rhs_mismatch_conjunction(attribute) for attribute in self.cfd.rhs]
        branches: List[str] = []
        for lhs_conjuncts in self._lhs_where_dnf_disjuncts():
            for rhs in rhs_disjuncts:
                conjuncts = lhs_conjuncts + [rhs]
                branches.append(
                    f"{select_clause}\n{self._from_clause()}\nWHERE {' AND '.join(conjuncts)}"
                )
        return "\nUNION ALL\n".join(branches)

    def qv_sql(self, form: QueryForm = "cnf") -> str:
        """``Q^V_φ``: the multi-tuple violation query (GROUP BY ``X`` HAVING > 1 ``Y``).

        The ``"dnf"`` form wraps a UNION ALL of conjunctive matching
        sub-queries (one per DNF disjunct of the LHS match condition) in the
        GROUP BY, for the same optimizer reasons as :meth:`qc_sql`.
        """
        _check_form(form)
        group_columns = [self._data_col(attribute) for attribute in self.cfd.lhs]
        rhs_concat = self.dialect.concat([self._data_col(attribute) for attribute in self.cfd.rhs])
        select_list = (
            ", ".join(
                f"{column} AS {self.dialect.quote_identifier(attr)}"
                for column, attr in zip(group_columns, self.cfd.lhs)
            )
            or "1 AS all_rows"
        )
        group_by = f"GROUP BY {', '.join(group_columns)}\n" if group_columns else ""
        if form == "cnf":
            return (
                f"SELECT DISTINCT {select_list}\n"
                f"{self._from_clause()}\n"
                f"WHERE {self.qv_where('cnf')}\n"
                f"{group_by}"
                f"HAVING COUNT(DISTINCT {rhs_concat}) > 1"
            )
        inner_select_items = [
            f"{self._data_col(attr)} AS {self.dialect.quote_identifier(attr)}"
            for attr in self.cfd.lhs
        ]
        inner_select_items.extend(
            f"{self._data_col(attr)} AS {self.dialect.quote_identifier('rhs_' + attr)}"
            for attr in self.cfd.rhs
        )
        branches = []
        for lhs_conjuncts in self._lhs_where_dnf_disjuncts():
            where = " AND ".join(lhs_conjuncts) if lhs_conjuncts else "1 = 1"
            branches.append(
                f"SELECT {', '.join(inner_select_items)}\n{self._from_clause()}\nWHERE {where}"
            )
        inner = "\nUNION ALL\n".join(branches)
        outer_group_columns = [self.dialect.quote_identifier(attr) for attr in self.cfd.lhs]
        outer_select = ", ".join(outer_group_columns) or "1 AS all_rows"
        outer_group_by = f"GROUP BY {', '.join(outer_group_columns)}\n" if outer_group_columns else ""
        outer_rhs_concat = self.dialect.concat(
            self.dialect.quote_identifier("rhs_" + attr) for attr in self.cfd.rhs
        )
        return (
            f"SELECT DISTINCT {outer_select}\n"
            f"FROM (\n{inner}\n) matched\n"
            f"{outer_group_by}"
            f"HAVING COUNT(DISTINCT {outer_rhs_concat}) > 1"
        )

    def qv_expansion_sql(self) -> str:
        """Fetch the tuples belonging to one violating ``X`` group.

        The paper notes that the complete violating tuples "can be easily
        obtained from the result of the two queries by means of a simple SQL
        query"; this is that query, parameterised by the group key
        (one ``?`` placeholder per LHS attribute).
        """
        if not self.cfd.lhs:
            return (
                f"SELECT {self._data_col(self.dialect.index_column)} AS tuple_index\n"
                f"FROM {self.dialect.quote_identifier(self.data_table)} t"
            )
        conditions = " AND ".join(f"{self._data_col(attribute)} = ?" for attribute in self.cfd.lhs)
        return (
            f"SELECT {self._data_col(self.dialect.index_column)} AS tuple_index\n"
            f"FROM {self.dialect.quote_identifier(self.data_table)} t\n"
            f"WHERE {conditions}"
        )
