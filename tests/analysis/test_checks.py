"""The built-in checks: one scenario per diagnostic code CFD001–CFD102."""

import pytest

from repro.analysis import analyze
from repro.analysis.checks import DEEP_CHECK_LIMIT
from repro.config import DetectionConfig, RepairConfig
from repro.core.cfd import CFD
from repro.relation.attribute import Attribute
from repro.relation.schema import Schema


def clash():
    """Two CFDs no nonempty instance can satisfy (Example 4 of the paper)."""
    return [
        CFD.build(["A"], ["B"], [["_", "b"]], name="p1"),
        CFD.build(["A"], ["B"], [["_", "c"]], name="p2"),
    ]


class TestConsistencyCFD001:
    def test_inconsistent_pair_yields_error_with_witness(self):
        report = analyze(clash())
        (diagnostic,) = report.by_code("CFD001")
        assert diagnostic.severity == "error"
        assert diagnostic.witness["conflicting_cfds"] == ["p1", "p2"]
        assert diagnostic.witness["core_size"] == 2
        assert len(diagnostic.witness["core"]) == 2

    def test_core_is_minimised_out_of_a_larger_set(self):
        bystanders = [
            CFD.build(["B"], ["C"], [["_", "_"]], name=f"ok{i}") for i in range(5)
        ]
        report = analyze(bystanders + clash())
        (diagnostic,) = report.by_code("CFD001")
        assert diagnostic.witness["conflicting_cfds"] == ["p1", "p2"]

    def test_consistent_set_is_silent(self, cust_constraints):
        assert not analyze(cust_constraints).by_code("CFD001")

    def test_inconsistency_suppresses_deep_redundancy(self):
        # Everything is implied by a contradiction; CFD002/CFD003 from an
        # inconsistent premise would be noise.
        report = analyze(clash() + clash())
        assert not report.by_code("CFD002")
        assert not report.by_code("CFD003")


class TestRedundancyCFD002:
    def test_equivalent_twins_are_both_reported(self):
        twins = [
            CFD.build(["A"], ["B"], [["_", "b"]], name="twin1"),
            CFD.build(["A"], ["B"], [["_", "b"]], name="twin2"),
        ]
        report = analyze(twins)
        assert [d.cfd for d in report.by_code("CFD002")] == ["twin1", "twin2"]
        assert all(d.severity == "warning" for d in report.by_code("CFD002"))

    def test_independent_rules_are_silent(self):
        independent = [
            CFD.build(["A"], ["B"], [["_", "b"]], name="r1"),
            CFD.build(["B"], ["C"], [["_", "c"]], name="r2"),
        ]
        assert not analyze(independent).by_code("CFD002")

    def test_shallow_analysis_skips_the_chase(self):
        twins = [
            CFD.build(["A"], ["B"], [["_", "b"]], name="twin1"),
            CFD.build(["A"], ["B"], [["_", "b"]], name="twin2"),
        ]
        assert not analyze(twins, deep=False).by_code("CFD002")


class TestRedundantLhsAttributeCFD003:
    def test_trivial_dependency_flags_spurious_lhs_attribute(self):
        # [A, B] -> [B] holds without A: reflexivity makes A dead weight.
        trivial = CFD.build(["A", "B"], ["B"], [["_", "_", "_"]], name="t")
        report = analyze([trivial])
        (diagnostic,) = report.by_code("CFD003")
        assert diagnostic.attribute == "A"
        assert diagnostic.severity == "warning"

    def test_minimal_lhs_is_silent(self):
        # A pure FD A -> B: dropping A would claim every tuple shares one B.
        minimal = CFD.build(["A"], ["B"], [["_", "_"]], name="m")
        assert not analyze([minimal]).by_code("CFD003")

    def test_constant_pattern_with_wildcard_lhs_is_flagged(self):
        # [A] -> [B = b] with a wildcard LHS cell binds *every* tuple (each
        # tuple pairs with itself), so the dependency holds without A.
        constant = CFD.build(["A"], ["B"], [["_", "b"]], name="c")
        (diagnostic,) = analyze([constant]).by_code("CFD003")
        assert diagnostic.attribute == "A"


class TestDuplicateNamesCFD004:
    def test_explicit_duplicate_names(self):
        rules = [
            CFD.build(["A"], ["B"], [["_", "b"]], name="phi"),
            CFD.build(["B"], ["C"], [["_", "c"]], name="phi"),
        ]
        (diagnostic,) = analyze(rules).by_code("CFD004")
        assert diagnostic.severity == "error"
        assert diagnostic.witness == {"name": "phi", "count": 2}

    def test_unnamed_cfds_on_the_same_fd_collide(self):
        # Auto-derived names are a function of the embedded FD, so two
        # anonymous CFDs over the same FD silently share one.
        rules = [
            CFD.build(["A"], ["B"], [["_", "b"]]),
            CFD.build(["A"], ["B"], [["a", "_"]]),
        ]
        assert analyze(rules).by_code("CFD004")

    def test_distinct_names_are_silent(self, cust_constraints):
        assert not analyze(cust_constraints).by_code("CFD004")


class TestNormalFormCFD005:
    def test_multi_pattern_tableau_is_informational(self):
        wide = CFD.build(["A"], ["B"], [["a", "b"], ["c", "d"]], name="w")
        (diagnostic,) = analyze([wide]).by_code("CFD005")
        assert diagnostic.severity == "info"
        assert diagnostic.cfd == "w"

    def test_normal_form_is_silent(self):
        assert not analyze([CFD.build(["A"], ["B"], [["_", "b"]])]).by_code("CFD005")


class TestSchemaChecksCFD006CFD007:
    @pytest.fixture
    def schema(self):
        return Schema(
            "r", [Attribute("A"), Attribute("B", domain=("b", "c")), Attribute("C")]
        )

    def test_constant_outside_finite_domain(self, schema):
        rule = CFD.build(["A"], ["B"], [["_", "zz"]], name="bad")
        (diagnostic,) = analyze([rule], schema).by_code("CFD006")
        assert diagnostic.severity == "error"
        assert diagnostic.attribute == "B"
        assert diagnostic.witness["value"] == "zz"
        assert diagnostic.witness["domain"] == ["b", "c"]

    def test_constant_inside_domain_is_silent(self, schema):
        rule = CFD.build(["A"], ["B"], [["_", "b"]], name="ok")
        assert not analyze([rule], schema).by_code("CFD006")

    def test_unknown_attribute(self, schema):
        rule = CFD.build(["A"], ["D"], [["_", "_"]], name="ghost")
        (diagnostic,) = analyze([rule], schema).by_code("CFD007")
        assert diagnostic.severity == "error"
        assert diagnostic.attribute == "D"
        assert diagnostic.witness["schema"] == ["A", "B", "C"]

    def test_missing_attribute_suppresses_domain_check(self, schema):
        # A rule that is not even over the schema gets CFD007, not a
        # follow-on domain error for cells we cannot interpret.
        rule = CFD.build(["D"], ["B"], [["_", "zz"]], name="ghost")
        report = analyze([rule], schema)
        assert report.by_code("CFD007")
        assert not report.by_code("CFD006")

    def test_without_a_schema_both_are_silent(self):
        rule = CFD.build(["A"], ["D"], [["_", "zz"]], name="ghost")
        report = analyze([rule])
        assert not report.by_code("CFD006")
        assert not report.by_code("CFD007")


class TestDuplicatePatternsCFD008:
    def test_repeated_row_is_flagged_once_with_count(self):
        rule = CFD.build(["A"], ["B"], [["a", "b"], ["a", "b"], ["c", "d"]], name="d")
        (diagnostic,) = analyze([rule]).by_code("CFD008")
        assert diagnostic.severity == "warning"
        assert diagnostic.witness["count"] == 2

    def test_distinct_rows_are_silent(self):
        rule = CFD.build(["A"], ["B"], [["a", "b"], ["c", "d"]], name="d")
        assert not analyze([rule]).by_code("CFD008")


class TestDeepCheckLimitCFD009:
    def test_oversized_rule_set_skips_the_chase(self):
        many = [
            CFD.build(["A"], ["B"], [[f"x{i}", "y"]], name=f"c{i}")
            for i in range(DEEP_CHECK_LIMIT + 1)
        ]
        report = analyze(many)
        (diagnostic,) = report.by_code("CFD009")
        assert diagnostic.severity == "info"
        assert not report.by_code("CFD002")
        assert not report.by_code("CFD003")


class TestParallelHazardsCFD101CFD102:
    def overlap_rules(self):
        # phi2 groups by B, which phi1 may rewrite: repairs can move tuples
        # between shards (the engine's serial reconcile predicate).
        return [
            CFD.build(["A"], ["B"], [["_", "b"]], name="phi1"),
            CFD.build(["B"], ["C"], [["_", "c"]], name="phi2"),
        ]

    def test_rhs_lhs_overlap_is_info_by_default(self):
        (diagnostic,) = analyze(self.overlap_rules(), deep=False).by_code("CFD101")
        assert diagnostic.severity == "info"
        assert diagnostic.witness == {"overlap": ["B"]}

    @pytest.mark.parametrize(
        "configs",
        [
            {"detection": DetectionConfig(method="parallel")},
            {"repair": RepairConfig(method="parallel")},
        ],
    )
    def test_overlap_escalates_when_parallel_requested(self, configs):
        report = analyze(self.overlap_rules(), deep=False, **configs)
        assert report.by_code("CFD101")[0].severity == "warning"

    def test_disjoint_rules_are_silent(self):
        rules = [CFD.build(["A"], ["B"], [["_", "b"]], name="only")]
        assert not analyze(rules, deep=False).by_code("CFD101")

    def test_dontcare_lhs_row_degenerates_to_one_shard(self):
        rule = CFD.build(["A"], ["B"], [["@", "b"]], name="k")
        (diagnostic,) = analyze([rule], deep=False).by_code("CFD102")
        assert diagnostic.severity == "info"
        assert diagnostic.cfd == "k"
        assert diagnostic.witness == {"pattern_row": 0}

    def test_degenerate_escalates_when_parallel_requested(self):
        rule = CFD.build(["A"], ["B"], [["@", "b"]], name="k")
        report = analyze([rule], deep=False, detection=DetectionConfig(method="parallel"))
        assert report.by_code("CFD102")[0].severity == "warning"

    def test_constant_lhs_still_groups(self):
        # A constant LHS cell is @-free: it still partitions the relation.
        rule = CFD.build(["A"], ["B"], [["a", "b"]], name="k")
        assert not analyze([rule], deep=False).by_code("CFD102")
