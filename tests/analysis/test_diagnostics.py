"""Diagnostic and AnalysisReport data types: rendering, ordering, JSON."""

import json

import pytest

from repro.analysis import AnalysisReport, Diagnostic, sort_diagnostics


def diag(**overrides):
    base = {"code": "CFD001", "severity": "error", "message": "boom"}
    base.update(overrides)
    return Diagnostic(**base)


class TestDiagnostic:
    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            diag(severity="fatal")

    def test_is_error(self):
        assert diag().is_error
        assert not diag(severity="warning").is_error

    def test_render_plain(self):
        assert diag().render() == "CFD001 error: boom"

    def test_render_with_cfd_attribute_and_hint(self):
        rendered = diag(
            code="CFD003",
            severity="warning",
            cfd="phi1",
            attribute="ZIP",
            hint="drop it",
        ).render()
        assert rendered == "CFD003 warning [phi1.ZIP]: boom (hint: drop it)"

    def test_render_cfd_only_location(self):
        assert "[phi1]:" in diag(cfd="phi1").render()

    def test_to_dict_omits_absent_fields(self):
        payload = diag().to_dict()
        assert payload == {
            "code": "CFD001",
            "severity": "error",
            "message": "boom",
            "check": "",
        }

    def test_to_dict_includes_witness(self):
        payload = diag(witness={"core_size": 2}).to_dict()
        assert payload["witness"] == {"core_size": 2}

    def test_sort_orders_errors_before_warnings_before_infos(self):
        ordered = sort_diagnostics(
            [
                diag(code="CFD005", severity="info"),
                diag(code="CFD002", severity="warning"),
                diag(code="CFD004", severity="error"),
                diag(code="CFD001", severity="error"),
            ]
        )
        assert [d.code for d in ordered] == ["CFD001", "CFD004", "CFD002", "CFD005"]

    def test_frozen(self):
        with pytest.raises(AttributeError):
            diag().severity = "info"


class TestAnalysisReport:
    @pytest.fixture
    def report(self):
        return AnalysisReport(
            diagnostics=sort_diagnostics(
                [
                    diag(code="CFD005", severity="info", cfd="phi1"),
                    diag(code="CFD004", severity="error", cfd="phi1"),
                    diag(code="CFD002", severity="warning", cfd="phi2"),
                ]
            ),
            checks_run=("names", "normal-form", "redundancy"),
            deep=True,
        )

    def test_container_protocol(self, report):
        assert len(report) == 3
        assert bool(report)
        assert not AnalysisReport()
        assert [d.code for d in report] == ["CFD004", "CFD002", "CFD005"]

    def test_severity_views(self, report):
        assert [d.code for d in report.errors()] == ["CFD004"]
        assert [d.code for d in report.warnings()] == ["CFD002"]
        assert [d.code for d in report.infos()] == ["CFD005"]

    def test_ok_and_has_errors(self, report):
        assert report.has_errors and not report.ok
        warnings_only = AnalysisReport([diag(code="CFD002", severity="warning")])
        assert warnings_only.ok

    def test_codes_and_by_code(self, report):
        assert report.codes() == ("CFD002", "CFD004", "CFD005")
        assert [d.cfd for d in report.by_code("CFD004")] == ["phi1"]
        assert report.by_code("CFD999") == []

    def test_summary_counts(self, report):
        summary = report.summary()
        assert summary["diagnostics"] == 3
        assert summary["errors"] == 1
        assert summary["warnings"] == 1
        assert summary["infos"] == 1
        assert summary["deep"] is True

    def test_to_json_round_trips(self, report):
        payload = json.loads(report.to_json())
        assert payload["summary"]["codes"] == ["CFD002", "CFD004", "CFD005"]
        assert [d["code"] for d in payload["diagnostics"]] == [
            "CFD004",
            "CFD002",
            "CFD005",
        ]

    def test_render_footer(self, report):
        rendered = report.render()
        assert "1 error(s), 1 warning(s), 1 info(s)" in rendered
        assert "skipped" not in rendered

    def test_render_notes_skipped_deep_checks(self):
        assert "(deep implication checks skipped)" in AnalysisReport().render()
