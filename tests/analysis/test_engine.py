"""The analyze() driver: check selection, optimize mode, require_clean, registry."""

import pytest

from repro.analysis import AnalysisReport, Diagnostic, analyze, require_clean
from repro.core.cfd import CFD
from repro.errors import AnalysisError, RegistryError
from repro.reasoning.implication import equivalent
from repro.registry import (
    analysis_check_names,
    register_analysis_check,
    unregister_analysis_check,
)


def clash():
    return [
        CFD.build(["A"], ["B"], [["_", "b"]], name="p1"),
        CFD.build(["A"], ["B"], [["_", "c"]], name="p2"),
    ]


class TestAnalyze:
    def test_empty_rule_set_is_clean(self):
        report = analyze([])
        assert report.ok
        assert len(report) == 0
        assert report.seconds >= 0

    def test_runs_every_registered_check_by_default(self, cust_constraints):
        report = analyze(cust_constraints)
        assert report.checks_run == analysis_check_names()
        assert report.deep

    def test_check_subset_selection(self):
        report = analyze(clash(), checks=["names"])
        assert report.checks_run == ("names",)
        assert not report.by_code("CFD001")  # consistency did not run

    def test_unknown_check_name_raises(self):
        with pytest.raises(RegistryError):
            analyze([], checks=["no-such-check"])

    def test_optimize_attaches_an_equivalent_minimal_cover(self):
        twins = [
            CFD.build(["A"], ["B"], [["_", "b"]], name="twin1"),
            CFD.build(["A"], ["B"], [["_", "b"]], name="twin2"),
        ]
        report = analyze(twins, optimize=True)
        assert report.optimized is not None
        assert len(report.optimized) < len(twins)
        assert equivalent(report.optimized, twins)

    def test_optimize_is_skipped_on_inconsistent_sets(self):
        report = analyze(clash(), optimize=True)
        assert report.optimized is None
        assert "optimized_cfds" not in report.to_dict()

    def test_optimized_counts_in_json_payload(self, cust_constraints):
        payload = analyze(cust_constraints, optimize=True).to_dict()
        assert payload["optimized_cfds"] >= 1
        assert payload["optimized_patterns"] >= payload["optimized_cfds"]


class TestRequireClean:
    def test_clean_report_passes(self, cust_constraints):
        require_clean(analyze(cust_constraints))

    def test_errors_raise_with_the_report_attached(self):
        report = analyze(clash())
        with pytest.raises(AnalysisError) as excinfo:
            require_clean(report)
        assert excinfo.value.report is report
        assert "CFD001" in str(excinfo.value)


class TestCustomChecks:
    def test_registered_check_runs_and_unregisters(self):
        @register_analysis_check("always-grumpy")
        def grumpy(ctx):
            yield Diagnostic(
                code="CFD900",
                severity="info",
                message=f"saw {len(ctx.cfds)} CFDs",
                check="always-grumpy",
            )

        try:
            assert "always-grumpy" in analysis_check_names()
            report = analyze(clash()[:1])
            (diagnostic,) = report.by_code("CFD900")
            assert diagnostic.message == "saw 1 CFDs"
        finally:
            unregister_analysis_check("always-grumpy")
        assert "always-grumpy" not in analysis_check_names()

    def test_duplicate_registration_requires_replace(self):
        with pytest.raises(RegistryError):
            register_analysis_check("consistency")(lambda ctx: iter(()))

    def test_report_type(self):
        assert isinstance(analyze([]), AnalysisReport)
