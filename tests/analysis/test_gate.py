"""The Cleaner pre-flight gate: analysis="strict" | "warn" | "off"."""

import warnings

import pytest

from repro.analysis import AnalysisReport, AnalysisWarning
from repro.config import (
    ANALYSIS_LEVELS,
    DetectionConfig,
    RepairConfig,
    analysis_from_env,
    strictest_analysis,
)
from repro.core.cfd import CFD
from repro.errors import AnalysisError, ConfigError
from repro.pipeline import Cleaner


def clashing_rules():
    return [
        CFD.build(["A"], ["B"], [["_", "b"]], name="p1"),
        CFD.build(["A"], ["B"], [["_", "c"]], name="p2"),
    ]


def duplicate_name_rules():
    """Consistent rules whose shared name is an error-severity lint finding."""
    return [
        CFD.build(["A"], ["B"], [["_", "_"]], name="phi"),
        CFD.build(["B"], ["C"], [["_", "_"]], name="phi"),
    ]


@pytest.fixture
def abc_relation(relation_factory):
    return relation_factory(["A", "B", "C"], [("a", "b", "c")])


class TestLevelResolution:
    def test_strictest_of_two_levels(self):
        assert strictest_analysis("warn", "strict") == "strict"
        assert strictest_analysis("off", "warn") == "warn"
        assert strictest_analysis("off", "off") == "off"

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ANALYSIS", raising=False)
        assert analysis_from_env() == "warn"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS", "strict")
        assert analysis_from_env() == "strict"

    def test_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS", "everything-is-fine")
        assert analysis_from_env() == "warn"

    def test_config_validates_level(self):
        with pytest.raises(ConfigError):
            DetectionConfig(analysis="pedantic")
        with pytest.raises(ConfigError):
            RepairConfig(analysis="pedantic")
        for level in ANALYSIS_LEVELS:
            assert DetectionConfig(analysis=level).effective_analysis == level


class TestStrictGate:
    def test_refuses_inconsistent_rules_before_detection(self, abc_relation):
        cleaner = Cleaner(detection=DetectionConfig(analysis="strict"))
        with pytest.raises(AnalysisError) as excinfo:
            cleaner.clean(abc_relation, clashing_rules())
        # The gate, not the repair engine, refused: the error carries the
        # report whose CFD001 witness names the conflicting pair.
        (diagnostic,) = excinfo.value.report.by_code("CFD001")
        assert diagnostic.witness["conflicting_cfds"] == ["p1", "p2"]

    def test_strict_on_either_config_wins(self, abc_relation):
        cleaner = Cleaner(repair=RepairConfig(analysis="strict"))
        with pytest.raises(AnalysisError):
            cleaner.clean(abc_relation, duplicate_name_rules())

    def test_clean_rules_pass_strict(self, cust, cust_constraints):
        cleaner = Cleaner(detection=DetectionConfig(analysis="strict"))
        result = cleaner.clean(cust, cust_constraints)
        assert result.clean
        assert isinstance(result.analysis_report, AnalysisReport)
        assert result.analysis_report.ok


class TestWarnGate:
    def test_error_findings_become_warnings_and_the_run_proceeds(
        self, abc_relation
    ):
        cleaner = Cleaner(detection=DetectionConfig(analysis="warn"))
        with pytest.warns(AnalysisWarning, match="CFD004"):
            result = cleaner.clean(abc_relation, duplicate_name_rules())
        assert result.clean
        assert result.analysis_report.by_code("CFD004")

    def test_info_findings_stay_silent(self, cust, cust_constraints):
        # The default level is "warn"; the cust rules only produce infos,
        # so a stock run must not emit any warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error", AnalysisWarning)
            result = Cleaner().clean(cust, cust_constraints)
        assert result.clean
        assert result.analysis_report is not None
        assert result.analysis_report.ok

    def test_gate_is_shallow(self, cust, cust_constraints):
        result = Cleaner().clean(cust, cust_constraints)
        assert result.analysis_report.deep is False


class TestOffGate:
    def test_no_report_is_stored(self, cust, cust_constraints):
        cleaner = Cleaner(
            detection=DetectionConfig(analysis="off"),
            repair=RepairConfig(analysis="off"),
        )
        result = cleaner.clean(cust, cust_constraints)
        assert result.clean
        assert result.analysis_report is None

    def test_byte_identical_output_across_levels(self, cust, cust_constraints):
        off = Cleaner(
            detection=DetectionConfig(analysis="off"),
            repair=RepairConfig(analysis="off"),
        ).clean(cust, cust_constraints)
        warn = Cleaner().clean(cust, cust_constraints)
        strict = Cleaner(detection=DetectionConfig(analysis="strict")).clean(
            cust, cust_constraints
        )
        assert off.relation == warn.relation == strict.relation
        assert off.changes == warn.changes == strict.changes

    def test_env_can_switch_the_gate_off(self, cust, cust_constraints, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS", "off")
        result = Cleaner().clean(cust, cust_constraints)
        assert result.analysis_report is None

    def test_explicit_config_beats_env(self, abc_relation, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS", "off")
        cleaner = Cleaner(detection=DetectionConfig(analysis="strict"))
        with pytest.raises(AnalysisError):
            cleaner.clean(abc_relation, clashing_rules())
