"""Tests for the benchmark configuration and scaling knobs."""

import pytest

from repro.bench.config import BenchConfig, default_config, quick_config


class TestScaling:
    def test_default_scale_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert default_config().scale == 1.0

    def test_env_var_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert default_config().scale == 2.5

    def test_invalid_env_var_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "not-a-number")
        assert default_config().scale == 1.0

    def test_negative_env_var_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-3")
        assert default_config().scale == 1.0

    def test_sz_sweep_scales(self):
        small = BenchConfig(scale=1.0)
        large = BenchConfig(scale=2.0)
        assert [2 * size for size in small.sz_sweep()] == large.sz_sweep()

    def test_sweeps_have_floors(self):
        tiny = BenchConfig(scale=0.0001)
        assert all(size >= 1_000 for size in tiny.sz_sweep())
        assert all(size >= 50 for size in tiny.tabsz_sweep())
        assert tiny.fixed_relation_size() >= 1_000

    def test_paper_parameters_recorded(self):
        config = BenchConfig()
        assert config.default_noise == pytest.approx(0.05)
        assert config.noise_sweep[0] == 0.0 and config.noise_sweep[-1] == pytest.approx(0.09)
        assert config.numconsts_sweep[0] == 1.0 and config.numconsts_sweep[-1] == pytest.approx(0.1)

    def test_quick_config_is_small(self):
        config = quick_config()
        assert max(config.sz_sweep()) <= 2_000
