"""Smoke tests for every experiment driver (tiny workloads, correctness of shape).

The full-size runs live under ``benchmarks/``; here we only verify that every
driver produces the series its figure plots, with the expected columns and
the qualitative relationships the paper reports where they are cheap to check.
"""

import pytest

from repro.bench.config import quick_config
from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    backend_ablation,
    fig9a_cnf_vs_dnf_constants,
    fig9b_cnf_vs_dnf_mixed,
    fig9c_qc_vs_qv,
    fig9d_tabsz_scaling,
    fig9e_numconsts_scaling,
    fig9f_noise_scaling,
    merged_vs_separate,
    repair_ablation,
)
from repro.bench.reporting import format_table


@pytest.fixture(scope="module")
def config():
    return quick_config()


class TestDrivers:
    def test_fig9a_columns(self, config):
        rows = fig9a_cnf_vs_dnf_constants(config)
        assert len(rows) == len(config.sz_sweep())
        assert set(rows[0]) == {
            "SZ", "cnf_seconds", "dnf_seconds", "dnf_speedup", "peak_rss_mb",
        }

    def test_fig9b_columns(self, config):
        rows = fig9b_cnf_vs_dnf_mixed(config)
        assert all(row["cnf_seconds"] > 0 and row["dnf_seconds"] > 0 for row in rows)

    def test_fig9c_columns(self, config):
        rows = fig9c_qc_vs_qv(config)
        assert set(rows[0]) == {"SZ", "qc_seconds", "qv_seconds", "peak_rss_mb"}

    def test_fig9d_columns(self, config):
        rows = fig9d_tabsz_scaling(config)
        assert set(rows[0]) == {
            "TABSZ", "numattrs3_seconds", "numattrs4_seconds", "peak_rss_mb",
        }
        assert [row["TABSZ"] for row in rows] == config.tabsz_sweep()

    def test_fig9e_columns(self, config):
        rows = fig9e_numconsts_scaling(config)
        assert [row["NUMCONSTs"] for row in rows] == list(config.numconsts_sweep)

    def test_fig9f_columns_and_violation_monotonicity(self, config):
        rows = fig9f_noise_scaling(config)
        assert [row["NOISE"] for row in rows] == list(config.noise_sweep)
        assert rows[0]["violations"] <= rows[-1]["violations"]

    def test_merged_vs_separate_columns(self, config):
        rows = merged_vs_separate(config, num_cfds=2)
        assert set(rows[0]) == {
            "SZ", "num_cfds", "separate_seconds", "merged_seconds", "peak_rss_mb",
        }

    def test_backend_ablation_columns_and_speedup_sanity(self, config):
        rows = backend_ablation(config, tabsz=50)
        assert len(rows) == len(config.sz_sweep())
        assert set(rows[0]) == {
            "SZ", "indexed_seconds", "inmemory_seconds", "sql_seconds",
            "indexed_speedup", "peak_rss_mb",
        }
        assert all(row["indexed_seconds"] > 0 for row in rows)

    def test_repair_ablation_columns_and_agreement(self, config):
        rows = repair_ablation(config, tabsz=50)
        assert len(rows) == len(config.sz_sweep())
        assert set(rows[0]) == {
            "SZ", "incremental_seconds", "indexed_seconds", "scan_seconds",
            "changes", "passes", "incremental_speedup", "peak_rss_mb",
        }
        assert all(row["incremental_seconds"] > 0 for row in rows)

    def test_registry_contains_every_figure(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f", "merged",
            "backends", "repair", "pipeline", "parallel", "columnar", "kernels",
            "repair_kernels", "outofcore", "analysis",
        }

    def test_parallel_scaling_columns_and_agreement(self, config):
        from repro.bench.experiments import parallel_scaling

        rows = parallel_scaling(config, tabsz=50, worker_sweep=(1, 2))
        assert len(rows) == 2
        assert set(rows[0]) == {
            "SZ", "workers", "shards", "mode",
            "detect_serial_seconds", "detect_parallel_seconds", "detect_speedup",
            "repair_serial_seconds", "repair_parallel_seconds", "repair_speedup",
            "peak_rss_mb",
        }
        assert rows[0]["mode"] == "serial"  # workers=1 never pays for a pool
        assert all(row["repair_parallel_seconds"] > 0 for row in rows)

    def test_pipeline_throughput_columns_and_cleanliness(self, config):
        from repro.bench.experiments import pipeline_throughput

        rows = pipeline_throughput(config, tabsz=50)
        assert len(rows) == len(config.sz_sweep())
        assert set(rows[0]) == {
            "SZ", "auto_seconds", "pinned_seconds", "auto_tuples_per_second",
            "auto_backends", "changes", "passes", "peak_rss_mb",
        }
        assert all(row["auto_seconds"] > 0 for row in rows)

    def test_kernels_ablation_columns_and_agreement(self, config):
        from repro.bench.experiments import kernels_ablation
        from repro.kernels import numpy_available

        rows = kernels_ablation(config)
        if not numpy_available():
            assert rows == []
            return
        assert len(rows) == len(config.sz_sweep())
        assert set(rows[0]) == {
            "SZ", "python_detect_seconds", "numpy_detect_seconds", "numpy_speedup",
            "peak_rss_mb",
        }
        assert all(row["numpy_detect_seconds"] > 0 for row in rows)

    def test_verbose_mode_prints_a_table(self, config, capsys):
        fig9c_qc_vs_qv(config, verbose=True)
        captured = capsys.readouterr()
        assert "Figure 9(c)" in captured.out


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"SZ": 1000, "seconds": 0.123456}, {"SZ": 20000, "seconds": 1.5}]
        table = format_table(rows, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "SZ" in lines[1] and "seconds" in lines[1]
        assert "0.1235" in table

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_cli_entry_point(self, capsys, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
        exit_code = main(["fig9c"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 9(c)" in captured.out

    def test_cli_rejects_unknown_experiment(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_write_json_artifact(self, tmp_path):
        from repro.bench.reporting import write_json

        rows = [{"SZ": 1000, "seconds": 0.5}]
        path = write_json(tmp_path, "demo", rows, metadata={"scale": 0.1})
        assert path.name == "BENCH_demo.json"
        import json

        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["experiment"] == "demo"
        assert payload["rows"] == rows
        assert payload["metadata"]["scale"] == 0.1
        assert payload["generated_at"].endswith("Z")

    def test_cli_json_dir_writes_artifacts(self, tmp_path, capsys, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
        exit_code = main(["fig9c", "--json-dir", str(tmp_path)])
        assert exit_code == 0
        assert (tmp_path / "BENCH_fig9c.json").exists()
