"""Tests for the benchmark workload builder and timing helpers."""

import pytest

from repro.bench.harness import (
    DetectionWorkload,
    build_workload,
    time_detection,
    time_query_split,
)


@pytest.fixture(scope="module")
def workload():
    return build_workload(size=800, noise=0.05, seed=1, num_attrs=3, tabsz=100, num_consts=1.0)


class TestBuildWorkload:
    def test_workload_shape(self, workload):
        assert len(workload.relation) == 800
        assert len(workload.cfds) == 1
        assert workload.cfds[0].lhs == ("ZIP", "CT")

    def test_relation_caching(self):
        first = build_workload(size=800, noise=0.05, seed=1, tabsz=50)
        second = build_workload(size=800, noise=0.05, seed=1, tabsz=200)
        assert first.relation is second.relation

    def test_multiple_cfds(self):
        workload = build_workload(size=500, noise=0.05, seed=2, num_cfds=3, tabsz=50)
        assert len(workload.cfds) == 3

    def test_label_mentions_the_knobs(self, workload):
        assert "SZ=800" in workload.label
        assert "NUMATTRs=3" in workload.label

    def test_detector_factory(self, workload):
        detector = workload.detector()
        try:
            run = detector.detect(workload.cfds, form="dnf", expand_variable_violations=False)
            assert run.timings
        finally:
            detector.close()


class TestTiming:
    def test_time_detection_returns_positive_time_and_run(self, workload):
        seconds, run = time_detection(workload, form="dnf")
        assert seconds > 0
        assert len(run.timings) == 2  # one Q^C and one Q^V, expansion disabled

    def test_repeats_take_the_median(self, workload):
        seconds, _ = time_detection(workload, form="dnf", repeats=3)
        assert seconds > 0

    def test_merged_strategy_supported(self):
        workload = build_workload(size=500, noise=0.05, seed=2, num_cfds=2, tabsz=50)
        seconds, run = time_detection(workload, strategy="merged")
        assert seconds > 0
        assert [timing.label for timing in run.timings] == ["qc:merged", "qv:merged"]

    def test_query_split_covers_both_queries(self, workload):
        split = time_query_split(workload, form="dnf")
        assert set(split) == {"qc", "qv"}
        assert split["qc"] >= 0 and split["qv"] >= 0
