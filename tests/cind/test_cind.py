"""Tests for the CIND formalism and in-memory satisfaction."""

import pytest

from repro.cind.cind import CIND, CINDPattern
from repro.cind.satisfaction import find_cind_violations, satisfies_cind
from repro.errors import CFDError
from repro.relation.relation import Relation
from repro.relation.schema import Schema


@pytest.fixture
def orders():
    schema = Schema("orders", ["order_id", "item_id", "type"])
    return Relation(schema, [
        ("o1", "b1", "book"),
        ("o2", "b2", "book"),
        ("o3", "c1", "cd"),
        ("o4", "b9", "book"),     # dangling reference
        ("o5", "x1", "voucher"),  # not constrained by the CIND
    ])


@pytest.fixture
def books():
    schema = Schema("books", ["id", "format"])
    return Relation(schema, [("b1", "paperback"), ("b2", "hardcover"), ("b3", "paperback")])


@pytest.fixture
def book_cind():
    """orders[item_id; type = 'book'] ⊆ books[id; format = _]."""
    return CIND.build(
        ["item_id"], ["id"], ["type"], ["format"], [["book", "_"]],
        name="orders_reference_books",
    )


class TestConstruction:
    def test_build_shape(self, book_cind):
        assert book_cind.source_attributes == ("item_id",)
        assert book_cind.target_attributes == ("id",)
        assert book_cind.source_condition == ("type",)
        assert len(book_cind.patterns) == 1

    def test_default_pattern_is_all_wildcards(self):
        cind = CIND(["a"], ["b"], ["c"], ["d"])
        assert cind.is_standard_ind()

    def test_mismatched_inclusion_lists_rejected(self):
        with pytest.raises(CFDError):
            CIND(["a", "b"], ["x"])

    def test_empty_inclusion_lists_rejected(self):
        with pytest.raises(CFDError):
            CIND([], [])

    def test_wrong_pattern_width_rejected(self):
        with pytest.raises(CFDError):
            CIND.build(["a"], ["b"], ["c"], ["d"], [["only-one"]])

    def test_pattern_attribute_mismatch_rejected(self):
        with pytest.raises(CFDError):
            CIND(["a"], ["b"], ["c"], ["d"],
                 patterns=[CINDPattern({"wrong": "_"}, {"d": "_"})])

    def test_name_default_and_override(self, book_cind):
        assert book_cind.name == "orders_reference_books"
        assert CIND(["a"], ["b"]).name == "cind_a__b"

    def test_equality(self):
        left = CIND.build(["a"], ["b"], ["c"], [], [["x"]])
        right = CIND.build(["a"], ["b"], ["c"], [], [["x"]])
        other = CIND.build(["a"], ["b"], ["c"], [], [["y"]])
        assert left == right
        assert left != other


class TestSatisfaction:
    def test_violations_are_the_dangling_book_orders(self, orders, books, book_cind):
        violations = find_cind_violations(orders, books, book_cind)
        assert [v.tuple_index for v in violations] == [3]
        assert violations[0].key == ("b9",)

    def test_unconditioned_tuples_are_not_checked(self, orders, books, book_cind):
        # o3 (cd) and o5 (voucher) do not match the 'book' condition.
        indices = {v.tuple_index for v in find_cind_violations(orders, books, book_cind)}
        assert indices.isdisjoint({2, 4})

    def test_satisfies_after_adding_the_missing_book(self, orders, books, book_cind):
        books.insert(("b9", "ebook"))
        assert satisfies_cind(orders, books, book_cind)

    def test_standard_ind_checks_every_source_tuple(self, orders, books):
        ind = CIND(["item_id"], ["id"])
        violations = find_cind_violations(orders, books, ind)
        assert {v.tuple_index for v in violations} == {2, 3, 4}

    def test_target_condition_restricts_matches(self, orders, books):
        cind = CIND.build(
            ["item_id"], ["id"], ["type"], ["format"], [["book", "paperback"]],
            name="paperbacks_only",
        )
        violations = find_cind_violations(orders, books, cind)
        # b2 exists but is a hardcover, so o2 now violates as well.
        assert {v.tuple_index for v in violations} == {1, 3}

    def test_empty_source_satisfies_everything(self, books, book_cind):
        empty = Relation(Schema("orders", ["order_id", "item_id", "type"]))
        assert satisfies_cind(empty, books, book_cind)

    def test_empty_target_violates_every_conditioned_tuple(self, orders, book_cind):
        empty = Relation(Schema("books", ["id", "format"]))
        violations = find_cind_violations(orders, empty, book_cind)
        assert {v.tuple_index for v in violations} == {0, 1, 3}

    def test_multiple_patterns(self, orders, books):
        cind = CIND.build(
            ["item_id"], ["id"], ["type"], ["format"],
            [["book", "_"], ["cd", "_"]],
            name="books_and_cds",
        )
        violations = find_cind_violations(orders, books, cind)
        assert {v.tuple_index for v in violations} == {2, 3}
