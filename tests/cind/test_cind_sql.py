"""Tests for SQL-based CIND detection (cross-checked against the in-memory oracle)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cind.cind import CIND
from repro.cind.satisfaction import find_cind_violations
from repro.cind.sql import CINDQueryBuilder, detect_cind_violations_sql
from repro.relation.relation import Relation
from repro.relation.schema import Schema


@pytest.fixture
def orders():
    schema = Schema("orders", ["order_id", "item_id", "type"])
    return Relation(schema, [
        ("o1", "b1", "book"),
        ("o2", "b9", "book"),
        ("o3", "c1", "cd"),
    ])


@pytest.fixture
def books():
    schema = Schema("books", ["id", "format"])
    return Relation(schema, [("b1", "paperback")])


@pytest.fixture
def book_cind():
    return CIND.build(["item_id"], ["id"], ["type"], ["format"], [["book", "_"]], name="ref")


class TestQueryText:
    def test_query_uses_not_exists_antijoin(self, book_cind):
        builder = CINDQueryBuilder(book_cind, "orders", "books", "tab_ref")
        sql = builder.violation_sql()
        assert "NOT EXISTS" in sql
        assert 't2."id" = t1."item_id"' in sql

    def test_query_size_independent_of_pattern_count(self):
        small = CIND.build(["a"], ["b"], ["c"], [], [["x"]], name="n")
        large = CIND.build(["a"], ["b"], ["c"], [], [[f"x{i}"] for i in range(300)], name="n")
        small_sql = CINDQueryBuilder(small, "s", "t", "tab").violation_sql()
        large_sql = CINDQueryBuilder(large, "s", "t", "tab").violation_sql()
        assert small_sql == large_sql

    def test_tableau_ddl_and_rows(self, book_cind):
        builder = CINDQueryBuilder(book_cind, "orders", "books", "tab_ref")
        assert "x_type" in builder.tableau_ddl()
        assert builder.tableau_rows() == [(0, "book", "_")]


class TestExecution:
    def test_sql_matches_oracle(self, orders, books, book_cind):
        oracle = {v.tuple_index for v in find_cind_violations(orders, books, book_cind)}
        sql = {v.tuple_index for v in detect_cind_violations_sql(orders, books, book_cind)}
        assert sql == oracle == {1}

    def test_standard_ind_via_sql(self, orders, books):
        ind = CIND(["item_id"], ["id"])
        oracle = {v.tuple_index for v in find_cind_violations(orders, books, ind)}
        sql = {v.tuple_index for v in detect_cind_violations_sql(orders, books, ind)}
        assert sql == oracle == {1, 2}

    def test_clean_pair_returns_nothing(self, orders, books, book_cind):
        books.insert(("b9", "ebook"))
        assert detect_cind_violations_sql(orders, books, book_cind) == []


SOURCE_VALUES = ("k1", "k2", "k3")
TYPES = ("book", "cd")
FORMATS = ("paper", "audio")

source_rows = st.tuples(st.sampled_from(SOURCE_VALUES), st.sampled_from(TYPES))
target_rows = st.tuples(st.sampled_from(SOURCE_VALUES), st.sampled_from(FORMATS))
condition_cell = st.sampled_from(TYPES + ("_",))
format_cell = st.sampled_from(FORMATS + ("_",))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(source_rows, max_size=6),
    st.lists(target_rows, max_size=6),
    st.lists(st.tuples(condition_cell, format_cell), min_size=1, max_size=3),
)
def test_sql_and_oracle_agree_on_random_instances(source_data, target_data, pattern_rows):
    source = Relation(Schema("s", ["key", "type"]), source_data)
    target = Relation(Schema("t", ["ref", "format"]), target_data)
    cind = CIND.build(["key"], ["ref"], ["type"], ["format"], pattern_rows, name="rand")
    oracle = {(v.tuple_index, v.pattern_index) for v in find_cind_violations(source, target, cind)}
    sql = {(v.tuple_index, v.pattern_index)
           for v in detect_cind_violations_sql(source, target, cind)}
    assert sql == oracle
