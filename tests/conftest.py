"""Shared fixtures for the test suite, plus the Hypothesis CI profile."""

from __future__ import annotations

import os

import pytest

from repro.datagen.cust import cust_cfds, cust_relation, phi1, phi2, phi3
from repro.datagen.generator import TaxRecordGenerator
from repro.relation.relation import Relation
from repro.relation.schema import Schema

try:
    from hypothesis import HealthCheck, settings

    # One shared profile for every property suite (the storage and kernel
    # agreement grids keep growing): "ci" is fully derandomised so the
    # coverage-gated tier-1 job can never flake on an unlucky draw — a
    # regression either reproduces on every run or is caught by the local
    # randomised profile, not intermittently in CI.  Locally the default
    # profile keeps exploring fresh examples; select the CI behaviour with
    # HYPOTHESIS_PROFILE=ci (the CI workflow exports it).
    settings.register_profile(
        "ci",
        derandomize=True,
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis is a test extra
    pass


@pytest.fixture
def cust():
    """The Figure 1 instance (behavioural variant; see cust.py docstring)."""
    return cust_relation()


@pytest.fixture
def cust_constraints():
    """The CFDs of Figure 2."""
    return cust_cfds()


@pytest.fixture
def cfd_phi1():
    return phi1()


@pytest.fixture
def cfd_phi2():
    return phi2()


@pytest.fixture
def cfd_phi3():
    return phi3()


@pytest.fixture
def abc_schema():
    """A tiny generic schema used by reasoning tests."""
    return Schema("r", ["A", "B", "C"])


@pytest.fixture
def small_tax_workload():
    """A small deterministic tax-records instance with 5% noise."""
    return TaxRecordGenerator(size=500, noise=0.05, seed=11).generate()


@pytest.fixture
def clean_tax_relation():
    """A small tax-records instance with no injected noise."""
    return TaxRecordGenerator(size=400, noise=0.0, seed=5).generate_relation()


def make_relation(attributes, rows, name="r"):
    """Helper used across test modules to build small relations tersely."""
    return Relation(Schema(name, attributes), rows)


@pytest.fixture
def relation_factory():
    return make_relation
