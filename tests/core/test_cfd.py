"""Tests for repro.core.cfd: CFD construction, classification, normalization."""

import pytest

from repro.core.cfd import CFD, FD, normalize_all
from repro.core.tableau import PatternTableau
from repro.errors import CFDError
from repro.relation.schema import Schema


class TestFD:
    def test_str(self):
        assert str(FD(("CC", "AC"), ("CT",))) == "[CC, AC] -> [CT]"

    def test_requires_rhs(self):
        with pytest.raises(CFDError):
            FD(("A",), ())

    def test_to_cfd_is_all_wildcards(self):
        cfd = FD(("A", "B"), ("C",)).to_cfd()
        assert cfd.is_standard_fd()
        assert cfd.lhs == ("A", "B")

    def test_fd_equality(self):
        assert FD(("A",), ("B",)) == FD(["A"], ["B"])


class TestCFDConstruction:
    def test_build_paper_phi1(self):
        phi1 = CFD.build(["CC", "ZIP"], ["STR"], [["44", "_", "_"]], name="phi1")
        assert phi1.lhs == ("CC", "ZIP")
        assert phi1.rhs == ("STR",)
        assert len(phi1.tableau) == 1
        assert phi1.name == "phi1"

    def test_default_name_is_derived(self):
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        assert cfd.name == "cfd_A__B"

    def test_empty_lhs_allowed(self):
        cfd = CFD.build([], ["B"], [["b"]])
        assert cfd.lhs == ()
        assert cfd.name == "cfd_empty__B"

    def test_empty_rhs_rejected(self):
        with pytest.raises(CFDError):
            CFD.build(["A"], [], [["_"]])

    def test_duplicate_lhs_rejected(self):
        with pytest.raises(CFDError):
            CFD.build(["A", "A"], ["B"], [["_", "_", "_"]])

    def test_duplicate_rhs_rejected(self):
        with pytest.raises(CFDError):
            CFD.build(["A"], ["B", "B"], [["_", "_", "_"]])

    def test_empty_tableau_rejected(self):
        tableau = PatternTableau(("A",), ("B",))
        with pytest.raises(CFDError):
            CFD(("A",), ("B",), tableau)

    def test_mismatched_tableau_rejected(self):
        tableau = PatternTableau.build(["A"], ["B"], [["_", "_"]])
        with pytest.raises(CFDError):
            CFD(("X",), ("B",), tableau)

    def test_schema_validation(self):
        schema = Schema("r", ["A", "B"])
        CFD.build(["A"], ["B"], [["_", "_"]], schema=schema)  # fine
        with pytest.raises(Exception):
            CFD.build(["A"], ["Z"], [["_", "_"]], schema=schema)

    def test_attribute_in_both_sides_allowed(self):
        cfd = CFD.build(["B"], ["B"], [["_", "b1"]])
        assert cfd.attributes == ("B",)

    def test_from_fd(self):
        cfd = CFD.from_fd(FD(("A",), ("B",)), name="fd")
        assert cfd.is_standard_fd()
        assert cfd.name == "fd"


class TestClassification:
    def test_standard_fd(self):
        assert CFD.build(["A"], ["B"], [["_", "_"]]).is_standard_fd()
        assert not CFD.build(["A"], ["B"], [["a", "_"]]).is_standard_fd()

    def test_instance_level(self):
        assert CFD.build(["A"], ["B"], [["a", "b"]]).is_instance_level()
        assert not CFD.build(["A"], ["B"], [["a", "_"]]).is_instance_level()

    def test_multi_pattern_is_neither(self):
        cfd = CFD.build(["A"], ["B"], [["_", "_"], ["a", "b"]])
        assert not cfd.is_standard_fd()
        assert not cfd.is_instance_level()

    def test_normal_form(self):
        assert CFD.build(["A"], ["B"], [["_", "b"]]).is_normal_form()
        assert not CFD.build(["A"], ["B", "C"], [["_", "b", "c"]]).is_normal_form()
        assert not CFD.build(["A"], ["B"], [["_", "b"], ["a", "_"]]).is_normal_form()

    def test_uses_dontcare(self):
        assert CFD.build(["A"], ["B"], [["@", "_"]]).uses_dontcare()
        assert not CFD.build(["A"], ["B"], [["a", "_"]]).uses_dontcare()

    def test_embedded_fd(self):
        cfd = CFD.build(["A", "B"], ["C"], [["_", "_", "_"]])
        assert cfd.embedded_fd == FD(("A", "B"), ("C",))

    def test_attributes_order_and_dedup(self):
        cfd = CFD.build(["A", "B"], ["B", "C"], [["_", "_", "_", "_"]])
        assert cfd.attributes == ("A", "B", "C")


class TestNormalization:
    def test_normalize_splits_rhs_and_rows(self):
        cfd = CFD.build(
            ["CC", "AC"],
            ["CT", "ZIP"],
            [["01", "908", "MH", "_"], ["_", "_", "_", "_"]],
            name="phi",
        )
        parts = cfd.normalize()
        assert len(parts) == 4
        assert all(part.is_normal_form() for part in parts)
        assert {part.rhs[0] for part in parts} == {"CT", "ZIP"}

    def test_normalize_preserves_lhs_cells(self):
        cfd = CFD.build(["A", "B"], ["C"], [["a", "_", "c"]])
        (part,) = cfd.normalize()
        assert part.single_pattern().lhs_cell("A").value == "a"
        assert part.single_pattern().lhs_cell("B").is_wildcard

    def test_normalize_all(self):
        cfds = [
            CFD.build(["A"], ["B", "C"], [["_", "b", "c"]]),
            CFD.build(["B"], ["C"], [["_", "_"]]),
        ]
        assert len(normalize_all(cfds)) == 3

    def test_single_pattern_requires_one_row(self):
        cfd = CFD.build(["A"], ["B"], [["_", "b"], ["a", "_"]])
        with pytest.raises(CFDError):
            cfd.single_pattern()

    def test_normalized_names_are_unique(self):
        cfd = CFD.build(["A"], ["B", "C"], [["_", "b", "c"], ["a", "_", "_"]], name="x")
        names = [part.name for part in cfd.normalize()]
        assert len(names) == len(set(names))


class TestEqualityAndRendering:
    def test_equality_ignores_pattern_order(self):
        left = CFD.build(["A"], ["B"], [["a", "b"], ["_", "_"]])
        right = CFD.build(["A"], ["B"], [["_", "_"], ["a", "b"]])
        assert left == right
        assert hash(left) == hash(right)

    def test_inequality_on_different_patterns(self):
        left = CFD.build(["A"], ["B"], [["a", "b"]])
        right = CFD.build(["A"], ["B"], [["a", "c"]])
        assert left != right

    def test_render_contains_fd_and_tableau(self):
        cfd = CFD.build(["CC", "ZIP"], ["STR"], [["44", "_", "_"]], name="phi1")
        rendered = cfd.render()
        assert "phi1" in rendered
        assert "44" in rendered

    def test_with_schema_round_trip(self):
        schema = Schema("r", ["A", "B"])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        assert cfd.with_schema(schema).schema is schema

    def test_repr(self):
        cfd = CFD.build(["A"], ["B"], [["_", "_"]], name="x")
        assert "x" in repr(cfd)
