"""Property-based tests (hypothesis) for the core CFD formalism.

Invariants exercised here:

* the match relation is reflexive on constants and total for wildcards;
* the ``⪯`` order is reflexive and transitive, and specialising a pattern can
  only shrink the set of matching tuples;
* CFD satisfaction is preserved under taking sub-instances (the small-model
  property that the chase-based reasoning relies on);
* a CFD and its normalisation agree on every instance.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.cfd import CFD
from repro.core.pattern import DONTCARE, WILDCARD, PatternValue
from repro.core.satisfaction import find_all_violations, satisfies
from repro.relation.relation import Relation
from repro.relation.schema import Schema

ATTRIBUTES = ("A", "B", "C")
VALUES = ("v0", "v1", "v2")

value_strategy = st.sampled_from(VALUES)
cell_strategy = st.one_of(
    st.sampled_from(VALUES).map(PatternValue.constant),
    st.just(WILDCARD),
)
row_strategy = st.tuples(*(value_strategy for _ in ATTRIBUTES))


@st.composite
def relations(draw, min_rows=0, max_rows=6):
    rows = draw(st.lists(row_strategy, min_size=min_rows, max_size=max_rows))
    return Relation(Schema("r", ATTRIBUTES), rows)


@st.composite
def normal_form_cfds(draw):
    """A random normal-form CFD over (A, B, C) with single-attribute RHS."""
    rhs_attr = draw(st.sampled_from(ATTRIBUTES))
    lhs_attrs = [attr for attr in ATTRIBUTES if attr != rhs_attr]
    lhs_cells = {attr: draw(cell_strategy) for attr in lhs_attrs}
    rhs_cell = draw(cell_strategy)
    pattern = {**{attr: cell for attr, cell in lhs_cells.items()}, rhs_attr: rhs_cell}
    return CFD.build(lhs_attrs, [rhs_attr], [pattern])


@st.composite
def general_cfds(draw, max_patterns=3):
    """A random CFD over (A, B, C) with a multi-row tableau."""
    rhs_attr = draw(st.sampled_from(ATTRIBUTES))
    lhs_attrs = [attr for attr in ATTRIBUTES if attr != rhs_attr]
    n_patterns = draw(st.integers(min_value=1, max_value=max_patterns))
    rows = []
    for _ in range(n_patterns):
        row = {attr: draw(cell_strategy) for attr in lhs_attrs}
        row[rhs_attr] = draw(cell_strategy)
        rows.append(row)
    return CFD.build(lhs_attrs, [rhs_attr], rows)


class TestPatternValueProperties:
    @given(value_strategy)
    def test_constant_matches_itself(self, value):
        assert PatternValue.constant(value).matches(value)

    @given(value_strategy, value_strategy)
    def test_constant_matches_only_equal_values(self, left, right):
        assert PatternValue.constant(left).matches(right) == (left == right)

    @given(st.one_of(value_strategy, st.integers(), st.booleans()))
    def test_wildcard_and_dontcare_match_everything(self, value):
        assert WILDCARD.matches(value)
        assert DONTCARE.matches(value)

    @given(cell_strategy)
    def test_order_is_reflexive(self, cell):
        assert cell.subsumed_by(cell)

    @given(cell_strategy, cell_strategy, cell_strategy)
    def test_order_is_transitive(self, first, second, third):
        if first.subsumed_by(second) and second.subsumed_by(third):
            assert first.subsumed_by(third)

    @given(cell_strategy, cell_strategy, st.one_of(value_strategy, st.integers()))
    def test_subsumption_implies_match_containment(self, specific, general, value):
        """If specific ⪯ general, every value matching specific matches general."""
        if specific.subsumed_by(general) and specific.matches(value):
            assert general.matches(value)


class TestSatisfactionProperties:
    @settings(max_examples=60, deadline=None)
    @given(relations(), general_cfds())
    def test_satisfaction_closed_under_subinstances(self, relation, cfd):
        """If I |= φ then every sub-instance of I satisfies φ (Section 3's small-model basis)."""
        if not satisfies(relation, cfd):
            return
        for drop_index in range(len(relation)):
            rows = [row for index, row in enumerate(relation) if index != drop_index]
            smaller = Relation(relation.schema, rows)
            assert satisfies(smaller, cfd)

    @settings(max_examples=60, deadline=None)
    @given(relations(), general_cfds())
    def test_normalization_preserves_satisfaction(self, relation, cfd):
        """I |= φ iff I |= Σ_φ for the normalised parts (Section 3.2)."""
        normalized = cfd.normalize()
        direct = satisfies(relation, cfd)
        via_parts = all(satisfies(relation, part) for part in normalized)
        assert direct == via_parts

    @settings(max_examples=60, deadline=None)
    @given(relations(min_rows=1), normal_form_cfds())
    def test_violating_indices_are_valid(self, relation, cfd):
        report = find_all_violations(relation, [cfd])
        for index in report.violating_indices():
            assert 0 <= index < len(relation)

    @settings(max_examples=60, deadline=None)
    @given(relations(), general_cfds())
    def test_duplicating_a_relation_does_not_create_violations(self, relation, cfd):
        """Adding exact duplicates never breaks a satisfied CFD (bag semantics)."""
        if not satisfies(relation, cfd):
            return
        doubled = Relation(relation.schema, list(relation.rows) + list(relation.rows))
        assert satisfies(doubled, cfd)

    @settings(max_examples=40, deadline=None)
    @given(relations(min_rows=1), general_cfds())
    def test_standard_fd_pattern_is_least_restrictive_per_group(self, relation, cfd):
        """A CFD violation implies its all-wildcard (FD) variant is violated or the
        violation involves a pattern constant (i.e. CFDs refine FDs)."""
        report = find_all_violations(relation, [cfd])
        fd_cfd = CFD.build(cfd.lhs, cfd.rhs, [["_"] * (len(cfd.lhs) + len(cfd.rhs))])
        fd_report = find_all_violations(relation, [fd_cfd])
        if report.variable_violations() and not fd_report.variable_violations():
            # Variable violations of a refined pattern must also be FD violations.
            raise AssertionError("variable violation without the embedded FD being violated")
