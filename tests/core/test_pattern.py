"""Tests for repro.core.pattern: the match and order relations."""

import pytest

from repro.core.pattern import (
    CONSTANT_KIND,
    DONTCARE,
    DONTCARE_KIND,
    WILDCARD,
    WILDCARD_KIND,
    PatternValue,
)


class TestConstruction:
    def test_constant(self):
        cell = PatternValue.constant("44")
        assert cell.is_constant
        assert cell.value == "44"

    def test_wildcard_singleton(self):
        assert WILDCARD.is_wildcard
        assert WILDCARD.value is None

    def test_dontcare_singleton(self):
        assert DONTCARE.is_dontcare

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PatternValue("nonsense")

    def test_wildcard_with_value_rejected(self):
        with pytest.raises(ValueError):
            PatternValue(WILDCARD_KIND, "x")

    def test_kind_property(self):
        assert PatternValue.constant(1).kind == CONSTANT_KIND
        assert WILDCARD.kind == WILDCARD_KIND
        assert DONTCARE.kind == DONTCARE_KIND


class TestCoercion:
    def test_underscore_token_becomes_wildcard(self):
        assert PatternValue.coerce("_") is WILDCARD

    def test_at_token_becomes_dontcare(self):
        assert PatternValue.coerce("@") is DONTCARE

    def test_other_values_become_constants(self):
        assert PatternValue.coerce("44") == PatternValue.constant("44")
        assert PatternValue.coerce(7) == PatternValue.constant(7)

    def test_existing_pattern_value_passes_through(self):
        cell = PatternValue.constant("x")
        assert PatternValue.coerce(cell) is cell


class TestMatchRelation:
    """The paper's ``t[A] ≍ tc[A]`` relation."""

    def test_constant_matches_equal_value_only(self):
        cell = PatternValue.constant("NYC")
        assert cell.matches("NYC")
        assert not cell.matches("MH")

    def test_wildcard_matches_everything(self):
        assert WILDCARD.matches("anything")
        assert WILDCARD.matches(123)
        assert WILDCARD.matches(None)

    def test_dontcare_matches_everything(self):
        assert DONTCARE.matches("x")
        assert DONTCARE.matches(0)

    def test_example_from_paper(self):
        # t[A, B] = (a, b) matches tc[A, B] = (a, _)
        assert PatternValue.constant("a").matches("a")
        assert WILDCARD.matches("b")


class TestOrderRelation:
    """The ``⪯`` relation of Section 3.2 used by inference rule FD3."""

    def test_constant_below_wildcard(self):
        assert PatternValue.constant("b").subsumed_by(WILDCARD)

    def test_wildcard_not_below_constant(self):
        assert not WILDCARD.subsumed_by(PatternValue.constant("b"))

    def test_equal_constants(self):
        assert PatternValue.constant("b").subsumed_by(PatternValue.constant("b"))

    def test_different_constants(self):
        assert not PatternValue.constant("b").subsumed_by(PatternValue.constant("c"))

    def test_wildcard_below_wildcard(self):
        assert WILDCARD.subsumed_by(WILDCARD)

    def test_anything_below_dontcare(self):
        assert PatternValue.constant("b").subsumed_by(DONTCARE)
        assert WILDCARD.subsumed_by(DONTCARE)


class TestEqualityAndRendering:
    def test_equality_by_kind_and_value(self):
        assert PatternValue.constant("a") == PatternValue.constant("a")
        assert PatternValue.constant("a") != PatternValue.constant("b")
        assert PatternValue.constant("_") != WILDCARD or True  # coerce not applied by constant()

    def test_hashable(self):
        cells = {PatternValue.constant("a"), PatternValue.constant("a"), WILDCARD}
        assert len(cells) == 2

    def test_render(self):
        assert WILDCARD.render() == "_"
        assert DONTCARE.render() == "@"
        assert PatternValue.constant("44").render() == "44"

    def test_repr_is_informative(self):
        assert "44" in repr(PatternValue.constant("44"))
        assert "_" in repr(WILDCARD)

    def test_not_equal_to_raw_values(self):
        assert PatternValue.constant("a") != "a"
