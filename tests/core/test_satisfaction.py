"""Tests for repro.core.satisfaction: the in-memory semantics of Section 2."""

import pytest

from repro.core.cfd import CFD
from repro.core.satisfaction import (
    find_all_violations,
    find_violations,
    satisfies,
    satisfies_all,
)
from repro.relation.relation import Relation
from repro.relation.schema import Schema


@pytest.fixture
def ab_relation():
    schema = Schema("r", ["A", "B", "C"])
    return Relation(schema, [("a1", "b1", "c1"), ("a1", "b1", "c2"), ("a2", "b2", "c1")])


class TestPaperExamples:
    """Example 2.2 and Example 4.1: which tuples of Figure 1 violate which CFDs."""

    def test_cust_satisfies_phi1(self, cust, cfd_phi1):
        assert satisfies(cust, cfd_phi1)

    def test_cust_satisfies_phi3(self, cust, cfd_phi3):
        assert satisfies(cust, cfd_phi3)

    def test_cust_violates_phi2(self, cust, cfd_phi2):
        assert not satisfies(cust, cfd_phi2)

    def test_constant_violations_are_t1_t2(self, cust, cfd_phi2):
        report = find_violations(cust, cfd_phi2)
        constant_indices = {v.tuple_index for v in report.constant_violations()}
        assert constant_indices == {0, 1}

    def test_constant_violation_details(self, cust, cfd_phi2):
        report = find_violations(cust, cfd_phi2)
        violation = sorted(report.constant_violations(), key=lambda v: v.tuple_index)[0]
        assert violation.attribute == "CT"
        assert violation.expected == "MH"
        assert violation.actual == "NYC"

    def test_variable_violations_are_t3_t4(self, cust, cfd_phi2):
        report = find_violations(cust, cfd_phi2)
        indices = set()
        for violation in report.variable_violations():
            indices.update(violation.tuple_indices)
        assert indices == {2, 3}

    def test_all_cfds_flag_first_four_tuples(self, cust, cust_constraints):
        report = find_all_violations(cust, cust_constraints)
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_satisfies_all(self, cust, cfd_phi1, cfd_phi3, cust_constraints):
        assert satisfies_all(cust, [cfd_phi1, cfd_phi3])
        assert not satisfies_all(cust, cust_constraints)


class TestSingleTupleViolations:
    def test_single_tuple_can_violate_a_cfd(self):
        """Unlike standard FDs, one tuple alone can violate a CFD (Section 2)."""
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("a", "wrong")])
        cfd = CFD.build(["A"], ["B"], [["a", "right"]])
        report = find_violations(relation, cfd)
        assert len(report.constant_violations()) == 1
        assert not report.variable_violations()

    def test_non_matching_tuple_is_fine(self):
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("other", "anything")])
        cfd = CFD.build(["A"], ["B"], [["a", "right"]])
        assert satisfies(relation, cfd)

    def test_empty_lhs_constant_cfd_constrains_every_tuple(self):
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("x", "b"), ("y", "not-b")])
        cfd = CFD.build([], ["B"], [["b"]])
        report = find_violations(relation, cfd)
        assert {v.tuple_index for v in report.constant_violations()} == {1}

    def test_wildcard_rhs_needs_two_tuples(self):
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("a", "b1")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        assert satisfies(relation, cfd)


class TestMultiTupleViolations:
    def test_standard_fd_violation(self, ab_relation):
        fd_cfd = CFD.build(["A"], ["C"], [["_", "_"]])
        report = find_violations(ab_relation, fd_cfd)
        assert len(report.variable_violations()) == 1
        assert set(report.variable_violations()[0].tuple_indices) == {0, 1}

    def test_pattern_restricts_the_fd(self, ab_relation):
        restricted = CFD.build(["A"], ["C"], [["a2", "_"]])
        assert satisfies(ab_relation, restricted)

    def test_group_key_reported(self, ab_relation):
        fd_cfd = CFD.build(["A"], ["C"], [["_", "_"]])
        violation = find_violations(ab_relation, fd_cfd).variable_violations()[0]
        assert violation.group_key == ("a1",)
        assert violation.attributes == ("A",)

    def test_duplicate_rows_do_not_violate(self):
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("a", "b"), ("a", "b")])
        cfd = CFD.build(["A"], ["B"], [["_", "_"]])
        assert satisfies(relation, cfd)

    def test_multiple_patterns_checked_independently(self, cust, cfd_phi3):
        # phi3's (44, 141, GLA) row matches nothing; (01, 215, PHI) row matches
        # t5 and is satisfied; the wildcard row groups by CC, AC.
        report = find_violations(cust, cfd_phi3)
        assert report.is_clean()


class TestDontCareSemantics:
    """Section 4.2.1: '@' removes an attribute from both the grouping and the check."""

    def test_dontcare_on_lhs_widens_the_group(self):
        schema = Schema("r", ["A", "B", "C"])
        relation = Relation(schema, [("a1", "b1", "c1"), ("a2", "b1", "c2")])
        # Group only by B (A is don't care): the two tuples disagree on C.
        cfd = CFD.build(["A", "B"], ["C"], [["@", "_", "_"]])
        report = find_violations(relation, cfd)
        assert len(report.variable_violations()) == 1

    def test_dontcare_on_rhs_removes_the_check(self):
        schema = Schema("r", ["A", "B", "C"])
        relation = Relation(schema, [("a1", "b1", "c1"), ("a1", "b1", "c2")])
        cfd = CFD.build(["A"], ["B", "C"], [["_", "_", "@"]])
        assert satisfies(relation, cfd)

    def test_all_rhs_dontcare_never_violated(self):
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("a", "b1"), ("a", "b2")])
        cfd = CFD.build(["A"], ["B"], [["_", "@"]])
        assert satisfies(relation, cfd)


class TestEmptyAndEdgeCases:
    def test_empty_relation_satisfies_everything(self, cust_constraints):
        empty = Relation(Schema("cust", ["CC", "AC", "PN", "NM", "STR", "CT", "ZIP"]))
        assert satisfies_all(empty, cust_constraints)

    def test_find_all_violations_empty_cfd_list(self, cust):
        assert find_all_violations(cust, []).is_clean()

    def test_violation_report_mentions_cfd_name(self, cust, cfd_phi2):
        report = find_violations(cust, cfd_phi2)
        assert all(v.cfd_name == "phi2" for v in report)
