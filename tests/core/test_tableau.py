"""Tests for repro.core.tableau: pattern tuples and pattern tableaux."""

import pytest

from repro.core.pattern import WILDCARD, PatternValue
from repro.core.tableau import PatternTableau, PatternTuple
from repro.errors import PatternError


@pytest.fixture
def pt():
    return PatternTuple(
        {"CC": "01", "AC": "908", "PN": "_"},
        {"STR": "_", "CT": "MH", "ZIP": "_"},
    )


class TestPatternTuple:
    def test_cells_are_coerced(self, pt):
        assert pt.lhs_cell("CC") == PatternValue.constant("01")
        assert pt.lhs_cell("PN") is WILDCARD
        assert pt.rhs_cell("CT").is_constant

    def test_missing_cell_raises(self, pt):
        with pytest.raises(PatternError):
            pt.lhs_cell("ZIP")
        with pytest.raises(PatternError):
            pt.rhs_cell("CC")

    def test_empty_rhs_rejected(self):
        with pytest.raises(PatternError):
            PatternTuple({"A": "_"}, {})

    def test_empty_lhs_allowed(self):
        pattern = PatternTuple({}, {"B": "b"})
        assert pattern.lhs_attributes == ()

    def test_constant_and_free_attribute_views(self):
        pattern = PatternTuple({"A": "a", "B": "@"}, {"C": "_", "D": "d"})
        assert pattern.lhs_constant_attributes() == ("A",)
        assert pattern.rhs_constant_attributes() == ("D",)
        assert pattern.lhs_free_attributes() == ("A",)
        assert set(pattern.rhs_free_attributes()) == {"C", "D"}

    def test_classification(self):
        constant_only = PatternTuple({"A": "a"}, {"B": "b"})
        variable_only = PatternTuple({"A": "_"}, {"B": "_"})
        mixed = PatternTuple({"A": "a"}, {"B": "_"})
        assert constant_only.is_constant_only()
        assert variable_only.is_variable_only()
        assert not mixed.is_constant_only()
        assert not mixed.is_variable_only()

    def test_matching(self, pt):
        row = {"CC": "01", "AC": "908", "PN": "123", "STR": "x", "CT": "MH", "ZIP": "y"}
        assert pt.matches_lhs(row)
        assert pt.matches_rhs(row)
        row["CT"] = "NYC"
        assert not pt.matches_rhs(row)
        row["AC"] = "212"
        assert not pt.matches_lhs(row)

    def test_subsumed_by_pointwise(self):
        specific = PatternTuple({"A": "a"}, {"B": "b"})
        general = PatternTuple({"A": "_"}, {"B": "_"})
        assert specific.subsumed_by(general)
        assert not general.subsumed_by(specific)

    def test_subsumed_by_requires_same_attributes(self):
        left = PatternTuple({"A": "a"}, {"B": "b"})
        right = PatternTuple({"X": "a"}, {"B": "b"})
        assert not left.subsumed_by(right)

    def test_with_cell_replacements(self, pt):
        changed = pt.with_lhs_cell("PN", "999").with_rhs_cell("CT", "_")
        assert changed.lhs_cell("PN").value == "999"
        assert changed.rhs_cell("CT") is WILDCARD
        # original untouched
        assert pt.lhs_cell("PN") is WILDCARD

    def test_without_lhs_attribute(self, pt):
        reduced = pt.without_lhs_attribute("PN")
        assert "PN" not in reduced.lhs_attributes
        assert set(reduced.rhs_attributes) == {"STR", "CT", "ZIP"}

    def test_restrict(self, pt):
        restricted = pt.restrict(["CC"], ["CT"])
        assert restricted.lhs_attributes == ("CC",)
        assert restricted.rhs_attributes == ("CT",)

    def test_equality_ignores_insertion_order(self):
        left = PatternTuple({"A": "a", "B": "_"}, {"C": "c"})
        right = PatternTuple({"B": "_", "A": "a"}, {"C": "c"})
        assert left == right
        assert hash(left) == hash(right)

    def test_repr_mentions_cells(self, pt):
        assert "CC=01" in repr(pt)


class TestPatternTableau:
    def test_build_from_sequences(self):
        tableau = PatternTableau.build(
            ["CC", "AC"], ["CT"], [["01", "215", "PHI"], ["44", "141", "GLA"], ["_", "_", "_"]]
        )
        assert len(tableau) == 3
        assert tableau[0].lhs_cell("AC").value == "215"
        assert tableau[2].is_variable_only()

    def test_build_from_mappings(self):
        tableau = PatternTableau.build(
            ["CC"], ["CT"], [{"CC": "01", "CT": "NYC"}]
        )
        assert tableau[0].rhs_cell("CT").value == "NYC"

    def test_build_wrong_width_raises(self):
        with pytest.raises(PatternError):
            PatternTableau.build(["A"], ["B"], [["only-one-cell"]])

    def test_append_validates_attribute_sets(self):
        tableau = PatternTableau(("A",), ("B",))
        with pytest.raises(PatternError):
            tableau.append(PatternTuple({"X": "_"}, {"B": "_"}))
        with pytest.raises(PatternError):
            tableau.append(PatternTuple({"A": "_"}, {"Y": "_"}))

    def test_requires_rhs_attributes(self):
        with pytest.raises(PatternError):
            PatternTableau(("A",), ())

    def test_iteration_and_indexing(self):
        tableau = PatternTableau.build(["A"], ["B"], [["a", "b"], ["_", "_"]])
        assert [row.lhs_cell("A").render() for row in tableau] == ["a", "_"]
        assert tableau[1].is_variable_only()

    def test_equality(self):
        left = PatternTableau.build(["A"], ["B"], [["a", "b"]])
        right = PatternTableau.build(["A"], ["B"], [["a", "b"]])
        other = PatternTableau.build(["A"], ["B"], [["a", "c"]])
        assert left == right
        assert left != other

    def test_constant_ratio(self):
        tableau = PatternTableau.build(["A"], ["B"], [["a", "b"], ["_", "b"], ["@", "b"]])
        # cells: (a,b), (_,b), (@ excluded, b) -> constants 4 of 5 considered
        assert tableau.constant_ratio() == pytest.approx(4 / 5)

    def test_constant_ratio_empty_tableau(self):
        tableau = PatternTableau(("A",), ("B",))
        assert tableau.constant_ratio() == 0.0

    def test_render_contains_markers(self):
        tableau = PatternTableau.build(["A"], ["B"], [["_", "b"]])
        rendered = tableau.render()
        assert "_" in rendered
        assert "A" in rendered and "B" in rendered
