"""Tests for repro.core.violations: the report container."""

import pytest

from repro.core.violations import (
    ConstantViolation,
    VariableViolation,
    ViolationReport,
)


@pytest.fixture
def sample_violations():
    return [
        ConstantViolation(
            cfd_name="phi2", pattern_index=0, tuple_indices=(0,),
            attribute="CT", expected="MH", actual="NYC",
        ),
        ConstantViolation(
            cfd_name="phi2", pattern_index=0, tuple_indices=(1,),
            attribute="CT", expected="MH", actual="NYC",
        ),
        VariableViolation(
            cfd_name="phi3", pattern_index=2, tuple_indices=(2, 3),
            attributes=("CC", "AC"), group_key=("01", "212"),
        ),
    ]


class TestViolationObjects:
    def test_constant_violation_kind_and_index(self, sample_violations):
        violation = sample_violations[0]
        assert violation.kind == "constant"
        assert violation.tuple_index == 0

    def test_variable_violation_kind(self, sample_violations):
        assert sample_violations[2].kind == "variable"

    def test_violations_are_frozen(self, sample_violations):
        with pytest.raises(Exception):
            sample_violations[0].attribute = "ZIP"  # type: ignore[misc]

    def test_violations_are_hashable(self, sample_violations):
        assert len(set(sample_violations)) == 3


class TestViolationReport:
    def test_empty_report_is_clean(self):
        report = ViolationReport()
        assert report.is_clean()
        assert not report
        assert len(report) == 0

    def test_add_and_len(self, sample_violations):
        report = ViolationReport()
        for violation in sample_violations:
            report.add(violation)
        assert len(report) == 3
        assert not report.is_clean()

    def test_constructor_accepts_iterable(self, sample_violations):
        assert len(ViolationReport(sample_violations)) == 3

    def test_filters_by_kind(self, sample_violations):
        report = ViolationReport(sample_violations)
        assert len(report.constant_violations()) == 2
        assert len(report.variable_violations()) == 1

    def test_violating_indices_union(self, sample_violations):
        report = ViolationReport(sample_violations)
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_by_cfd_grouping(self, sample_violations):
        grouped = ViolationReport(sample_violations).by_cfd()
        assert set(grouped) == {"phi2", "phi3"}
        assert len(grouped["phi2"]) == 2

    def test_summary_counts(self, sample_violations):
        summary = ViolationReport(sample_violations).summary()
        assert summary == {
            "violations": 3,
            "constant_violations": 2,
            "variable_violations": 1,
            "violating_tuples": 4,
        }

    def test_merge_combines_reports(self, sample_violations):
        left = ViolationReport(sample_violations[:1])
        right = ViolationReport(sample_violations[1:])
        merged = left.merge(right)
        assert len(merged) == 3
        assert len(left) == 1  # originals untouched

    def test_extend_and_iter(self, sample_violations):
        report = ViolationReport()
        report.extend(sample_violations)
        assert list(report) == list(sample_violations)

    def test_repr_contains_counts(self, sample_violations):
        assert "3 violations" in repr(ViolationReport(sample_violations))
