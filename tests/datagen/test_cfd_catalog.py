"""Tests for the parameterised experiment CFD catalog."""

import pytest

from repro.core.satisfaction import satisfies_all
from repro.datagen.cfd_catalog import (
    area_city_state_cfd,
    exemption_cfd,
    experiment_cfd,
    experiment_cfd_set,
    no_tax_state_cfd,
    phone_address_fd_cfd,
    zip_city_state_cfd,
    zip_state_cfd,
)
from repro.datagen.geo import catalog
from repro.errors import CFDError


class TestNamedCFDs:
    def test_zip_state_shape(self):
        cfd = zip_state_cfd()
        assert cfd.lhs == ("ZIP",)
        assert cfd.rhs == ("ST",)
        assert len(cfd.tableau) == len(catalog().zip_state_pairs())

    def test_zip_city_state_shape(self):
        cfd = zip_city_state_cfd(tabsz=50, seed=1)
        assert cfd.lhs == ("ZIP", "CT")
        assert len(cfd.tableau) == 50

    def test_area_city_state_shape(self):
        cfd = area_city_state_cfd()
        assert cfd.lhs == ("CC", "AC")
        assert cfd.rhs == ("CT", "ST")

    def test_exemption_cfd_covers_every_state_and_status(self):
        cfd = exemption_cfd()
        assert len(cfd.tableau) == 50 * 4

    def test_no_tax_state_cfd_only_zero_rates(self):
        cfd = no_tax_state_cfd()
        assert all(row.rhs_cell("TX").value == "0.00" for row in cfd.tableau)

    def test_phone_address_fd_is_a_standard_fd(self):
        assert phone_address_fd_cfd().is_standard_fd()


class TestKnobs:
    def test_tabsz_controls_pattern_count(self):
        assert len(zip_state_cfd(tabsz=10, seed=0).tableau) == 10
        assert len(zip_state_cfd(tabsz=100, seed=0).tableau) == 100

    def test_tabsz_larger_than_universe_is_capped(self):
        universe = len(catalog().zip_state_pairs())
        assert len(zip_state_cfd(tabsz=universe * 10).tableau) == universe

    def test_num_consts_controls_constant_ratio(self):
        all_constants = zip_city_state_cfd(tabsz=200, num_consts=1.0, seed=1)
        half_constants = zip_city_state_cfd(tabsz=200, num_consts=0.5, seed=1)
        assert all_constants.tableau.constant_ratio() > half_constants.tableau.constant_ratio()

    def test_num_consts_zero_allowed(self):
        cfd = zip_city_state_cfd(tabsz=50, num_consts=0.0, seed=1)
        wildcard_rows = sum(
            1 for row in cfd.tableau if not row.is_constant_only()
        )
        assert wildcard_rows == 50

    def test_invalid_num_consts_rejected(self):
        with pytest.raises(CFDError):
            zip_city_state_cfd(tabsz=10, num_consts=1.5)

    def test_sampling_is_deterministic_per_seed(self):
        assert zip_state_cfd(tabsz=20, seed=3) == zip_state_cfd(tabsz=20, seed=3)
        assert zip_state_cfd(tabsz=20, seed=3) != zip_state_cfd(tabsz=20, seed=4)


class TestExperimentFactory:
    @pytest.mark.parametrize("num_attrs,expected_lhs", [
        (2, ("ZIP",)),
        (3, ("ZIP", "CT")),
        (4, ("CC", "AC")),
    ])
    def test_num_attrs_selects_the_constraint(self, num_attrs, expected_lhs):
        cfd = experiment_cfd(num_attrs=num_attrs, tabsz=20, seed=1)
        assert cfd.lhs == expected_lhs
        assert len(cfd.lhs) + len(cfd.rhs) == num_attrs

    def test_unsupported_num_attrs_rejected(self):
        with pytest.raises(CFDError):
            experiment_cfd(num_attrs=7)

    def test_experiment_cfds_hold_on_clean_data(self, clean_tax_relation):
        for num_attrs in (2, 3, 4):
            cfd = experiment_cfd(num_attrs=num_attrs, tabsz=None, num_consts=0.7, seed=2)
            assert satisfies_all(clean_tax_relation, [cfd]), f"NUMATTRs={num_attrs}"

    def test_experiment_cfd_set_size_and_names(self):
        cfds = experiment_cfd_set(num_cfds=6, tabsz=20, seed=1)
        assert len(cfds) == 6
        assert len({cfd.name for cfd in cfds}) == 6

    def test_experiment_cfd_set_requires_positive_count(self):
        with pytest.raises(CFDError):
            experiment_cfd_set(num_cfds=0)

    def test_experiment_cfd_set_holds_on_clean_data(self, clean_tax_relation):
        cfds = experiment_cfd_set(num_cfds=5, tabsz=100, num_consts=1.0, seed=3)
        assert satisfies_all(clean_tax_relation, cfds)
