"""Tests for the cust running example (Figure 1 / Figure 2)."""


from repro.datagen.cust import (
    CUST_ATTRIBUTES,
    cust_cfds,
    cust_relation,
    cust_relation_printed,
    cust_schema,
    fd_f1,
    fd_f2,
    phi1,
    phi2,
    phi3,
    phi5,
)


class TestSchemaAndInstance:
    def test_schema_matches_example_11(self):
        assert cust_schema().names == ("CC", "AC", "PN", "NM", "STR", "CT", "ZIP")
        assert CUST_ATTRIBUTES == cust_schema().names

    def test_instance_has_six_tuples(self):
        assert len(cust_relation()) == 6
        assert len(cust_relation_printed()) == 6

    def test_t1_values(self):
        t1 = cust_relation().row_dict(0)
        assert t1["NM"] == "Mike"
        assert t1["CT"] == "NYC"
        assert t1["AC"] == "908"

    def test_t6_is_the_uk_tuple(self):
        t6 = cust_relation().row_dict(5)
        assert t6["CC"] == "44"
        assert t6["CT"] == "EDI"

    def test_behavioural_and_printed_variants_differ_only_in_t4_zip(self):
        behavioural = cust_relation()
        printed = cust_relation_printed()
        for index in range(6):
            left, right = behavioural.row_dict(index), printed.row_dict(index)
            differing = {attr for attr in left if left[attr] != right[attr]}
            if index == 3:
                assert differing == {"ZIP"}
            else:
                assert differing == set()


class TestCFDs:
    def test_phi1_shape(self):
        cfd = phi1()
        assert cfd.lhs == ("CC", "ZIP")
        assert cfd.rhs == ("STR",)
        assert cfd.tableau[0].lhs_cell("CC").value == "44"

    def test_phi2_has_three_patterns_per_example_21(self):
        cfd = phi2()
        assert len(cfd.tableau) == 3
        cities = {row.rhs_cell("CT").render() for row in cfd.tableau}
        assert cities == {"MH", "NYC", "_"}

    def test_phi3_has_three_patterns(self):
        cfd = phi3()
        assert len(cfd.tableau) == 3
        assert cfd.tableau[1].rhs_cell("CT").value == "GLA"

    def test_phi5_is_a_plain_fd(self):
        assert phi5().is_standard_fd()

    def test_cust_cfds_returns_phi1_to_phi3(self):
        names = [cfd.name for cfd in cust_cfds()]
        assert names == ["phi1", "phi2", "phi3"]

    def test_fds_of_example_11(self):
        assert fd_f1().lhs == ("CC", "AC", "PN")
        assert fd_f2().rhs == ("CT",)

    def test_cfds_validate_against_schema(self):
        for cfd in cust_cfds():
            assert cfd.schema is not None
            assert set(cfd.attributes) <= set(cfd.schema.names)
