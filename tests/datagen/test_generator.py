"""Tests for the tax-records generator (the Section 5 experiment substrate)."""

import pytest

from repro.core.satisfaction import find_all_violations, satisfies_all
from repro.datagen.cfd_catalog import (
    exemption_cfd,
    no_tax_state_cfd,
    zip_city_state_cfd,
    zip_state_cfd,
)
from repro.datagen.generator import (
    NOISE_ATTRIBUTES,
    TAX_ATTRIBUTES,
    TaxRecordGenerator,
    tax_schema,
)


class TestSchema:
    def test_fifteen_attributes_as_in_section_5(self):
        """The cust attributes plus the 8 extra ones described in the paper."""
        assert len(TAX_ATTRIBUTES) == 15
        assert tax_schema().names == TAX_ATTRIBUTES

    def test_contains_the_cust_prefix(self):
        assert TAX_ATTRIBUTES[:7] == ("CC", "AC", "PN", "NM", "STR", "CT", "ZIP")

    def test_contains_the_tax_attributes(self):
        for attribute in ("ST", "MR", "CH", "SA", "TX", "STX", "MTX", "CTX"):
            assert attribute in TAX_ATTRIBUTES


class TestGeneration:
    def test_requested_size(self):
        result = TaxRecordGenerator(size=250, noise=0.0, seed=1).generate()
        assert len(result.relation) == 250

    def test_zero_size(self):
        result = TaxRecordGenerator(size=0, noise=0.0, seed=1).generate()
        assert len(result.relation) == 0
        assert result.noise_rate == 0.0

    def test_determinism(self):
        first = TaxRecordGenerator(size=100, noise=0.1, seed=9).generate()
        second = TaxRecordGenerator(size=100, noise=0.1, seed=9).generate()
        assert first.relation == second.relation
        assert first.dirty_indices == second.dirty_indices

    def test_different_seeds_differ(self):
        first = TaxRecordGenerator(size=100, noise=0.0, seed=1).generate_relation()
        second = TaxRecordGenerator(size=100, noise=0.0, seed=2).generate_relation()
        assert first != second

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TaxRecordGenerator(size=-1)
        with pytest.raises(ValueError):
            TaxRecordGenerator(size=10, noise=1.5)

    def test_country_code_is_us(self):
        relation = TaxRecordGenerator(size=50, noise=0.0, seed=1).generate_relation()
        assert {row[0] for row in relation} == {"01"}


class TestCleanDataSatisfiesCatalogCFDs:
    """With NOISE = 0 every catalog CFD must hold — the generator's core contract."""

    @pytest.mark.parametrize("cfd_factory", [
        zip_state_cfd,
        zip_city_state_cfd,
        exemption_cfd,
        no_tax_state_cfd,
    ])
    def test_clean_data_is_clean(self, clean_tax_relation, cfd_factory):
        assert satisfies_all(clean_tax_relation, [cfd_factory()])


class TestNoiseInjection:
    def test_noise_rate_roughly_matches(self):
        result = TaxRecordGenerator(size=2000, noise=0.1, seed=3).generate()
        assert 0.06 <= result.noise_rate <= 0.14

    def test_zero_noise_means_no_dirty_tuples(self):
        result = TaxRecordGenerator(size=300, noise=0.0, seed=3).generate()
        assert result.dirty_indices == set()

    def test_corrupted_attributes_recorded(self):
        result = TaxRecordGenerator(size=500, noise=0.2, seed=3).generate()
        assert set(result.corrupted_attributes) == result.dirty_indices
        assert set(result.corrupted_attributes.values()) <= set(NOISE_ATTRIBUTES)

    def test_noise_produces_detectable_violations(self):
        result = TaxRecordGenerator(size=1500, noise=0.1, seed=7).generate()
        report = find_all_violations(result.relation, [zip_state_cfd()])
        assert not report.is_clean()

    def test_constant_violations_only_on_dirty_tuples(self):
        result = TaxRecordGenerator(size=800, noise=0.1, seed=5).generate()
        report = find_all_violations(result.relation, [zip_state_cfd(), exemption_cfd()])
        constant_violators = {v.tuple_index for v in report.constant_violations()}
        assert constant_violators <= result.dirty_indices

    def test_higher_noise_means_more_violations(self):
        low = TaxRecordGenerator(size=1500, noise=0.02, seed=9).generate()
        high = TaxRecordGenerator(size=1500, noise=0.09, seed=9).generate()
        cfd = zip_state_cfd()
        low_count = len(find_all_violations(low.relation, [cfd]))
        high_count = len(find_all_violations(high.relation, [cfd]))
        assert high_count > low_count
