"""Tests for the geography catalog substrate."""

import pytest

from repro.datagen.geo import GeoCatalog, Location, catalog


@pytest.fixture(scope="module")
def geo():
    return catalog()


class TestCatalogShape:
    def test_all_fifty_states_present(self, geo):
        assert len(geo.states()) == 50

    def test_every_state_has_cities(self, geo):
        for state in geo.states():
            assert geo.cities_of(state)

    def test_locations_are_consistent_records(self, geo):
        for location in geo.locations[:200]:
            assert isinstance(location, Location)
            assert geo.state_of_zip(location.zip_code) == location.state

    def test_catalog_is_deterministic(self):
        first = catalog()
        second = GeoCatalog()
        assert [loc for loc in first.locations[:50]] == [loc for loc in second.locations[:50]]


class TestFunctionalRelationships:
    """These are the relationships the experiment CFDs are built from."""

    def test_zip_determines_state(self, geo):
        mapping = {}
        for location in geo.locations:
            previous = mapping.setdefault(location.zip_code, location.state)
            assert previous == location.state

    def test_zip_city_determines_state(self, geo):
        mapping = {}
        for zip_code, city, state in geo.zip_city_state_triples():
            previous = mapping.setdefault((zip_code, city), state)
            assert previous == state

    def test_area_code_determines_state_for_listed_pairs(self, geo):
        pairs = dict(geo.area_state_pairs())
        for location in geo.locations:
            if location.area_code in pairs:
                assert pairs[location.area_code] == location.state

    def test_single_city_area_codes_determine_city(self, geo):
        triples = {area: (city, state) for area, city, state in geo.area_city_state_triples()}
        cities_by_area = {}
        for location in geo.locations:
            cities_by_area.setdefault(location.area_code, set()).add(location.city)
        for area, (city, _) in triples.items():
            assert cities_by_area[area] == {city}

    def test_city_alone_does_not_determine_state(self, geo):
        """The paper's constraint (b) exists precisely because of such homonyms."""
        states_by_city = {}
        for location in geo.locations:
            states_by_city.setdefault(location.city, set()).add(location.state)
        assert any(len(states) > 1 for states in states_by_city.values())


class TestSizing:
    def test_zip_state_pairs_count_matches_zip_per_city(self, geo):
        assert len(geo.zip_state_pairs()) == len({loc.zip_code for loc in geo.locations})

    def test_larger_catalog_on_demand(self):
        small = catalog(zips_per_city=5)
        large = catalog(zips_per_city=30)
        assert len(large.zip_state_pairs()) > len(small.zip_state_pairs())

    def test_default_catalog_is_a_singleton(self):
        assert catalog() is catalog()
