"""Tests for generic noise injection."""

import pytest

from repro.datagen.noise import inject_noise
from repro.relation.relation import Relation
from repro.relation.schema import Schema


@pytest.fixture
def relation():
    schema = Schema("r", ["A", "B"])
    return Relation(schema, [(f"a{i}", f"b{i % 3}") for i in range(100)])


class TestInjectNoise:
    def test_rate_zero_changes_nothing(self, relation):
        before = relation.rows
        report = inject_noise(relation, ["B"], rate=0.0, seed=1)
        assert relation.rows == before
        assert report.dirty_indices == set()

    def test_rate_one_changes_every_row(self, relation):
        report = inject_noise(relation, ["B"], rate=1.0, seed=1)
        assert len(report.dirty_indices) == len(relation)

    def test_changes_are_recorded_accurately(self, relation):
        report = inject_noise(relation, ["A", "B"], rate=0.3, seed=2)
        for index, attribute, old, new in report.changes:
            assert relation.value(index, attribute) == new
            assert old != new

    def test_value_pool_is_used(self, relation):
        report = inject_noise(relation, ["B"], rate=1.0, seed=3, value_pool={"B": ["ZZZ"]})
        changed_values = {relation.value(index, "B") for index in report.dirty_indices}
        assert changed_values == {"ZZZ"}

    def test_single_value_active_domain_falls_back_to_synthetic(self):
        schema = Schema("r", ["A"])
        relation = Relation(schema, [("only",), ("only",)])
        inject_noise(relation, ["A"], rate=1.0, seed=1)
        assert any(value.endswith("_dirty") for (value,) in relation.rows)

    def test_determinism(self):
        schema = Schema("r", ["A", "B"])
        left = Relation(schema, [(i, i % 5) for i in range(50)])
        right = Relation(schema, [(i, i % 5) for i in range(50)])
        inject_noise(left, ["B"], rate=0.4, seed=7)
        inject_noise(right, ["B"], rate=0.4, seed=7)
        assert left == right

    def test_invalid_rate_rejected(self, relation):
        with pytest.raises(ValueError):
            inject_noise(relation, ["B"], rate=2.0)

    def test_requires_attributes(self, relation):
        with pytest.raises(ValueError):
            inject_noise(relation, [], rate=0.5)
