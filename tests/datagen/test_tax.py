"""Tests for the tax-policy catalog substrate."""

import pytest

from repro.datagen.geo import catalog
from repro.datagen.tax import BRACKET_BOUNDS, NO_INCOME_TAX_STATES, TaxCatalog


@pytest.fixture(scope="module")
def tax():
    return TaxCatalog(catalog().states())


class TestPolicies:
    def test_every_state_has_a_policy(self, tax):
        assert set(tax.states()) == set(catalog().states())

    def test_no_income_tax_states_have_zero_rates(self, tax):
        for state in NO_INCOME_TAX_STATES:
            assert tax.rate(state, 50_000) == 0.0
            assert tax.exemption(state, married=False, children=True) == (0, 0, 0)

    def test_rates_are_monotone_in_salary(self, tax):
        for state in tax.states():
            rates = [tax.rate(state, bound + 1) for bound in BRACKET_BOUNDS]
            assert rates == sorted(rates)

    def test_rate_is_deterministic(self):
        states = catalog().states()
        assert TaxCatalog(states).rate("CA", 75_000) == TaxCatalog(states).rate("CA", 75_000)

    def test_bracket_for_boundaries(self, tax):
        policy = tax.policy("CA")
        assert policy.bracket_for(0) == 0
        assert policy.bracket_for(BRACKET_BOUNDS[1]) == 1
        assert policy.bracket_for(10 ** 9) == len(BRACKET_BOUNDS) - 1


class TestExemptions:
    def test_married_exemption_replaces_single(self, tax):
        single, married, _ = tax.exemption("CA", married=True, children=False)
        assert single == 0 and married > 0
        single, married, _ = tax.exemption("CA", married=False, children=False)
        assert single > 0 and married == 0

    def test_child_exemption_requires_children(self, tax):
        assert tax.exemption("NY", married=False, children=False)[2] == 0
        assert tax.exemption("NY", married=False, children=True)[2] > 0

    def test_exemption_is_a_function_of_state_and_status(self, tax):
        """The functional relationship behind the exemption CFD."""
        seen = {}
        for state in tax.states():
            for married in (False, True):
                for children in (False, True):
                    key = (state, married, children)
                    value = tax.exemption(state, married, children)
                    assert seen.setdefault(key, value) == value


class TestTriples:
    def test_state_bracket_rate_triples_cover_all_brackets(self, tax):
        triples = tax.state_bracket_rate_triples()
        assert len(triples) == len(tax.states()) * len(BRACKET_BOUNDS)

    def test_triples_agree_with_rate_lookup(self, tax):
        for state, bracket, rate in tax.state_bracket_rate_triples()[:100]:
            salary = BRACKET_BOUNDS[bracket]
            assert tax.rate(state, salary) == rate
