"""Tests for the detection façade."""

import pytest

from repro.core.cfd import CFD
from repro.detection.engine import CrossCheckResult, cross_check, detect_violations
from repro.errors import DetectionError


class TestDetectViolations:
    def test_default_method_is_inmemory(self, cust, cust_constraints):
        report = detect_violations(cust, cust_constraints)
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_sql_method(self, cust, cust_constraints):
        report = detect_violations(cust, cust_constraints, method="sql")
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_sql_merged_strategy(self, cust, cust_constraints):
        report = detect_violations(cust, cust_constraints, method="sql", strategy="merged")
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_accepts_a_single_cfd(self, cust, cfd_phi2):
        report = detect_violations(cust, cfd_phi2)
        assert not report.is_clean()

    def test_indexed_method(self, cust, cust_constraints):
        report = detect_violations(cust, cust_constraints, method="indexed")
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_indexed_single_cfd(self, cust, cfd_phi2):
        assert not detect_violations(cust, cfd_phi2, method="indexed").is_clean()

    def test_unknown_method_rejected(self, cust, cust_constraints):
        with pytest.raises(DetectionError) as excinfo:
            detect_violations(cust, cust_constraints, method="psychic")
        # The error should name every valid backend.
        for method in ("inmemory", "sql", "indexed"):
            assert method in str(excinfo.value)

    def test_unknown_sql_strategy_rejected(self, cust, cust_constraints):
        with pytest.raises(DetectionError):
            detect_violations(cust, cust_constraints, method="sql", strategy="telepathy")

    def test_clean_input_gives_clean_report(self, cust, cfd_phi1, cfd_phi3):
        assert detect_violations(cust, [cfd_phi1, cfd_phi3]).is_clean()

    def test_empty_cfd_collection(self, cust):
        assert detect_violations(cust, []).is_clean()


class TestCrossCheck:
    def test_agreement_on_cust(self, cust, cust_constraints):
        result = cross_check(cust, cust_constraints)
        assert result.agree
        assert result.only_inmemory == frozenset()
        assert result.only_sql == frozenset()

    def test_three_way_check_includes_indexed(self, cust, cust_constraints):
        result = cross_check(cust, cust_constraints)
        assert result.indexed_indices == result.inmemory_indices
        assert result.only_indexed == frozenset()
        assert result.disagreements() == {}

    def test_two_way_check_still_available(self, cust, cust_constraints):
        result = cross_check(cust, cust_constraints, include_indexed=False)
        assert result.indexed_indices is None
        assert result.agree
        assert result.only_indexed == frozenset()

    def test_agreement_on_generated_data(self, small_tax_workload):
        from repro.datagen.cfd_catalog import zip_city_state_cfd

        result = cross_check(small_tax_workload.relation, [zip_city_state_cfd()])
        assert result.agree

    def test_merged_strategy_cross_check(self, cust, cust_constraints):
        result = cross_check(cust, cust_constraints, strategy="merged")
        assert result.agree

    def test_single_cfd_argument(self, cust, cfd_phi2):
        assert cross_check(cust, cfd_phi2).agree

    def test_disagreement_reporting_fields(self):
        result = CrossCheckResult(
            inmemory_indices=frozenset({1, 2}), sql_indices=frozenset({2, 3})
        )
        assert not result.agree
        assert result.only_inmemory == frozenset({1})
        assert result.only_sql == frozenset({3})

    def test_three_way_disagreement_is_pairwise(self):
        result = CrossCheckResult(
            inmemory_indices=frozenset({1, 2}),
            sql_indices=frozenset({1, 2}),
            indexed_indices=frozenset({2, 3}),
        )
        assert not result.agree
        assert result.only_indexed == frozenset({3})
        assert result.disagreements() == {
            ("inmemory", "indexed"): frozenset({1, 3}),
            ("sql", "indexed"): frozenset({1, 3}),
        }
