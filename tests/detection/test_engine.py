"""Tests for the detection façade."""

import pytest

from repro.config import DetectionConfig
from repro.detection.engine import CrossCheckResult, cross_check, detect_violations
from repro.errors import DetectionError


class TestDetectViolations:
    def test_default_method_is_inmemory(self, cust, cust_constraints):
        report = detect_violations(cust, cust_constraints)
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_sql_method(self, cust, cust_constraints):
        report = detect_violations(cust, cust_constraints, method="sql")
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_sql_merged_strategy(self, cust, cust_constraints):
        report = detect_violations(cust, cust_constraints, method="sql", strategy="merged")
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_accepts_a_single_cfd(self, cust, cfd_phi2):
        report = detect_violations(cust, cfd_phi2)
        assert not report.is_clean()

    def test_indexed_method(self, cust, cust_constraints):
        report = detect_violations(cust, cust_constraints, method="indexed")
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_indexed_single_cfd(self, cust, cfd_phi2):
        assert not detect_violations(cust, cfd_phi2, method="indexed").is_clean()

    def test_unknown_method_rejected(self, cust, cust_constraints):
        with pytest.raises(DetectionError) as excinfo:
            detect_violations(cust, cust_constraints, method="psychic")
        # The error should name every valid backend.
        for method in ("inmemory", "sql", "indexed"):
            assert method in str(excinfo.value)

    def test_unknown_sql_strategy_rejected(self, cust, cust_constraints):
        with pytest.raises(DetectionError):
            detect_violations(cust, cust_constraints, method="sql", strategy="telepathy")

    def test_clean_input_gives_clean_report(self, cust, cfd_phi1, cfd_phi3):
        assert detect_violations(cust, [cfd_phi1, cfd_phi3]).is_clean()

    def test_empty_cfd_collection(self, cust):
        assert detect_violations(cust, []).is_clean()

    def test_auto_method(self, cust, cust_constraints):
        report = detect_violations(cust, cust_constraints, method="auto")
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_config_object(self, cust, cust_constraints):
        config = DetectionConfig(method="sql", strategy="merged")
        report = detect_violations(cust, cust_constraints, config=config)
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_config_and_keywords_are_mutually_exclusive(self, cust, cust_constraints):
        with pytest.raises(DetectionError):
            detect_violations(
                cust, cust_constraints, method="sql", config=DetectionConfig()
            )

    def test_strategy_with_non_sql_method_warns(self, cust, cust_constraints):
        # The old API silently ignored SQL-only knobs off the SQL path.
        with pytest.warns(DeprecationWarning):
            report = detect_violations(
                cust, cust_constraints, method="indexed", strategy="merged"
            )
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_form_with_non_sql_method_warns(self, cust, cust_constraints):
        with pytest.warns(DeprecationWarning):
            detect_violations(cust, cust_constraints, method="inmemory", form="cnf")


class TestCrossCheck:
    def test_agreement_on_cust(self, cust, cust_constraints):
        result = cross_check(cust, cust_constraints)
        assert result.agree
        assert result.only_inmemory == frozenset()
        assert result.only_sql == frozenset()

    def test_three_way_check_includes_indexed(self, cust, cust_constraints):
        result = cross_check(cust, cust_constraints)
        assert result.indexed_indices == result.inmemory_indices
        assert result.only_indexed == frozenset()
        assert result.disagreements() == {}

    def test_indexed_backend_is_always_run(self, cust, cust_constraints):
        # The two-way include_indexed=False shape of PR 1 is gone: the result
        # always carries all three index sets.
        result = cross_check(cust, cust_constraints)
        assert isinstance(result.indexed_indices, frozenset)
        with pytest.raises(TypeError):
            cross_check(cust, cust_constraints, include_indexed=False)

    def test_agreement_on_generated_data(self, small_tax_workload):
        from repro.datagen.cfd_catalog import zip_city_state_cfd

        result = cross_check(small_tax_workload.relation, [zip_city_state_cfd()])
        assert result.agree

    def test_merged_strategy_cross_check(self, cust, cust_constraints):
        result = cross_check(cust, cust_constraints, strategy="merged")
        assert result.agree

    def test_single_cfd_argument(self, cust, cfd_phi2):
        assert cross_check(cust, cfd_phi2).agree

    def test_disagreement_reporting_fields(self):
        result = CrossCheckResult(
            inmemory_indices=frozenset({1, 2}),
            sql_indices=frozenset({2, 3}),
            indexed_indices=frozenset({1, 2}),
        )
        assert not result.agree
        assert result.only_inmemory == frozenset({1})
        assert result.only_sql == frozenset({3})

    def test_three_way_disagreement_is_pairwise(self):
        result = CrossCheckResult(
            inmemory_indices=frozenset({1, 2}),
            sql_indices=frozenset({1, 2}),
            indexed_indices=frozenset({2, 3}),
        )
        assert not result.agree
        assert result.only_indexed == frozenset({3})
        assert result.disagreements() == {
            ("inmemory", "indexed"): frozenset({1, 3}),
            ("sql", "indexed"): frozenset({1, 3}),
        }
