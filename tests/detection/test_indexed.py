"""Tests for the partition-indexed detection backend.

The indexed backend must be *violation-for-violation* identical to the
in-memory oracle of Section 2 semantics — not merely agree on index sets —
so most tests compare full violation sets.
"""

import pytest

from repro.core.cfd import CFD
from repro.core.satisfaction import find_all_violations, find_violations
from repro.datagen.cfd_catalog import zip_city_state_cfd
from repro.detection.indexed import (
    IndexedDetector,
    detect_stream,
    find_cfd_violations_indexed,
    find_violations_indexed,
)
from repro.detection.partition_index import PartitionIndexCache
from repro.errors import DetectionError
from repro.sql.merge import merge_cfds


class TestFindViolationsIndexed:
    def test_cust_violations_identical_to_oracle(self, cust, cust_constraints):
        oracle = find_all_violations(cust, cust_constraints)
        indexed = find_violations_indexed(cust, cust_constraints)
        assert set(indexed.violations) == set(oracle.violations)
        assert indexed.violating_indices() == frozenset({0, 1, 2, 3})

    def test_constant_violation_fields(self, cust, cfd_phi2):
        indexed = find_violations_indexed(cust, cfd_phi2)
        oracle = find_violations(cust, cfd_phi2)
        assert set(indexed.constant_violations()) == set(oracle.constant_violations())
        assert set(indexed.variable_violations()) == set(oracle.variable_violations())

    def test_accepts_single_cfd(self, cust, cfd_phi2):
        assert not find_violations_indexed(cust, cfd_phi2).is_clean()

    def test_clean_input_gives_clean_report(self, cust, cfd_phi1, cfd_phi3):
        assert find_violations_indexed(cust, [cfd_phi1, cfd_phi3]).is_clean()

    def test_empty_cfd_collection(self, cust):
        assert find_violations_indexed(cust, []).is_clean()

    def test_single_cfd_helper(self, cust, cfd_phi2):
        assert set(find_cfd_violations_indexed(cust, cfd_phi2).violations) == set(
            find_violations(cust, cfd_phi2).violations
        )

    def test_generated_tax_data_matches_oracle(self, small_tax_workload):
        cfd = zip_city_state_cfd()
        oracle = find_all_violations(small_tax_workload.relation, [cfd])
        indexed = find_violations_indexed(small_tax_workload.relation, [cfd])
        assert set(indexed.violations) == set(oracle.violations)

    def test_merged_dontcare_tableau_matches_oracle(self, cust, cust_constraints):
        merged = merge_cfds(cust_constraints).to_cfd()
        oracle = find_all_violations(cust, [merged])
        indexed = find_violations_indexed(cust, [merged])
        assert set(indexed.violations) == set(oracle.violations)

    def test_empty_lhs_cfd(self, relation_factory):
        relation = relation_factory(["A", "B"], [("x", "1"), ("y", "1"), ("z", "2")])
        cfd = CFD.build([], ["B"], [{"B": "1"}])
        oracle = find_all_violations(relation, [cfd])
        indexed = find_violations_indexed(relation, [cfd])
        assert set(indexed.violations) == set(oracle.violations)
        # Row 2 clashes with the constant; the single empty-LHS group also
        # takes two distinct B values, flagging every row.
        assert indexed.violating_indices() == frozenset({0, 1, 2})

    def test_rejects_cache_built_for_another_relation(self, cust, cust_constraints):
        other_cache = PartitionIndexCache(cust.copy())
        with pytest.raises(DetectionError):
            find_violations_indexed(cust, cust_constraints, cache=other_cache)

    def test_shared_cache_is_reused_across_calls(self, cust, cust_constraints):
        cache = PartitionIndexCache(cust)
        find_violations_indexed(cust, cust_constraints, cache=cache)
        misses_after_first = cache.stats()["misses"]
        find_violations_indexed(cust, cust_constraints, cache=cache)
        assert cache.stats()["misses"] == misses_after_first
        assert cache.stats()["hits"] > 0


class TestIndexedDetector:
    def test_detect_matches_oracle(self, cust, cust_constraints):
        detector = IndexedDetector(cust)
        report = detector.detect(cust_constraints)
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_cache_persists_across_detect_calls(self, cust, cust_constraints):
        detector = IndexedDetector(cust)
        detector.detect(cust_constraints)
        misses = detector.cache_stats()["misses"]
        detector.detect(cust_constraints)
        assert detector.cache_stats()["misses"] == misses

    def test_patterns_sharing_an_lhs_share_one_index(self, cust, cfd_phi2):
        # phi2 has multiple pattern tuples over the same LHS: one build, then hits.
        assert len(cfd_phi2.tableau) > 1
        detector = IndexedDetector(cust)
        detector.detect([cfd_phi2])
        stats = detector.cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == len(cfd_phi2.tableau) - 1

    def test_invalidate_rebuilds_after_mutation(self, cust, cfd_phi2):
        detector = IndexedDetector(cust)
        before = detector.detect([cfd_phi2]).violating_indices()
        # Repair t1's city: the (01, 908 || MH) pattern is no longer violated.
        cust.update(0, "CT", "MH")
        cust.update(1, "CT", "MH")
        detector.invalidate()
        after = detector.detect([cfd_phi2]).violating_indices()
        assert after == find_violations(cust, cfd_phi2).violating_indices()
        assert after != before


class TestDetectStream:
    def test_stream_matches_oracle_with_small_chunks(self, cust, cust_constraints):
        oracle = find_all_violations(cust, cust_constraints).violating_indices()
        for chunk_size in (1, 2, 4, 100):
            report = detect_stream(cust.schema, iter(cust.rows), cust_constraints, chunk_size=chunk_size)
            assert report.violating_indices() == oracle

    def test_stream_accepts_mapping_rows(self, cust, cust_constraints):
        report = detect_stream(cust.schema, cust.iter_dicts(), cust_constraints, chunk_size=3)
        assert report.violating_indices() == find_all_violations(cust, cust_constraints).violating_indices()

    def test_stream_indices_refer_to_stream_positions(self, cust, cfd_phi2):
        report = detect_stream(cust.schema, iter(cust.rows), cfd_phi2)
        assert report.violating_indices() == find_violations(cust, cfd_phi2).violating_indices()

    def test_stream_empty_cfds(self, cust):
        assert detect_stream(cust.schema, iter(cust.rows), []).is_clean()

    def test_stream_rejects_nonpositive_chunk_size(self, cust, cfd_phi2):
        with pytest.raises(DetectionError):
            detect_stream(cust.schema, iter(cust.rows), cfd_phi2, chunk_size=0)

    def test_stream_only_consumes_source_once(self, cust, cust_constraints):
        consumed = []

        def source():
            for row in cust.rows:
                consumed.append(row)
                yield row

        detect_stream(cust.schema, source(), cust_constraints, chunk_size=2)
        assert len(consumed) == len(cust)

    def test_stream_projects_away_unconstrained_attributes(self, relation_factory):
        # B is untouched by the CFD; rows missing it positionally would fail a
        # full materialisation but the stream only keeps A and C.
        relation = relation_factory(
            ["A", "B", "C"],
            [("a1", "pad0", "c1"), ("a1", "pad1", "c2"), ("a2", "pad2", "c1")],
        )
        cfd = CFD.build(["A"], ["C"], [["_", "_"]])
        report = detect_stream(relation.schema, iter(relation.rows), cfd)
        assert report.violating_indices() == find_violations(relation, cfd).violating_indices()
        assert report.violating_indices() == frozenset({0, 1})
