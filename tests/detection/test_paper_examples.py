"""End-to-end reproduction of the paper's worked examples (experiment E1).

* Example 1.1 — the standard FDs f1/f2 and the conditional constraints.
* Example 2.2 — ϕ1 and ϕ3 hold on Figure 1, ϕ2 does not; a single tuple can
  violate a CFD.
* Example 4.1 — Q^C returns t1, t2 and Q^V returns t3, t4 for ϕ2.
"""

import pytest

from repro.core.cfd import CFD
from repro.core.satisfaction import find_violations, satisfies
from repro.datagen.cust import (
    cust_cfds,
    cust_relation,
    cust_relation_printed,
    fd_f1,
    fd_f2,
    phi1,
    phi2,
    phi3,
)
from repro.detection.engine import detect_violations


class TestExample11:
    def test_f2_holds_on_figure_1(self, cust):
        assert satisfies(cust, fd_f2().to_cfd())

    def test_f1_holds_on_the_printed_table(self):
        assert satisfies(cust_relation_printed(), fd_f1().to_cfd())

    def test_phi1_equivalent_constraint_phi0(self, cust):
        """φ0: [CC=44, ZIP] → [STR] holds on the instance."""
        assert satisfies(cust, phi1())

    def test_t1_t2_violate_the_908_pattern_but_not_f1(self, cust):
        assert satisfies(cust, fd_f2().to_cfd())
        refined = CFD.build(
            ["CC", "AC", "PN"], ["STR", "CT", "ZIP"], [["01", "908", "_", "_", "MH", "_"]]
        )
        report = find_violations(cust, refined)
        assert {v.tuple_index for v in report.constant_violations()} == {0, 1}


class TestExample22:
    def test_phi1_and_phi3_hold(self, cust):
        assert satisfies(cust, phi1())
        assert satisfies(cust, phi3())

    def test_phi2_violated_by_single_tuples(self, cust):
        report = find_violations(cust, phi2())
        assert report.constant_violations(), "a single tuple can violate a CFD"

    def test_violating_cells_are_the_city_of_t1_t2(self, cust):
        report = find_violations(cust, phi2())
        for violation in report.constant_violations():
            assert violation.attribute == "CT"
            assert violation.expected == "MH"


class TestExample41:
    @pytest.mark.parametrize("method,strategy", [
        ("inmemory", None),
        ("sql", "per_cfd"),
        ("sql", "merged"),
    ])
    def test_detection_finds_exactly_t1_to_t4(self, method, strategy):
        report = detect_violations(cust_relation(), cust_cfds(), method=method, strategy=strategy)
        assert report.violating_indices() == frozenset({0, 1, 2, 3})

    def test_qc_finds_t1_t2_and_qv_finds_t3_t4(self, cust):
        report = find_violations(cust, phi2())
        qc = {violation.tuple_index for violation in report.constant_violations()}
        qv = set()
        for violation in report.variable_violations():
            qv.update(violation.tuple_indices)
        assert qc == {0, 1}
        assert qv == {2, 3}

    def test_t5_t6_are_clean(self):
        report = detect_violations(cust_relation(), cust_cfds())
        assert {4, 5}.isdisjoint(report.violating_indices())
