"""Tests for the partition index and its LRU cache."""

import pytest

from repro.core.pattern import DONTCARE, WILDCARD, PatternValue
from repro.detection.partition_index import PartitionIndex, PartitionIndexCache
from repro.errors import DetectionError
from repro.relation.relation import Relation
from repro.relation.schema import Schema


@pytest.fixture
def rel():
    return Relation(
        Schema("r", ["A", "B", "C"]),
        [
            ("a1", "b1", "c1"),
            ("a1", "b2", "c2"),
            ("a2", "b1", "c1"),
            ("a1", "b1", "c3"),
        ],
    )


class TestPartitionIndex:
    def test_groups_match_relation_group_by(self, rel):
        index = PartitionIndex.from_relation(rel, ("A", "B"))
        assert dict(index.partitions()) == rel.group_by(["A", "B"])

    def test_get_and_contains(self, rel):
        index = PartitionIndex.from_relation(rel, ("A",))
        assert index.get(("a1",)) == (0, 1, 3)
        assert index.get(("zzz",)) == ()
        assert ("a2",) in index
        assert ("zzz",) not in index

    def test_len_and_tuple_count(self, rel):
        index = PartitionIndex.from_relation(rel, ("B",))
        assert len(index) == 2
        assert index.tuple_count == len(rel)

    def test_batched_add_tuples_equals_one_shot(self, rel):
        one_shot = PartitionIndex.from_relation(rel, ("A", "B"))
        for batch_size in (1, 2, 3, 100):
            batched = PartitionIndex(rel.schema, ("A", "B"))
            for start in range(0, len(rel), batch_size):
                batched.add_tuples(rel.rows[start:start + batch_size])
            assert dict(batched.partitions()) == dict(one_shot.partitions())
            assert batched.tuple_count == one_shot.tuple_count

    def test_add_tuples_continues_indices_across_batches(self, rel):
        index = PartitionIndex(rel.schema, ("A",))
        next_index = index.add_tuples(rel.rows[:2])
        assert next_index == 2
        assert index.add_tuples(rel.rows[2:]) == 4
        assert index.get(("a1",)) == (0, 1, 3)

    def test_add_tuples_start_index_override(self, rel):
        index = PartitionIndex(rel.schema, ("A",))
        index.add_tuples(rel.rows[2:], start_index=2)
        assert index.get(("a1",)) == (3,)
        assert index.get(("a2",)) == (2,)

    def test_add_tuples_rejects_overlapping_start_index(self, rel):
        index = PartitionIndex(rel.schema, ("A",))
        index.add_tuples(rel.rows[:2])
        with pytest.raises(DetectionError):
            index.add_tuples(rel.rows[:2], start_index=0)

    def test_empty_attribute_tuple_gives_single_partition(self, rel):
        index = PartitionIndex.from_relation(rel, ())
        assert index.get(()) == (0, 1, 2, 3)
        assert len(index) == 1

    def test_matching_all_constant_is_a_lookup(self, rel):
        index = PartitionIndex.from_relation(rel, ("A", "B"))
        cells = [PatternValue.constant("a1"), PatternValue.constant("b1")]
        assert [(key, group) for key, group in index.matching(cells)] == [
            (("a1", "b1"), [0, 3])
        ]
        missing = [PatternValue.constant("zz"), PatternValue.constant("b1")]
        assert list(index.matching(missing)) == []

    def test_matching_mixed_constants_and_wildcards(self, rel):
        index = PartitionIndex.from_relation(rel, ("A", "B"))
        cells = [PatternValue.constant("a1"), WILDCARD]
        assert {key for key, _ in index.matching(cells)} == {("a1", "b1"), ("a1", "b2")}

    def test_matching_all_free_yields_every_partition(self, rel):
        index = PartitionIndex.from_relation(rel, ("A",))
        assert {key for key, _ in index.matching([WILDCARD])} == {("a1",), ("a2",)}
        assert {key for key, _ in index.matching([DONTCARE])} == {("a1",), ("a2",)}

    def test_matching_rejects_misaligned_cells(self, rel):
        index = PartitionIndex.from_relation(rel, ("A", "B"))
        with pytest.raises(DetectionError):
            list(index.matching([WILDCARD]))

    def test_multi_tuple_partitions(self, rel):
        index = PartitionIndex.from_relation(rel, ("A", "B"))
        assert dict(index.multi_tuple_partitions()) == {("a1", "b1"): [0, 3]}


class TestPartitionIndexCache:
    def test_miss_then_hit(self, rel):
        cache = PartitionIndexCache(rel)
        first = cache.get(("A",))
        second = cache.get(("A",))
        assert first is second
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_distinct_attribute_tuples_get_distinct_indexes(self, rel):
        cache = PartitionIndexCache(rel)
        assert cache.get(("A",)) is not cache.get(("A", "B"))
        assert len(cache) == 2

    def test_lru_eviction(self, rel):
        cache = PartitionIndexCache(rel, maxsize=2)
        cache.get(("A",))
        cache.get(("B",))
        cache.get(("A",))        # refresh A: B is now least recently used
        cache.get(("C",))        # evicts B
        assert ("A",) in cache and ("C",) in cache
        assert ("B",) not in cache

    def test_seed_prebuilt_index(self, rel):
        cache = PartitionIndexCache(rel)
        prebuilt = PartitionIndex.from_relation(rel, ("C",))
        cache.seed(prebuilt)
        assert cache.get(("C",)) is prebuilt
        assert cache.stats()["misses"] == 0

    def test_seed_rejects_index_not_covering_the_relation(self, rel):
        cache = PartitionIndexCache(rel)
        partial = PartitionIndex(rel.schema, ("C",))
        partial.add_tuples(rel.rows[:2])
        with pytest.raises(DetectionError):
            cache.seed(partial)

    def test_clear(self, rel):
        cache = PartitionIndexCache(rel)
        cache.get(("A",))
        cache.clear()
        assert len(cache) == 0

    def test_rejects_nonpositive_maxsize(self, rel):
        with pytest.raises(DetectionError):
            PartitionIndexCache(rel, maxsize=0)


class TestColumnarIngestion:
    """add_encoded must be indistinguishable from add_tuples row ingestion."""

    def _store(self, rel):
        from repro.relation.columnar import ColumnStore

        return ColumnStore.from_relation(rel)

    @pytest.mark.parametrize("attributes", [("A",), ("A", "B"), ("C", "A")])
    def test_from_relation_matches_row_ingestion(self, rel, attributes):
        row_index = PartitionIndex.from_relation(rel, attributes)
        columnar_index = PartitionIndex.from_relation(self._store(rel), attributes)
        assert list(columnar_index.partitions()) == list(row_index.partitions())
        assert columnar_index.tuple_count == row_index.tuple_count

    def test_batched_add_encoded_matches_one_shot(self, rel):
        store = self._store(rel)
        batched = PartitionIndex(rel.schema, ("A",))
        batched.add_encoded(store, 0, 2)
        batched.add_encoded(store, 2, len(store))
        one_shot = PartitionIndex.from_relation(store, ("A",))
        assert list(batched.partitions()) == list(one_shot.partitions())

    def test_non_contiguous_batch_raises(self, rel):
        store = self._store(rel)
        index = PartitionIndex(rel.schema, ("A",))
        index.add_encoded(store, 0, 2)
        with pytest.raises(DetectionError):
            index.add_encoded(store, 3, 4)


class TestCacheStaleness:
    """Mutations outside apply_update must turn reads into loud errors."""

    def test_delete_invalidates_reads(self, rel):
        cache = PartitionIndexCache(rel)
        cache.get(("A",))
        rel.delete(0)
        with pytest.raises(DetectionError):
            cache.get(("A",))

    def test_insert_invalidates_reads(self, rel):
        cache = PartitionIndexCache(rel)
        cache.get(("A",))
        rel.insert(("a9", "b9", "c9"))
        with pytest.raises(DetectionError):
            cache.get(("A",))

    def test_raw_update_without_apply_update_invalidates_reads(self, rel):
        cache = PartitionIndexCache(rel)
        cache.get(("A",))
        rel.update(0, "A", "a9")
        with pytest.raises(DetectionError):
            cache.get(("A",))

    def test_apply_update_resynchronizes(self, rel):
        cache = PartitionIndexCache(rel)
        cache.get(("A",))
        old_row = rel[0]
        rel.update(0, "A", "a9")
        cache.apply_update(0, "A", old_row)
        assert cache.get(("A",)).get(("a9",)) == (0,)

    def test_apply_update_after_two_raw_updates_raises(self, rel):
        cache = PartitionIndexCache(rel)
        cache.get(("A",))
        old_row = rel[0]
        rel.update(0, "A", "a8")
        rel.update(0, "A", "a9")
        with pytest.raises(DetectionError):
            cache.apply_update(0, "A", old_row)

    def test_clear_resynchronizes(self, rel):
        cache = PartitionIndexCache(rel)
        cache.get(("A",))
        rel.delete(0)
        cache.clear()
        assert cache.get(("A",)).tuple_count == len(rel)
