"""Tests for the partition index and its LRU cache."""

import pytest

from repro.core.pattern import DONTCARE, WILDCARD, PatternValue
from repro.detection.partition_index import PartitionIndex, PartitionIndexCache
from repro.errors import DetectionError
from repro.relation.relation import Relation
from repro.relation.schema import Schema


@pytest.fixture
def rel():
    return Relation(
        Schema("r", ["A", "B", "C"]),
        [
            ("a1", "b1", "c1"),
            ("a1", "b2", "c2"),
            ("a2", "b1", "c1"),
            ("a1", "b1", "c3"),
        ],
    )


class TestPartitionIndex:
    def test_groups_match_relation_group_by(self, rel):
        index = PartitionIndex.from_relation(rel, ("A", "B"))
        assert dict(index.partitions()) == rel.group_by(["A", "B"])

    def test_get_and_contains(self, rel):
        index = PartitionIndex.from_relation(rel, ("A",))
        assert index.get(("a1",)) == (0, 1, 3)
        assert index.get(("zzz",)) == ()
        assert ("a2",) in index
        assert ("zzz",) not in index

    def test_len_and_tuple_count(self, rel):
        index = PartitionIndex.from_relation(rel, ("B",))
        assert len(index) == 2
        assert index.tuple_count == len(rel)

    def test_batched_add_tuples_equals_one_shot(self, rel):
        one_shot = PartitionIndex.from_relation(rel, ("A", "B"))
        for batch_size in (1, 2, 3, 100):
            batched = PartitionIndex(rel.schema, ("A", "B"))
            for start in range(0, len(rel), batch_size):
                batched.add_tuples(rel.rows[start:start + batch_size])
            assert dict(batched.partitions()) == dict(one_shot.partitions())
            assert batched.tuple_count == one_shot.tuple_count

    def test_add_tuples_continues_indices_across_batches(self, rel):
        index = PartitionIndex(rel.schema, ("A",))
        next_index = index.add_tuples(rel.rows[:2])
        assert next_index == 2
        assert index.add_tuples(rel.rows[2:]) == 4
        assert index.get(("a1",)) == (0, 1, 3)

    def test_add_tuples_start_index_override(self, rel):
        index = PartitionIndex(rel.schema, ("A",))
        index.add_tuples(rel.rows[2:], start_index=2)
        assert index.get(("a1",)) == (3,)
        assert index.get(("a2",)) == (2,)

    def test_add_tuples_rejects_overlapping_start_index(self, rel):
        index = PartitionIndex(rel.schema, ("A",))
        index.add_tuples(rel.rows[:2])
        with pytest.raises(DetectionError):
            index.add_tuples(rel.rows[:2], start_index=0)

    def test_empty_attribute_tuple_gives_single_partition(self, rel):
        index = PartitionIndex.from_relation(rel, ())
        assert index.get(()) == (0, 1, 2, 3)
        assert len(index) == 1

    def test_matching_all_constant_is_a_lookup(self, rel):
        index = PartitionIndex.from_relation(rel, ("A", "B"))
        cells = [PatternValue.constant("a1"), PatternValue.constant("b1")]
        assert [(key, group) for key, group in index.matching(cells)] == [
            (("a1", "b1"), [0, 3])
        ]
        missing = [PatternValue.constant("zz"), PatternValue.constant("b1")]
        assert list(index.matching(missing)) == []

    def test_matching_mixed_constants_and_wildcards(self, rel):
        index = PartitionIndex.from_relation(rel, ("A", "B"))
        cells = [PatternValue.constant("a1"), WILDCARD]
        assert {key for key, _ in index.matching(cells)} == {("a1", "b1"), ("a1", "b2")}

    def test_matching_all_free_yields_every_partition(self, rel):
        index = PartitionIndex.from_relation(rel, ("A",))
        assert {key for key, _ in index.matching([WILDCARD])} == {("a1",), ("a2",)}
        assert {key for key, _ in index.matching([DONTCARE])} == {("a1",), ("a2",)}

    def test_matching_rejects_misaligned_cells(self, rel):
        index = PartitionIndex.from_relation(rel, ("A", "B"))
        with pytest.raises(DetectionError):
            list(index.matching([WILDCARD]))

    def test_multi_tuple_partitions(self, rel):
        index = PartitionIndex.from_relation(rel, ("A", "B"))
        assert dict(index.multi_tuple_partitions()) == {("a1", "b1"): [0, 3]}


class TestPartitionIndexCache:
    def test_miss_then_hit(self, rel):
        cache = PartitionIndexCache(rel)
        first = cache.get(("A",))
        second = cache.get(("A",))
        assert first is second
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_distinct_attribute_tuples_get_distinct_indexes(self, rel):
        cache = PartitionIndexCache(rel)
        assert cache.get(("A",)) is not cache.get(("A", "B"))
        assert len(cache) == 2

    def test_lru_eviction(self, rel):
        cache = PartitionIndexCache(rel, maxsize=2)
        cache.get(("A",))
        cache.get(("B",))
        cache.get(("A",))        # refresh A: B is now least recently used
        cache.get(("C",))        # evicts B
        assert ("A",) in cache and ("C",) in cache
        assert ("B",) not in cache

    def test_seed_prebuilt_index(self, rel):
        cache = PartitionIndexCache(rel)
        prebuilt = PartitionIndex.from_relation(rel, ("C",))
        cache.seed(prebuilt)
        assert cache.get(("C",)) is prebuilt
        assert cache.stats()["misses"] == 0

    def test_seed_rejects_index_not_covering_the_relation(self, rel):
        cache = PartitionIndexCache(rel)
        partial = PartitionIndex(rel.schema, ("C",))
        partial.add_tuples(rel.rows[:2])
        with pytest.raises(DetectionError):
            cache.seed(partial)

    def test_clear(self, rel):
        cache = PartitionIndexCache(rel)
        cache.get(("A",))
        cache.clear()
        assert len(cache) == 0

    def test_rejects_nonpositive_maxsize(self, rel):
        with pytest.raises(DetectionError):
            PartitionIndexCache(rel, maxsize=0)


class TestColumnarIngestion:
    """add_encoded must be indistinguishable from add_tuples row ingestion."""

    def _store(self, rel):
        from repro.relation.columnar import ColumnStore

        return ColumnStore.from_relation(rel)

    @pytest.mark.parametrize("attributes", [("A",), ("A", "B"), ("C", "A")])
    def test_from_relation_matches_row_ingestion(self, rel, attributes):
        row_index = PartitionIndex.from_relation(rel, attributes)
        columnar_index = PartitionIndex.from_relation(self._store(rel), attributes)
        assert list(columnar_index.partitions()) == list(row_index.partitions())
        assert columnar_index.tuple_count == row_index.tuple_count

    def test_batched_add_encoded_matches_one_shot(self, rel):
        store = self._store(rel)
        batched = PartitionIndex(rel.schema, ("A",))
        batched.add_encoded(store, 0, 2)
        batched.add_encoded(store, 2, len(store))
        one_shot = PartitionIndex.from_relation(store, ("A",))
        assert list(batched.partitions()) == list(one_shot.partitions())

    def test_non_contiguous_batch_raises(self, rel):
        store = self._store(rel)
        index = PartitionIndex(rel.schema, ("A",))
        index.add_encoded(store, 0, 2)
        with pytest.raises(DetectionError):
            index.add_encoded(store, 3, 4)


class TestCacheStaleness:
    """Mutations outside apply_update must turn reads into loud errors."""

    def test_delete_invalidates_reads(self, rel):
        cache = PartitionIndexCache(rel)
        cache.get(("A",))
        rel.delete(0)
        with pytest.raises(DetectionError):
            cache.get(("A",))

    def test_insert_invalidates_reads(self, rel):
        cache = PartitionIndexCache(rel)
        cache.get(("A",))
        rel.insert(("a9", "b9", "c9"))
        with pytest.raises(DetectionError):
            cache.get(("A",))

    def test_raw_update_without_apply_update_invalidates_reads(self, rel):
        cache = PartitionIndexCache(rel)
        cache.get(("A",))
        rel.update(0, "A", "a9")
        with pytest.raises(DetectionError):
            cache.get(("A",))

    def test_apply_update_resynchronizes(self, rel):
        cache = PartitionIndexCache(rel)
        cache.get(("A",))
        old_row = rel[0]
        rel.update(0, "A", "a9")
        cache.apply_update(0, "A", old_row)
        assert cache.get(("A",)).get(("a9",)) == (0,)

    def test_apply_update_after_two_raw_updates_raises(self, rel):
        cache = PartitionIndexCache(rel)
        cache.get(("A",))
        old_row = rel[0]
        rel.update(0, "A", "a8")
        rel.update(0, "A", "a9")
        with pytest.raises(DetectionError):
            cache.apply_update(0, "A", old_row)

    def test_clear_resynchronizes(self, rel):
        cache = PartitionIndexCache(rel)
        cache.get(("A",))
        rel.delete(0)
        cache.clear()
        assert cache.get(("A",)).tuple_count == len(rel)


# ---------------------------------------------------------------------------
# CodePartitionIndex: the array-backed partition map of the batched repair path
# ---------------------------------------------------------------------------
from repro.kernels import numpy_available  # noqa: E402


@pytest.mark.skipif(not numpy_available(), reason="needs the [fast] extra")
class TestCodePartitionIndex:
    """The sorted code-composite index against the dict-backed reference."""

    @pytest.fixture
    def store(self, rel):
        from repro.relation.columnar import ColumnStore

        return ColumnStore.from_relation(rel)

    def _index(self, store, attributes):
        from repro.detection.partition_index import CodePartitionIndex

        return CodePartitionIndex(store, tuple(attributes))

    def test_classes_match_group_by(self, store, rel):
        index = self._index(store, ("A", "B"))
        reference = rel.group_by(["A", "B"])
        seen = {}
        for position in range(index.class_count):
            codes = index.key_codes_at(position)
            key = tuple(
                store.decode(attr, code) for attr, code in zip(("A", "B"), codes)
            )
            seen[key] = index.members_at(position)
        assert seen == {key: list(members) for key, members in reference.items()}

    def test_empty_attributes_single_class(self, store):
        index = self._index(store, ())
        assert index.class_count == 1
        assert index.members_at(0) == [0, 1, 2, 3]
        assert index.key_codes_at(0) == ()

    def test_find(self, store):
        index = self._index(store, ("A",))
        a1 = store.encode("A", "a1")
        assert index.members_at(index.find((a1,))) == [0, 1, 3]
        assert index.find((None,)) == -1  # value absent from the dictionary
        # A code at/above the stride capacity belongs to no live row.
        assert index.find((10_000,)) == -1

    def test_matching_positions_and_gather(self, store):
        index = self._index(store, ("A", "B"))
        b1 = store.encode("B", "b1")
        positions = index.matching_positions([(1, b1)])
        gathered_keys = {index.key_codes_at(int(p)) for p in positions}
        assert all(codes[1] == b1 for codes in gathered_keys)
        indices, offsets = index.gather(positions)
        flat = [int(i) for i in indices]
        assert flat == [
            member for p in positions for member in index.members_at(int(p))
        ]
        assert [int(o) for o in offsets] == [0, 2]

    def test_apply_moves_matches_fresh_rebuild(self, store):
        from repro.detection.partition_index import CodePartitionIndex

        index = self._index(store, ("A", "B"))
        store.update(0, "A", "a2")  # move into an existing code
        store.update(2, "B", "b9")  # fresh dictionary entry, within headroom
        index.apply_moves([0, 2])
        fresh = CodePartitionIndex(store, ("A", "B"))
        assert index.class_count == fresh.class_count
        for position in range(fresh.class_count):
            assert index.members_at(position) == fresh.members_at(position)
            assert index.key_codes_at(position) == fresh.key_codes_at(position)

    def test_apply_moves_headroom_overflow_rebuilds(self, store):
        from repro.detection.partition_index import CodePartitionIndex

        index = self._index(store, ("A",))
        # Outgrow the build-time capacity (dictionary size + headroom) so the
        # delta cannot represent the new code and a full rebuild must kick in.
        headroom = CodePartitionIndex.HEADROOM
        for step in range(headroom + 1):
            store.update(0, "A", f"grown{step}")
        index.apply_moves([0])
        fresh = CodePartitionIndex(store, ("A",))
        for position in range(fresh.class_count):
            assert index.members_at(position) == fresh.members_at(position)
            assert index.key_codes_at(position) == fresh.key_codes_at(position)

    def test_composite_overflow_raises_detection_error(self, store):
        import repro.detection.partition_index as module

        # Shrink the headroom so capacities multiply past int64 and the
        # constructor must refuse (RepairState then falls back to reference
        # mode rather than building a wrong index).
        original = module.CodePartitionIndex.HEADROOM
        module.CodePartitionIndex.HEADROOM = 2**40
        try:
            with pytest.raises(DetectionError):
                self._index(store, ("A", "B"))
        finally:
            module.CodePartitionIndex.HEADROOM = original
