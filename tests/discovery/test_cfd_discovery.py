"""Tests for constant-CFD discovery."""

import pytest

from repro.core.satisfaction import find_violations
from repro.discovery.cfd_discovery import discover_constant_cfds, discover_patterns
from repro.errors import DiscoveryError
from repro.relation.relation import Relation
from repro.relation.schema import Schema


@pytest.fixture
def relation():
    schema = Schema("r", ["CITY", "STATE", "OTHER"])
    rows = [
        ("NYC", "NY", "x1"),
        ("NYC", "NY", "x2"),
        ("NYC", "NY", "x3"),
        ("PHI", "PA", "x4"),
        ("PHI", "PA", "x5"),
        ("EDI", "SC", "x6"),
    ]
    return Relation(schema, rows)


class TestDiscoverPatterns:
    def test_finds_high_support_pattern(self, relation):
        patterns = discover_patterns(relation, min_support=3, max_lhs_size=1)
        assert any(
            p.lhs == ("CITY",) and p.lhs_values == ("NYC",) and p.rhs == "STATE" and p.rhs_value == "NY"
            for p in patterns
        )

    def test_support_threshold_filters(self, relation):
        patterns = discover_patterns(relation, min_support=4, max_lhs_size=1)
        assert not any(p.lhs_values == ("PHI",) for p in patterns if p.rhs == "STATE")

    def test_confidence_below_one_allows_noisy_groups(self):
        schema = Schema("r", ["A", "B"])
        rows = [("a", "b")] * 9 + [("a", "z")]
        relation = Relation(schema, rows)
        strict = discover_patterns(relation, min_support=2, min_confidence=1.0, max_lhs_size=1)
        lenient = discover_patterns(relation, min_support=2, min_confidence=0.85, max_lhs_size=1)
        assert not any(p.lhs == ("A",) and p.rhs == "B" for p in strict)
        assert any(p.lhs == ("A",) and p.rhs == "B" and p.confidence == 0.9 for p in lenient)

    def test_invalid_parameters_rejected(self, relation):
        with pytest.raises(DiscoveryError):
            discover_patterns(relation, min_support=0)
        with pytest.raises(DiscoveryError):
            discover_patterns(relation, min_confidence=0.0)
        with pytest.raises(DiscoveryError):
            discover_patterns(relation, max_lhs_size=0)


class TestDiscoverConstantCFDs:
    def test_one_cfd_per_embedded_fd(self, relation):
        cfds = discover_constant_cfds(relation, min_support=2, max_lhs_size=1)
        keys = [(cfd.lhs, cfd.rhs) for cfd in cfds]
        assert len(keys) == len(set(keys))

    def test_discovered_cfds_are_instance_level_patterns(self, relation):
        for cfd in discover_constant_cfds(relation, min_support=2, max_lhs_size=1):
            for row in cfd.tableau:
                assert row.is_constant_only()

    def test_discovered_cfds_hold_with_full_confidence(self, relation):
        for cfd in discover_constant_cfds(relation, min_support=2, min_confidence=1.0, max_lhs_size=1):
            assert find_violations(relation, cfd).is_clean()

    def test_city_state_cfd_found(self, relation):
        cfds = discover_constant_cfds(relation, min_support=2, max_lhs_size=1)
        city_state = [cfd for cfd in cfds if cfd.lhs == ("CITY",) and cfd.rhs == ("STATE",)]
        assert city_state
        assert len(city_state[0].tableau) == 2  # NYC and PHI; EDI lacks support

    def test_discovery_on_clean_tax_data_recovers_geo_constraints(self, clean_tax_relation):
        cfds = discover_constant_cfds(
            clean_tax_relation,
            min_support=5,
            max_lhs_size=1,
            attributes=["CT", "ST", "TX"],
        )
        assert any(cfd.lhs == ("CT",) and cfd.rhs == ("ST",) for cfd in cfds)

    def test_discovery_names_are_stable(self, relation):
        cfds = discover_constant_cfds(relation, min_support=2, max_lhs_size=1)
        assert all(cfd.name.startswith("discovered_") for cfd in cfds)
