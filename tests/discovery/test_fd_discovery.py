"""Tests for TANE-style FD discovery."""

import pytest

from repro.core.cfd import FD
from repro.core.satisfaction import satisfies
from repro.discovery.fd_discovery import discover_fds
from repro.errors import DiscoveryError
from repro.relation.relation import Relation
from repro.relation.schema import Schema


class TestDiscoverFDs:
    def test_discovers_simple_dependency(self):
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("a1", "b1"), ("a1", "b1"), ("a2", "b2")])
        fds = discover_fds(relation, max_lhs_size=1)
        assert FD(("A",), ("B",)) in fds

    def test_discovered_fds_hold_on_the_data(self, cust):
        for fd in discover_fds(cust, max_lhs_size=2):
            assert satisfies(cust, fd.to_cfd()), f"{fd} does not hold"

    def test_finds_the_paper_fds_on_cust(self, cust):
        fds = discover_fds(cust, max_lhs_size=2)
        assert any(fd.lhs == ("AC",) and fd.rhs == ("CT",) for fd in fds)
        # [CC, AC] -> CT is not minimal because AC -> CT already holds.
        assert not any(set(fd.lhs) == {"CC", "AC"} and fd.rhs == ("CT",) for fd in fds)

    def test_minimality_pruning(self):
        schema = Schema("r", ["A", "B", "C"])
        relation = Relation(schema, [("a1", "b1", "c1"), ("a2", "b1", "c1"), ("a3", "b2", "c2")])
        fds = discover_fds(relation, max_lhs_size=2)
        assert FD(("B",), ("C",)) in fds
        assert FD(("A", "B"), ("C",)) not in fds

    def test_no_trivial_fds_by_default(self, cust):
        fds = discover_fds(cust, max_lhs_size=1)
        assert all(fd.rhs[0] not in fd.lhs for fd in fds)

    def test_trivial_fds_on_request(self):
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema, [("a", "b")])
        fds = discover_fds(relation, max_lhs_size=1, include_trivial=True)
        assert FD(("A",), ("A",)) in fds

    def test_attribute_restriction(self, cust):
        fds = discover_fds(cust, max_lhs_size=1, attributes=["AC", "CT"])
        assert all(set(fd.lhs) | set(fd.rhs) <= {"AC", "CT"} for fd in fds)

    def test_invalid_lhs_size_rejected(self, cust):
        with pytest.raises(DiscoveryError):
            discover_fds(cust, max_lhs_size=0)

    def test_empty_relation_everything_holds(self):
        schema = Schema("r", ["A", "B"])
        relation = Relation(schema)
        fds = discover_fds(relation, max_lhs_size=1)
        assert FD(("A",), ("B",)) in fds

    def test_generated_tax_data_yields_zip_to_state(self, clean_tax_relation):
        fds = discover_fds(clean_tax_relation, max_lhs_size=1, attributes=["ZIP", "CT", "ST"])
        assert any(fd.lhs == ("ZIP",) and fd.rhs == ("ST",) for fd in fds)
